package pas_test

import (
	"fmt"
	"log"

	pas "repro"
	"repro/internal/simllm"
)

// ExampleBuild shows the end-to-end construction: synthetic corpus,
// §3.1 curation, §3.2 pair generation with selection/regeneration, and
// fine-tuning. (Compile-checked; run examples/quickstart for live output.)
func ExampleBuild() {
	cfg := pas.DefaultConfig()
	cfg.CorpusSize = 3000 // small demo build

	res, err := pas.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs generated:", res.Dataset.Len())
	fmt.Println("complement:", res.System.Complement("Explain how tides form.", ""))
}

// ExampleSystem_Enhance runs the full plug-and-play path
// r_e = LLM(cat(p, M_p(p))) against a downstream model.
func ExampleSystem_Enhance() {
	sys, err := pas.LoadSystem("pas-model.json")
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.Enhance(simllm.MustModel(simllm.GPT4Turbo),
		"Does blood pressure increase or decrease when the body loses blood?", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Complement)
	fmt.Println(out.Response)
}

// ExampleNewProxy fronts an existing OpenAI-style endpoint with the
// transparent augmenting reverse proxy.
func ExampleNewProxy() {
	sys, err := pas.LoadSystem("pas-model.json")
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := pas.NewProxy(sys, "http://localhost:8423")
	if err != nil {
		log.Fatal(err)
	}
	_ = proxy // mount with http.ListenAndServe(":8424", proxy)
}

// ExampleSystem_AugmentMessages augments only the final user turn of a
// multi-turn conversation.
func ExampleSystem_AugmentMessages() {
	sys, err := pas.LoadSystem("pas-model.json")
	if err != nil {
		log.Fatal(err)
	}
	conv, err := sys.AugmentMessages([]simllm.Message{
		{Role: "user", Content: "Explain how tides form."},
		{Role: "assistant", Content: "Tides come from gravity."},
		{Role: "user", Content: "Now explain spring tides."},
	}, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(conv[2].Content)
}
