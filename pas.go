// Package pas is the public API of the PAS reproduction: a data-efficient,
// plug-and-play prompt augmentation system (Zheng, Liang et al., ICDE
// 2025).
//
// PAS takes a user prompt p, generates a short complementary prompt
// p_c = M_p(p) with a fine-tuned model, and feeds cat(p, p_c) to any
// downstream LLM:
//
//	r_e = LLM(cat(p, p_c))
//
// The complementary prompt never rewrites the user's words — it only adds
// methodological guidance — which is what makes the system safe to plug in
// front of any model.
//
// Build constructs the full system from scratch (synthetic corpus →
// curation → pair generation with selection/regeneration → SFT), or a
// System can be created from a previously trained and saved model. The
// System implements the APE interface of internal/baselines, so the
// evaluation harness treats PAS and every baseline uniformly.
package pas

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/augment"
	"repro/internal/curation"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/resilience"
	"repro/internal/serving"
	"repro/internal/sft"
	"repro/internal/simllm"
)

// Config assembles the end-to-end build settings. It is the pipeline
// configuration; see internal/pipeline for field documentation.
type Config = pipeline.Config

// DefaultConfig returns the build used by the experiments: a pool large
// enough to curate ~9000 pairs on Qwen2-7B.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// BuildResult carries the trained system together with the artefacts of
// each pipeline stage, for inspection and persistence.
type BuildResult struct {
	// System is the ready-to-serve PAS.
	System *System
	// Dataset is the generated (prompt, complementary prompt) dataset.
	Dataset *dataset.Dataset
	// CurationStats reports the §3.1 pipeline.
	CurationStats curation.Stats
	// AugmentStats reports the §3.2 pipeline.
	AugmentStats augment.Stats
}

// Build runs the complete PAS construction: synthesise a raw prompt pool,
// curate it, generate the complementary-prompt dataset, and fine-tune the
// base model.
func Build(cfg Config) (*BuildResult, error) {
	res, err := pipeline.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("pas: %w", err)
	}
	return &BuildResult{
		System:        NewSystem(res.Model),
		Dataset:       res.Dataset,
		CurationStats: res.CurationStats,
		AugmentStats:  res.AugmentStats,
	}, nil
}

// System is a trained plug-and-play prompt augmentation system.
type System struct {
	model *sft.Model
	// core, when enabled, is the admission-controlled, deduplicating,
	// cached hot path behind the HTTP surfaces; see EnableServing.
	core *serving.Core
	// degrade fails open: a PAS-side failure serves the raw prompt
	// instead of an error (ServingConfig.Degrade).
	degrade bool
	// retry re-attempts shed complement computations; retries is 0
	// when disabled (ServingConfig.Retries).
	retry   resilience.Policy
	retries int

	// draining, once set, flips /v1/status to "draining" and sheds new
	// augmentation work so routers stop sending traffic here; see Drain.
	draining atomic.Bool
	// adminToken guards POST /v1/drain when non-empty; set it before
	// serving traffic (SetAdminToken).
	adminToken string
	// onDrain, when set, is invoked (once) when an HTTP drain request
	// asks the process to exit; cmd/passerve hooks its shutdown here.
	onDrain   func()
	drainExit sync.Once
}

// NewSystem wraps a fine-tuned PAS model.
func NewSystem(model *sft.Model) *System {
	return &System{model: model}
}

// LoadSystem reads a trained PAS model from a file saved with SaveModel.
func LoadSystem(path string) (*System, error) {
	m, err := sft.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return NewSystem(m), nil
}

// SaveModel persists the underlying fine-tuned model to path.
func (s *System) SaveModel(path string) error { return s.model.SaveFile(path) }

// BaseModel returns the name of the fine-tuned base LLM.
func (s *System) BaseModel() string { return s.model.BaseName() }

// Complement returns p_c = M_p(p): the complementary prompt for the
// user's prompt. The salt decorrelates repeated calls; "" is fine for
// single-shot use.
func (s *System) Complement(prompt, salt string) string {
	return s.model.Complement(prompt, salt)
}

// ComplementCheap is the degraded-mode complement served at the
// brownout ladder's trim rung (ServingConfig.Brownout): a constant-
// work generic directive instead of the full policy inference. See
// sft.Model.ComplementCheap.
func (s *System) ComplementCheap(prompt, salt string) string {
	return s.model.ComplementCheap(prompt, salt)
}

// Augment returns cat(p, p_c): the text to send to the downstream LLM.
// The user's original prompt is preserved verbatim.
func (s *System) Augment(prompt, salt string) string {
	c := s.Complement(prompt, salt)
	if c == "" {
		return prompt
	}
	return prompt + "\n" + c
}

// Name implements the APE interface.
func (s *System) Name() string { return "PAS" }

// Transform implements the APE interface; it is Augment.
func (s *System) Transform(prompt, salt string) string { return s.Augment(prompt, salt) }

// AugmentMessages augments a chat conversation: the complementary prompt
// is computed from, and appended to, the final user turn only — earlier
// turns and assistant messages pass through untouched, so PAS can sit in
// a multi-turn conversation without rewriting history.
// It returns an error when the conversation has no user turn.
func (s *System) AugmentMessages(messages []simllm.Message, salt string) ([]simllm.Message, error) {
	last := -1
	for i := len(messages) - 1; i >= 0; i-- {
		if messages[i].Role == "user" {
			last = i
			break
		}
	}
	if last == -1 {
		return nil, fmt.Errorf("pas: conversation has no user turn")
	}
	out := make([]simllm.Message, len(messages))
	copy(out, messages)
	out[last].Content = s.Augment(out[last].Content, salt)
	return out, nil
}

// Enhanced is the result of running a prompt through PAS and a
// downstream model.
type Enhanced struct {
	// Prompt is the user's original prompt.
	Prompt string
	// Complement is p_c; empty when the call degraded.
	Complement string
	// Response is r_e = LLM(cat(p, p_c)).
	Response string
	// Degraded reports that the augmentation side failed and the main
	// model was called with the raw prompt instead
	// (ServingConfig.Degrade) — the plug-and-play guarantee held: the
	// user still got an answer.
	Degraded bool
}

// Chatter is any chat-capable downstream LLM: an in-process simulated
// model (*simllm.Model) or a remote API-backed one (chatapi.Remote).
type Chatter interface {
	Name() string
	Chat(messages []simllm.Message, opt simllm.Options) (string, error)
}

// ChatterCtx is a Chatter whose calls honour a context: the deadline
// bounds retries and a cancellation aborts the in-flight request.
// chatapi.Remote and resilience.FaultyChatter implement it natively.
type ChatterCtx interface {
	Name() string
	ChatContext(ctx context.Context, messages []simllm.Message, opt simllm.Options) (string, error)
}

// chatterAdapter lifts a plain Chatter to ChatterCtx. The wrapped call
// itself cannot be interrupted (the interface has no handle for it),
// but the context is checked before dialing so an already-dead request
// is never forwarded.
type chatterAdapter struct{ Chatter }

func (a chatterAdapter) ChatContext(ctx context.Context, messages []simllm.Message, opt simllm.Options) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return a.Chat(messages, opt) //paslint:allow ctxpropagate this adapter is the one place a plain Chatter is lifted; the interface has no context to forward
}

// AsChatterCtx returns c's context-taking form: c itself when it
// already implements ChatContext (chatapi.Remote does), an adapter
// otherwise (*simllm.Model keeps working unchanged).
func AsChatterCtx(c Chatter) ChatterCtx {
	if cc, ok := c.(ChatterCtx); ok {
		return cc
	}
	return chatterAdapter{c}
}

// Enhance runs the full plug-and-play path against a downstream model.
// It is EnhanceContext without a deadline.
func (s *System) Enhance(main Chatter, prompt, salt string) (Enhanced, error) {
	return s.EnhanceContext(context.Background(), main, prompt, salt)
}

// EnhanceContext runs the full plug-and-play path under ctx: the
// complement goes through the serving core when one is enabled
// (cache, dedup, admission, retries, breaker), and with
// ServingConfig.Degrade a PAS-side failure falls back to the raw
// prompt — the main-model call always happens, so augmentation can
// only add value, never availability risk. Main-model errors are the
// downstream's own and propagate unchanged.
func (s *System) EnhanceContext(ctx context.Context, main Chatter, prompt, salt string) (Enhanced, error) {
	if main == nil {
		return Enhanced{}, fmt.Errorf("pas: nil downstream model")
	}
	c, _, degraded, err := s.complementOrDegrade(ctx, prompt, salt)
	if err != nil {
		return Enhanced{}, err
	}
	content := prompt + "\n" + c
	if c == "" {
		content = prompt // degraded or empty complement: raw prompt, no stray newline
	}
	mctx, mspan := obs.StartSpan(ctx, "main.chat")
	mspan.SetAttr("model", main.Name())
	mspan.SetAttrBool("degraded", degraded)
	resp, err := AsChatterCtx(main).ChatContext(mctx,
		[]simllm.Message{{Role: "user", Content: content}},
		simllm.Options{Salt: salt})
	if err != nil {
		mspan.SetError(err)
		mspan.End()
		return Enhanced{}, err
	}
	mspan.End()
	return Enhanced{Prompt: prompt, Complement: c, Response: resp, Degraded: degraded}, nil
}
