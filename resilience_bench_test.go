package pas

// BenchmarkEnhanceDegraded measures the fail-open fast path: the
// augmentation breaker is pinned open, so every iteration takes the
// deterministic degrade route — breaker reject, fallback to the raw
// prompt, downstream chat. No queues fill and no retries sleep
// (open-breaker failures are terminal for the retry loop), so the
// numbers are stable run to run.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/serving"
	"repro/internal/simllm"
)

func BenchmarkEnhanceDegraded(b *testing.B) {
	sys := NewSystem(testSystem(b).System.model)
	if err := sys.EnableServing(ServingConfig{Degrade: true, Retries: 1}); err != nil {
		b.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	core, err := serving.New(func(prompt, salt string) string {
		if prompt == "block" {
			entered <- struct{}{}
			<-release
		}
		return sys.Complement(prompt, salt)
	}, serving.Config{
		CacheSize:        -1,
		MaxInFlight:      1,
		QueueDepth:       0,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // stays open for the whole run
	})
	if err != nil {
		b.Fatal(err)
	}
	sys.core = core

	// Park the single slot, shed once to trip the breaker, then unpark:
	// from here on every request fails fast with the breaker open.
	done := make(chan struct{})
	go func() {
		core.Do(context.Background(), "block", "", "bench")
		close(done)
	}()
	<-entered
	if _, err := core.Do(context.Background(), "x", "", "bench"); !errors.Is(err, serving.ErrQueueFull) {
		b.Fatalf("priming shed got %v", err)
	}
	close(release)
	<-done

	main := simllm.MustModel(simllm.GPT40613)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sys.EnhanceContext(ctx, main, "Explain how tides form.", "bench")
		if err != nil {
			b.Fatal(err)
		}
		if !out.Degraded {
			b.Fatal("expected every iteration to degrade")
		}
	}
}
