// Command pasload replays a prompt corpus against a PAS serving tier —
// a single passerve replica, or a cluster behind pasproxy — and emits a
// machine-readable JSON report (latency quantiles, achieved QPS,
// per-replica cache hit ratios). It is the measurement half of the
// sharded serving tier: run it against a 3-replica cluster and the
// per-replica hit deltas show consistent-hash cache locality directly.
//
// Usage:
//
//	pasload -target http://localhost:8424 -n 2000 -qps 500 -c 16 \
//	        -replicas http://localhost:8431,http://localhost:8432,http://localhost:8433 \
//	        -report BENCH_serving.json
//
// The corpus is synthesised by internal/corpus (deterministic for a
// given -corpus-seed) or read from -prompts-file, one prompt per line.
// Key selection is zipfian by default (-skew uniform for the cold
// path), seeded by -seed so two runs replay the identical sequence.
//
// With -tenants N every request carries a synthetic X-PAS-Tenant label
// (t0..tN-1) and the report grows per-tenant rows (requests, shed,
// degraded-by-level, p50/p99). -tenant-skew 10 turns t0 into a noisy
// neighbor offering 10x each other tenant's load — the fair-share
// isolation drill from the overload runbook.
//
// With -churn the run becomes a rolling-restart chaos drill: while the
// load replays at the configured rate, every -replicas member is
// drained in sequence over POST /v1/drain (authenticated by
// -admin-token when the fleet requires it) with exit=true, and the run
// waits -churn-rejoin-timeout for the process supervisor to restart it
// and /v1/status to answer healthy again before rolling the next one.
// The report then carries the churn timeline plus pre-churn and
// recovery cache-hit windows; shed 503s are counted separately from
// errors and do not fail the run.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/corpus"
	"repro/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pasload: ")

	var (
		target      = flag.String("target", "http://localhost:8424", "base URL under test (pasproxy or a passerve replica)")
		mode        = flag.String("mode", loadgen.ModeAugment, "endpoint to replay: augment (POST /v1/augment) or chat (POST /v1/chat/completions)")
		chatModel   = flag.String("chat-model", "pas-bench", "model field sent in chat mode")
		requests    = flag.Int("n", 200, "request count (0 = run until -duration)")
		duration    = flag.Duration("duration", 0, "wall-clock bound (0 = run until -n)")
		qps         = flag.Float64("qps", 0, "offered rate (0 = unthrottled)")
		concurrency = flag.Int("c", 8, "concurrent workers")
		skew        = flag.String("skew", loadgen.SkewZipf, "key distribution: zipf or uniform")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf s parameter (>1; larger = hotter head)")
		seed        = flag.Int64("seed", 1, "key-sampling seed; equal seeds replay equal sequences")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		tenants     = flag.Int("tenants", 0, "label requests with synthetic tenants t0..tN-1 via X-PAS-Tenant and report per-tenant rows (0 = anonymous)")
		tenantSkew  = flag.Float64("tenant-skew", 1, "tenant t0's traffic weight relative to each other tenant (10 = noisy neighbor)")
		salt        = flag.String("salt", "", "salt sent with every augmentation")
		replicas    = flag.String("replicas", "", "comma-separated replica base URLs to scrape /v1/stats hit deltas from")
		corpusSize  = flag.Int("corpus-size", 500, "synthetic corpus size (ignored with -prompts-file)")
		corpusSeed  = flag.Int64("corpus-seed", 1, "synthetic corpus seed")
		promptsFile = flag.String("prompts-file", "", "read the corpus from this file, one prompt per line")
		report      = flag.String("report", "", "write the JSON report here ('-' or empty = stdout)")

		churn         = flag.Bool("churn", false, "roll every -replicas member (drain via POST /v1/drain, await supervisor restart) while the load runs")
		adminToken    = flag.String("admin-token", "", "admin token sent with drain requests")
		churnWarmup   = flag.Duration("churn-warmup", 2*time.Second, "load before the first drain, filling caches")
		churnMeasure  = flag.Duration("churn-measure", 0, "pre-churn hit-ratio window (0 = same as -churn-cooldown)")
		churnLinger   = flag.Duration("churn-linger", time.Second, "wait after each drain before the replica is considered gone")
		churnDowntime = flag.Duration("churn-downtime", 500*time.Millisecond, "wait between kill and restart phases")
		churnRejoin   = flag.Duration("churn-rejoin-timeout", 30*time.Second, "max wait for a rolled replica to answer /v1/status again")
		churnSettle   = flag.Duration("churn-settle", time.Second, "load between one rejoin and the next drain")
		churnCooldown = flag.Duration("churn-cooldown", 2*time.Second, "load after the last rejoin; the recovery hit-ratio window")
	)
	flag.Parse()

	prompts, err := loadCorpus(*promptsFile, *corpusSize, *corpusSeed)
	if err != nil {
		log.Fatal(err)
	}

	var replicaURLs []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			replicaURLs = append(replicaURLs, r)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := loadgen.Config{
		Target:      *target,
		Mode:        *mode,
		Model:       *chatModel,
		Prompts:     prompts,
		Requests:    *requests,
		Duration:    *duration,
		QPS:         *qps,
		Concurrency: *concurrency,
		Skew:        *skew,
		ZipfS:       *zipfS,
		Seed:        *seed,
		Timeout:     *timeout,
		Salt:        *salt,
		Replicas:    replicaURLs,
		Tenants:     *tenants,
		TenantSkew:  *tenantSkew,
	}

	var rep loadgen.Report
	if *churn {
		if len(replicaURLs) == 0 {
			log.Fatal("-churn needs -replicas: the members to roll")
		}
		targets := make([]loadgen.ChurnTarget, 0, len(replicaURLs))
		for _, u := range replicaURLs {
			u := u
			targets = append(targets, loadgen.ChurnTarget{
				URL: u,
				// Drain with exit=true: the replica advertises draining,
				// quiesces, and exits; its supervisor restarts it. Kill
				// and Restart stay nil — readiness polling observes the
				// restart from the outside.
				Drain: func(ctx context.Context) error {
					return drainReplica(ctx, u, *adminToken)
				},
			})
		}
		log.Printf("rolling %d replicas under load against %s (%s mode, skew %s, %d workers)",
			len(replicaURLs), *target, *mode, *skew, *concurrency)
		rep, err = loadgen.RunWithChurn(ctx, cfg, loadgen.ChurnPlan{
			Targets:       targets,
			Warmup:        *churnWarmup,
			Measure:       *churnMeasure,
			DrainLinger:   *churnLinger,
			DownTime:      *churnDowntime,
			RejoinTimeout: *churnRejoin,
			Settle:        *churnSettle,
			Cooldown:      *churnCooldown,
		})
	} else {
		log.Printf("replaying %d prompts against %s (%s mode, skew %s, %d workers)",
			len(prompts), *target, *mode, *skew, *concurrency)
		rep, err = loadgen.Run(ctx, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if *report != "" && *report != "-" {
		f, err := os.Create(*report)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing report: %v", err)
			}
		}()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}

	log.Printf("%d requests in %.2fs (%.1f QPS): p50 %.2fms p90 %.2fms p99 %.2fms, %d errors, %d degraded, %d shed",
		rep.Requests, rep.DurationSeconds, rep.AchievedQPS,
		rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms, rep.Errors, rep.Degraded, rep.Shed)
	for _, row := range rep.Tenants {
		log.Printf("tenant %-6s %5d requests: %4d shed, %4d trim, %4d raw, p50 %.2fms p99 %.2fms",
			row.Tenant, row.Requests, row.Shed, row.DegradedTrim, row.DegradedRaw,
			row.LatencyP50Ms, row.LatencyP99Ms)
	}
	if rep.ClusterHits+rep.ClusterMisses > 0 {
		log.Printf("cluster cache: %d hits / %d misses (ratio %.3f)",
			rep.ClusterHits, rep.ClusterMisses, rep.ClusterHitRatio)
	}
	if rep.Churn != nil {
		for _, e := range rep.Churn.Events {
			suffix := ""
			if e.Error != "" {
				suffix = " ERROR: " + e.Error
			}
			log.Printf("churn +%5dms %-7s %s%s", e.AtMs, e.Phase, e.Replica, suffix)
		}
		log.Printf("hit ratio: pre-churn %.3f (%d lookups) -> recovery %.3f (%d lookups)",
			rep.Churn.PreChurnHitRatio, rep.Churn.PreChurnLookups,
			rep.Churn.RecoveryHitRatio, rep.Churn.RecoveryLookups)
	}
	// Shed 503s are deliberate availability events, not failures; only
	// hard errors fail the run.
	if rep.Errors > 0 {
		log.Printf("first error: %s", rep.FirstError)
		os.Exit(1)
	}
}

// drainReplica asks one replica to drain and exit (its supervisor is
// expected to restart it).
func drainReplica(ctx context.Context, replica, token string) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	body := bytes.NewReader([]byte(`{"exit": true}`))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/v1/drain", body)
	if err != nil {
		return fmt.Errorf("pasload: building drain request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-PAS-Admin-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("pasload: draining %s: %w", replica, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("pasload: draining %s: status %d: %s", replica, resp.StatusCode, bytes.TrimSpace(msg))
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return nil
}

// loadCorpus reads prompts from a file or synthesises them.
func loadCorpus(path string, size int, seed int64) ([]string, error) {
	if path == "" {
		cfg := corpus.DefaultConfig()
		cfg.Size = size
		cfg.Seed = seed
		pool, err := corpus.Generate(cfg)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(pool))
		for i, p := range pool {
			out[i] = p.Text
		}
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pasload: corpus file: %w", err)
	}
	defer f.Close() // read-only file: nothing actionable on close failure
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			out = append(out, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pasload: reading corpus: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pasload: corpus file %s is empty", path)
	}
	return out, nil
}
