// Command passerve exposes a trained PAS model as the plug-and-play HTTP
// service:
//
//	POST /v1/augment {"prompt": "..."}  ->  {"complement": ..., "augmented": ...}
//	GET  /v1/stats                      ->  serving-core snapshot
//	GET  /healthz
//
// Usage:
//
//	passerve -model pas-model.json [-addr :8422]
//
// With -model "" (or a missing file and -build), the command builds a
// fresh small PAS in-process, which is convenient for demos.
//
// The augment hot path runs through the serving core: a sharded TTL-LRU
// result cache (-cache-size, -cache-ttl), single-flight deduplication of
// concurrent identical prompts, and a bounded admission queue
// (-max-inflight, -queue-depth, -queue-wait) that sheds overload with
// 503 + Retry-After. Shed computations are retried (-retries,
// -retry-budget) behind a circuit breaker (-breaker-threshold,
// -breaker-cooldown), and with -degrade (default on) a request the
// augmentation path still cannot serve is answered 200 with the raw
// prompt — flagged X-PAS-Degraded and counted in /v1/stats — instead
// of a 503.
//
// Overload robustness is opt-in per knob. -adaptive-limit turns the
// static in-flight cap into an AIMD limiter that backs off when the
// queue sheds and regrows on healthy completions, with -max-inflight
// as its hard ceiling. -brownout arms the degradation ladder: under
// sustained queue pressure the replica first serves a cheap complement
// (X-PAS-Degraded: trim), then the raw prompt (X-PAS-Degraded: 1),
// before hard-shedding — and /v1/status advertises the pressure rung
// so routing tiers deprioritize the replica. Requests carrying an
// X-PAS-Tenant header (or an API key, fingerprinted) are admitted by a
// weighted fair-share queue (-tenant-weights, -tenant-quotas,
// -max-tenants), so one flooding tenant cannot starve the rest.
//
// Shutdown is graceful and router-aware. POST /v1/drain (guarded by
// -admin-token when set) or SIGINT/SIGTERM first flips /v1/status to
// "draining" and sheds new complement computations with 503 +
// Retry-After while cache hits and in-flight work keep being served;
// after -drain-linger (time for routing tiers to observe the drain)
// the process quiesces the serving core and closes the listener,
// bounded by -drain-deadline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	pas "repro"
	"repro/internal/httpmw"
	"repro/internal/obs"
	"repro/internal/resilience"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("passerve: ")

	var (
		model       = flag.String("model", "pas-model.json", "trained model path (from pastrain)")
		addr        = flag.String("addr", ":8422", "listen address")
		build       = flag.Bool("build", false, "ignore -model and build a small PAS in-process")
		concurrency = flag.Int("concurrency", 256, "hard cap on in-flight HTTP requests (outer backstop)")
		cacheSize   = flag.Int("cache-size", 4096, "complement result cache entries (negative disables)")
		cacheTTL    = flag.Duration("cache-ttl", 0, "result cache TTL (0 = no expiry; sound for a fixed model)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrent complement computations (the adaptive limiter's ceiling with -adaptive-limit)")
		adaptive    = flag.Bool("adaptive-limit", false, "replace the static in-flight cap with an AIMD limiter that backs off on shed/deadline signals (-max-inflight becomes the ceiling)")
		limitFloor  = flag.Int("limit-floor", 1, "adaptive limiter's lower clamp")
		limitTarget = flag.Duration("limit-target", 0, "computation latency below which the adaptive limit grows (0 = any success grows it)")
		brownout    = flag.Bool("brownout", false, "arm the degradation ladder: serve cheap-complement then raw-passthrough under pressure before hard shedding")
		tenantW     = flag.String("tenant-weights", "", "fair-share weights as tenant=w,tenant=w (unlisted tenants get -default-tenant-weight)")
		tenantDefW  = flag.Int("default-tenant-weight", 1, "fair-share weight of unlisted tenants")
		tenantQuota = flag.String("tenant-quotas", "", "per-tenant concurrent-computation caps as tenant=n,tenant=n")
		tenantDepth = flag.Int("tenant-queue-depth", 0, "per-tenant share of the waiting room (0 = weighted split of -queue-depth)")
		maxTenants  = flag.Int("max-tenants", 0, "bound on tracked tenants; ids beyond it pool into an overflow tenant (0 = default)")
		computeHold = flag.Duration("compute-delay", 0, "pad every complement computation (overload-drill knob; leave 0 in production)")
		queueDepth  = flag.Int("queue-depth", 256, "max requests waiting for a computation slot (0 = shed instantly)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max wait for a slot before shedding with 503")
		retries     = flag.Int("retries", 1, "re-attempts for a shed complement computation (0 disables)")
		retryBudget = flag.Duration("retry-budget", 500*time.Millisecond, "total time budget for the retry loop, sleeps included")
		breaker     = flag.Int("breaker-threshold", 8, "consecutive shed computations before the augment breaker opens (0 disables)")
		cooldown    = flag.Duration("breaker-cooldown", 2*time.Second, "breaker open->half-open window")
		degrade     = flag.Bool("degrade", true, "fail open: answer with the un-augmented prompt instead of 503 when augmentation sheds")
		debugAddr   = flag.String("debug-addr", "", "separate listener for pprof, /debug/traces and /metricsz (empty disables)")
		traceSample = flag.Int("trace-sample", 1, "head-sample 1 in N traces; errored and slow traces are always kept (negative keeps only those)")
		adminToken  = flag.String("admin-token", "", "token required by POST /v1/drain (empty = unauthenticated)")
		drainLinger = flag.Duration("drain-linger", time.Second, "time to advertise draining before closing the listener, so routers stop sending traffic")
		drainWait   = flag.Duration("drain-deadline", 10*time.Second, "max total wait for in-flight and queued work to finish before exiting anyway")
	)
	flag.Parse()

	var sys *pas.System
	if *build {
		log.Printf("building a fresh PAS (this takes a few seconds)...")
		cfg := pas.DefaultConfig()
		cfg.CorpusSize = 4000
		cfg.ClassifierExamples = 3000
		cfg.Augment.PerCategoryCap = 100
		cfg.Augment.HeavyCategoryCap = 200
		res, err := pas.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys = res.System
	} else {
		var err error
		sys, err = pas.LoadSystem(*model)
		if err != nil {
			log.Fatalf("%v (train one with pastrain, or pass -build)", err)
		}
	}

	weights, err := parseTenantMap(*tenantW)
	if err != nil {
		log.Fatalf("-tenant-weights: %v", err)
	}
	quotas, err := parseTenantMap(*tenantQuota)
	if err != nil {
		log.Fatalf("-tenant-quotas: %v", err)
	}
	if err := sys.EnableServing(pas.ServingConfig{
		CacheSize:           *cacheSize,
		CacheTTL:            *cacheTTL,
		MaxInFlight:         *maxInflight,
		QueueDepth:          *queueDepth,
		QueueWait:           *queueWait,
		Retries:             *retries,
		RetryBudget:         *retryBudget,
		BreakerThreshold:    *breaker,
		BreakerCooldown:     *cooldown,
		Degrade:             *degrade,
		AdaptiveLimit:       *adaptive,
		LimitFloor:          *limitFloor,
		LimitTarget:         *limitTarget,
		Brownout:            *brownout,
		TenantWeights:       weights,
		DefaultTenantWeight: *tenantDefW,
		TenantQuotas:        quotas,
		TenantQueueDepth:    *tenantDepth,
		MaxTenants:          *maxTenants,
		ComputeDelay:        *computeHold,
	}); err != nil {
		log.Fatal(err)
	}
	sys.SetAdminToken(*adminToken)
	// An HTTP drain that asks for exit funnels into the same graceful
	// path as a signal.
	drainCh := make(chan struct{})
	sys.OnDrain(func() { close(drainCh) })

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: *traceSample})
	metrics := httpmw.NewMetrics()
	metrics.Register(reg)
	sys.RegisterMetrics(reg)
	resilience.RegisterMetrics(reg)
	obs.RegisterBuildInfo(reg, "passerve")
	obs.RegisterRuntimeMetrics(reg)

	logger := log.New(os.Stderr, "passerve: ", 0)
	mux := http.NewServeMux()
	mux.Handle("/", httpmw.Chain(sys.Handler(),
		httpmw.Recover(logger),
		httpmw.RequestID(),
		httpmw.Trace(tracer, "passerve"),
		httpmw.Logging(logger),
		// The outer backstop prices its Retry-After from the core's
		// queue-drain estimate, like the core's own sheds.
		httpmw.ConcurrencyLimitHint(*concurrency, sys.RetryAfterHint),
		httpmw.Tenant(),
		metrics.Middleware(),
	))
	mux.Handle("/metricsz", reg.HandlerWithJSON(metrics.Handler()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		log.Printf("debug endpoints (pprof, /debug/traces, /metricsz) on %s", *debugAddr)
		go func() {
			if err := obs.ServeDebug(ctx, *debugAddr, obs.DebugMux(reg, tracer, metrics.Handler())); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	log.Printf("serving PAS (base %s) on %s", sys.BaseModel(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("signal received, draining...")
	case <-drainCh:
		log.Printf("drain requested over HTTP, draining...")
	}

	// Flip to draining BEFORE touching the listener: /v1/status must
	// announce the departure while the socket still answers, or routing
	// tiers only learn about it from connection errors.
	sys.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	log.Printf("advertising draining for %s before closing the listener", *drainLinger)
	_ = resilience.SleepContext(shutdownCtx, *drainLinger)
	if err := sys.Quiesce(shutdownCtx); err != nil {
		log.Printf("drain deadline passed with work still in flight: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("shut down cleanly")
}

// parseTenantMap parses "tenant=n,tenant=n" flag values.
func parseTenantMap(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("%q is not tenant=value", pair)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q: value must be a positive integer", pair)
		}
		out[strings.TrimSpace(name)] = n
	}
	return out, nil
}
