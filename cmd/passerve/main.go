// Command passerve exposes a trained PAS model as the plug-and-play HTTP
// service:
//
//	POST /v1/augment {"prompt": "..."}  ->  {"complement": ..., "augmented": ...}
//	GET  /healthz
//
// Usage:
//
//	passerve -model pas-model.json [-addr :8422]
//
// With -model "" (or a missing file and -build), the command builds a
// fresh small PAS in-process, which is convenient for demos.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	pas "repro"
	"repro/internal/httpmw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("passerve: ")

	var (
		model       = flag.String("model", "pas-model.json", "trained model path (from pastrain)")
		addr        = flag.String("addr", ":8422", "listen address")
		build       = flag.Bool("build", false, "ignore -model and build a small PAS in-process")
		concurrency = flag.Int("concurrency", 64, "max in-flight requests")
	)
	flag.Parse()

	var sys *pas.System
	if *build {
		log.Printf("building a fresh PAS (this takes a few seconds)...")
		cfg := pas.DefaultConfig()
		cfg.CorpusSize = 4000
		cfg.ClassifierExamples = 3000
		cfg.Augment.PerCategoryCap = 100
		cfg.Augment.HeavyCategoryCap = 200
		res, err := pas.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys = res.System
	} else {
		var err error
		sys, err = pas.LoadSystem(*model)
		if err != nil {
			log.Fatalf("%v (train one with pastrain, or pass -build)", err)
		}
	}

	metrics := httpmw.NewMetrics()
	logger := log.New(os.Stderr, "passerve: ", 0)
	mux := http.NewServeMux()
	mux.Handle("/", httpmw.Chain(sys.Handler(),
		httpmw.Recover(logger),
		httpmw.RequestID(),
		httpmw.Logging(logger),
		httpmw.ConcurrencyLimit(*concurrency),
		metrics.Middleware(),
	))
	mux.Handle("/metricsz", metrics.Handler())

	log.Printf("serving PAS (base %s) on %s", sys.BaseModel(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
