// Command pasllm serves the simulated LLM roster behind an OpenAI-style
// chat-completions API with BPE usage metering and per-key rate limits —
// the "public LLM API" that the plug-and-play deployment of §3.4 plugs
// PAS in front of.
//
// Usage:
//
//	pasllm [-addr :8423] [-rate 600] [-vocab 2048] [-cache 0]
//
// Endpoints: POST /v1/chat/completions, GET /v1/models, GET /v1/status.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/chatapi"
	"repro/internal/corpus"
	"repro/internal/httpmw"
	"repro/internal/obs"
	"repro/internal/tokenizer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pasllm: ")

	var (
		addr  = flag.String("addr", ":8423", "listen address")
		rate  = flag.Int("rate", 600, "requests per minute per API key (0 = unlimited)")
		vocab = flag.Int("vocab", 2048, "BPE vocabulary size for usage metering")
		cache = flag.Int("cache", 0, "LRU response-cache entries (0 = disabled)")

		debugAddr   = flag.String("debug-addr", "", "separate listener for pprof, /debug/traces and /metricsz (empty disables)")
		traceSample = flag.Int("trace-sample", 1, "head-sample 1 in N traces; errored and slow traces are always kept (negative keeps only those)")
	)
	flag.Parse()

	log.Printf("training %d-token BPE vocabulary for usage metering...", *vocab)
	poolCfg := corpus.DefaultConfig()
	poolCfg.Size = 4000
	pool, err := corpus.Generate(poolCfg)
	if err != nil {
		log.Fatal(err)
	}
	texts := make([]string, len(pool))
	for i, p := range pool {
		texts[i] = p.Text
	}
	tok, err := tokenizer.Train(texts, tokenizer.Config{VocabSize: *vocab, MinPairFreq: 2})
	if err != nil {
		log.Fatal(err)
	}

	server, err := chatapi.NewServer(chatapi.ServerConfig{RatePerMinute: *rate, Tokenizer: tok, CacheSize: *cache})
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: *traceSample})
	metrics := httpmw.NewMetrics()
	metrics.Register(reg)
	server.RegisterMetrics(reg)
	obs.RegisterBuildInfo(reg, "pasllm")
	obs.RegisterRuntimeMetrics(reg)

	logger := log.New(os.Stderr, "pasllm: ", 0)
	mux := http.NewServeMux()
	mux.Handle("/", httpmw.Chain(server.Handler(),
		httpmw.Recover(logger),
		httpmw.RequestID(),
		httpmw.Trace(tracer, "pasllm"),
		httpmw.Logging(logger),
		httpmw.ConcurrencyLimit(128),
		metrics.Middleware(),
	))
	mux.Handle("/metricsz", reg.HandlerWithJSON(metrics.Handler()))

	if *debugAddr != "" {
		log.Printf("debug endpoints (pprof, /debug/traces, /metricsz) on %s", *debugAddr)
		go func() {
			if err := obs.ServeDebug(context.Background(), *debugAddr, obs.DebugMux(reg, tracer, metrics.Handler())); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	log.Printf("serving the model roster on %s", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
