// Command pasbench runs the hot-path benchmark suite
// (internal/benchtrack) and maintains the committed performance
// trajectory, BENCH_hotpath.json.
//
// Usage:
//
//	pasbench [-out BENCH_hotpath.json]            # measure and write
//	pasbench -compare BENCH_hotpath.json          # measure and gate
//	pasbench -list                                # names only
//
// Flags:
//
//	-out FILE         write the measured report as JSON
//	-compare FILE     diff the measured report against the committed
//	                  baseline; exit 1 on regression
//	-bench REGEX      run only matching benchmarks
//	-reps N           repetitions per benchmark (default 5)
//	-max-ops N        cap micro-benchmark ops per rep (CI smoke)
//	-profile-dir DIR  capture per-benchmark CPU/heap pprof profiles
//	-tol-latency F    allowed fractional latency growth (default 0.75)
//	-tol-alloc F      allowed fractional allocs/op growth (default 0.25)
//	-iqr-mult F       baseline-IQR multiplier in the noise band (default 3)
//
// Exit status: 0 clean (or improved), 1 regression (or a benchmark
// missing against the baseline), 2 operational failure (bad flags,
// unreadable baseline, schema mismatch, benchmark error).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/benchtrack"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pasbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "", "write the measured report JSON to this file")
		compare    = fs.String("compare", "", "baseline report to gate against (exit 1 on regression)")
		benchRE    = fs.String("bench", "", "run only benchmarks matching this regexp")
		reps       = fs.Int("reps", 5, "repetitions per benchmark")
		maxOps     = fs.Int("max-ops", 0, "cap micro-benchmark ops per rep (0 = declared counts)")
		profileDir = fs.String("profile-dir", "", "write per-benchmark CPU/heap pprof profiles here")
		tolLatency = fs.Float64("tol-latency", 0, "allowed fractional latency growth (0 = default 0.75)")
		tolAlloc   = fs.Float64("tol-alloc", 0, "allowed fractional allocs/op growth (0 = default 0.25)")
		iqrMult    = fs.Float64("iqr-mult", 0, "baseline-IQR multiplier in the noise band (0 = default 3)")
		list       = fs.Bool("list", false, "list registered benchmarks and exit")
		quiet      = fs.Bool("q", false, "suppress per-rep progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := benchtrack.Suite()
	if *list {
		for _, b := range suite {
			fmt.Fprintln(stdout, b.Name)
		}
		return 0
	}

	var filter *regexp.Regexp
	if *benchRE != "" {
		re, err := regexp.Compile(*benchRE)
		if err != nil {
			fmt.Fprintf(stderr, "pasbench: bad -bench regexp: %v\n", err)
			return 2
		}
		filter = re
	}
	if *profileDir != "" {
		if err := os.MkdirAll(*profileDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "pasbench: %v\n", err)
			return 2
		}
	}

	opts := benchtrack.Options{
		Reps:       *reps,
		Filter:     filter,
		MaxOps:     *maxOps,
		ProfileDir: *profileDir,
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	report, err := benchtrack.Run(suite, opts)
	if err != nil {
		fmt.Fprintf(stderr, "pasbench: %v\n", err)
		return 2
	}

	for _, r := range report.Benchmarks {
		fmt.Fprintf(stdout, "%-24s p50=%9.0fns p99=%9.0fns qps=%10.0f allocs/op=%7.2f bytes/op=%9.0f\n",
			r.Name, r.P50Ns, r.P99Ns, r.QPS, r.AllocsPerOp, r.BytesPerOp)
	}

	if *out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "pasbench: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "pasbench: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "pasbench: report written to %s\n", *out)
	}

	if *compare == "" {
		return 0
	}
	blob, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintf(stderr, "pasbench: reading baseline: %v\n", err)
		return 2
	}
	var baseline benchtrack.Report
	if err := json.Unmarshal(blob, &baseline); err != nil {
		fmt.Fprintf(stderr, "pasbench: decoding baseline %s: %v\n", *compare, err)
		return 2
	}
	deltas, regressed, err := benchtrack.Compare(baseline, report, benchtrack.Tolerance{
		LatencyFrac: *tolLatency,
		AllocFrac:   *tolAlloc,
		IQRMult:     *iqrMult,
	})
	if err != nil {
		if errors.Is(err, benchtrack.ErrSchemaMismatch) {
			fmt.Fprintf(stderr, "pasbench: %v (regenerate the baseline with -out)\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "pasbench: %v\n", err)
		return 2
	}
	for _, d := range deltas {
		fmt.Fprintf(stdout, "%-24s %s\n", d.Name, d.Verdict)
		for _, line := range d.Details {
			fmt.Fprintf(stdout, "    %s\n", line)
		}
	}
	if regressed {
		fmt.Fprintf(stderr, "pasbench: REGRESSION against %s\n", *compare)
		return 1
	}
	return 0
}
