package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchtrack"
)

// fastArgs keeps CLI tests sub-second: one rep of one micro benchmark
// at a few hundred ops.
func fastArgs(extra ...string) []string {
	return append([]string{"-q", "-reps", "1", "-max-ops", "500", "-bench", "^serving_key$"}, extra...)
}

func TestRunMeasureAndGateOK(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_hotpath.json")

	var out, errOut strings.Builder
	if code := run(fastArgs("-out", baseline), &out, &errOut); code != 0 {
		t.Fatalf("measure run exited %d: %s", code, errOut.String())
	}
	blob, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchtrack.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if rep.SchemaVersion != benchtrack.SchemaVersion {
		t.Fatalf("schema_version = %d, want %d", rep.SchemaVersion, benchtrack.SchemaVersion)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "serving_key" {
		t.Fatalf("unexpected benchmarks: %+v", rep.Benchmarks)
	}

	// Re-measuring against our own fresh numbers must pass the gate.
	out.Reset()
	errOut.Reset()
	if code := run(fastArgs("-compare", baseline), &out, &errOut); code != 0 {
		t.Fatalf("self-compare exited %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "serving_key") {
		t.Errorf("compare output missing delta line:\n%s", out.String())
	}
}

// The CI-gate acceptance path: a baseline that claims the hot path
// used to be 10x faster (an injected regression from the gate's point
// of view) must exit 1.
func TestRunGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_hotpath.json")

	var out, errOut strings.Builder
	if code := run(fastArgs("-out", baseline), &out, &errOut); code != 0 {
		t.Fatalf("measure run exited %d: %s", code, errOut.String())
	}
	blob, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchtrack.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Benchmarks {
		rep.Benchmarks[i].P50Ns /= 10
		rep.Benchmarks[i].P99Ns /= 10
		rep.Benchmarks[i].P50IQRNs = 0
		rep.Benchmarks[i].P99IQRNs = 0
	}
	doctored, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, doctored, 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errOut.Reset()
	code := run(fastArgs("-compare", baseline), &out, &errOut)
	if code != 1 {
		t.Fatalf("gate exited %d against a 10x-faster baseline, want 1\n%s%s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "regression") {
		t.Errorf("gate output does not name the regression:\n%s", out.String())
	}
}

func TestRunOperationalFailures(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder

	// Missing baseline file.
	if code := run(fastArgs("-compare", filepath.Join(dir, "nope.json")), &out, &errOut); code != 2 {
		t.Errorf("missing baseline exited %d, want 2", code)
	}

	// Schema mismatch.
	baseline := filepath.Join(dir, "old.json")
	old := benchtrack.Report{SchemaVersion: benchtrack.SchemaVersion + 1,
		Benchmarks: []benchtrack.Result{{Name: "serving_key"}}}
	blob, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run(fastArgs("-compare", baseline), &out, &errOut); code != 2 {
		t.Errorf("schema mismatch exited %d, want 2", code)
	} else if !strings.Contains(errOut.String(), "schema") {
		t.Errorf("schema mismatch not named: %s", errOut.String())
	}

	// Bad -bench regexp.
	if code := run([]string{"-bench", "("}, &out, &errOut); code != 2 {
		t.Errorf("bad regexp exited %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"serving_key", "cached_augment", "singleflight_miss",
		"degraded_breaker_open", "ring_owner", "loadgen_cluster"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list missing %s:\n%s", want, out.String())
		}
	}
}
