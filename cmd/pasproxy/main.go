// Command pasproxy runs PAS as a transparent reverse proxy in front of
// any OpenAI-style chat-completions endpoint: clients keep their SDKs and
// simply point at the proxy, and every request's final user message gains
// a complementary prompt on the way through.
//
// Usage:
//
//	pasproxy -model pas-model.json -upstream http://localhost:8423 [-addr :8424]
//
// Pair it with cmd/pasllm as the upstream for a fully local demo.
//
// Augmentation runs through the same serving core as cmd/passerve —
// result cache (-cache-size, -cache-ttl), single-flight dedup, bounded
// admission queue (-max-inflight, -queue-depth, -queue-wait) — plus
// shed-retry (-retries, -retry-budget) behind a circuit breaker
// (-breaker-threshold, -breaker-cooldown). With -degrade (default on)
// an augmentation the core still cannot serve is forwarded un-augmented
// — flagged X-PAS-Degraded and counted in /v1/stats — so a PAS-side
// failure never turns into a user-visible 5xx; upstream errors, 4xx
// included, always pass through verbatim. The core's snapshot is served
// locally at GET /v1/stats (all other paths forward to the upstream).
// SIGINT/SIGTERM drain in-flight requests.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	pas "repro"
	"repro/internal/httpmw"
	"repro/internal/obs"
	"repro/internal/resilience"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pasproxy: ")

	var (
		model       = flag.String("model", "pas-model.json", "trained PAS model (from pastrain)")
		upstream    = flag.String("upstream", "http://localhost:8423", "chat-completions endpoint to front")
		addr        = flag.String("addr", ":8424", "listen address")
		cacheSize   = flag.Int("cache-size", 4096, "complement result cache entries (negative disables)")
		cacheTTL    = flag.Duration("cache-ttl", 0, "result cache TTL (0 = no expiry; sound for a fixed model)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrent complement computations")
		queueDepth  = flag.Int("queue-depth", 256, "max requests waiting for a computation slot (0 = shed instantly)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max wait for a slot before shedding with 503")
		retries     = flag.Int("retries", 1, "re-attempts for a shed complement computation (0 disables)")
		retryBudget = flag.Duration("retry-budget", 500*time.Millisecond, "total time budget for the retry loop, sleeps included")
		breaker     = flag.Int("breaker-threshold", 8, "consecutive shed computations before the augment breaker opens (0 disables)")
		cooldown    = flag.Duration("breaker-cooldown", 2*time.Second, "breaker open->half-open window")
		degrade     = flag.Bool("degrade", true, "fail open: forward the un-augmented prompt instead of answering 503 when augmentation sheds (flagged X-PAS-Degraded)")
		debugAddr   = flag.String("debug-addr", "", "separate listener for pprof, /debug/traces and /metricsz (empty disables)")
		traceSample = flag.Int("trace-sample", 1, "head-sample 1 in N traces; errored and slow traces are always kept (negative keeps only those)")
	)
	flag.Parse()

	sys, err := pas.LoadSystem(*model)
	if err != nil {
		log.Fatalf("%v (train one with pastrain)", err)
	}
	if err := sys.EnableServing(pas.ServingConfig{
		CacheSize:        *cacheSize,
		CacheTTL:         *cacheTTL,
		MaxInFlight:      *maxInflight,
		QueueDepth:       *queueDepth,
		QueueWait:        *queueWait,
		Retries:          *retries,
		RetryBudget:      *retryBudget,
		BreakerThreshold: *breaker,
		BreakerCooldown:  *cooldown,
		Degrade:          *degrade,
	}); err != nil {
		log.Fatal(err)
	}
	proxy, err := pas.NewProxy(sys, *upstream)
	if err != nil {
		log.Fatal(err)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: *traceSample})
	metrics := httpmw.NewMetrics()
	metrics.Register(reg)
	sys.RegisterMetrics(reg)
	resilience.RegisterMetrics(reg)

	logger := log.New(os.Stderr, "pasproxy: ", 0)
	mux := http.NewServeMux()
	mux.Handle("/", httpmw.Chain(proxy,
		httpmw.Recover(logger),
		httpmw.RequestID(),
		httpmw.Trace(tracer, "pasproxy"),
		httpmw.Logging(logger),
		metrics.Middleware(),
	))
	// Served locally, not proxied: the serving-core snapshot and the
	// unified metrics (Prometheus text; ?format=json for the old shape).
	mux.Handle("/v1/stats", sys.StatsHandler())
	mux.Handle("/metricsz", reg.HandlerWithJSON(metrics.Handler()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		log.Printf("debug endpoints (pprof, /debug/traces, /metricsz) on %s", *debugAddr)
		go func() {
			if err := obs.ServeDebug(ctx, *debugAddr, obs.DebugMux(reg, tracer, metrics.Handler())); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	log.Printf("augmenting traffic to %s on %s (PAS base %s)", *upstream, *addr, sys.BaseModel())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("signal received, draining in-flight requests...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		log.Printf("shut down cleanly")
	}
}
