// Command pasproxy runs PAS as a transparent reverse proxy in front of
// any OpenAI-style chat-completions endpoint: clients keep their SDKs and
// simply point at the proxy, and every request's final user message gains
// a complementary prompt on the way through.
//
// Usage:
//
//	pasproxy -model pas-model.json -upstream http://localhost:8423 [-addr :8424]
//
// Pair it with cmd/pasllm as the upstream for a fully local demo.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	pas "repro"
	"repro/internal/httpmw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pasproxy: ")

	var (
		model    = flag.String("model", "pas-model.json", "trained PAS model (from pastrain)")
		upstream = flag.String("upstream", "http://localhost:8423", "chat-completions endpoint to front")
		addr     = flag.String("addr", ":8424", "listen address")
	)
	flag.Parse()

	sys, err := pas.LoadSystem(*model)
	if err != nil {
		log.Fatalf("%v (train one with pastrain)", err)
	}
	proxy, err := pas.NewProxy(sys, *upstream)
	if err != nil {
		log.Fatal(err)
	}

	metrics := httpmw.NewMetrics()
	logger := log.New(os.Stderr, "pasproxy: ", 0)
	mux := http.NewServeMux()
	mux.Handle("/", httpmw.Chain(proxy,
		httpmw.Recover(logger),
		httpmw.RequestID(),
		httpmw.Logging(logger),
		metrics.Middleware(),
	))
	mux.Handle("/metricsz", metrics.Handler())

	log.Printf("augmenting traffic to %s on %s (PAS base %s)", *upstream, *addr, sys.BaseModel())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
