// Command pasproxy runs PAS as a transparent reverse proxy in front of
// any OpenAI-style chat-completions endpoint: clients keep their SDKs and
// simply point at the proxy, and every request's final user message gains
// a complementary prompt on the way through.
//
// Usage (single node — augmentation runs in-process):
//
//	pasproxy -model pas-model.json -upstream http://localhost:8423 [-addr :8424]
//
// Usage (cluster — augmentation routed across a passerve fleet):
//
//	pasproxy -upstream http://localhost:8423 \
//	         -replicas http://localhost:8431,http://localhost:8432,http://localhost:8433
//
// Pair it with cmd/pasllm as the upstream for a fully local demo.
//
// In single-node mode augmentation runs through the same serving core as
// cmd/passerve — result cache (-cache-size, -cache-ttl), single-flight
// dedup, bounded admission queue (-max-inflight, -queue-depth,
// -queue-wait) — plus shed-retry (-retries, -retry-budget) behind a
// circuit breaker (-breaker-threshold, -breaker-cooldown).
//
// With -replicas the proxy instead routes each augmentation to the
// replica owning its cache key on a consistent-hash ring (-vnodes
// virtual nodes), so repeated prompts always warm the same replica's
// cache. Replica health is probed at /v1/status (-probe-interval,
// -probe-timeout); a member failing -down-after consecutive checks is
// evicted from the ring — moving only its own keys — and rejoins on
// recovery. A replica announcing "draining" is routed around without
// any failure bookkeeping and rejoins when its status reads ok again.
// -hedge races slow owners against their ring successor.
// GET /metricsz/cluster scrapes and merges every member's exposition.
// The fleet is reshaped at runtime through /v1/cluster/replicas
// (GET/POST/DELETE), enabled by -admin-token.
//
// With -degrade (default on) an augmentation the serving tier cannot
// deliver is forwarded un-augmented — flagged X-PAS-Degraded and counted
// in /v1/stats — so a PAS-side failure never turns into a user-visible
// 5xx; upstream errors, 4xx included, always pass through verbatim.
// SIGINT/SIGTERM drain in-flight requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	pas "repro"
	"repro/internal/httpmw"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/ring"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pasproxy: ")

	var (
		model       = flag.String("model", "pas-model.json", "trained PAS model (from pastrain); unused with -replicas")
		upstream    = flag.String("upstream", "http://localhost:8423", "chat-completions endpoint to front (bare http(s)://host[:port])")
		addr        = flag.String("addr", ":8424", "listen address")
		cacheSize   = flag.Int("cache-size", 4096, "complement result cache entries (negative disables)")
		cacheTTL    = flag.Duration("cache-ttl", 0, "result cache TTL (0 = no expiry; sound for a fixed model)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrent complement computations (the adaptive limiter's ceiling with -adaptive-limit)")
		adaptive    = flag.Bool("adaptive-limit", false, "replace the static in-flight cap with an AIMD limiter (-max-inflight becomes the ceiling); single-node mode only")
		limitFloor  = flag.Int("limit-floor", 1, "adaptive limiter's lower clamp")
		limitTarget = flag.Duration("limit-target", 0, "computation latency below which the adaptive limit grows (0 = any success grows it)")
		brownout    = flag.Bool("brownout", false, "arm the degradation ladder (cheap complement, then raw passthrough, before shedding); single-node mode only")
		tenantW     = flag.String("tenant-weights", "", "fair-share weights as tenant=w,tenant=w; single-node mode only")
		tenantDefW  = flag.Int("default-tenant-weight", 1, "fair-share weight of unlisted tenants")
		tenantQuota = flag.String("tenant-quotas", "", "per-tenant concurrent-computation caps as tenant=n,tenant=n; single-node mode only")
		maxTenants  = flag.Int("max-tenants", 0, "bound on tracked tenants; ids beyond it pool into an overflow tenant (0 = default)")
		queueDepth  = flag.Int("queue-depth", 256, "max requests waiting for a computation slot (0 = shed instantly)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max wait for a slot before shedding with 503")
		retries     = flag.Int("retries", 1, "re-attempts for a shed complement computation (0 disables)")
		retryBudget = flag.Duration("retry-budget", 500*time.Millisecond, "total time budget for the retry loop, sleeps included")
		breaker     = flag.Int("breaker-threshold", 8, "consecutive failures before a breaker opens (serving core, or per-replica with -replicas; 0 disables)")
		cooldown    = flag.Duration("breaker-cooldown", 2*time.Second, "breaker open->half-open window")
		degrade     = flag.Bool("degrade", true, "fail open: forward the un-augmented prompt instead of answering 503 when augmentation sheds (flagged X-PAS-Degraded)")
		debugAddr   = flag.String("debug-addr", "", "separate listener for pprof, /debug/traces and /metricsz (empty disables)")
		traceSample = flag.Int("trace-sample", 1, "head-sample 1 in N traces; errored and slow traces are always kept (negative keeps only those)")

		// Cluster mode.
		replicas      = flag.String("replicas", "", "comma-separated passerve base URLs; set to route augmentations across a fleet by consistent hash")
		vnodes        = flag.Int("vnodes", ring.DefaultVNodes, "virtual nodes per replica on the routing ring")
		hedge         = flag.Bool("hedge", false, "hedge slow owner replicas against their ring successor")
		hedgeMin      = flag.Duration("hedge-min", 20*time.Millisecond, "lower clamp on the adaptive hedge delay")
		hedgeMax      = flag.Duration("hedge-max", 2*time.Second, "upper clamp on the adaptive hedge delay")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "target spacing between health probes of each replica")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "timeout for one health probe")
		downAfter     = flag.Int("down-after", 3, "consecutive failures that evict a replica from the ring")
		ringTimeout   = flag.Duration("ring-timeout", 5*time.Second, "timeout for one augmentation attempt against one replica")
		adminToken    = flag.String("admin-token", "", "token for the /v1/cluster/replicas membership API (empty keeps it disabled)")
	)
	flag.Parse()

	// Fail configuration errors at startup with a clear message, not as
	// the first request's 502: the upstream must be a bare absolute
	// http(s) URL (the proxy only rewrites scheme/host, so a path here
	// would be silently dropped), and every replica likewise.
	if _, err := ring.NormalizeReplicas([]string{*upstream}); err != nil {
		log.Fatalf("-upstream %q: must be a bare absolute http(s)://host[:port] URL", *upstream)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: *traceSample})
	metrics := httpmw.NewMetrics()
	metrics.Register(reg)
	resilience.RegisterMetrics(reg)
	obs.RegisterBuildInfo(reg, "pasproxy")
	obs.RegisterRuntimeMetrics(reg)

	mux := http.NewServeMux()
	var proxy *pas.Proxy

	if *replicas != "" {
		var urls []string
		for _, r := range strings.Split(*replicas, ",") {
			if r = strings.TrimSpace(r); r != "" {
				urls = append(urls, r)
			}
		}
		client, err := ring.NewClient(ring.Config{
			Replicas:         urls,
			VNodes:           *vnodes,
			RequestTimeout:   *ringTimeout,
			BreakerThreshold: *breaker,
			BreakerCooldown:  *cooldown,
			Hedge:            *hedge,
			HedgeMin:         *hedgeMin,
			HedgeMax:         *hedgeMax,
			Degrade:          *degrade,
			Health: ring.HealthConfig{
				ProbeInterval: *probeInterval,
				ProbeTimeout:  *probeTimeout,
				DownAfter:     *downAfter,
			},
		})
		if err != nil {
			log.Fatalf("-replicas: %v", err)
		}
		client.Start(ctx)
		client.RegisterMetrics(reg)
		if proxy, err = pas.NewProxyWith(client, *upstream); err != nil {
			log.Fatal(err)
		}
		mux.Handle("/v1/stats", client.StatsHandler())
		mux.Handle("/metricsz/cluster", client.MetricsRollup(reg, 0))
		mux.Handle("/v1/cluster/replicas", client.AdminHandler(*adminToken))
		if *adminToken != "" {
			log.Printf("membership admin API enabled at /v1/cluster/replicas")
		}
		log.Printf("cluster mode: %d replicas, %d vnodes, hedging %v", len(urls), *vnodes, *hedge)
	} else {
		sys, err := pas.LoadSystem(*model)
		if err != nil {
			log.Fatalf("%v (train one with pastrain)", err)
		}
		weights, err := parseTenantMap(*tenantW)
		if err != nil {
			log.Fatalf("-tenant-weights: %v", err)
		}
		quotas, err := parseTenantMap(*tenantQuota)
		if err != nil {
			log.Fatalf("-tenant-quotas: %v", err)
		}
		if err := sys.EnableServing(pas.ServingConfig{
			CacheSize:           *cacheSize,
			CacheTTL:            *cacheTTL,
			MaxInFlight:         *maxInflight,
			QueueDepth:          *queueDepth,
			QueueWait:           *queueWait,
			Retries:             *retries,
			RetryBudget:         *retryBudget,
			BreakerThreshold:    *breaker,
			BreakerCooldown:     *cooldown,
			Degrade:             *degrade,
			AdaptiveLimit:       *adaptive,
			LimitFloor:          *limitFloor,
			LimitTarget:         *limitTarget,
			Brownout:            *brownout,
			TenantWeights:       weights,
			DefaultTenantWeight: *tenantDefW,
			TenantQuotas:        quotas,
			MaxTenants:          *maxTenants,
		}); err != nil {
			log.Fatal(err)
		}
		sys.RegisterMetrics(reg)
		if proxy, err = pas.NewProxy(sys, *upstream); err != nil {
			log.Fatal(err)
		}
		mux.Handle("/v1/stats", sys.StatsHandler())
		log.Printf("single-node mode (PAS base %s)", sys.BaseModel())
	}

	logger := log.New(os.Stderr, "pasproxy: ", 0)
	mux.Handle("/", httpmw.Chain(proxy,
		httpmw.Recover(logger),
		httpmw.RequestID(),
		httpmw.Trace(tracer, "pasproxy"),
		httpmw.Logging(logger),
		// Tags the request context with the caller's tenant so the
		// single-node serving core admits it through the fair-share
		// queue (and access logs carry the label in both modes).
		httpmw.Tenant(),
		metrics.Middleware(),
	))
	// Served locally, not proxied: the unified metrics (Prometheus text;
	// ?format=json for the old shape). /v1/stats is mounted per mode.
	mux.Handle("/metricsz", reg.HandlerWithJSON(metrics.Handler()))

	if *debugAddr != "" {
		log.Printf("debug endpoints (pprof, /debug/traces, /metricsz) on %s", *debugAddr)
		go func() {
			if err := obs.ServeDebug(ctx, *debugAddr, obs.DebugMux(reg, tracer, metrics.Handler())); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	log.Printf("augmenting traffic to %s on %s", *upstream, *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("signal received, draining in-flight requests...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		log.Printf("shut down cleanly")
	}
}

// parseTenantMap parses "tenant=n,tenant=n" flag values.
func parseTenantMap(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("%q is not tenant=value", pair)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q: value must be a positive integer", pair)
		}
		out[strings.TrimSpace(name)] = n
	}
	return out, nil
}
