// Command pasverify is the reproduction check: it re-runs the full
// experiment suite at quick scale and compares the machine-readable
// bundle against a previously saved expected file, byte for byte. The
// entire stack is deterministic, so any difference means the code (not
// the luck) changed — the check a reproduction CI would run on every
// commit.
//
// Usage:
//
//	pasverify -record expected_quick.json     # save the current bundle
//	pasverify -expected expected_quick.json   # re-run and compare
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/evalbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pasverify: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pasverify", flag.ContinueOnError)
	var (
		record   = fs.String("record", "", "write the quick-scale results bundle to this file and exit")
		expected = fs.String("expected", "", "compare a fresh quick-scale run against this bundle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*record == "") == (*expected == "") {
		return fmt.Errorf("exactly one of -record or -expected is required")
	}
	var want []byte
	if *expected != "" {
		// Read before the expensive run so a bad path fails fast.
		var err error
		if want, err = os.ReadFile(*expected); err != nil {
			return err
		}
	}

	log.Printf("running the quick-scale experiment suite...")
	art, err := evalbench.Prepare(evalbench.QuickOptions())
	if err != nil {
		return err
	}
	results, err := art.RunAll(40)
	if err != nil {
		return err
	}
	var fresh bytes.Buffer
	if err := results.WriteJSON(&fresh); err != nil {
		return err
	}

	if *record != "" {
		if err := os.WriteFile(*record, fresh.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "recorded %d bytes to %s\n", fresh.Len(), *record)
		return nil
	}

	if !bytes.Equal(want, fresh.Bytes()) {
		return fmt.Errorf("results differ from %s (%d vs %d bytes) — the pipeline's behaviour changed",
			*expected, len(want), fresh.Len())
	}
	fmt.Fprintf(w, "OK: results match %s exactly\n", *expected)
	return nil
}
