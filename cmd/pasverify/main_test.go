package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordThenVerifyRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two quick-scale suite runs take ~1 minute")
	}
	path := filepath.Join(t.TempDir(), "expected.json")
	var buf bytes.Buffer
	if err := run([]string{"-record", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recorded") {
		t.Fatalf("record output: %s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-expected", path}, &buf); err != nil {
		t.Fatalf("verify against own recording failed: %v", err)
	}
	if !strings.Contains(buf.String(), "OK") {
		t.Fatalf("verify output: %s", buf.String())
	}

	// Tamper with the expectation: verification must fail loudly.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, ' '), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-expected", path}, &buf); err == nil {
		t.Fatal("tampered expectation should fail verification")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("neither flag should fail")
	}
	if err := run([]string{"-record", "a", "-expected", "b"}, &buf); err == nil {
		t.Error("both flags should fail")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestVerifyMissingExpectedFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite")
	}
	var buf bytes.Buffer
	if err := run([]string{"-expected", filepath.Join(t.TempDir(), "none.json")}, &buf); err == nil {
		t.Fatal("missing expected file should fail")
	}
}
