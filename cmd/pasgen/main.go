// Command pasgen runs the PAS data pipeline end to end — synthetic corpus,
// §3.1 curation, §3.2 complementary-pair generation with selection and
// regeneration — and writes the resulting dataset as JSONL.
//
// With -checkpoint-dir the build is crash-safe: completed stages are
// snapshotted and the generation loop journals every finished item, so
// a failed or killed run retains a checkpoint and prints the command
// that resumes it at the exact item it died on.
//
// Usage:
//
//	pasgen -out pairs.jsonl [-corpus 20000] [-cap 500] [-seed 1] [-no-selection]
//	       [-checkpoint-dir ckpt/] [-resume] [-workers 4] [-debug-addr :9090]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/datastats"
	"repro/internal/facet"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pasgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the command with the given arguments, writing the report
// to w. Split from main for testability.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pasgen", flag.ContinueOnError)
	var (
		out           = fs.String("out", "pairs.jsonl", "output JSONL path")
		corpusSize    = fs.Int("corpus", 20000, "raw synthetic corpus size")
		cap           = fs.Int("cap", 500, "max pairs per category (0 = unlimited)")
		seed          = fs.Int64("seed", 1, "generation seed")
		noSelection   = fs.Bool("no-selection", false, "disable the selection/regeneration stage (Table 5 ablation)")
		stats         = fs.Bool("stats", false, "print the §3.3 dataset analysis report")
		checkpointDir = fs.String("checkpoint-dir", "", "directory for crash-safe stage snapshots and the generation journal")
		resume        = fs.Bool("resume", false, "resume the build in -checkpoint-dir (refused if config or seed changed)")
		workers       = fs.Int("workers", 4, "concurrent generation workers (output is identical for any count)")
		debugAddr     = fs.String("debug-addr", "", "serve /metricsz build progress and pprof on this address while building")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *checkpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}

	cfg := pipeline.DefaultConfig()
	cfg.CorpusSize = *corpusSize
	cfg.Seed = *seed
	cfg.Augment.PerCategoryCap = *cap
	cfg.Augment.HeavyCategoryCap = 3 * (*cap)
	cfg.Augment.Selection = !*noSelection
	cfg.Augment.Workers = *workers

	prog := &pipeline.Progress{}
	opt := pipeline.BuildOptions{
		CheckpointDir: *checkpointDir,
		Resume:        *resume,
		Progress:      prog,
	}

	if *debugAddr != "" {
		reg := obs.NewRegistry()
		reg.RegisterCollector(prog.Collect)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			if err := obs.ServeDebug(ctx, *debugAddr, obs.DebugMux(reg, nil, nil)); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	res, err := pipeline.BuildWithCheckpoint(cfg, opt)
	if err != nil {
		return buildFailure(w, err, *checkpointDir, args)
	}
	if err := res.Dataset.SaveFile(*out); err != nil {
		return err
	}

	st := res.CurationStats
	fmt.Fprintf(w, "curation: %d raw -> %d after dedup (-%d dups) -> %d after quality filter (junk dropped %d, leaked %d)\n",
		st.Input, st.AfterDedup, st.DupCollapsed, st.AfterFilter, st.DroppedJunk, st.LeakedJunk)
	as := res.AugmentStats
	fmt.Fprintf(w, "augment: %d prompts, %d rejected by critic, %d regenerated, %d gave up, %d quarantined, %d residual defects\n",
		as.Prompts, as.Rejected, as.Regenerated, as.GaveUp, as.Quarantined, as.ResidualDefects)
	if len(as.RegenByCategory) > 0 {
		fmt.Fprint(w, "regenerations by category:")
		for _, c := range facet.Categories() {
			if n := as.RegenByCategory[c.String()]; n > 0 {
				fmt.Fprintf(w, " %s=%d", c.String(), n)
			}
		}
		fmt.Fprintln(w)
	}
	for _, q := range res.Quarantine {
		fmt.Fprintf(w, "quarantined: item %d (%s): %s\n", q.Index, q.Category, q.Reason)
	}
	fmt.Fprintf(w, "dataset: %d pairs -> %s\n", res.Dataset.Len(), *out)
	counts := res.Dataset.CategoryCounts()
	for _, c := range facet.Categories() {
		fmt.Fprintf(w, "  %-14s %d\n", c.String(), counts[c])
	}
	if *stats {
		rep, err := datastats.Analyze(res.Dataset)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, rep.String())
	}
	return nil
}

// buildFailure reports a failed build. When a checkpoint directory is
// in play the partial state is retained and the exact resume command
// is printed, so a crash mid-build leaves something actionable; a
// stale-fingerprint refusal speaks for itself and gets no resume hint.
func buildFailure(w io.Writer, err error, dir string, args []string) error {
	if dir == "" || strings.Contains(err.Error(), "different build") {
		return err
	}
	fmt.Fprintf(w, "build failed: %v\n", err)
	fmt.Fprintf(w, "partial checkpoint retained in %s\n", dir)
	fmt.Fprintf(w, "resume with: pasgen %s\n", strings.Join(resumeArgs(args), " "))
	return err
}

// resumeArgs reconstructs the invocation with -resume prepended
// (once), preserving every other flag so the fingerprint matches.
func resumeArgs(args []string) []string {
	out := []string{"-resume"}
	for _, a := range args {
		if a == "-resume" || a == "--resume" {
			continue
		}
		out = append(out, a)
	}
	return out
}
