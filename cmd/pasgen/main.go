// Command pasgen runs the PAS data pipeline end to end — synthetic corpus,
// §3.1 curation, §3.2 complementary-pair generation with selection and
// regeneration — and writes the resulting dataset as JSONL.
//
// Usage:
//
//	pasgen -out pairs.jsonl [-corpus 20000] [-cap 500] [-seed 1] [-no-selection]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/datastats"
	"repro/internal/facet"
	"repro/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pasgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the command with the given arguments, writing the report
// to w. Split from main for testability.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pasgen", flag.ContinueOnError)
	var (
		out         = fs.String("out", "pairs.jsonl", "output JSONL path")
		corpusSize  = fs.Int("corpus", 20000, "raw synthetic corpus size")
		cap         = fs.Int("cap", 500, "max pairs per category (0 = unlimited)")
		seed        = fs.Int64("seed", 1, "generation seed")
		noSelection = fs.Bool("no-selection", false, "disable the selection/regeneration stage (Table 5 ablation)")
		stats       = fs.Bool("stats", false, "print the §3.3 dataset analysis report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := pipeline.DefaultConfig()
	cfg.CorpusSize = *corpusSize
	cfg.Seed = *seed
	cfg.Augment.PerCategoryCap = *cap
	cfg.Augment.HeavyCategoryCap = 3 * (*cap)
	cfg.Augment.Selection = !*noSelection

	res, err := pipeline.Build(cfg)
	if err != nil {
		return err
	}
	if err := res.Dataset.SaveFile(*out); err != nil {
		return err
	}

	st := res.CurationStats
	fmt.Fprintf(w, "curation: %d raw -> %d after dedup (-%d dups) -> %d after quality filter (junk dropped %d, leaked %d)\n",
		st.Input, st.AfterDedup, st.DupCollapsed, st.AfterFilter, st.DroppedJunk, st.LeakedJunk)
	as := res.AugmentStats
	fmt.Fprintf(w, "augment: %d prompts, %d rejected by critic, %d regenerated, %d gave up, %d residual defects\n",
		as.Prompts, as.Rejected, as.Regenerated, as.GaveUp, as.ResidualDefects)
	fmt.Fprintf(w, "dataset: %d pairs -> %s\n", res.Dataset.Len(), *out)
	counts := res.Dataset.CategoryCounts()
	for _, c := range facet.Categories() {
		fmt.Fprintf(w, "  %-14s %d\n", c.String(), counts[c])
	}
	if *stats {
		rep, err := datastats.Analyze(res.Dataset)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, rep.String())
	}
	return nil
}
