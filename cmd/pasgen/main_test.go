package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunSmallPipeline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pairs.jsonl")
	var buf bytes.Buffer
	err := run([]string{"-out", out, "-corpus", "1500", "-cap", "20", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, want := range []string{"curation:", "augment:", "dataset:", "coding"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	d, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Fatal("no pairs written")
	}
	for c, n := range d.CategoryCounts() {
		if limit := 60; n > limit { // heavy cap = 3*20
			t.Errorf("category %v exceeds cap: %d", c, n)
		}
	}
}

func TestRunNoSelectionReportsDefects(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pairs.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-out", out, "-corpus", "1500", "-cap", "20", "-no-selection"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 rejected by critic") {
		t.Fatalf("no-selection run should never reject:\n%s", buf.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-corpus", "not-a-number"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
	if err := run([]string{"-corpus", "0", "-out", filepath.Join(t.TempDir(), "x.jsonl")}, &buf); err == nil {
		t.Fatal("zero corpus should fail")
	}
	if err := run([]string{"-corpus", "100", "-out", "/no/such/dir/x.jsonl"}, &buf); err == nil {
		t.Fatal("unwritable output should fail")
	}
}

func TestRunStatsReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pairs.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-out", out, "-corpus", "1200", "-cap", "15", "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Dataset analysis") {
		t.Fatalf("stats report missing:\n%s", buf.String())
	}
}
