package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunSmallPipeline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pairs.jsonl")
	var buf bytes.Buffer
	err := run([]string{"-out", out, "-corpus", "1500", "-cap", "20", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, want := range []string{"curation:", "augment:", "dataset:", "coding"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	d, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Fatal("no pairs written")
	}
	for c, n := range d.CategoryCounts() {
		if limit := 60; n > limit { // heavy cap = 3*20
			t.Errorf("category %v exceeds cap: %d", c, n)
		}
	}
}

func TestRunNoSelectionReportsDefects(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pairs.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-out", out, "-corpus", "1500", "-cap", "20", "-no-selection"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 rejected by critic") {
		t.Fatalf("no-selection run should never reject:\n%s", buf.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-corpus", "not-a-number"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
	if err := run([]string{"-corpus", "0", "-out", filepath.Join(t.TempDir(), "x.jsonl")}, &buf); err == nil {
		t.Fatal("zero corpus should fail")
	}
	if err := run([]string{"-corpus", "100", "-out", "/no/such/dir/x.jsonl"}, &buf); err == nil {
		t.Fatal("unwritable output should fail")
	}
}

func TestRunStatsReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pairs.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-out", out, "-corpus", "1200", "-cap", "15", "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Dataset analysis") {
		t.Fatalf("stats report missing:\n%s", buf.String())
	}
}

func TestRunCheckpointedResumeIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	out1 := filepath.Join(dir, "fresh.jsonl")
	out2 := filepath.Join(dir, "resumed.jsonl")
	args := []string{"-corpus", "1500", "-cap", "20", "-seed", "3", "-checkpoint-dir", ckpt}

	var buf bytes.Buffer
	if err := run(append(args, "-out", out1), &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(ckpt, "meta.json")); err != nil {
		t.Fatalf("checkpoint not initialised: %v", err)
	}
	buf.Reset()
	if err := run(append(args, "-resume", "-out", out2), &buf); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("resumed dataset differs from the fresh build")
	}
}

func TestRunStaleCheckpointRefusedWithoutResumeHint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	out := filepath.Join(dir, "pairs.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-corpus", "1500", "-cap", "20", "-seed", "3", "-checkpoint-dir", ckpt, "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err := run([]string{"-corpus", "1500", "-cap", "20", "-seed", "4", "-checkpoint-dir", ckpt, "-resume", "-out", out}, &buf)
	if err == nil || !strings.Contains(err.Error(), "different build") {
		t.Fatalf("changed seed should refuse resume, got %v", err)
	}
	if strings.Contains(buf.String(), "resume with:") {
		t.Fatalf("stale refusal must not suggest resuming:\n%s", buf.String())
	}
}

func TestRunResumeRequiresCheckpointDir(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-resume"}, &buf); err == nil {
		t.Fatal("-resume without -checkpoint-dir should fail")
	}
}

func TestBuildFailurePrintsResumeCommand(t *testing.T) {
	var buf bytes.Buffer
	failure := errors.New("boom")
	args := []string{"-corpus", "1500", "-checkpoint-dir", "ckpt", "-resume"}
	if err := buildFailure(&buf, failure, "ckpt", args); err != failure {
		t.Fatalf("error not passed through: %v", err)
	}
	report := buf.String()
	if !strings.Contains(report, "partial checkpoint retained in ckpt") {
		t.Errorf("retention notice missing:\n%s", report)
	}
	if !strings.Contains(report, "resume with: pasgen -resume -corpus 1500 -checkpoint-dir ckpt\n") {
		t.Errorf("resume command wrong (want -resume exactly once):\n%s", report)
	}

	buf.Reset()
	if err := buildFailure(&buf, failure, "", args); err != failure || buf.Len() != 0 {
		t.Errorf("no checkpoint dir should stay silent, wrote:\n%s", buf.String())
	}
}
