package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/rules"
)

func TestBuildSARIF(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:     token.Position{Filename: "/mod/internal/ring/ring.go", Line: 42, Column: 7},
			Rule:    "timerstop",
			Message: "time.Tick leaks its ticker forever",
		},
		{
			Pos:     token.Position{Filename: "/elsewhere/out.go", Line: 1, Column: 1},
			Rule:    "paslint",
			Message: "malformed directive",
		},
	}
	log := buildSARIF(diags, rules.All(), "/mod")

	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "paslint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every registered rule plus the reserved "paslint" id is declared.
	ids := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
		ids[r.ID] = true
	}
	for _, a := range rules.All() {
		if !ids[a.Name] {
			t.Errorf("driver rules missing %q", a.Name)
		}
	}
	if !ids["paslint"] {
		t.Error("driver rules missing the reserved paslint id")
	}

	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "timerstop" || first.Level != "warning" {
		t.Errorf("result 0 = %+v", first)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/ring/ring.go" {
		t.Errorf("in-module path not relativized: %q", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	if out := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; out != "/elsewhere/out.go" {
		t.Errorf("out-of-module path mangled: %q", out)
	}
}

func TestJSONAndSARIFAreExclusive(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "mutually exclusive") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

// TestSARIFCleanRun lints one clean package end to end and checks the
// emitted log parses and carries an empty (non-null) results array.
func TestSARIFCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("loads stdlib sources")
	}
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-C", root, "-sarif", "./internal/textkit"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output not valid JSON: %v\n%s", err, out.String())
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Fatalf("clean run log malformed: %s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte(`"results": []`)) {
		t.Error("results must serialize as [] (code-scanning rejects null)")
	}
}
