// Command paslint runs the PAS static-analysis suite (see
// internal/analysis and internal/analysis/rules) over the module.
//
// Usage:
//
//	paslint [-rules determinism,errwrap] [-json | -sarif] [-list] [packages]
//
// Patterns follow the go tool's shape: ./... (default), ./dir, ./dir/...
// Exit status: 0 clean, 1 findings, 2 operational failure (bad flags,
// unparseable source, type errors).
//
// -json emits the framework's diagnostic array unchanged; -sarif emits
// a SARIF 2.1.0 log (see sarif.go) for code-scanning ingestion. The
// two are mutually exclusive.
//
// Findings are suppressed — one line at a time, with a mandatory reason
// — by directives of the form:
//
//	//paslint:allow <rule>[,<rule>] <reason>
//
// placed at the end of the offending line or alone on the line above.
// Malformed directives are findings themselves and cannot be
// suppressed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/rules"
)

// paslintVersion is reported in SARIF driver metadata; bumped when the
// rule set or a rule's semantics change.
const paslintVersion = "2.0.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ruleList = fs.String("rules", "", "comma-separated rule subset to run (default: all)")
		asJSON   = fs.Bool("json", false, "emit findings as a JSON array")
		asSARIF  = fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
		list     = fs.Bool("list", false, "list registered analyzers and exit")
		dir      = fs.String("C", "", "module root to lint (default: nearest go.mod above the working directory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "paslint: -json and -sarif are mutually exclusive")
		return 2
	}
	analyzers := rules.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *ruleList != "" {
		subset, ok := rules.ByName(*ruleList)
		if !ok || len(subset) == 0 {
			fmt.Fprintf(stderr, "paslint: unknown rule in -rules=%q (try -list)\n", *ruleList)
			return 2
		}
		analyzers = subset
	}
	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(stderr, "paslint: %v\n", err)
			return 2
		}
	}
	// Diagnostics carry absolute paths; the root must be absolute too
	// or -sarif's URI relativization silently degrades (-C . is legal).
	if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.Config{Dir: root}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "paslint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "paslint: %v\n", err)
		return 2
	}
	switch {
	case *asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "paslint: encoding: %v\n", err)
			return 2
		}
	case *asSARIF:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildSARIF(diags, analyzers, root)); err != nil {
			fmt.Fprintf(stderr, "paslint: encoding: %v\n", err)
			return 2
		}
	default:
		cwd, _ := os.Getwd()
		for _, d := range diags {
			name := d.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
					name = rel
				}
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "paslint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory; pass -C <moduleroot>")
		}
		dir = parent
	}
}
