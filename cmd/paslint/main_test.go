package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListShowsEveryRule(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errOut.String())
	}
	for _, rule := range []string{"determinism", "ctxpropagate", "lockheld", "errwrap", "httpbody"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %q:\n%s", rule, out.String())
		}
	}
}

func TestUnknownRuleIsOperationalFailure(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nosuchrule") {
		t.Fatalf("stderr = %q, want the bad rule named", errOut.String())
	}
}

func TestBadFlagIsOperationalFailure(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestLintCleanPackage runs the real pipeline over one small clean
// package and expects a silent exit 0. This is the driver's end-to-end
// smoke test; -short skips it because it type-checks stdlib sources.
func TestLintCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loads stdlib sources")
	}
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-C", root, "-json", "./internal/textkit"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	// -json on a clean run still emits a well-formed (null/empty) array.
	var diags []json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Fatalf("expected no findings, got %d", len(diags))
	}
}
