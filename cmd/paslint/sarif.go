package main

import (
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// SARIF 2.1.0 output (-sarif): the static-analysis interchange format
// GitHub code scanning and most CI annotators ingest. Only the slice
// of the spec paslint produces is modelled — one run, one driver, rule
// metadata from the registry, and one physical location per result.
// The -json flag keeps its original shape; -sarif is additive.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"semanticVersion"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

// buildSARIF converts one lint run's diagnostics. root is the module
// root; file paths under it are emitted relative with forward slashes
// (SARIF URIs), anchored on %SRCROOT% as code-scanning expects.
func buildSARIF(diags []analysis.Diagnostic, analyzers []*analysis.Analyzer, root string) sarifLog {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// Malformed directives are reported under the reserved "paslint"
	// rule id, which no analyzer owns.
	rules = append(rules, sarifRule{ID: "paslint", ShortDescription: sarifMessage{Text: "malformed paslint directive"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(d.Pos.Filename, root),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "paslint", Version: paslintVersion, Rules: rules}},
			Results: results,
		}},
	}
}

// sarifURI renders filename relative to root with forward slashes;
// paths outside root stay absolute (still a valid file URI path).
func sarifURI(filename, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
