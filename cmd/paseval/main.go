// Command paseval regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	paseval -exp table1            # Table 1: PAS vs BPO vs none
//	paseval -exp table2            # Table 2: same-base comparison
//	paseval -exp table3            # Table 3: flexibility matrix
//	paseval -exp table4            # Table 4 + Figure 1(b): human eval
//	paseval -exp table5            # Table 5: selection ablation
//	paseval -exp fig6              # Figure 6: dataset distribution
//	paseval -exp fig7              # Figure 7: data efficiency
//	paseval -exp domain            # §3.3 domain-specialization extension
//	paseval -exp leaderboard       # Bradley-Terry joint ranking
//	paseval -exp cases             # §4.6 case studies
//	paseval -exp all               # everything
//
// -quick shrinks the suites and pools for a fast smoke run; -json FILE
// additionally writes the machine-readable bundle (implies -exp all).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/evalbench"
	"repro/internal/facet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paseval: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// domainPrompts sizes the §3.3 specialization study.
func domainPrompts(quick bool) int {
	if quick {
		return 40
	}
	return 200
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paseval", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id: table1|table2|table3|table4|table5|fig1|fig6|fig7|domain|leaderboard|cases|all")
		quick    = fs.Bool("quick", false, "reduced-scale run (smaller suites and pools)")
		jsonPath = fs.String("json", "", "also write the full machine-readable results bundle to this file (implies -exp all)")
		seed     = fs.Int64("seed", 0, "offset every pipeline seed by this value (robustness sweeps)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := evalbench.DefaultOptions()
	if *quick {
		opt = evalbench.QuickOptions()
	}
	opt.Build.Seed += *seed
	opt.Suite.Seed += *seed
	log.Printf("preparing artifacts (corpus %d, arena %d, alpaca %d)...",
		opt.Build.CorpusSize, opt.Suite.ArenaSize, opt.Suite.AlpacaSize)
	art, err := evalbench.Prepare(opt)
	if err != nil {
		return err
	}

	want := strings.ToLower(*exp)
	if *jsonPath != "" {
		want = "all"
	}
	if want == "all" {
		results, err := art.RunAll(domainPrompts(*quick))
		if err != nil {
			return err
		}
		fmt.Fprint(w, results.String())
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := results.WriteJSON(f); err != nil {
				return err
			}
			log.Printf("wrote JSON bundle to %s", *jsonPath)
		}
		return nil
	}

	switch want {
	case "table1":
		rep, err := art.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
	case "table2":
		rep, err := art.Table2()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
	case "table3":
		fmt.Fprintln(w, art.Table3())
	case "table4", "fig1":
		rep, err := art.HumanStudy()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
	case "table5":
		rep, err := art.Table5()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
	case "fig6":
		fmt.Fprintln(w, art.Figure6())
	case "fig7":
		rep, err := art.Figure7()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
	case "domain":
		rep, err := art.DomainStudy(facet.Coding, domainPrompts(*quick))
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
	case "leaderboard":
		rep, err := art.Leaderboard([]evalbench.Contender{
			{MainModel: "gpt-4-turbo-2024-04-09", APE: art.PASAPE()},
			{MainModel: "gpt-4-turbo-2024-04-09", APE: baselines.None{}},
			{MainModel: "gpt-4-0613", APE: art.PASAPE()},
			{MainModel: "gpt-4-0613", APE: baselines.None{}},
			{MainModel: "gpt-3.5-turbo-1106", APE: baselines.None{}},
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
	case "cases":
		cases, err := art.CaseStudies()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, evalbench.RenderCases(cases))
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
