package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig7", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "bogus", "-quick"}, &buf); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick=notabool"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunAllWithJSONBundle(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick run takes ~30s")
	}
	path := filepath.Join(t.TempDir(), "results.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 5", "Figure 7", "leaderboard"} {
		if !strings.Contains(out, want) {
			t.Errorf("combined output missing %q", want)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bundle map[string]interface{}
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"table1", "table5", "fig7", "domain", "leaderboard", "cases"} {
		if _, ok := bundle[key]; !ok {
			t.Errorf("JSON bundle missing %q", key)
		}
	}
}
