// Command pastrain fine-tunes a PAS model from a JSONL pair dataset
// (typically produced by pasgen) and saves it for serving.
//
// With -checkpoint-dir it reads the dataset straight out of a pasgen
// build checkpoint, and with -resume it reuses the checkpoint's trained
// model snapshot instead of retraining.
//
// Usage:
//
//	pastrain -data pairs.jsonl -out pas-model.json [-base qwen2-7b-chat]
//	pastrain -checkpoint-dir ckpt/ -out pas-model.json [-resume]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/sft"
	"repro/internal/simllm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pastrain: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the command with the given arguments, writing the report
// to w. Split from main for testability.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pastrain", flag.ContinueOnError)
	var (
		data          = fs.String("data", "pairs.jsonl", "training dataset (JSONL)")
		out           = fs.String("out", "pas-model.json", "output model path")
		base          = fs.String("base", simllm.Qwen27B, "base model to fine-tune ("+strings.Join(simllm.Roster(), ", ")+")")
		checkpointDir = fs.String("checkpoint-dir", "", "pasgen checkpoint directory to read the dataset from (overrides -data)")
		resume        = fs.Bool("resume", false, "reuse the checkpoint's trained model snapshot if present instead of retraining")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *checkpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}

	var (
		d   *dataset.Dataset
		err error
	)
	if *checkpointDir != "" {
		d, err = pipeline.LoadCheckpointDataset(*checkpointDir)
	} else {
		d, err = dataset.LoadFile(*data)
	}
	if err != nil {
		return err
	}

	var model *sft.Model
	trained := false
	if *resume {
		m, ok, err := pipeline.LoadCheckpointModel(*checkpointDir)
		if err != nil {
			return err
		}
		if ok {
			model = m
			fmt.Fprintf(w, "reusing trained model snapshot from %s\n", *checkpointDir)
		}
	}
	if model == nil {
		profile, err := simllm.LookupProfile(*base)
		if err != nil {
			return err
		}
		baseModel, err := simllm.New(profile)
		if err != nil {
			return err
		}
		model, err = sft.Train(baseModel, d, sft.DefaultConfig())
		if err != nil {
			return err
		}
		trained = true
	}
	if err := model.SaveFile(*out); err != nil {
		return err
	}
	if trained && *checkpointDir != "" {
		if err := pipeline.SaveCheckpointModel(*checkpointDir, model); err != nil {
			return err
		}
	}
	pol := model.Policy()
	fmt.Fprintf(w, "trained PAS on %s with %d pairs -> %s\n", *base, d.Len(), *out)
	fmt.Fprintf(w, "learned habits: leak %.3f, conflict %.3f, overreach %.3f, trap-directive %.2f, avg facets %.2f\n",
		pol.LeakRate, pol.ConflictRate, pol.OverreachRate, pol.TrapDirective, pol.AvgFacets)
	return nil
}
