package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sft"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	var d dataset.Dataset
	for _, pairs := range dataset.Golden() {
		for _, p := range pairs {
			if err := d.Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "pairs.jsonl")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTrainsAndSaves(t *testing.T) {
	data := writeDataset(t)
	out := filepath.Join(t.TempDir(), "model.json")
	var buf bytes.Buffer
	if err := run([]string{"-data", data, "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trained PAS on qwen2-7b-chat") {
		t.Fatalf("report:\n%s", buf.String())
	}
	m, err := sft.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.BaseName() != "qwen2-7b-chat" {
		t.Fatalf("base = %s", m.BaseName())
	}
	if m.Complement("Write a python function to sort a list.", "x") == "" {
		t.Fatal("trained model produced nothing")
	}
}

func TestRunAlternativeBase(t *testing.T) {
	data := writeDataset(t)
	out := filepath.Join(t.TempDir(), "model.json")
	var buf bytes.Buffer
	if err := run([]string{"-data", data, "-out", out, "-base", "llama-2-7b-instruct"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "llama-2-7b-instruct") {
		t.Fatal("base not reported")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-data", "/no/such/file.jsonl"}, &buf); err == nil {
		t.Error("missing dataset should fail")
	}
	if err := run([]string{"-data", writeDataset(t), "-base", "bogus-model"}, &buf); err == nil {
		t.Error("unknown base should fail")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}
