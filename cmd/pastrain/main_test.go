package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/sft"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	var d dataset.Dataset
	for _, pairs := range dataset.Golden() {
		for _, p := range pairs {
			if err := d.Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "pairs.jsonl")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTrainsAndSaves(t *testing.T) {
	data := writeDataset(t)
	out := filepath.Join(t.TempDir(), "model.json")
	var buf bytes.Buffer
	if err := run([]string{"-data", data, "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trained PAS on qwen2-7b-chat") {
		t.Fatalf("report:\n%s", buf.String())
	}
	m, err := sft.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.BaseName() != "qwen2-7b-chat" {
		t.Fatalf("base = %s", m.BaseName())
	}
	if m.Complement("Write a python function to sort a list.", "x") == "" {
		t.Fatal("trained model produced nothing")
	}
}

func TestRunAlternativeBase(t *testing.T) {
	data := writeDataset(t)
	out := filepath.Join(t.TempDir(), "model.json")
	var buf bytes.Buffer
	if err := run([]string{"-data", data, "-out", out, "-base", "llama-2-7b-instruct"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "llama-2-7b-instruct") {
		t.Fatal("base not reported")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-data", "/no/such/file.jsonl"}, &buf); err == nil {
		t.Error("missing dataset should fail")
	}
	if err := run([]string{"-data", writeDataset(t), "-base", "bogus-model"}, &buf); err == nil {
		t.Error("unknown base should fail")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}

// buildCheckpoint runs a small checkpointed pipeline build once and
// returns its directory; the result carries a dataset and model
// snapshot for the checkpoint-consuming tests.
func buildCheckpoint(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ckpt")
	cfg := pipeline.DefaultConfig()
	cfg.CorpusSize = 1500
	cfg.Seed = 3
	cfg.Augment.PerCategoryCap = 20
	cfg.Augment.HeavyCategoryCap = 60
	if _, err := pipeline.BuildWithCheckpoint(cfg, pipeline.BuildOptions{CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunFromCheckpoint(t *testing.T) {
	ckpt := buildCheckpoint(t)
	out1 := filepath.Join(t.TempDir(), "model.json")
	var buf bytes.Buffer
	if err := run([]string{"-checkpoint-dir", ckpt, "-out", out1}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trained PAS on qwen2-7b-chat") {
		t.Fatalf("report:\n%s", buf.String())
	}

	// A resume must reuse the model snapshot and save identical bytes.
	out2 := filepath.Join(t.TempDir(), "model.json")
	buf.Reset()
	if err := run([]string{"-checkpoint-dir", ckpt, "-resume", "-out", out2}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reusing trained model snapshot") {
		t.Fatalf("resume did not reuse the snapshot:\n%s", buf.String())
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("resumed model differs from the trained one")
	}
}

func TestRunCheckpointErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-resume"}, &buf); err == nil {
		t.Error("-resume without -checkpoint-dir should fail")
	}
	if err := run([]string{"-checkpoint-dir", t.TempDir()}, &buf); err == nil ||
		!strings.Contains(err.Error(), "holds no checkpoint") {
		t.Errorf("uninitialised dir should fail clearly, got %v", err)
	}
	// Initialised but no dataset snapshot yet: pasgen crashed before
	// the generation stage finished.
	empty := filepath.Join(t.TempDir(), "ckpt")
	if _, err := checkpoint.Open(empty, "sha256:feed", false); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-checkpoint-dir", empty}, &buf); err == nil ||
		!strings.Contains(err.Error(), "no generated dataset") {
		t.Errorf("dataset-less checkpoint should fail clearly, got %v", err)
	}
}
