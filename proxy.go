package pas

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// Proxy is the transparent deployment form of the plug-and-play system:
// a reverse proxy that sits in front of any OpenAI-style chat-completions
// endpoint and augments the final user message of every request with a
// complementary prompt before forwarding. Clients keep their existing
// SDKs and URLs — they just point at the proxy — which is the strongest
// reading of the paper's "can be plugged into any other LLMs available
// via public APIs".
//
// Non-chat paths (model listings, health checks) pass through untouched.
type Proxy struct {
	system   Augmenter
	upstream *url.URL
	rp       *httputil.ReverseProxy
}

// Augmenter is the augmentation source a Proxy fronts. Two
// implementations exist: *System (in-process augmentation through the
// serving core) and ring.Client (consistent-hash routing across a
// passerve replica fleet). The degraded result reports a fail-open
// fallback — the prompt went through un-augmented — which the proxy
// surfaces as X-PAS-Degraded rather than hiding.
type Augmenter interface {
	AugmentContextDegraded(ctx context.Context, prompt, salt string) (augmented string, degraded bool, err error)
}

// LevelAugmenter is the optional refinement an Augmenter can implement
// to name the degradation rung instead of a bare verdict: the returned
// level is the X-PAS-Degraded wire value ("" full, "trim" the brownout
// ladder's cheap complement, "1" raw passthrough). *System and the
// ring client implement it; the proxy falls back to the boolean
// interface (and the legacy "1" flag) for augmenters that do not.
type LevelAugmenter interface {
	AugmentContextLevel(ctx context.Context, prompt, salt string) (augmented, level string, err error)
}

// NewProxy creates a proxy augmenting via the in-process system.
func NewProxy(system *System, upstreamURL string) (*Proxy, error) {
	if system == nil {
		return nil, fmt.Errorf("pas: nil system")
	}
	return NewProxyWith(system, upstreamURL)
}

// NewProxyWith creates a proxy over any augmentation source — the
// cluster client, a test fake — forwarding non-augmented traffic to
// upstreamURL.
func NewProxyWith(system Augmenter, upstreamURL string) (*Proxy, error) {
	if system == nil {
		return nil, fmt.Errorf("pas: nil augmenter")
	}
	u, err := url.Parse(upstreamURL)
	if err != nil {
		return nil, fmt.Errorf("pas: upstream URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("pas: upstream URL %q must be absolute", upstreamURL)
	}
	p := &Proxy{system: system, upstream: u}
	p.rp = &httputil.ReverseProxy{
		Director: func(r *http.Request) {
			r.URL.Scheme = u.Scheme
			r.URL.Host = u.Host
			r.Host = u.Host
			// The outbound clone carries the inbound request's context, so
			// this stamps the current trace onto the upstream hop and the
			// downstream service continues the same trace.
			obs.Inject(r.Context(), r.Header)
		},
		FlushInterval: 50 * time.Millisecond, // keep SSE streaming live
		// The proxy's own middleware already echoes a traceparent on the
		// response; drop the upstream's echo so the client is not handed
		// two values for one header.
		ModifyResponse: func(resp *http.Response) error {
			resp.Header.Del(obs.TraceparentHeader)
			return nil
		},
		// Only transport-level failures (upstream unreachable, connection
		// reset) reach this handler; an upstream that answers — any
		// status, 4xx included — streams back to the client verbatim.
		// The default handler writes an empty 502; clients of an
		// OpenAI-style API expect a JSON error envelope.
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprintf(w, `{"error":{"message":%q,"type":"upstream_unreachable"}}`, err.Error())
		},
	}
	return p, nil
}

// chatPayload is the subset of the chat-completions request the proxy
// rewrites; unknown fields are preserved via Raw.
type chatPayload struct {
	Messages []struct {
		Role    string `json:"role"`
		Content string `json:"content"`
	} `json:"messages"`
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/chat/completions") {
		actx, span := obs.StartSpan(r.Context(), "proxy.augment")
		level, err := p.augmentRequest(actx, r)
		span.SetAttrBool("degraded", level != "")
		if err != nil {
			span.SetError(err)
		}
		span.End()
		if err != nil {
			status := http.StatusBadRequest
			if IsOverloaded(err) {
				// The serving core shed the augmentation and the system is
				// running fail-closed (ServingConfig.Degrade off): tell the
				// client to retry. With Degrade on this path is unreachable
				// for overload — the fallback already happened inside
				// AugmentContextDegraded and is flagged below instead.
				status = http.StatusServiceUnavailable
				w.Header().Set("Retry-After", "1")
			}
			http.Error(w, fmt.Sprintf(`{"error":{"message":%q,"type":"pas_proxy_error"}}`, err.Error()), status)
			return
		}
		if level != "" {
			// Below full quality — a fail-open fallback ("1") or a brownout
			// rung ("trim"). Never silent: flagged here and counted in
			// /v1/stats.
			w.Header().Set("X-PAS-Degraded", level)
		}
	}
	p.rp.ServeHTTP(w, r)
}

// augmentRequest rewrites the body in place: the last user message gets
// the complementary prompt appended. All other fields — model, seed,
// temperature, stream, anything the proxy does not know about — survive
// byte-for-byte via generic JSON handling. The returned level is the
// X-PAS-Degraded wire value ("" when the augmentation ran at full
// quality). ctx carries the caller's span in addition to r.Context()'s
// deadline and cancellation, so augmentation work parents under it.
func (p *Proxy) augmentRequest(ctx context.Context, r *http.Request) (level string, _ error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		return "", fmt.Errorf("reading request: %w", err)
	}
	_ = r.Body.Close() // request body: nothing actionable on close failure

	var generic map[string]json.RawMessage
	if err := json.Unmarshal(body, &generic); err != nil {
		return "", fmt.Errorf("invalid JSON: %w", err)
	}
	var payload chatPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		return "", fmt.Errorf("invalid chat payload: %w", err)
	}
	last := -1
	for i := len(payload.Messages) - 1; i >= 0; i-- {
		if payload.Messages[i].Role == "user" {
			last = i
			break
		}
	}
	if last >= 0 {
		// Salt from the seed field if present, for reproducible proxies.
		salt := ""
		if raw, ok := generic["seed"]; ok {
			salt = string(raw)
		}
		// Through the serving core (cache + dedup + admission + breaker)
		// when the system has one; the request context propagates
		// deadlines and client disconnects into the queue. With Degrade
		// enabled a PAS-side failure leaves the message untouched.
		augmented, lvl, err := p.augmentLevel(ctx, payload.Messages[last].Content, salt)
		if err != nil {
			return "", err
		}
		level = lvl
		payload.Messages[last].Content = augmented
		msgs, err := json.Marshal(payload.Messages)
		if err != nil {
			return "", fmt.Errorf("re-encoding messages: %w", err)
		}
		generic["messages"] = msgs
		if body, err = json.Marshal(generic); err != nil {
			return "", fmt.Errorf("re-encoding request: %w", err)
		}
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	r.Header.Set("Content-Length", fmt.Sprint(len(body)))
	return level, nil
}

// augmentLevel calls the level-aware interface when the augmenter has
// one, otherwise maps the boolean verdict onto the legacy "1" flag.
func (p *Proxy) augmentLevel(ctx context.Context, prompt, salt string) (augmented, level string, err error) {
	if la, ok := p.system.(LevelAugmenter); ok {
		return la.AugmentContextLevel(ctx, prompt, salt)
	}
	augmented, degraded, err := p.system.AugmentContextDegraded(ctx, prompt, salt)
	if degraded {
		level = "1"
	}
	return augmented, level, err
}
