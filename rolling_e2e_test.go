package pas

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/chatapi"
	"repro/internal/loadgen"
	"repro/internal/ring"
	"repro/internal/sft"
	"repro/internal/simllm"
)

// rollingReplica is a passerve-equivalent replica that can be killed
// and restarted on the SAME address — httptest.Server can't do that,
// and a rolling restart is only real if the replica comes back where
// the ring expects it.
type rollingReplica struct {
	model *sft.Model
	addr  string

	mu  sync.Mutex
	srv *http.Server
	sys *System
}

// start boots a fresh System (cold cache — a real restart forgets) on
// the replica's address, retrying the bind briefly in case the old
// listener's close is still settling.
func (r *rollingReplica) start() error {
	sys := NewSystem(r.model)
	if err := sys.EnableServing(ServingConfig{CacheSize: 4096}); err != nil {
		return err
	}
	network := r.addr
	if network == "" {
		network = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", network)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("rebinding %s: %w", network, err)
	}
	r.addr = ln.Addr().String()
	srv := &http.Server{Handler: sys.Handler()}
	r.mu.Lock()
	r.srv = srv
	r.sys = sys
	r.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

func (r *rollingReplica) url() string { return "http://" + r.addr }

// kill closes the listener and every connection — the abrupt death
// that follows a drain in a rolling restart.
func (r *rollingReplica) kill() error {
	r.mu.Lock()
	srv := r.srv
	r.srv = nil
	r.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// drain asks the replica to stop taking new work, without exiting —
// the test owns the kill timing.
func (r *rollingReplica) drain(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url()+"/v1/drain",
		bytes.NewReader([]byte(`{"exit": false}`)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("drain %s: status %d", r.url(), resp.StatusCode)
	}
	return nil
}

// TestClusterRolling is the zero-downtime proof: three replicas under
// sustained chat load are each drained, killed, restarted, and
// re-awaited in sequence, and the client-visible record must show zero
// PAS-side failures — only bounded degraded 200s — with the cluster
// cache-hit ratio recovering to within 5 points of its pre-churn
// level. Set PAS_BENCH_OUT to write the report (BENCH_rolling.json).
func TestClusterRolling(t *testing.T) {
	model := testSystem(t).System.model

	fleet := make([]*rollingReplica, 3)
	urls := make([]string, 3)
	for i := range fleet {
		fleet[i] = &rollingReplica{model: model}
		if err := fleet[i].start(); err != nil {
			t.Fatal(err)
		}
		urls[i] = fleet[i].url()
		rep := fleet[i]
		t.Cleanup(func() { _ = rep.kill() })
	}

	apiServer, err := chatapi.NewServer(chatapi.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(apiServer.Handler())
	t.Cleanup(upstream.Close)

	client, err := ring.NewClient(ring.Config{
		Replicas:       urls,
		Degrade:        true,
		RequestTimeout: 10 * time.Second,
		Health: ring.HealthConfig{
			ProbeInterval: 40 * time.Millisecond,
			ProbeTimeout:  300 * time.Millisecond,
			DownAfter:     2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	client.Start(ctx)

	proxy, err := NewProxyWith(client, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)

	targets := make([]loadgen.ChurnTarget, len(fleet))
	for i, rep := range fleet {
		rep := rep
		targets[i] = loadgen.ChurnTarget{
			URL:     rep.url(),
			Drain:   rep.drain,
			Kill:    func(context.Context) error { return rep.kill() },
			Restart: func(context.Context) error { return rep.start() },
		}
	}
	rep, err := loadgen.RunWithChurn(ctx, loadgen.Config{
		Target:      front.URL,
		Mode:        loadgen.ModeChat,
		Model:       simllm.GPT40613,
		Prompts:     benchPrompts(40),
		QPS:         150,
		Concurrency: 6,
		Seed:        23,
		Replicas:    urls,
	}, loadgen.ChurnPlan{
		Targets: targets,
		Warmup:  800 * time.Millisecond,
		Measure: 600 * time.Millisecond,
		// Several 40ms probe intervals fit in the linger, so the router
		// must observe "draining" before the kill.
		DrainLinger:   400 * time.Millisecond,
		DownTime:      150 * time.Millisecond,
		RejoinTimeout: 10 * time.Second,
		Settle:        500 * time.Millisecond,
		Cooldown:      600 * time.Millisecond,
		// Rejoined means the ROUTER took it back, not just that the
		// replica answers: the membership table must say up.
		Ready: func(ctx context.Context, url string) error {
			for _, m := range client.Membership().Snapshot() {
				if m.URL == url {
					if m.State == "up" {
						return nil
					}
					return fmt.Errorf("member %s is %s", url, m.State)
				}
			}
			return fmt.Errorf("member %s not in table", url)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if path := os.Getenv("PAS_BENCH_OUT"); path != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	churn := rep.Churn
	if churn == nil {
		t.Fatal("report carries no churn evidence")
	}
	for _, e := range churn.Events {
		if e.Error != "" {
			t.Fatalf("churn step %s/%s failed: %s", e.Replica, e.Phase, e.Error)
		}
	}
	if rep.Requests < 300 {
		t.Fatalf("only %d requests flowed; the roll outpaced the load", rep.Requests)
	}

	// Zero downtime, client-side: no failed requests, no 503 escaping
	// the proxy (drain sheds are failed over or degraded, never
	// surfaced), and the degraded fail-open slice stays a small
	// minority of the roll.
	if rep.Errors != 0 {
		t.Fatalf("%d/%d requests failed during the roll (first: %s)", rep.Errors, rep.Requests, rep.FirstError)
	}
	if rep.Shed != 0 {
		t.Fatalf("%d shed 503s escaped the proxy during the roll", rep.Shed)
	}
	if max := rep.Requests / 10; rep.Degraded > max {
		t.Fatalf("%d/%d requests degraded (bound %d): the roll was not graceful", rep.Degraded, rep.Requests, max)
	}
	if rep.LatencyP99Ms >= 1500 {
		t.Fatalf("p99 %.1fms during the roll, want < 1500ms", rep.LatencyP99Ms)
	}

	// The routing tier must have seen each replica's graceful exit —
	// zero errors by lucky timing doesn't count.
	if _, _, drains := client.Membership().Churn(); drains != 3 {
		t.Fatalf("membership observed %d drains, want 3 (one per replica)", drains)
	}

	// Cache locality survived the roll: the post-churn window's hit
	// ratio is within 5 points of the pre-churn window (higher is fine
	// — the windows are the same length).
	if churn.PreChurnLookups == 0 || churn.RecoveryLookups == 0 {
		t.Fatalf("empty hit-ratio window: pre %d recovery %d", churn.PreChurnLookups, churn.RecoveryLookups)
	}
	if churn.RecoveryHitRatio < churn.PreChurnHitRatio-0.05 {
		t.Fatalf("cluster hit ratio did not recover: pre-churn %.3f, recovery %.3f",
			churn.PreChurnHitRatio, churn.RecoveryHitRatio)
	}
}
