package pas

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/chatapi"
	"repro/internal/loadgen"
	"repro/internal/ring"
	"repro/internal/simllm"
)

// clusterFixture stands up the full sharded serving tier in-process:
// three passerve-equivalent replicas (each its own System + serving
// core + cache), a simulated chat upstream, and a pasproxy-equivalent
// front (ring client + reverse proxy). It is the e2e shape of
// README's "Running a cluster" walkthrough.
type clusterFixture struct {
	replicas []*httptest.Server
	client   *ring.Client
	front    *httptest.Server
}

func newClusterFixture(t *testing.T, mutate func(*ring.Config)) *clusterFixture {
	t.Helper()
	model := testSystem(t).System.model

	f := &clusterFixture{}
	urls := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		sys := NewSystem(model)
		if err := sys.EnableServing(ServingConfig{CacheSize: 4096}); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(sys.Handler())
		t.Cleanup(srv.Close)
		f.replicas = append(f.replicas, srv)
		urls = append(urls, srv.URL)
	}

	apiServer, err := chatapi.NewServer(chatapi.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(apiServer.Handler())
	t.Cleanup(upstream.Close)

	cfg := ring.Config{Replicas: urls, Degrade: true, RequestTimeout: 10 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	f.client, err = ring.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxyWith(f.client, upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	f.front = httptest.NewServer(proxy)
	t.Cleanup(f.front.Close)
	return f
}

// replicaURLs returns the fleet's base URLs in replica order.
func (f *clusterFixture) replicaURLs() []string {
	out := make([]string, len(f.replicas))
	for i, r := range f.replicas {
		out[i] = r.URL
	}
	return out
}

// TestClusterE2ELocality replays a zipfian chat burst through the proxy
// and asserts consistent-hash cache locality from the outside: every
// distinct prompt is computed on exactly one replica (cluster misses ==
// distinct keys), so the cluster-wide hit ratio equals what a single
// replica would achieve on the same trace.
func TestClusterE2ELocality(t *testing.T) {
	f := newClusterFixture(t, nil)

	const requests = 150
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:      f.front.URL,
		Mode:        loadgen.ModeChat,
		Model:       simllm.GPT40613,
		Prompts:     benchPrompts(40),
		Requests:    requests,
		Concurrency: 6,
		Seed:        11,
		Replicas:    f.replicaURLs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d requests failed (first: %s)", rep.Errors, rep.Requests, rep.FirstError)
	}
	if rep.Degraded != 0 {
		t.Fatalf("%d requests degraded with a healthy fleet", rep.Degraded)
	}
	for _, r := range rep.Replicas {
		if r.Error != "" {
			t.Fatalf("replica %s stats scrape failed: %s", r.URL, r.Error)
		}
	}
	if got := rep.ClusterHits + rep.ClusterMisses; got != requests {
		t.Fatalf("cluster lookups = %d, want %d (every request exactly one cache lookup)", got, requests)
	}
	// Locality: each distinct key misses exactly once cluster-wide —
	// its owner computes it, every repeat hits that owner's cache. Any
	// extra miss means a key was served by more than one replica.
	if rep.ClusterMisses != int64(rep.DistinctKeys) {
		t.Fatalf("cluster misses = %d, distinct keys = %d: some key was computed on more than one replica",
			rep.ClusterMisses, rep.DistinctKeys)
	}
	// The cluster hit ratio therefore matches the single-replica ideal
	// on this trace; assert the ISSUE's 5% tolerance explicitly.
	ideal := float64(requests-rep.DistinctKeys) / float64(requests)
	if diff := rep.ClusterHitRatio - ideal; diff < -0.05 || diff > 0.05 {
		t.Fatalf("cluster hit ratio %.3f vs single-replica ideal %.3f (outside 5%%)", rep.ClusterHitRatio, ideal)
	}
	// And the work actually spread: at least two replicas saw traffic.
	busy := 0
	for _, r := range rep.Replicas {
		if r.Hits+r.Misses > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d replica(s) saw traffic; ring is not spreading", busy)
	}
}

// TestClusterE2EAllDownDegrades kills the whole fleet and asserts the
// plug-and-play guarantee end to end: the chat request still answers
// 200 — served by the upstream with the raw prompt — and the response
// carries X-PAS-Degraded so the fallback is never silent.
func TestClusterE2EAllDownDegrades(t *testing.T) {
	f := newClusterFixture(t, func(cfg *ring.Config) {
		cfg.RequestTimeout = 2 * time.Second
	})
	for _, r := range f.replicas {
		r.Close()
	}

	body, err := json.Marshal(chatapi.ChatRequest{
		Model:    simllm.GPT40613,
		Messages: []chatapi.Message{{Role: "user", Content: "explain consistent hashing briefly"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.front.URL+"/v1/chat/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-replicas-down chat answered %d: %s", resp.StatusCode, payload)
	}
	if resp.Header.Get("X-PAS-Degraded") != "1" {
		t.Fatal("degraded fallback not flagged with X-PAS-Degraded")
	}
	if len(payload) == 0 {
		t.Fatal("empty completion body")
	}
	if s := f.client.Stats(); s.Degraded == 0 {
		t.Fatalf("ring client did not count the degraded request: %+v", s)
	}
}

// TestClusterE2EBenchServing regenerates BENCH_serving.json: the same
// cluster shape as TestClusterE2ELocality driven at the committed
// baseline's parameters (chat mode, 2000 requests at 400 QPS, seed 42,
// concurrency 16). It only runs when PAS_BENCH_OUT names the output
// path — `PAS_BENCH_OUT=BENCH_serving.json go test -run
// '^TestClusterE2EBenchServing$' .` — so the regular suite stays fast.
func TestClusterE2EBenchServing(t *testing.T) {
	path := os.Getenv("PAS_BENCH_OUT")
	if path == "" {
		t.Skip("set PAS_BENCH_OUT=BENCH_serving.json to regenerate the serving benchmark report")
	}
	f := newClusterFixture(t, nil)

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:      f.front.URL,
		Mode:        loadgen.ModeChat,
		Model:       simllm.GPT40613,
		Prompts:     benchPrompts(500),
		Requests:    2000,
		QPS:         400,
		Concurrency: 16,
		Seed:        42,
		Replicas:    f.replicaURLs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d requests failed (first: %s)", rep.Errors, rep.Requests, rep.FirstError)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// benchPrompts builds a small distinct-prompt corpus for the bursts.
func benchPrompts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cluster e2e prompt %d: explain consistent hashing", i)
	}
	return out
}
