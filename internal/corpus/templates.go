package corpus

import (
	"math/rand"
	"strings"

	"repro/internal/facet"
)

// Template banks. Every template embeds cue words from the category's
// lexicon (see facet.CategoryCues) so that the heuristic analyzer and the
// trained classifier have a real signal to recover — the same reason real
// coding prompts contain the word "function".

var codingTopics = []string{
	"a binary search tree", "a rate limiter", "an LRU cache", "a JSON parser",
	"a websocket server", "a regex matcher", "a thread pool", "a bloom filter",
	"a csv importer", "a retry wrapper", "a merge sort", "a trie",
	"a consistent hash ring", "a skip list", "a token bucket", "a priority queue",
	"a graph topological sort", "an event bus", "a memo cache", "a diff algorithm",
	"a url shortener", "a state machine", "a cron parser", "a b tree",
}

var codingLangs = []string{"python", "golang", "javascript", "rust", "java", "c"}

var codingTemplates = []string{
	"Write a %s function that implements %s.",
	"My %s code for %s has a bug, help me debug it.",
	"Implement %s in %s and explain the algorithm.",
	"How do I program %s using the standard %s api?",
	"Refactor this %s script that builds %s to be faster.",
	"Write unit tests in %s for %s.",
}

var qaTopics = []string{
	"the capital of australia", "how vaccines work", "why the sky is blue",
	"what causes inflation", "how tides form", "why leaves change color",
	"what the fastest land animal is", "how long the great wall is",
	"when the printing press was invented", "what dark matter is",
	"why ice floats on water", "how gps finds your position", "what causes lightning",
	"why cats purr", "how soap cleans", "what a leap year is for",
	"how bees make honey", "why onions make you cry", "what causes deja vu",
	"how noise cancelling headphones work",
}

var qaTemplates = []string{
	"What is %s?",
	"Can you answer this question: why does %s matter?",
	"How does %s work, and when does it not?",
	"Quick question: what should I know about %s?",
	"Why is %s the way it is?",
}

var writingTopics = []string{
	"a farewell email to my team", "a poem about autumn rain",
	"a short story about a lighthouse keeper", "a blog article on remote work",
	"a cover letter for a data analyst role", "a wedding toast",
	"a product launch announcement", "an essay on urban gardens",
	"a haiku about the first snow", "an apology email to a customer",
	"a eulogy for a beloved teacher", "a newsletter intro for a book club",
	"a speech for a retirement party", "a fundraising letter for an animal shelter",
	"a limerick about mondays", "a museum placard for a meteorite",
}

var writingTemplates = []string{
	"Write %s.",
	"Help me draft %s.",
	"Write %s, keeping a formal tone.",
	"Compose %s for me.",
	"I need to write %s, give me a draft.",
}

var mathTopics = []string{
	"the integral of x squared from 0 to 3", "the probability of two heads in three flips",
	"the sum of the first 100 odd numbers", "a 15 percent tip on a 64 dollar bill",
	"the roots of x^2 - 5x + 6", "compound interest on 1000 at 5 percent for 3 years",
	"the area of a circle with radius 7", "the expected value of a fair die",
	"the greatest common divisor of 84 and 126", "the median of 3 9 4 7 5",
	"the derivative of sin x times x", "how many handshakes among 12 people",
	"the volume of a cone with radius 2 and height 9", "the 12th fibonacci number",
	"the break even point at 40 dollar units and 2400 fixed cost", "two trains closing at 30 and 45 mph from 150 miles",
}

var mathTemplates = []string{
	"Calculate %s.",
	"Solve %s and show the math.",
	"What is %s? Solve it.",
	"Help me calculate %s step by step.",
	"Solve this equation problem: find %s.",
}

var reasonTopics = []string{
	"three boxes with mislabeled fruit", "two doors with one lying guard",
	"crossing a river with a wolf a goat and a cabbage",
	"four people crossing a bridge with one torch",
	"the island where everyone lies on tuesdays",
}

var reasonTemplates = []string{
	"Here is a logic puzzle: %s. Deduce the answer.",
	"Solve this riddle about %s.",
	"If you face %s, then what do you do? Use logic.",
	"A puzzle: %s. What follows?",
}

var translationTopics = []string{
	"good morning, how are you", "where is the train station",
	"I would like two coffees please", "the meeting is postponed to friday",
	"thank you for your hospitality", "my luggage is lost",
}

var translationLangs = []string{"french", "spanish", "chinese", "german"}

var translationTemplates = []string{
	"Translate '%s' into %s.",
	"How do you say '%s' in %s? Give a natural translation.",
	"Provide a %s translation of '%s'.",
}

var summarizationTopics = []string{
	"a 20-page quarterly earnings report", "this long article about coral reefs",
	"the meeting transcript from monday", "a research paper on sleep cycles",
	"my 3000-word travel journal", "the terms of service of a streaming app",
}

var summarizationTemplates = []string{
	"Summarize %s into key points.",
	"Give me a tldr summary of %s.",
	"Condense %s into a short summary.",
	"Shorten %s to its key ideas.",
}

var roleplayTopics = []string{
	"a medieval blacksmith", "a ship's ai with a dry sense of humor",
	"a 1920s detective", "an enthusiastic museum guide",
	"a stern but fair chess coach", "a friendly alien ambassador",
}

var roleplayTemplates = []string{
	"Pretend you are %s and greet me in character.",
	"Roleplay as %s; imagine we just met.",
	"Act as %s. You are showing me around.",
	"You are %s — stay in persona while we chat.",
}

var brainstormTopics = []string{
	"names for a coffee shop near a library", "birthday gifts for a chemist",
	"icebreakers for a remote team", "side project ideas using open data",
	"themes for a school science fair", "ways to reuse glass jars",
	"fundraisers for a youth orchestra", "podcast topics about city history",
	"low budget team offsite activities", "names for a rescue greyhound",
	"ways to celebrate a remote colleague's promotion", "board game nights with a twist",
}

var brainstormTemplates = []string{
	"Brainstorm a list of ideas for %s.",
	"Suggest creative options for %s.",
	"Give me ideas: %s. List many.",
	"I need a creative list of %s.",
}

var knowledgeTopics = []string{
	"how photosynthesis works", "the history of the silk road",
	"how blood pressure regulation works", "the mechanism of memory formation",
	"how semiconductors are made", "the physiology of high-altitude adaptation",
	"how glaciers shape valleys", "the science of fermentation",
	"how the immune system distinguishes self from non-self", "the history of the printing press",
	"how black holes form", "the mechanism of antibiotic resistance",
	"how coral reefs build themselves", "the economics of trade routes",
	"how batteries store energy", "the physiology of hibernation",
}

var knowledgeTemplates = []string{
	"Explain %s.",
	"Describe %s and the mechanism behind it.",
	"Explain the science of %s.",
	"Can you explain %s and how it works?",
	"Describe the history and mechanism of %s.",
}

var adviceTopics = []string{
	"preparing for a system design interview", "starting to run at 40",
	"reducing screen time before bed", "negotiating a salary offer",
	"learning a language in six months", "keeping houseplants alive",
	"planning a week in portugal on a budget",
	"moving cities with two cats", "getting better at small talk",
	"building an emergency fund on a tight budget", "training for a first triathlon",
	"picking a laptop for photo editing", "staying focused while studying at home",
	"hosting a dinner party in a small apartment",
}

var adviceTemplates = []string{
	"What is the best way of %s? Any tips?",
	"Give me advice on %s.",
	"Should I change how I approach %s? Recommend steps.",
	"Help me improve at %s with practical tips.",
}

var analysisTopics = []string{
	"remote work versus office work", "electric cars versus hybrids",
	"renting versus buying a home", "sql versus nosql for a startup",
	"monolith versus microservices", "paper books versus e-readers",
	"solar versus wind power for a farm", "native apps versus web apps",
	"buying versus leasing a delivery van", "annual versus quarterly planning",
	"open plan versus private offices", "subscriptions versus one time pricing",
}

var analysisTemplates = []string{
	"Analyze the trade offs of %s.",
	"Compare %s and evaluate the pros and cons.",
	"Assess %s; which wins and under what judgment criteria?",
	"Evaluate %s for a small team.",
}

var extractionTopics = []string{
	"the dates and amounts from this invoice", "all person entities in this paragraph",
	"the fields of this log line into json", "email addresses from this text dump",
	"the table of results from this report", "action items from these notes",
}

var extractionTemplates = []string{
	"Extract %s.",
	"Parse %s and identify each item.",
	"Find and extract %s as a table.",
	"Identify %s and return json.",
}

var chitchatTemplates = []string{
	"Hello! How is your morning going?",
	"Hi there, anything fun to chat about?",
	"Good morning! Any plans for the weekend?",
	"Thanks for the help earlier, you are great to chat with.",
	"Hey, how are you feeling today?",
}

// renderTemplate draws a category-appropriate prompt.
func renderTemplate(cat facet.Category, rng *rand.Rand) string {
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	switch cat {
	case facet.Coding:
		t := pick(codingTemplates)
		if strings.Count(t, "%s") == 2 {
			return sprintf2(t, pick(codingLangs), pick(codingTopics))
		}
		return sprintf1(t, pick(codingTopics))
	case facet.QA:
		return sprintf1(pick(qaTemplates), pick(qaTopics))
	case facet.Writing:
		return sprintf1(pick(writingTemplates), pick(writingTopics))
	case facet.Math:
		return sprintf1(pick(mathTemplates), pick(mathTopics))
	case facet.Reason:
		return sprintf1(pick(reasonTemplates), pick(reasonTopics))
	case facet.Translation:
		t := pick(translationTemplates)
		if strings.HasPrefix(t, "Provide") {
			return sprintf2(t, pick(translationLangs), pick(translationTopics))
		}
		return sprintf2(t, pick(translationTopics), pick(translationLangs))
	case facet.Summarization:
		return sprintf1(pick(summarizationTemplates), pick(summarizationTopics))
	case facet.Roleplay:
		return sprintf1(pick(roleplayTemplates), pick(roleplayTopics))
	case facet.Brainstorm:
		return sprintf1(pick(brainstormTemplates), pick(brainstormTopics))
	case facet.Knowledge:
		return sprintf1(pick(knowledgeTemplates), pick(knowledgeTopics))
	case facet.Advice:
		return sprintf1(pick(adviceTemplates), pick(adviceTopics))
	case facet.Analytical:
		return sprintf1(pick(analysisTemplates), pick(analysisTopics))
	case facet.Extraction:
		return sprintf1(pick(extractionTemplates), pick(extractionTopics))
	default:
		return pick(chitchatTemplates)
	}
}

// renderTrapPrompt phrases a logic-trap question around the trap cue so
// facet.FindTrap recovers it.
func renderTrapPrompt(tr facet.Trap, rng *rand.Rand) string {
	frames := []string{
		"Here is a riddle: %s — what is the answer?",
		"A quick trick puzzle for you: %s. What do you say?",
		"Think about this one: %s. Explain your answer.",
	}
	// The bird trap has canonical phrasing from the paper's Figure 1.
	if tr.Name == "shot-birds" {
		variants := []string{
			"If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?",
			"There are 10 birds on a tree and one is shot — how many birds are on the ground now?",
		}
		return variants[rng.Intn(len(variants))]
	}
	return sprintf1(frames[rng.Intn(len(frames))], tr.Cue)
}

func sprintf1(t, a string) string { return strings.Replace(t, "%s", a, 1) }

func sprintf2(t, a, b string) string {
	return strings.Replace(strings.Replace(t, "%s", a, 1), "%s", b, 1)
}
