package corpus

import (
	"strings"
	"testing"

	"repro/internal/facet"
)

func mustGenerate(t *testing.T, cfg Config) []Prompt {
	t.Helper()
	pool, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Size: 0}); err == nil {
		t.Error("size 0 should fail")
	}
	bad := DefaultConfig()
	bad.JunkRate = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("rate > 1 should fail")
	}
	bad = DefaultConfig()
	bad.DuplicateRate = -0.1
	if _, err := Generate(bad); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestGenerateSizeAndIDs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 500
	pool := mustGenerate(t, cfg)
	if len(pool) != 500 {
		t.Fatalf("size = %d", len(pool))
	}
	for i, p := range pool {
		if p.ID != i {
			t.Fatalf("prompt %d has ID %d", i, p.ID)
		}
		if strings.TrimSpace(p.Text) == "" {
			t.Fatalf("prompt %d has empty text", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 200
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	for i := range a {
		if a[i].Text != b[i].Text || a[i].Truth != b[i].Truth {
			t.Fatalf("prompt %d differs between identical-seed runs", i)
		}
	}
}

func TestRatesApproximatelyHonoured(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 3000
	pool := mustGenerate(t, cfg)
	var junk, dup int
	for _, p := range pool {
		if p.Truth.Junk {
			junk++
		}
		if p.Truth.DupOf >= 0 {
			dup++
		}
	}
	junkFrac := float64(junk) / float64(len(pool))
	dupFrac := float64(dup) / float64(len(pool))
	if junkFrac < 0.05 || junkFrac > 0.15 {
		t.Errorf("junk fraction = %.3f, want near 0.10", junkFrac)
	}
	if dupFrac < 0.15 || dupFrac > 0.30 {
		t.Errorf("dup fraction = %.3f, want near 0.22", dupFrac)
	}
}

func TestDuplicatesReferenceEarlierPrompt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 1000
	pool := mustGenerate(t, cfg)
	byID := map[int]Prompt{}
	for _, p := range pool {
		byID[p.ID] = p
	}
	for _, p := range pool {
		if p.Truth.DupOf < 0 {
			continue
		}
		src, ok := byID[p.Truth.DupOf]
		if !ok {
			t.Fatalf("dup %d references missing source %d", p.ID, p.Truth.DupOf)
		}
		if src.ID >= p.ID {
			t.Fatalf("dup %d references later prompt %d", p.ID, src.ID)
		}
		if src.Truth.Junk {
			t.Fatalf("dup %d paraphrases junk", p.ID)
		}
		if p.Truth.Category != src.Truth.Category {
			t.Fatalf("dup %d changed category", p.ID)
		}
	}
}

func TestCategoryBiasSkewsTowardCodingAndQA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 4000
	pool := mustGenerate(t, cfg)
	counts := map[facet.Category]int{}
	for _, p := range pool {
		if !p.Truth.Junk {
			counts[p.Truth.Category]++
		}
	}
	avg := 0
	for _, c := range facet.Categories() {
		avg += counts[c]
	}
	avgPer := avg / facet.CategoryCount
	if counts[facet.Coding] < avgPer*2 {
		t.Errorf("coding count %d not skewed above average %d", counts[facet.Coding], avgPer)
	}
	if counts[facet.QA] < avgPer*2 {
		t.Errorf("qa count %d not skewed above average %d", counts[facet.QA], avgPer)
	}
	// Every category must still appear (Figure 6 covers all 14).
	for _, c := range facet.Categories() {
		if counts[c] == 0 {
			t.Errorf("category %v never generated", c)
		}
	}
}

func TestTrapPromptsAreDetectable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 4000
	pool := mustGenerate(t, cfg)
	traps := 0
	for _, p := range pool {
		if p.Truth.TrapName == "" {
			continue
		}
		traps++
		tr, ok := facet.FindTrap(p.Text)
		if !ok {
			t.Fatalf("trap prompt %q not detectable", p.Text)
		}
		if tr.Name != p.Truth.TrapName {
			t.Fatalf("trap mismatch: text %q detected %s, truth %s", p.Text, tr.Name, p.Truth.TrapName)
		}
	}
	if traps == 0 {
		t.Fatal("no trap prompts generated")
	}
}

func TestConstraintCuesSurviveInText(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 2000
	pool := mustGenerate(t, cfg)
	checked := 0
	for _, p := range pool {
		if p.Truth.Junk || p.Truth.Constraints == 0 || p.Truth.DupOf >= 0 {
			continue
		}
		checked++
		a := facet.AnalyzePrompt(p.Text)
		for _, f := range p.Truth.Constraints.Facets() {
			if !a.Constraints.Has(f) {
				t.Fatalf("constraint %v lost in text %q (analyzer saw %v)", f, p.Text, a.Constraints)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no constrained prompts generated")
	}
}

func TestHeuristicCategoryRecovery(t *testing.T) {
	// The analyzer's category guess should beat chance by a wide margin
	// on clean originals; the trained classifier (tested elsewhere) does
	// better still.
	cfg := DefaultConfig()
	cfg.Size = 3000
	pool := mustGenerate(t, cfg)
	var total, hit int
	for _, p := range pool {
		if p.Truth.Junk || p.Truth.DupOf >= 0 {
			continue
		}
		total++
		if facet.AnalyzePrompt(p.Text).Category == p.Truth.Category {
			hit++
		}
	}
	acc := float64(hit) / float64(total)
	if acc < 0.55 {
		t.Fatalf("heuristic category accuracy = %.3f, want >= 0.55", acc)
	}
}

func TestJunkIsLowQuality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 1000
	for _, p := range mustGenerate(t, cfg) {
		if p.Truth.Junk && p.Truth.Quality > 0.2 {
			t.Fatalf("junk prompt with quality %.2f", p.Truth.Quality)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Size = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
