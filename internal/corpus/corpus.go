// Package corpus synthesises the raw prompt pool that stands in for the
// LMSYS-Chat-1M and WildChat datasets of §3.1. The generator produces
// realistic user prompts across the paper's 14 categories with controlled
// rates of near-duplicates (for the dedup stage to find), junk entries
// (for the quality filter to drop), and logic traps (for case study 1).
//
// Each prompt carries its hidden ground truth so tests and experiment
// harnesses can measure pipeline stages, but every downstream model reads
// only the text.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/facet"
)

// Prompt is one synthetic user prompt.
type Prompt struct {
	// ID is unique within one generated pool.
	ID int
	// Text is what every model sees.
	Text string
	// Truth is the generator's hidden ground truth, for evaluation only.
	Truth Truth
}

// Truth records what the generator intended a prompt to be.
type Truth struct {
	// Category the prompt was generated from.
	Category facet.Category
	// Constraints the text explicitly states (e.g. "briefly").
	Constraints facet.Set
	// TrapName is the logic trap embedded in the text, or "".
	TrapName string
	// Quality is intrinsic prompt clarity in [0,1]; junk is near 0.
	Quality float64
	// DupOf is the ID of the prompt this one paraphrases, or -1.
	DupOf int
	// Junk marks unusable noise entries.
	Junk bool
}

// Config controls pool generation.
type Config struct {
	// Size is the number of prompts to generate.
	Size int
	// Seed drives all sampling.
	Seed int64
	// DuplicateRate is the fraction of prompts that paraphrase an
	// earlier prompt (LMSYS-style redundancy). Typical: 0.25.
	DuplicateRate float64
	// JunkRate is the fraction of junk entries. Typical: 0.1.
	JunkRate float64
	// TrapRate is the fraction of reasoning prompts that embed a trap.
	TrapRate float64
	// CategoryBias skews sampling toward Coding and QA as in Figure 6;
	// 0 means uniform, 1 means strongly skewed. Typical: 0.5.
	CategoryBias float64
}

// DefaultConfig returns the pool shape used across the experiments.
func DefaultConfig() Config {
	return Config{Size: 4000, Seed: 1, DuplicateRate: 0.25, JunkRate: 0.10, TrapRate: 0.5, CategoryBias: 0.5}
}

// Generate produces a synthetic prompt pool.
// It returns an error when the configuration is out of range.
func Generate(cfg Config) ([]Prompt, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("corpus: size must be positive, got %d", cfg.Size)
	}
	// Ordered, not a map: with several rates out of range the error must
	// name the same one every run.
	for _, rate := range []struct {
		name string
		r    float64
	}{
		{"DuplicateRate", cfg.DuplicateRate}, {"JunkRate", cfg.JunkRate},
		{"TrapRate", cfg.TrapRate}, {"CategoryBias", cfg.CategoryBias},
	} {
		if rate.r < 0 || rate.r > 1 {
			return nil, fmt.Errorf("corpus: %s must be in [0,1], got %v", rate.name, rate.r)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := make([]Prompt, 0, cfg.Size)
	var originals []int // indices of non-junk originals, duplicate sources
	for i := 0; i < cfg.Size; i++ {
		switch {
		case rng.Float64() < cfg.JunkRate:
			pool = append(pool, junkPrompt(i, rng))
		case len(originals) > 0 && rng.Float64() < cfg.DuplicateRate:
			src := pool[originals[rng.Intn(len(originals))]]
			pool = append(pool, paraphrase(i, src, rng))
		default:
			p := freshPrompt(i, rng, cfg)
			originals = append(originals, len(pool))
			pool = append(pool, p)
		}
	}
	return pool, nil
}

func sampleCategory(rng *rand.Rand, bias float64) facet.Category {
	// Weight Coding and QA up by the bias factor, as in Figure 6 where
	// those two dominate the distribution.
	weights := make([]float64, facet.CategoryCount)
	var total float64
	for i := range weights {
		w := 1.0
		if facet.Category(i) == facet.Coding || facet.Category(i) == facet.QA {
			w += 4 * bias
		}
		weights[i] = w
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return facet.Category(i)
		}
	}
	return facet.Chitchat
}

func freshPrompt(id int, rng *rand.Rand, cfg Config) Prompt {
	cat := sampleCategory(rng, cfg.CategoryBias)
	var text string
	var truth Truth
	truth.Category = cat
	truth.DupOf = -1
	truth.Quality = 0.55 + 0.45*rng.Float64()

	if cat == facet.Reason && rng.Float64() < cfg.TrapRate {
		traps := facet.Traps()
		tr := traps[rng.Intn(len(traps))]
		text = renderTrapPrompt(tr, rng)
		truth.TrapName = tr.Name
	} else {
		text = renderTemplate(cat, rng)
	}

	// Real users qualify their asks; qualifiers multiply the surface
	// diversity of the pool the way distinct LMSYS users do.
	if rng.Float64() < 0.50 {
		text += " " + qualifiers[rng.Intn(len(qualifiers))]
	}
	if rng.Float64() < 0.30 {
		text = personas[rng.Intn(len(personas))] + " " + lowerFirst(text)
	}

	// Sometimes the user states an explicit constraint; the generated
	// text must carry a cue the analyzer recognises.
	if rng.Float64() < 0.30 {
		switch rng.Intn(3) {
		case 0:
			text = "Briefly, " + lowerFirst(text)
			truth.Constraints = truth.Constraints.With(facet.Conciseness)
		case 1:
			text += " Use an organized format with a list."
			truth.Constraints = truth.Constraints.With(facet.Structure)
		case 2:
			text += " Keep a formal tone."
			truth.Constraints = truth.Constraints.With(facet.Style)
		}
	}
	// Low-clarity originals read vaguer: strip detail words.
	if truth.Quality < 0.65 {
		text = vaguen(text, rng)
	}
	return Prompt{ID: id, Text: text, Truth: truth}
}

// qualifiers and personas add user-specific colour to generated prompts.
// They deliberately avoid the constraint cues ("briefly", "formal") and
// foreign category cues so they vary the surface without changing the
// ground truth.
var qualifiers = []string{
	"Aim it at a beginner audience.",
	"Assume I already know the basics.",
	"This is for a school project.",
	"It is for an internal wiki page.",
	"I will present this to my manager.",
	"Focus on the practical side.",
	"I care most about the underlying intuition.",
	"Treat edge conditions carefully.",
	"My last attempt at this went poorly.",
	"Time is not a constraint here.",
}

var personas = []string{
	"As a newcomer,",
	"As someone switching careers,",
	"Speaking as a hobbyist,",
	"On behalf of my study group,",
	"Wearing my reviewer hat,",
	"For my side project,",
}

func junkPrompt(id int, rng *rand.Rand) Prompt {
	junk := []string{
		"asdf asdf asdf",
		"??",
		"test test 123 test",
		"hhhhhhhhhh",
		".",
		"lorem ipsum dolor",
		"aaaa bbbb cccc dddd",
		"x",
	}
	return Prompt{
		ID:   id,
		Text: junk[rng.Intn(len(junk))],
		Truth: Truth{
			Category: facet.Chitchat,
			Quality:  0.05 * rng.Float64(),
			DupOf:    -1,
			Junk:     true,
		},
	}
}

// paraphrase produces a near-duplicate of src: same content words, light
// boilerplate changes — exactly the redundancy HNSW dedup must catch.
func paraphrase(id int, src Prompt, rng *rand.Rand) Prompt {
	text := src.Text
	n := 4
	if src.Truth.TrapName != "" {
		// Word substitution could break the trap cue phrase; restrict
		// trap paraphrases to prefix/suffix edits.
		n = 3
	}
	switch rng.Intn(n) {
	case 0:
		text = "Please " + lowerFirst(text)
	case 1:
		text = text + " Thanks!"
	case 2:
		text = "Hey, " + lowerFirst(text)
	case 3:
		text = strings.Replace(text, " the ", " a ", 1)
	}
	truth := src.Truth
	truth.DupOf = src.ID
	truth.Quality = src.Truth.Quality * (0.9 + 0.1*rng.Float64())
	return Prompt{ID: id, Text: text, Truth: truth}
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// vaguen removes one concrete qualifier to lower prompt clarity.
func vaguen(s string, rng *rand.Rand) string {
	drops := []string{" exactly", " in detail", " specific", " concrete"}
	d := drops[rng.Intn(len(drops))]
	return strings.Replace(s, d, "", 1)
}
