package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedTarget fakes a replica that can be flipped into shedding mode:
// /v1/augment answers 503 + Retry-After, /v1/status reports draining.
type shedTarget struct {
	shedding atomic.Bool
	srv      *httptest.Server
}

func newShedTarget(t *testing.T) *shedTarget {
	t.Helper()
	s := &shedTarget{}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/augment", func(w http.ResponseWriter, r *http.Request) {
		if s.shedding.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shutting down: draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"augmented": "x"})
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if s.shedding.Load() {
			status = "draining"
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": status})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"cache": map[string]int64{"hits": 0, "misses": 0},
		})
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// TestShedCountedSeparately: a 503 answer lands in Report.Shed, not
// Report.Errors — refusal is an availability event, not a failure.
func TestShedCountedSeparately(t *testing.T) {
	target := newShedTarget(t)
	target.shedding.Store(true)
	rep, err := Run(context.Background(), Config{
		Target:   target.srv.URL,
		Prompts:  prompts(4),
		Requests: 10,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Shed != 10 || rep.Requests != 10 {
		t.Fatalf("report = %d errors %d shed %d requests, want 0/10/10", rep.Errors, rep.Shed, rep.Requests)
	}
	if rep.FirstError != "" {
		t.Fatalf("shed run recorded an error: %s", rep.FirstError)
	}
}

// TestStopChannelEndsRunGracefully: closing Stop ends an unbounded run
// without failing in-flight requests.
func TestStopChannelEndsRunGracefully(t *testing.T) {
	target := newShedTarget(t)
	stop := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(stop)
	}()
	done := make(chan struct{})
	var rep Report
	var err error
	go func() {
		defer close(done)
		rep, err = Run(context.Background(), Config{
			Target:   target.srv.URL,
			Prompts:  prompts(4),
			Duration: time.Hour, // Stop is the real bound
			Stop:     stop,
			Seed:     1,
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after Stop closed")
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("stopped run served nothing")
	}
	if rep.Errors != 0 {
		t.Fatalf("graceful stop produced %d errors (first: %s)", rep.Errors, rep.FirstError)
	}
}

// TestRunWithChurn rolls one fake replica through drain/kill/restart
// while the load runs: the timeline is recorded in order, the shed
// window is counted (not failed), and both hit-ratio windows land.
func TestRunWithChurn(t *testing.T) {
	target := newBenchTarget(t)
	drained := make(chan struct{})
	plan := ChurnPlan{
		Targets: []ChurnTarget{{
			URL: target.srv.URL,
			Drain: func(ctx context.Context) error {
				close(drained)
				return nil
			},
			// Kill nil: skipped without an event. Restart recorded.
			Restart: func(ctx context.Context) error { return nil },
		}},
		Warmup:        250 * time.Millisecond,
		Measure:       150 * time.Millisecond,
		DrainLinger:   40 * time.Millisecond,
		DownTime:      20 * time.Millisecond,
		Settle:        40 * time.Millisecond,
		Cooldown:      250 * time.Millisecond,
		RejoinTimeout: 2 * time.Second,
		// benchTarget has no /v1/status; the fake restart is instant.
		Ready: func(ctx context.Context, url string) error { return nil },
	}
	rep, err := RunWithChurn(context.Background(), Config{
		Target:   target.srv.URL,
		Prompts:  prompts(8),
		Replicas: []string{target.srv.URL},
		QPS:      200,
		Seed:     7,
	}, plan)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-drained:
	default:
		t.Fatal("drain hook never ran")
	}
	if rep.Errors != 0 {
		t.Fatalf("churn run failed requests: %d (first: %s)", rep.Errors, rep.FirstError)
	}
	if rep.Churn == nil {
		t.Fatal("report carries no churn evidence")
	}
	var phases []string
	for _, e := range rep.Churn.Events {
		if e.Error != "" {
			t.Fatalf("event %s/%s errored: %s", e.Replica, e.Phase, e.Error)
		}
		phases = append(phases, e.Phase)
	}
	want := []string{"drain", "restart", "rejoin"}
	if len(phases) != len(want) {
		t.Fatalf("events = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("events = %v, want %v", phases, want)
		}
	}
	if rep.Churn.PreChurnLookups == 0 || rep.Churn.RecoveryLookups == 0 {
		t.Fatalf("hit-ratio windows empty: pre %d recovery %d",
			rep.Churn.PreChurnLookups, rep.Churn.RecoveryLookups)
	}
	// A zipf replay against one stable replica must roughly recover its
	// hit ratio; the small windows here leave room for a stray cold
	// key, so the tolerance is looser than the cluster e2e's 5 points.
	if rep.Churn.RecoveryHitRatio < rep.Churn.PreChurnHitRatio-0.15 {
		t.Fatalf("recovery hit ratio %.3f fell more than 15 points below pre-churn %.3f",
			rep.Churn.RecoveryHitRatio, rep.Churn.PreChurnHitRatio)
	}
}
