package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// tenantTarget fakes a fair-share replica: it sheds every request from
// the flooding tenant, serves t1 at the trim rung, and serves everyone
// else at full quality — so each report row has a distinct signature.
type tenantTarget struct {
	mu   sync.Mutex
	seen map[string]int // tenant header value -> request count
	srv  *httptest.Server
}

func newTenantTarget(t *testing.T) *tenantTarget {
	t.Helper()
	tt := &tenantTarget{seen: make(map[string]int)}
	tt.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get("X-PAS-Tenant")
		tt.mu.Lock()
		tt.seen[tenant]++
		tt.mu.Unlock()
		switch tenant {
		case "t0":
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		case "t1":
			w.Header().Set("X-PAS-Degraded", "trim")
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"augmented": "p [aug]"})
	}))
	t.Cleanup(tt.srv.Close)
	return tt
}

// TestRunTenantsSkewAndRows: a skewed multi-tenant run labels every
// request, concentrates traffic on t0, and reports per-tenant shed and
// degraded-by-level counts that sum to the top-line numbers.
func TestRunTenantsSkewAndRows(t *testing.T) {
	tt := newTenantTarget(t)
	rep, err := Run(context.Background(), Config{
		Target:      tt.srv.URL,
		Prompts:     prompts(50),
		Requests:    300,
		Concurrency: 4,
		Seed:        11,
		Tenants:     3,
		TenantSkew:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 300 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d (first: %s)", rep.Requests, rep.Errors, rep.FirstError)
	}
	if rep.TenantSkew != 10 {
		t.Fatalf("tenant_skew = %v, want 10", rep.TenantSkew)
	}
	if len(rep.Tenants) != 3 {
		t.Fatalf("tenant rows = %+v, want 3", rep.Tenants)
	}
	rows := make(map[string]TenantReport, len(rep.Tenants))
	total, shed, trim := 0, 0, 0
	for i, row := range rep.Tenants {
		if i > 0 && rep.Tenants[i-1].Tenant >= row.Tenant {
			t.Fatalf("rows not sorted by tenant: %+v", rep.Tenants)
		}
		rows[row.Tenant] = row
		total += row.Requests
		shed += row.Shed
		trim += row.DegradedTrim
	}
	if total != rep.Requests || shed != rep.Shed || trim != rep.DegradedTrim {
		t.Fatalf("rows don't sum to totals: rows(%d, %d, %d) report(%d, %d, %d)",
			total, shed, trim, rep.Requests, rep.Shed, rep.DegradedTrim)
	}
	// Skew 10 over 3 tenants puts ~83% of traffic on t0.
	if rows["t0"].Requests <= rows["t1"].Requests+rows["t2"].Requests {
		t.Fatalf("skew did not concentrate on t0: %+v", rep.Tenants)
	}
	// The fake sheds all of t0, trims all of t1, serves t2 clean.
	if r := rows["t0"]; r.Shed != r.Requests || r.LatencyP50Ms != 0 {
		t.Fatalf("t0 row: %+v, want fully shed with no latency window", r)
	}
	if r := rows["t1"]; r.DegradedTrim != r.Requests || r.DegradedRaw != 0 || r.LatencyP50Ms <= 0 {
		t.Fatalf("t1 row: %+v, want all-trim with quantiles", r)
	}
	if r := rows["t2"]; r.Shed != 0 || r.DegradedTrim != 0 || r.DegradedRaw != 0 {
		t.Fatalf("t2 row: %+v, want clean", r)
	}
	// The wire saw exactly the three labels, never an anonymous request.
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if tt.seen[""] != 0 || len(tt.seen) != 3 {
		t.Fatalf("tenant headers seen on the wire: %v", tt.seen)
	}
}

// TestRunWithoutTenantsStaysAnonymous: Tenants=0 sends no header and
// reports no tenant rows — the pre-tenant report shape byte-for-byte.
func TestRunWithoutTenantsStaysAnonymous(t *testing.T) {
	tt := newTenantTarget(t)
	rep, err := Run(context.Background(), Config{
		Target:      tt.srv.URL,
		Prompts:     prompts(10),
		Requests:    20,
		Concurrency: 2,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants != nil || rep.TenantSkew != 0 {
		t.Fatalf("anonymous run grew tenant fields: %+v", rep)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tenants", "tenant_skew"} {
		if _, ok := jsonKeys(t, raw)[key]; ok {
			t.Fatalf("anonymous report leaked %q: %s", key, raw)
		}
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if len(tt.seen) != 1 || tt.seen[""] != 20 {
		t.Fatalf("anonymous run sent tenant headers: %v", tt.seen)
	}
}

func jsonKeys(t *testing.T, raw []byte) map[string]json.RawMessage {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	return m
}
