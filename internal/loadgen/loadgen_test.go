package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// benchTarget fakes a replica: /v1/augment records served prompts and
// tracks hit/miss counters that /v1/stats exposes in the serving shape.
type benchTarget struct {
	mu     sync.Mutex
	seen   map[string]int
	hits   int64
	misses int64
	srv    *httptest.Server
}

func newBenchTarget(t *testing.T) *benchTarget {
	t.Helper()
	b := &benchTarget{seen: make(map[string]int)}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/augment", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Prompt string `json:"prompt"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b.mu.Lock()
		b.seen[req.Prompt]++
		if b.seen[req.Prompt] > 1 {
			b.hits++
		} else {
			b.misses++
		}
		b.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"augmented": req.Prompt + " [aug]"})
	})
	mux.HandleFunc("/v1/chat/completions", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Messages []struct {
				Content string `json:"content"`
			} `json:"messages"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b.mu.Lock()
		for _, m := range req.Messages {
			b.seen[m.Content]++
		}
		b.mu.Unlock()
		w.Header().Set("X-PAS-Degraded", "1")
		_ = json.NewEncoder(w).Encode(map[string]any{"choices": []any{}})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		hits, misses := b.hits, b.misses
		b.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]any{
			"cache": map[string]int64{"hits": hits, "misses": misses},
		})
	})
	b.srv = httptest.NewServer(mux)
	t.Cleanup(b.srv.Close)
	return b
}

func prompts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("prompt %d", i)
	}
	return out
}

// TestRunAugment: a count-bounded zipfian run hits the augment endpoint
// the requested number of times, measures latency, and reads the
// replica's cache delta through /v1/stats.
func TestRunAugment(t *testing.T) {
	b := newBenchTarget(t)
	rep, err := Run(context.Background(), Config{
		Target:      b.srv.URL,
		Prompts:     prompts(50),
		Requests:    120,
		Concurrency: 4,
		Seed:        7,
		Replicas:    []string{b.srv.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 120 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d (first: %s)", rep.Requests, rep.Errors, rep.FirstError)
	}
	if rep.DistinctKeys <= 0 || rep.DistinctKeys >= 50 {
		t.Fatalf("zipf distinct keys = %d, want a skewed subset of 50", rep.DistinctKeys)
	}
	if rep.LatencyP50Ms <= 0 || rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Fatalf("bad quantiles: p50=%v p99=%v", rep.LatencyP50Ms, rep.LatencyP99Ms)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatal("achieved QPS not computed")
	}
	if len(rep.Replicas) != 1 || rep.Replicas[0].Error != "" {
		t.Fatalf("replica scrape: %+v", rep.Replicas)
	}
	// 120 requests over DistinctKeys prompts: misses = distinct, the
	// rest hit.
	if got := rep.Replicas[0].Misses; got != int64(rep.DistinctKeys) {
		t.Fatalf("misses = %d, want %d (one per distinct key)", got, rep.DistinctKeys)
	}
	if rep.ClusterHits+rep.ClusterMisses != 120 {
		t.Fatalf("cluster lookups = %d, want 120", rep.ClusterHits+rep.ClusterMisses)
	}
	if rep.ClusterHitRatio <= 0 {
		t.Fatal("cluster hit ratio missing")
	}
	// The report must marshal — it is committed as BENCH_serving.json.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", rep.SchemaVersion, ReportSchemaVersion)
	}
	if rep.GeneratedUnix <= 0 {
		t.Fatalf("generated_unix = %d, want a positive wall-clock stamp", rep.GeneratedUnix)
	}
}

// TestRunDeterministicKeys: equal seeds replay the identical key
// sequence; different seeds do not (with overwhelming probability).
func TestRunDeterministicKeys(t *testing.T) {
	run := func(seed int64) map[string]int {
		b := newBenchTarget(t)
		if _, err := Run(context.Background(), Config{
			Target:      b.srv.URL,
			Prompts:     prompts(200),
			Requests:    80,
			Concurrency: 3,
			Seed:        seed,
		}); err != nil {
			t.Fatal(err)
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		out := make(map[string]int, len(b.seen))
		for k, v := range b.seen {
			out[k] = v
		}
		return out
	}
	a, b2, c := run(42), run(42), run(43)
	if fmt.Sprint(a) != fmt.Sprint(b2) {
		t.Fatalf("same seed produced different key multisets:\n%v\n%v", a, b2)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical key multisets")
	}
}

// TestRunChatAndQPS: chat mode posts chat completions and a QPS cap
// paces the run; the degraded header is counted.
func TestRunChatAndQPS(t *testing.T) {
	b := newBenchTarget(t)
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		Target:      b.srv.URL,
		Mode:        ModeChat,
		Prompts:     prompts(10),
		Requests:    20,
		QPS:         100,
		Concurrency: 4,
		Skew:        SkewUniform,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 20 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d (first: %s)", rep.Requests, rep.Errors, rep.FirstError)
	}
	// 20 requests at 100 QPS: the last dispatch waits ~190ms.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("QPS pacing did not throttle: run took %v", elapsed)
	}
	if rep.Degraded != 20 {
		t.Fatalf("degraded = %d, want 20 (header on every response)", rep.Degraded)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.seen) == 0 {
		t.Fatal("chat handler never saw a message")
	}
}

// TestConfigValidation: broken configs fail before any traffic.
func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                   // no target
		{Target: "http://x"}, // no prompts
		{Target: "http://x", Prompts: []string{"p"}, Mode: "nope"},
		{Target: "http://x", Prompts: []string{"p"}, Skew: "nope"},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: Run succeeded, want config error", i)
		}
	}
}
