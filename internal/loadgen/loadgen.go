// Package loadgen replays a prompt corpus against a PAS serving tier —
// one replica, or a cluster behind pasproxy — at a configurable rate,
// concurrency, and key skew, and reports latency quantiles plus
// per-replica cache behavior in a machine-readable shape (the
// BENCH_serving.json committed by CI).
//
// The generator is deterministic for a given Config: key selection is
// driven by an explicit seed, so two runs against identical clusters
// replay the identical request sequence. Zipfian skew models the
// repeated-prompt traffic PAS caches for; uniform skew measures the
// cold path.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Modes and skews accepted by Config.
const (
	ModeAugment = "augment" // POST /v1/augment on a replica or cluster proxy
	ModeChat    = "chat"    // POST /v1/chat/completions through pasproxy

	SkewZipf    = "zipf"
	SkewUniform = "uniform"
)

// Config shapes one load run. Zero values select defaults.
type Config struct {
	// Target is the base URL under test (proxy or replica). Required.
	Target string
	// Mode selects the endpoint replayed. Default ModeAugment.
	Mode string
	// Model is the chat-mode model field. Default "pas-bench".
	Model string
	// Prompts is the replayed corpus; keys are drawn from it by index.
	// Required.
	Prompts []string
	// Requests bounds the run by count; Duration by wall clock. With
	// both zero the run is 200 requests; with both set, whichever stops
	// first wins.
	Requests int
	Duration time.Duration
	// QPS is the offered rate; 0 means unthrottled.
	QPS float64
	// Concurrency is the worker count. Default 8.
	Concurrency int
	// Skew picks the key distribution. Default SkewZipf.
	Skew string
	// ZipfS is the zipf s parameter (>1; larger = hotter head).
	// Default 1.2.
	ZipfS float64
	// Seed drives key sampling; equal seeds replay equal sequences.
	Seed int64
	// Tenants, when positive, labels every request with a synthetic
	// tenant ("t0".."tN-1") via X-PAS-Tenant and adds per-tenant rows to
	// the report. Zero keeps requests anonymous — and keeps the sampled
	// key sequence byte-identical to pre-tenant runs, because the tenant
	// draw only happens when Tenants > 0.
	Tenants int
	// TenantSkew is tenant t0's traffic weight relative to each other
	// tenant (default 1 = uniform). 10 with Tenants=5 makes t0 a noisy
	// neighbor carrying ~71% of the offered load — the fair-share
	// isolation scenario.
	TenantSkew float64
	// Timeout bounds one request. Default 10s.
	Timeout time.Duration
	// Salt is sent with every augmentation.
	Salt string
	// Replicas, when set, are scraped at /v1/stats before and after the
	// run; the report carries each replica's hit/miss delta, which is
	// how cluster cache locality is measured from the outside.
	Replicas []string
	// Stop, when non-nil, ends the run gracefully when closed: the
	// dispatcher hands out no further keys but in-flight requests
	// finish and are counted. This is how RunWithChurn bounds a run by
	// "the churn is over" rather than a count or clock — unlike a ctx
	// cancellation, which aborts in-flight requests as errors.
	Stop <-chan struct{}
	// HTTPClient carries the traffic; nil builds a pooled default.
	HTTPClient *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.Target == "" {
		return c, errors.New("loadgen: target URL is required")
	}
	if len(c.Prompts) == 0 {
		return c, errors.New("loadgen: prompt corpus is empty")
	}
	if c.Mode == "" {
		c.Mode = ModeAugment
	}
	if c.Mode != ModeAugment && c.Mode != ModeChat {
		return c, fmt.Errorf("loadgen: unknown mode %q (want %s or %s)", c.Mode, ModeAugment, ModeChat)
	}
	if c.Model == "" {
		c.Model = "pas-bench"
	}
	if c.Requests <= 0 && c.Duration <= 0 {
		c.Requests = 200
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Skew == "" {
		c.Skew = SkewZipf
	}
	if c.Skew != SkewZipf && c.Skew != SkewUniform {
		return c, fmt.Errorf("loadgen: unknown skew %q (want %s or %s)", c.Skew, SkewZipf, SkewUniform)
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Tenants < 0 {
		return c, fmt.Errorf("loadgen: negative tenant count %d", c.Tenants)
	}
	if c.TenantSkew <= 0 {
		c.TenantSkew = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c, nil
}

// ReplicaReport is one replica's cache movement over the run, from its
// /v1/stats deltas.
type ReplicaReport struct {
	URL    string `json:"url"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
	// HitRatio is hits/(hits+misses) over the run's delta; 0 when the
	// replica saw no lookups.
	HitRatio float64 `json:"hit_ratio"`
	// Error is set when the replica's stats endpoint was unreachable;
	// the deltas are then meaningless.
	Error string `json:"error,omitempty"`
}

// Report is the machine-readable run summary.
// ReportSchemaVersion is stamped into every Report so committed
// BENCH_*.json files and their consumers (diff tooling, dashboards)
// can detect shape drift instead of misreading old fields.
const ReportSchemaVersion = 1

type Report struct {
	// SchemaVersion is ReportSchemaVersion at generation time;
	// GeneratedUnix is the wall-clock stamp (seconds) — provenance
	// only, never compared.
	SchemaVersion int   `json:"schema_version"`
	GeneratedUnix int64 `json:"generated_unix"`

	Mode        string  `json:"mode"`
	Target      string  `json:"target"`
	Skew        string  `json:"skew"`
	Concurrency int     `json:"concurrency"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	Seed        int64   `json:"seed"`

	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Degraded counts every served request below full quality;
	// DegradedTrim and DegradedRaw split it by brownout rung (the
	// X-PAS-Degraded wire values "trim" and "1" respectively).
	Degraded     int `json:"degraded"`
	DegradedTrim int `json:"degraded_trim,omitempty"`
	DegradedRaw  int `json:"degraded_raw,omitempty"`
	// Shed counts requests the serving side refused with 503 — load
	// shedding or a draining replica. They are availability events, not
	// failures: the server answered deliberately, with Retry-After.
	Shed         int `json:"shed"`
	DistinctKeys int `json:"distinct_keys"`

	DurationSeconds float64 `json:"duration_seconds"`
	AchievedQPS     float64 `json:"achieved_qps"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`

	// Replicas are the per-replica cache deltas; ClusterHitRatio pools
	// them. Present only when Config.Replicas was set.
	Replicas        []ReplicaReport `json:"replicas,omitempty"`
	ClusterHits     int64           `json:"cluster_hits,omitempty"`
	ClusterMisses   int64           `json:"cluster_misses,omitempty"`
	ClusterHitRatio float64         `json:"cluster_hit_ratio,omitempty"`

	// Tenants are the per-tenant rows, sorted by tenant name; present
	// only when Config.Tenants was positive. TenantSkew echoes the
	// configured skew so a committed report is self-describing.
	Tenants    []TenantReport `json:"tenants,omitempty"`
	TenantSkew float64        `json:"tenant_skew,omitempty"`

	// FirstError is a sample failure message for quick triage.
	FirstError string `json:"first_error,omitempty"`

	// Churn is present when the run was driven by RunWithChurn: the
	// rolling-restart timeline and the hit-ratio recovery evidence.
	Churn *ChurnReport `json:"churn,omitempty"`
}

// TenantReport is one tenant's slice of the run: how much it offered,
// how much was refused, and what quality the served share came back at.
// The isolation check reads straight off two of these rows — a flooded
// run's well-behaved tenant against its solo baseline.
type TenantReport struct {
	Tenant   string `json:"tenant"`
	Requests int    `json:"requests"`
	Errors   int    `json:"errors,omitempty"`
	Shed     int    `json:"shed"`
	// Degraded splits by brownout rung, as in the top-level report.
	DegradedTrim int `json:"degraded_trim"`
	DegradedRaw  int `json:"degraded_raw"`

	// Latency quantiles cover served requests only (refusals are fast
	// by design and would flatter the numbers).
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// tenantAgg accumulates one tenant's counters during the run.
type tenantAgg struct {
	requests, errors, shed int
	trim, raw              int
	latencies              []float64
}

// Run replays the corpus and returns the report. It stops at the
// request count, the duration, or ctx — whichever comes first; partial
// runs still report what completed.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}

	before := scrapeReplicas(ctx, cfg.HTTPClient, cfg.Replicas)

	// The dispatcher owns the RNG: one goroutine samples key indices
	// (keeping the sequence deterministic regardless of worker timing)
	// and paces them onto the channel at the target QPS.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Skew == SkewZipf {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Prompts)-1))
	}
	sample := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return rng.Intn(len(cfg.Prompts))
	}
	// The tenant draw happens strictly after the key draw and only when
	// tenants are enabled, so a tenant-free run consumes the exact RNG
	// sequence older runs did — committed BENCH files stay replayable.
	// t0 carries TenantSkew× the weight of each other tenant.
	sampleTenant := func() string {
		if cfg.Tenants <= 0 {
			return ""
		}
		if cfg.Tenants == 1 {
			return "t0"
		}
		total := cfg.TenantSkew + float64(cfg.Tenants-1)
		draw := rng.Float64() * total
		if draw < cfg.TenantSkew {
			return "t0"
		}
		i := 1 + int(draw-cfg.TenantSkew)
		if i >= cfg.Tenants { // guard the draw == total edge
			i = cfg.Tenants - 1
		}
		return fmt.Sprintf("t%d", i)
	}

	type job struct {
		idx    int
		tenant string
	}
	idxCh := make(chan job)
	// Distinct is keyed by prompt text, not index: the corpus can carry
	// duplicate texts, and identical text means one cache key cluster-wide.
	distinct := make(map[string]struct{})
	start := time.Now()
	go func() {
		defer close(idxCh)
		// One pacing timer reused across iterations: time.After here
		// would allocate a timer per request that only frees when it
		// fires, which at load-test QPS is a steady heap of garbage.
		var pace *time.Timer
		defer func() {
			if pace != nil {
				pace.Stop()
			}
		}()
		for n := 0; ; n++ {
			if cfg.Requests > 0 && n >= cfg.Requests {
				return
			}
			if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
				return
			}
			select {
			case <-cfg.Stop:
				return
			default:
			}
			if cfg.QPS > 0 {
				next := start.Add(time.Duration(float64(n) / cfg.QPS * float64(time.Second)))
				if d := time.Until(next); d > 0 {
					if pace == nil {
						pace = time.NewTimer(d)
					} else {
						// The only way past the previous select is draining
						// pace.C, so Reset never races a pending fire.
						pace.Reset(d)
					}
					select {
					case <-pace.C:
					case <-cfg.Stop:
						return
					case <-ctx.Done():
						return
					}
				}
			}
			idx := sample()
			distinct[cfg.Prompts[idx]] = struct{}{}
			select {
			case idxCh <- job{idx: idx, tenant: sampleTenant()}:
			case <-cfg.Stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		mu         sync.Mutex
		latencies  []float64
		requests   int
		errCount   int
		trimCount  int
		rawCount   int
		shedCount  int
		firstError string
		tenants    map[string]*tenantAgg
	)
	if cfg.Tenants > 0 {
		tenants = make(map[string]*tenantAgg, cfg.Tenants)
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idxCh {
				t0 := time.Now()
				level, shed, err := doOne(ctx, cfg, cfg.Prompts[j.idx], j.tenant)
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				requests++
				var agg *tenantAgg
				if tenants != nil {
					if agg = tenants[j.tenant]; agg == nil {
						agg = &tenantAgg{}
						tenants[j.tenant] = agg
					}
					agg.requests++
				}
				switch {
				case err != nil:
					errCount++
					if firstError == "" {
						firstError = err.Error()
					}
					if agg != nil {
						agg.errors++
					}
				case shed:
					// A deliberate 503 refusal: counted on its own, and
					// kept out of the latency window — a fast refusal is
					// not a served request.
					shedCount++
					if agg != nil {
						agg.shed++
					}
				default:
					latencies = append(latencies, ms)
					switch level {
					case "":
					case "trim":
						trimCount++
						if agg != nil {
							agg.trim++
						}
					default: // "1" and any future raw-equivalent rung
						rawCount++
						if agg != nil {
							agg.raw++
						}
					}
					if agg != nil {
						agg.latencies = append(agg.latencies, ms)
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeReplicas(ctx, cfg.HTTPClient, cfg.Replicas)

	r := Report{
		SchemaVersion:   ReportSchemaVersion,
		GeneratedUnix:   time.Now().Unix(),
		Mode:            cfg.Mode,
		Target:          cfg.Target,
		Skew:            cfg.Skew,
		Concurrency:     cfg.Concurrency,
		TargetQPS:       cfg.QPS,
		Seed:            cfg.Seed,
		Requests:        requests,
		Errors:          errCount,
		Degraded:        trimCount + rawCount,
		DegradedTrim:    trimCount,
		DegradedRaw:     rawCount,
		Shed:            shedCount,
		DistinctKeys:    len(distinct),
		DurationSeconds: elapsed.Seconds(),
		FirstError:      firstError,
	}
	if tenants != nil {
		r.TenantSkew = cfg.TenantSkew
		names := make([]string, 0, len(tenants))
		for name := range tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			agg := tenants[name]
			r.Tenants = append(r.Tenants, TenantReport{
				Tenant:       name,
				Requests:     agg.requests,
				Errors:       agg.errors,
				Shed:         agg.shed,
				DegradedTrim: agg.trim,
				DegradedRaw:  agg.raw,
				LatencyP50Ms: quantileOrZero(agg.latencies, 0.50),
				LatencyP99Ms: quantileOrZero(agg.latencies, 0.99),
			})
		}
	}
	if elapsed > 0 {
		r.AchievedQPS = float64(requests) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		r.LatencyP50Ms = quantileOrZero(latencies, 0.50)
		r.LatencyP90Ms = quantileOrZero(latencies, 0.90)
		r.LatencyP99Ms = quantileOrZero(latencies, 0.99)
		for _, l := range latencies {
			if l > r.LatencyMaxMs {
				r.LatencyMaxMs = l
			}
		}
	}
	for i, u := range cfg.Replicas {
		rr := ReplicaReport{URL: u}
		switch {
		case before[i].err != nil:
			rr.Error = before[i].err.Error()
		case after[i].err != nil:
			rr.Error = after[i].err.Error()
		default:
			rr.Hits = after[i].hits - before[i].hits
			rr.Misses = after[i].misses - before[i].misses
			if lookups := rr.Hits + rr.Misses; lookups > 0 {
				rr.HitRatio = float64(rr.Hits) / float64(lookups)
			}
			r.ClusterHits += rr.Hits
			r.ClusterMisses += rr.Misses
		}
		r.Replicas = append(r.Replicas, rr)
	}
	if lookups := r.ClusterHits + r.ClusterMisses; lookups > 0 {
		r.ClusterHitRatio = float64(r.ClusterHits) / float64(lookups)
	}
	return r, nil
}

// doOne issues one request and reports the degradation level the
// serving side flagged it with ("" full quality, "trim" the brownout
// cheap complement, "1" raw passthrough) and whether it was shed with a
// deliberate 503.
func doOne(ctx context.Context, cfg Config, prompt, tenant string) (level string, shed bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	var path string
	var payload any
	switch cfg.Mode {
	case ModeChat:
		path = "/v1/chat/completions"
		payload = map[string]any{
			"model": cfg.Model,
			"messages": []map[string]string{
				{"role": "user", "content": prompt},
			},
		}
	default:
		path = "/v1/augment"
		payload = map[string]string{"prompt": prompt, "salt": cfg.Salt}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return "", false, fmt.Errorf("loadgen: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Target+path, bytes.NewReader(body))
	if err != nil {
		return "", false, fmt.Errorf("loadgen: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	if tenant != "" {
		req.Header.Set("X-PAS-Tenant", tenant)
	}
	resp, err := cfg.HTTPClient.Do(req)
	if err != nil {
		return "", false, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	defer resp.Body.Close()
	level = resp.Header.Get("X-PAS-Degraded")
	if resp.StatusCode == http.StatusServiceUnavailable {
		// The serving side shed the request on purpose (overload or a
		// draining replica). Drain the body; this is not an error.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return level, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		// Drain a bounded slice for the error message.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return level, false, fmt.Errorf("loadgen: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if cfg.Mode == ModeAugment {
		var wire struct {
			Degraded      bool   `json:"degraded"`
			DegradedLevel string `json:"degraded_level"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&wire); err != nil {
			return level, false, fmt.Errorf("loadgen: decoding augment response: %w", err)
		}
		// The header is authoritative; fall back to the body for servers
		// that only speak the boolean contract.
		if level == "" && wire.DegradedLevel != "" {
			level = wire.DegradedLevel
		}
		if level == "" && wire.Degraded {
			level = "1"
		}
		return level, false, nil
	}
	// Chat mode: the completion body is upstream's business; drain it so
	// the connection is reusable.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<20))
	return level, false, nil
}

// replicaCache is one scrape of a replica's cache counters.
type replicaCache struct {
	hits, misses int64
	err          error
}

// scrapeReplicas reads each replica's /v1/stats (the serving.Stats
// JSON shape); a failed scrape is recorded, not fatal.
func scrapeReplicas(ctx context.Context, hc *http.Client, replicas []string) []replicaCache {
	out := make([]replicaCache, len(replicas))
	for i, u := range replicas {
		out[i] = scrapeOne(ctx, hc, u)
	}
	return out
}

func scrapeOne(ctx context.Context, hc *http.Client, replica string) replicaCache {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/v1/stats", nil)
	if err != nil {
		return replicaCache{err: fmt.Errorf("loadgen: building stats request: %w", err)}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return replicaCache{err: fmt.Errorf("loadgen: scraping %s: %w", replica, err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return replicaCache{err: fmt.Errorf("loadgen: scraping %s: status %d", replica, resp.StatusCode)}
	}
	var wire struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wire); err != nil {
		return replicaCache{err: fmt.Errorf("loadgen: decoding %s stats: %w", replica, err)}
	}
	return replicaCache{hits: wire.Cache.Hits, misses: wire.Cache.Misses}
}

func quantileOrZero(xs []float64, q float64) float64 {
	v, err := metrics.Quantile(xs, q)
	if err != nil {
		return 0
	}
	return v
}
