package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/resilience"
)

// ChurnTarget is one replica to roll. The three hooks are how the
// orchestrator touches it; any may be nil and is then skipped — the
// HTTP controller in pasload, for example, drains with exit=true and
// leaves kill/restart to the process supervisor, detecting the rejoin
// through Ready polling alone.
type ChurnTarget struct {
	// URL is the replica base URL, used for readiness polling and the
	// event timeline.
	URL string
	// Drain asks the replica to stop taking new work (POST /v1/drain).
	Drain func(ctx context.Context) error
	// Kill stops the process/listener hard, after the drain linger.
	Kill func(ctx context.Context) error
	// Restart brings a fresh process up on the same address.
	Restart func(ctx context.Context) error
}

// ChurnPlan shapes one rolling restart: each target is drained,
// killed, restarted, and awaited in sequence while the load keeps
// running. Zero durations select defaults.
type ChurnPlan struct {
	Targets []ChurnTarget
	// Warmup runs load before anything is touched, filling caches.
	// Default 500ms.
	Warmup time.Duration
	// Measure, after the warmup, is the quiet window over which the
	// pre-churn hit ratio is sampled. Default = Cooldown, so the before
	// and after windows compare like for like.
	Measure time.Duration
	// DrainLinger is how long a drained replica keeps running before
	// the kill — time for the router to see "draining" and for
	// in-flight work to finish. Default 300ms.
	DrainLinger time.Duration
	// DownTime separates the kill from the restart. Default 200ms.
	DownTime time.Duration
	// RejoinTimeout bounds the wait for a restarted replica to answer
	// Ready. Default 5s.
	RejoinTimeout time.Duration
	// Settle runs load between one replica's rejoin and the next
	// replica's drain. Default 200ms.
	Settle time.Duration
	// Cooldown runs load after the last rejoin; the recovery hit ratio
	// is the cluster delta over this window. Default 500ms.
	Cooldown time.Duration
	// Ready reports whether a replica has rejoined: nil defaults to
	// GET /v1/status answering 200 with a non-draining status. The
	// orchestrator polls it every 20ms until RejoinTimeout.
	Ready func(ctx context.Context, url string) error
}

func (p ChurnPlan) withDefaults() ChurnPlan {
	if p.Warmup <= 0 {
		p.Warmup = 500 * time.Millisecond
	}
	if p.DrainLinger <= 0 {
		p.DrainLinger = 300 * time.Millisecond
	}
	if p.DownTime <= 0 {
		p.DownTime = 200 * time.Millisecond
	}
	if p.RejoinTimeout <= 0 {
		p.RejoinTimeout = 5 * time.Second
	}
	if p.Settle <= 0 {
		p.Settle = 200 * time.Millisecond
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 500 * time.Millisecond
	}
	if p.Measure <= 0 {
		p.Measure = p.Cooldown
	}
	return p
}

// ChurnEvent is one step of the rolling restart, stamped relative to
// the run start.
type ChurnEvent struct {
	Replica string `json:"replica"`
	// Phase is drain, kill, restart, or rejoin.
	Phase string `json:"phase"`
	AtMs  int64  `json:"at_ms"`
	// Error records a failed step; the roll continues to the next
	// replica regardless, and the caller judges the report.
	Error string `json:"error,omitempty"`
}

// ChurnReport is the rolling-restart evidence attached to a Report.
type ChurnReport struct {
	Events []ChurnEvent `json:"events"`
	// PreChurn* sample the cluster cache over a quiet window before the
	// first drain; Recovery* over the cooldown after the last rejoin.
	// The windows are the same length, so the two ratios compare
	// directly: recovery within a few points of pre-churn means the
	// caches survived (or refilled across) the roll.
	PreChurnLookups  int64   `json:"pre_churn_lookups"`
	PreChurnHitRatio float64 `json:"pre_churn_hit_ratio"`
	RecoveryLookups  int64   `json:"recovery_lookups"`
	RecoveryHitRatio float64 `json:"recovery_hit_ratio"`
}

// RunWithChurn replays load like Run while rolling every plan target
// in sequence: drain → linger → kill → downtime → restart → await
// ready → settle. The run ends when the roll (plus cooldown) does; the
// report carries the usual latency/error accounting plus the churn
// timeline and hit-ratio recovery windows. cfg.Requests and
// cfg.Duration are ignored — the churn is the clock. cfg.Replicas are
// scraped in windows rather than whole-run (a restart resets replica
// counters, which would corrupt a whole-run delta).
func RunWithChurn(ctx context.Context, cfg Config, plan ChurnPlan) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}
	plan = plan.withDefaults()
	if len(plan.Targets) == 0 {
		return Report{}, fmt.Errorf("loadgen: churn plan has no targets")
	}
	if plan.Ready == nil {
		hc := cfg.HTTPClient
		plan.Ready = func(ctx context.Context, url string) error {
			return statusReady(ctx, hc, url)
		}
	}

	replicas := cfg.Replicas
	inner := cfg
	inner.Replicas = nil // window scrapes below replace the whole-run delta
	inner.Requests = 0
	inner.Duration = 24 * time.Hour // the stop channel is the real bound
	stop := make(chan struct{})
	inner.Stop = stop

	churn := &ChurnReport{}
	start := time.Now()
	go func() {
		defer close(stop)
		runChurn(ctx, cfg.HTTPClient, replicas, plan, churn, start)
	}()

	rep, err := Run(ctx, inner)
	if err != nil {
		return rep, err
	}
	rep.Churn = churn
	return rep, nil
}

// runChurn executes the roll and fills the report. Orchestration
// failures land in the event timeline, not in an error return: the
// load run completes either way and the caller inspects the evidence.
func runChurn(ctx context.Context, hc *http.Client, replicas []string, plan ChurnPlan, churn *ChurnReport, start time.Time) {
	event := func(replica, phase string, err error) {
		e := ChurnEvent{Replica: replica, Phase: phase, AtMs: time.Since(start).Milliseconds()}
		if err != nil {
			e.Error = err.Error()
		}
		churn.Events = append(churn.Events, e)
	}
	step := func(replica, phase string, fn func(context.Context) error) {
		if fn == nil {
			return
		}
		event(replica, phase, fn(ctx))
	}

	if resilience.SleepContext(ctx, plan.Warmup) != nil {
		return
	}
	preA := scrapeReplicas(ctx, hc, replicas)
	if resilience.SleepContext(ctx, plan.Measure) != nil {
		return
	}
	preB := scrapeReplicas(ctx, hc, replicas)
	churn.PreChurnLookups, churn.PreChurnHitRatio = windowRatio(preA, preB)

	for _, t := range plan.Targets {
		step(t.URL, "drain", t.Drain)
		if resilience.SleepContext(ctx, plan.DrainLinger) != nil {
			return
		}
		step(t.URL, "kill", t.Kill)
		if resilience.SleepContext(ctx, plan.DownTime) != nil {
			return
		}
		step(t.URL, "restart", t.Restart)
		event(t.URL, "rejoin", awaitReady(ctx, plan, t.URL))
		if resilience.SleepContext(ctx, plan.Settle) != nil {
			return
		}
	}

	recA := scrapeReplicas(ctx, hc, replicas)
	if resilience.SleepContext(ctx, plan.Cooldown) != nil {
		return
	}
	recB := scrapeReplicas(ctx, hc, replicas)
	churn.RecoveryLookups, churn.RecoveryHitRatio = windowRatio(recA, recB)
}

// awaitReady polls plan.Ready until it succeeds or RejoinTimeout.
func awaitReady(ctx context.Context, plan ChurnPlan, url string) error {
	deadline := time.Now().Add(plan.RejoinTimeout)
	var lastErr error
	for {
		rctx, cancel := context.WithTimeout(ctx, plan.RejoinTimeout)
		lastErr = plan.Ready(rctx, url)
		cancel()
		if lastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s not ready after %s: %w", url, plan.RejoinTimeout, lastErr)
		}
		if err := resilience.SleepContext(ctx, 20*time.Millisecond); err != nil {
			return err
		}
	}
}

// statusReady is the default readiness check: /v1/status answers 200
// and is not announcing a drain.
func statusReady(ctx context.Context, hc *http.Client, url string) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/status", nil)
	if err != nil {
		return fmt.Errorf("loadgen: building readiness request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: readiness %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: readiness %s: status %d", url, resp.StatusCode)
	}
	var wire struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &wire); err == nil && wire.Status == "draining" {
		return fmt.Errorf("loadgen: readiness %s: still draining", url)
	}
	return nil
}

// windowRatio pools the hit/miss deltas between two scrapes. Replicas
// whose scrape failed, or whose counters went backwards (a restart
// inside the window), are excluded — their delta is meaningless.
func windowRatio(before, after []replicaCache) (lookups int64, ratio float64) {
	var hits, misses int64
	for i := range before {
		if before[i].err != nil || after[i].err != nil {
			continue
		}
		dh := after[i].hits - before[i].hits
		dm := after[i].misses - before[i].misses
		if dh < 0 || dm < 0 {
			continue
		}
		hits += dh
		misses += dm
	}
	lookups = hits + misses
	if lookups > 0 {
		ratio = float64(hits) / float64(lookups)
	}
	return lookups, ratio
}
