// Package datastats computes the §3.3 dataset analysis: the paper devotes
// a section to characterising the generated prompt-complementary dataset
// (category distribution, coverage, quality), and this package produces
// that report for any dataset — the generated one, the no-selection
// ablation, or a user-supplied JSONL file.
package datastats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/facet"
	"repro/internal/textkit"
)

// CategoryStats characterises one category's slice of the dataset.
type CategoryStats struct {
	Category facet.Category
	// Count and Share mirror Figure 6.
	Count int
	Share float64
	// MeanPromptWords / MeanComplementWords describe lengths.
	MeanPromptWords     float64
	MeanComplementWords float64
	// DefectRate is the ground-truth defective fraction (answer leak,
	// constraint conflict, over-reach, or no directives).
	DefectRate float64
	// TopFacets are the most demanded facets, in order.
	TopFacets []facet.Facet
}

// Report is the full dataset analysis.
type Report struct {
	Total int
	// Categories is ordered by taxonomy.
	Categories []CategoryStats
	// OverallDefectRate is the dataset-wide defective fraction.
	OverallDefectRate float64
	// FacetUsage is the global distribution over demanded facets.
	FacetUsage facet.Weights
	// WithinBudget is the fraction of complements respecting the
	// Figure 4 instruction to stay within ~30 words.
	WithinBudget float64
	// GiniShare measures category imbalance (0 = uniform, →1 = one
	// category dominates); the paper's distribution is mildly skewed
	// toward Coding and Q&A.
	GiniShare float64
}

// Analyze computes the report for a dataset.
// It returns an error for an empty dataset.
func Analyze(d *dataset.Dataset) (*Report, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("datastats: empty dataset")
	}
	rep := &Report{Total: d.Len()}

	type agg struct {
		count        int
		promptWords  int
		compWords    int
		defects      int
		facetCounts  facet.Weights
		withinBudget int
	}
	perCat := make(map[facet.Category]*agg)
	var global agg

	for _, p := range d.Pairs {
		c := p.CategoryOrDefault()
		a := perCat[c]
		if a == nil {
			a = &agg{}
			perCat[c] = a
		}
		pw := textkit.WordCount(p.Prompt)
		cw := textkit.WordCount(p.Complement)
		defective := isDefective(p)
		dirs := facet.DetectDirectives(p.Complement)

		for _, x := range []*agg{a, &global} {
			x.count++
			x.promptWords += pw
			x.compWords += cw
			if defective {
				x.defects++
			}
			if cw <= 34 { // Figure 4: "try to keep it within 30 words"
				x.withinBudget++
			}
			for _, f := range dirs.Facets() {
				x.facetCounts[f]++
			}
		}
	}

	var shares []float64
	for _, c := range facet.Categories() {
		a := perCat[c]
		if a == nil {
			rep.Categories = append(rep.Categories, CategoryStats{Category: c})
			shares = append(shares, 0)
			continue
		}
		n := float64(a.count)
		cs := CategoryStats{
			Category:            c,
			Count:               a.count,
			Share:               n / float64(rep.Total),
			MeanPromptWords:     float64(a.promptWords) / n,
			MeanComplementWords: float64(a.compWords) / n,
			DefectRate:          float64(a.defects) / n,
			TopFacets:           a.facetCounts.Top(3),
		}
		rep.Categories = append(rep.Categories, cs)
		shares = append(shares, cs.Share)
	}
	rep.OverallDefectRate = float64(global.defects) / float64(rep.Total)
	rep.WithinBudget = float64(global.withinBudget) / float64(rep.Total)
	rep.FacetUsage = global.facetCounts
	rep.GiniShare = gini(shares)
	return rep, nil
}

func isDefective(p dataset.Pair) bool {
	a := facet.AnalyzePrompt(p.Prompt)
	dirs := facet.DetectDirectives(p.Complement)
	return facet.DetectAnswerLeak(p.Complement) ||
		len(facet.ConflictingDirectives(a, dirs)) > 0 ||
		(dirs.Len() >= 4 && a.Complexity < 1) ||
		dirs.Len() == 0
}

// gini computes the Gini coefficient of the share vector.
func gini(shares []float64) float64 {
	n := len(shares)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), shares...)
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, s := range sorted {
		weighted += float64(2*(i+1)-n-1) * s
		cum += s
	}
	if cum == 0 {
		return 0
	}
	return weighted / (float64(n) * cum)
}

// Compare summarises how two datasets differ on headline quality
// numbers, used to contrast curated vs no-selection data.
type Compare struct {
	A, B            *Report
	DefectRateDelta float64
	BudgetDelta     float64
}

// Diff compares two reports (B minus A on defect rate).
func Diff(a, b *Report) Compare {
	return Compare{
		A:               a,
		B:               b,
		DefectRateDelta: b.OverallDefectRate - a.OverallDefectRate,
		BudgetDelta:     b.WithinBudget - a.WithinBudget,
	}
}

// String renders the report as the §3.3-style analysis table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dataset analysis (§3.3): %d pairs, defect rate %.2f%%, within 30-word budget %.1f%%, category Gini %.2f\n",
		r.Total, 100*r.OverallDefectRate, 100*r.WithinBudget, r.GiniShare)
	w := tabWriter()
	fmt.Fprintf(w, "Category\tPairs\tShare\tPrompt words\tComplement words\tDefects\tTop facets\n")
	for _, c := range r.Categories {
		facets := make([]string, len(c.TopFacets))
		for i, f := range c.TopFacets {
			facets[i] = f.String()
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f\t%.1f\t%.1f%%\t%s\n",
			c.Category, c.Count, 100*c.Share, c.MeanPromptWords, c.MeanComplementWords,
			100*c.DefectRate, strings.Join(facets, "+"))
	}
	b.WriteString(w.render())

	// Facet usage distribution.
	total := r.FacetUsage.Sum()
	if total > 0 {
		b.WriteString("demanded facets: ")
		var parts []string
		for _, f := range r.FacetUsage.Top(facet.Count) {
			parts = append(parts, fmt.Sprintf("%s %.1f%%", f, 100*r.FacetUsage[f]/total))
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteString("\n")
	}
	return b.String()
}

// tiny column-aligned writer (fmt/tabwriter-free to stay allocation lean).
type miniTab struct {
	rows [][]string
}

func tabWriter() *miniTab { return &miniTab{} }

func (m *miniTab) Write(p []byte) (int, error) {
	for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		m.rows = append(m.rows, strings.Split(line, "\t"))
	}
	return len(p), nil
}

func (m *miniTab) render() string {
	var widths []int
	for _, row := range m.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, row := range m.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
