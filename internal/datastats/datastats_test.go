package datastats

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/facet"
)

func goldenDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	d := &dataset.Dataset{}
	for _, pairs := range dataset.Golden() {
		for _, p := range pairs {
			if err := d.Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("nil dataset should fail")
	}
	if _, err := Analyze(&dataset.Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestAnalyzeGoldenDataset(t *testing.T) {
	rep, err := Analyze(goldenDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 5*facet.CategoryCount {
		t.Fatalf("total = %d", rep.Total)
	}
	if len(rep.Categories) != facet.CategoryCount {
		t.Fatalf("categories = %d", len(rep.Categories))
	}
	// Golden pairs are clean by construction.
	if rep.OverallDefectRate != 0 {
		t.Fatalf("golden defect rate = %v", rep.OverallDefectRate)
	}
	// Golden complements obey the 30-word budget.
	if rep.WithinBudget < 0.99 {
		t.Fatalf("within budget = %v", rep.WithinBudget)
	}
	// Uniform golden shares: Gini near 0.
	if rep.GiniShare > 0.05 {
		t.Fatalf("gini = %v for a uniform dataset", rep.GiniShare)
	}
	var shareSum float64
	for _, c := range rep.Categories {
		shareSum += c.Share
		if c.Count != 5 {
			t.Errorf("category %v count = %d", c.Category, c.Count)
		}
		if c.MeanComplementWords <= 0 || c.MeanPromptWords <= 0 {
			t.Errorf("category %v has zero lengths", c.Category)
		}
		if len(c.TopFacets) == 0 {
			t.Errorf("category %v has no top facets", c.Category)
		}
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", shareSum)
	}
}

func TestAnalyzeFlagsDefects(t *testing.T) {
	d := goldenDataset(t)
	// Inject defective pairs.
	for i := 0; i < 10; i++ {
		if err := d.Add(dataset.Pair{
			Prompt:     "Briefly, what is dark matter?",
			Complement: facet.RenderConflicting(facet.Conciseness, fmt.Sprint(i)),
			Category:   "qa",
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverallDefectRate <= 0 {
		t.Fatal("injected defects not counted")
	}
	var qa CategoryStats
	for _, c := range rep.Categories {
		if c.Category == facet.QA {
			qa = c
		}
	}
	if qa.DefectRate <= 0 {
		t.Fatal("qa defect rate should be positive")
	}
}

func TestDiffDetectsQualityGap(t *testing.T) {
	clean, err := Analyze(goldenDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	dirty := goldenDataset(t)
	for i := 0; i < 20; i++ {
		if err := dirty.Add(dataset.Pair{
			Prompt:     "Hello there friend!",
			Complement: facet.RenderAnswerLeak(fmt.Sprint(i)),
			Category:   "chitchat",
		}); err != nil {
			t.Fatal(err)
		}
	}
	dirtyRep, err := Analyze(dirty)
	if err != nil {
		t.Fatal(err)
	}
	cmp := Diff(clean, dirtyRep)
	if cmp.DefectRateDelta <= 0 {
		t.Fatalf("defect delta = %v, want positive", cmp.DefectRateDelta)
	}
}

func TestGini(t *testing.T) {
	if g := gini([]float64{0.25, 0.25, 0.25, 0.25}); g > 1e-9 {
		t.Fatalf("uniform gini = %v", g)
	}
	if g := gini([]float64{1, 0, 0, 0}); g < 0.7 {
		t.Fatalf("concentrated gini = %v", g)
	}
	if gini(nil) != 0 || gini([]float64{0, 0}) != 0 {
		t.Fatal("degenerate gini should be 0")
	}
}

func TestReportRendering(t *testing.T) {
	rep, err := Analyze(goldenDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"Dataset analysis", "coding", "demanded facets"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
