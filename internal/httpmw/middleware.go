// Package httpmw provides the HTTP middleware the PAS services
// (cmd/passerve, cmd/pasproxy, cmd/pasllm) run behind: panic recovery,
// request ids, distributed-trace roots, structured access logging, a
// concurrency limiter, and in-process request metrics. It is the small
// operational layer that turns a handler into a service.
package httpmw

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Chain applies middlewares right-to-left: the first listed is outermost.
func Chain(h http.Handler, mws ...func(http.Handler) http.Handler) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// Recover converts handler panics into 500 responses instead of torn
// connections, logging the panic value.
func Recover(logger *log.Logger) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
					}
					http.Error(w, `{"error":"internal server error"}`, http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// requestIDHeader carries the per-request id.
const requestIDHeader = "X-Request-Id"

// degradedHeader is the flag the serving layer sets on fail-open
// responses; the access log surfaces it so degradation is visible per
// request, not just in aggregate stats.
const degradedHeader = "X-PAS-Degraded"

// RequestID assigns a monotonically increasing request id when the
// client did not send one, and echoes it on the response.
func RequestID() func(http.Handler) http.Handler {
	var counter uint64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(requestIDHeader)
			if id == "" {
				id = fmt.Sprintf("req-%08d", atomic.AddUint64(&counter, 1))
				r.Header.Set(requestIDHeader, id)
			}
			w.Header().Set(requestIDHeader, id)
			next.ServeHTTP(w, r)
		})
	}
}

// Trace starts the request's root span: a continuation of the
// traceparent the client sent when it is well-formed, a fresh trace
// otherwise (a malformed header is never inherited). The span context
// rides r.Context() so handler code can hang child spans off it with
// obs.StartSpan, and the access log can stamp lines with the trace id.
// Responses echo the trace id in a traceparent header so callers can
// correlate. A nil tracer disables tracing with zero per-request cost.
func Trace(tracer *obs.Tracer, service string) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		if tracer == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx := r.Context()
			if remote, ok := obs.Extract(r.Header); ok {
				ctx = obs.ContextWithRemote(ctx, remote)
			}
			ctx, span := tracer.StartSpan(ctx, service+" "+r.Method+" "+r.URL.Path)
			span.SetAttr("http.method", r.Method)
			span.SetAttr("http.path", r.URL.Path)
			span.SetAttr("request.id", r.Header.Get(requestIDHeader))
			obs.Inject(ctx, w.Header())

			rec := obs.WrapResponseWriter(w)
			next.ServeHTTP(rec, r.WithContext(ctx))

			status := rec.StatusOr200()
			span.SetAttrInt("http.status", int64(status))
			// Any non-empty value is a degraded response: "1" is the
			// raw-passthrough legacy flag, "trim" the brownout ladder's
			// cheap-complement rung.
			if rec.Header().Get(degradedHeader) != "" {
				span.SetStatus("degraded")
			}
			if status >= 500 {
				span.SetError(fmt.Errorf("http status %d", status))
			}
			span.End()
		})
	}
}

// accessLine is one structured access-log record, written as a single
// JSON line so log pipelines can parse fields instead of regexes.
type accessLine struct {
	RequestID string  `json:"req_id"`
	TraceID   string  `json:"trace_id,omitempty"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Bytes     int     `json:"bytes"`
	DurMs     float64 `json:"dur_ms"`
	Shed      bool    `json:"shed,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	Degrade   string  `json:"degrade_level,omitempty"` // "trim" or "1" (raw)
	Tenant    string  `json:"tenant,omitempty"`
}

// Logging writes one JSON access-log line per request: request id,
// trace id, status, latency, and the shed/degraded flags that make
// backpressure and fail-open visible per request.
func Logging(logger *log.Logger) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			rec := obs.WrapResponseWriter(w)
			next.ServeHTTP(rec, r)
			if logger == nil {
				return
			}
			status := rec.StatusOr200()
			level := rec.Header().Get(degradedHeader)
			line := accessLine{
				RequestID: r.Header.Get(requestIDHeader),
				Method:    r.Method,
				Path:      r.URL.Path,
				Status:    status,
				Bytes:     rec.BytesWritten(),
				DurMs:     float64(time.Since(start).Microseconds()) / 1000,
				Shed:      status == http.StatusServiceUnavailable,
				Degraded:  level != "",
				Degrade:   level,
				Tenant:    TenantFromRequest(r),
			}
			if sc := obs.SpanContextFromContext(r.Context()); sc.Valid() {
				line.TraceID = sc.TraceID.String()
			}
			b, err := json.Marshal(line)
			if err != nil {
				logger.Printf("httpmw: marshaling access line: %v", err)
				return
			}
			logger.Printf("%s", b)
		})
	}
}

// ConcurrencyLimit rejects requests beyond n in flight with 503 and a
// Retry-After hint, the standard backpressure for a model-serving
// endpoint. A request whose client has already disconnected releases
// its slot without running the handler, so a burst of abandoned
// requests cannot hold capacity hostage.
func ConcurrencyLimit(n int) func(http.Handler) http.Handler {
	return ConcurrencyLimitHint(n, nil)
}

// ConcurrencyLimitHint is ConcurrencyLimit with a dynamic Retry-After:
// each shed response prices its hint from retryAfter() — typically the
// serving core's queue-drain EWMA — instead of the fixed 1s. A nil
// retryAfter keeps the constant.
func ConcurrencyLimitHint(n int, retryAfter func() int) func(http.Handler) http.Handler {
	if n < 1 {
		n = 1
	}
	sem := make(chan struct{}, n)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				if r.Context().Err() != nil {
					return // client gone before we started; don't burn the slot
				}
				next.ServeHTTP(w, r)
			default:
				hint := 1
				if retryAfter != nil {
					if h := retryAfter(); h > 0 {
						hint = h
					}
				}
				w.Header().Set("Retry-After", strconv.Itoa(hint))
				obs.AddEvent(r.Context(), "limiter.shed")
				writeJSONError(w, http.StatusServiceUnavailable, "server overloaded")
			}
		})
	}
}

// writeJSONError writes the envelope the PAS services use everywhere
// else, so limiter 503s are machine-parseable like every other error.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("httpmw: writing error response: %v", err)
	}
}

// Metrics counts requests, errors, and latency by path. After
// Register, it also feeds a per-path latency histogram whose buckets
// carry trace-ID exemplars: a slow bucket on /metricsz?exemplars=1
// names the exact trace to pull up in /debug/traces.
type Metrics struct {
	mu    sync.Mutex
	paths map[string]*pathStats

	// hist is set by Register; zero-valued (and skipped) before then.
	hist    obs.HistogramVec
	histSet bool
}

type pathStats struct {
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"` // status >= 400
	Total    time.Duration `json:"-"`
	MeanMs   float64       `json:"mean_ms"`
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{paths: make(map[string]*pathStats)}
}

// Middleware records every request into the registry. When the request
// context carries a sampled span (Metrics sits inside the Trace
// middleware in every daemon's chain), the latency observation also
// attaches that trace id as the histogram bucket's exemplar.
func (m *Metrics) Middleware() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			rec := obs.WrapResponseWriter(w)
			next.ServeHTTP(rec, r)
			dur := time.Since(start)
			hist, ok := m.observe(r.URL.Path, rec.StatusOr200(), dur)
			if ok {
				h := hist.With(r.URL.Path)
				if sc := obs.SpanContextFromContext(r.Context()); sc.Valid() && sc.Sampled {
					h.ObserveExemplar(dur.Seconds(), sc.TraceID.String())
				} else {
					h.Observe(dur.Seconds())
				}
			}
		})
	}
}

// observe updates the per-path stats and returns the latency histogram
// (set once by Register) so the caller can observe outside the lock.
func (m *Metrics) observe(path string, status int, d time.Duration) (obs.HistogramVec, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.paths[path]
	if ps == nil {
		ps = &pathStats{}
		m.paths[path] = ps
	}
	ps.Requests++
	if status >= 400 {
		ps.Errors++
	}
	ps.Total += d
	ps.MeanMs = float64(ps.Total.Milliseconds()) / float64(ps.Requests)
	return m.hist, m.histSet
}

// Snapshot returns a copy of the per-path stats.
func (m *Metrics) Snapshot() map[string]pathStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]pathStats, len(m.paths))
	for p, s := range m.paths {
		out[p] = *s
	}
	return out
}

// Register exposes the per-path stats on reg under the pas_http_
// namespace, read at scrape time so the middleware's counters stay the
// single source of truth. It also registers the
// pas_http_request_duration_seconds histogram the middleware observes
// into (with trace-ID exemplars for sampled requests).
func (m *Metrics) Register(reg *obs.Registry) {
	m.mu.Lock()
	m.hist = reg.HistogramVec("pas_http_request_duration_seconds",
		"HTTP request latency, by path.", obs.DefaultLatencyBuckets, "path")
	m.histSet = true
	m.mu.Unlock()
	reg.RegisterCollector(func(e *obs.Emitter) {
		m.mu.Lock()
		defer m.mu.Unlock()
		for path, ps := range m.paths {
			e.Counter("pas_http_requests_total", "HTTP requests served, by path.",
				float64(ps.Requests), "path", path)
			e.Counter("pas_http_errors_total", "HTTP responses with status >= 400, by path.",
				float64(ps.Errors), "path", path)
			e.Counter("pas_http_request_seconds_sum", "Total time serving HTTP requests, by path.",
				ps.Total.Seconds(), "path", path)
		}
	})
}

// Handler serves the metrics snapshot as JSON (mount at /metricsz).
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := json.NewEncoder(w).Encode(m.Snapshot()); err != nil {
			log.Printf("httpmw: writing metrics: %v", err)
		}
	})
}
