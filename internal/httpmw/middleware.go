// Package httpmw provides the HTTP middleware the PAS services
// (cmd/passerve, cmd/pasllm) run behind: panic recovery, request ids,
// structured access logging, a concurrency limiter, and in-process
// request metrics with a /metricsz endpoint. It is the small operational
// layer that turns a handler into a service.
package httpmw

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Chain applies middlewares right-to-left: the first listed is outermost.
func Chain(h http.Handler, mws ...func(http.Handler) http.Handler) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// Recover converts handler panics into 500 responses instead of torn
// connections, logging the panic value.
func Recover(logger *log.Logger) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
					}
					http.Error(w, `{"error":"internal server error"}`, http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// requestIDHeader carries the per-request id.
const requestIDHeader = "X-Request-Id"

// RequestID assigns a monotonically increasing request id when the
// client did not send one, and echoes it on the response.
func RequestID() func(http.Handler) http.Handler {
	var counter uint64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(requestIDHeader)
			if id == "" {
				id = fmt.Sprintf("req-%08d", atomic.AddUint64(&counter, 1))
				r.Header.Set(requestIDHeader, id)
			}
			w.Header().Set(requestIDHeader, id)
			next.ServeHTTP(w, r)
		})
	}
}

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += n
	return n, err
}

// Flush forwards flushing so SSE streaming keeps working through the
// middleware stack.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Logging writes one access-log line per request.
func Logging(logger *log.Logger) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			rec := &statusRecorder{ResponseWriter: w}
			next.ServeHTTP(rec, r)
			if logger != nil {
				logger.Printf("%s %s %s -> %d %dB in %s",
					r.Header.Get(requestIDHeader), r.Method, r.URL.Path,
					rec.statusOr200(), rec.bytes, time.Since(start).Round(time.Microsecond))
			}
		})
	}
}

func (sr *statusRecorder) statusOr200() int {
	if sr.status == 0 {
		return http.StatusOK
	}
	return sr.status
}

// ConcurrencyLimit rejects requests beyond n in flight with 503 and a
// Retry-After hint, the standard backpressure for a model-serving
// endpoint. A request whose client has already disconnected releases
// its slot without running the handler, so a burst of abandoned
// requests cannot hold capacity hostage.
func ConcurrencyLimit(n int) func(http.Handler) http.Handler {
	if n < 1 {
		n = 1
	}
	sem := make(chan struct{}, n)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				if r.Context().Err() != nil {
					return // client gone before we started; don't burn the slot
				}
				next.ServeHTTP(w, r)
			default:
				w.Header().Set("Retry-After", "1")
				writeJSONError(w, http.StatusServiceUnavailable, "server overloaded")
			}
		})
	}
}

// writeJSONError writes the envelope the PAS services use everywhere
// else, so limiter 503s are machine-parseable like every other error.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("httpmw: writing error response: %v", err)
	}
}

// Metrics counts requests, errors, and latency by path.
type Metrics struct {
	mu    sync.Mutex
	paths map[string]*pathStats
}

type pathStats struct {
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"` // status >= 400
	Total    time.Duration `json:"-"`
	MeanMs   float64       `json:"mean_ms"`
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{paths: make(map[string]*pathStats)}
}

// Middleware records every request into the registry.
func (m *Metrics) Middleware() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			rec := &statusRecorder{ResponseWriter: w}
			next.ServeHTTP(rec, r)
			m.observe(r.URL.Path, rec.statusOr200(), time.Since(start))
		})
	}
}

func (m *Metrics) observe(path string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.paths[path]
	if ps == nil {
		ps = &pathStats{}
		m.paths[path] = ps
	}
	ps.Requests++
	if status >= 400 {
		ps.Errors++
	}
	ps.Total += d
	ps.MeanMs = float64(ps.Total.Milliseconds()) / float64(ps.Requests)
}

// Snapshot returns a copy of the per-path stats.
func (m *Metrics) Snapshot() map[string]pathStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]pathStats, len(m.paths))
	for p, s := range m.paths {
		out[p] = *s
	}
	return out
}

// Handler serves the metrics snapshot as JSON (mount at /metricsz).
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := json.NewEncoder(w).Encode(m.Snapshot()); err != nil {
			log.Printf("httpmw: writing metrics: %v", err)
		}
	})
}
