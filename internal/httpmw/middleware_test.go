package httpmw

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
}

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(name string) func(http.Handler) http.Handler {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(okHandler(), mw("outer"), mw("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Recover(logger))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(buf.String(), "boom") {
		t.Fatal("panic not logged")
	}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	h := Chain(okHandler(), RequestID())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	id := rec.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("no request id assigned")
	}
	// Client-supplied ids are preserved.
	rec2 := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-Request-Id", "client-id-7")
	h.ServeHTTP(rec2, req)
	if got := rec2.Header().Get("X-Request-Id"); got != "client-id-7" {
		t.Fatalf("client id not preserved: %q", got)
	}
	// Distinct requests get distinct ids.
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, httptest.NewRequest("GET", "/", nil))
	if rec3.Header().Get("X-Request-Id") == id {
		t.Fatal("request ids not unique")
	}
}

func TestLoggingWritesAccessLine(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Chain(okHandler(), RequestID(), Logging(logger))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/augment", nil))
	line := buf.String()
	if !strings.Contains(line, "GET /v1/augment") || !strings.Contains(line, "200") {
		t.Fatalf("access line = %q", line)
	}
}

func TestConcurrencyLimitSheds(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		fmt.Fprint(w, "done")
	})
	h := Chain(slow, ConcurrencyLimit(1))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := srv.Client().Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started // first request is in flight

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("503 without Retry-After")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("shed response content type = %q, want JSON envelope", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"error"`) {
		t.Fatalf("shed body = %q, want error envelope", body)
	}
	close(release)
	wg.Wait()
}

// TestConcurrencyLimitSkipsCancelledClients: a request whose client
// disconnected before a slot freed up must not run the handler.
func TestConcurrencyLimitSkipsCancelledClients(t *testing.T) {
	var ran bool
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ran = true
	}), ConcurrencyLimit(1))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/", nil).WithContext(ctx)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if ran {
		t.Fatal("handler ran for a disconnected client")
	}

	// A live client still gets through afterwards: the cancelled
	// request released its slot.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !ran {
		t.Fatal("slot not released after cancelled request")
	}
}

func TestMetricsCountsAndErrors(t *testing.T) {
	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/bad" {
			http.Error(w, "no", http.StatusBadRequest)
			return
		}
		time.Sleep(time.Millisecond)
		fmt.Fprint(w, "ok")
	}), m.Middleware())

	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/good", nil))
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/bad", nil))

	snap := m.Snapshot()
	good, bad := snap["/good"], snap["/bad"]
	if good.Requests != 3 || good.Errors != 0 {
		t.Fatalf("good stats = %+v", good)
	}
	if bad.Requests != 1 || bad.Errors != 1 {
		t.Fatalf("bad stats = %+v", bad)
	}
	if good.MeanMs < 0 {
		t.Fatalf("mean = %v", good.MeanMs)
	}
}

func TestMetricsHandlerServesJSON(t *testing.T) {
	m := NewMetrics()
	h := Chain(okHandler(), m.Middleware())
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/a", nil))

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"/a"`) {
		t.Fatalf("metrics body = %s", rec.Body.String())
	}
}

// TestConcurrencyLimitRetryAfterEnvelope pins the shed response's exact
// shape: Retry-After must be a positive integer number of seconds
// (clients do arithmetic on it) and the body must be the standard
// {"error": ...} envelope with nothing trailing it.
func TestConcurrencyLimitRetryAfterEnvelope(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	})
	h := Chain(slow, ConcurrencyLimit(1))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := srv.Client().Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}
	var envelope struct {
		Error string `json:"error"`
	}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&envelope); err != nil {
		t.Fatalf("shed body is not the JSON envelope: %v", err)
	}
	if envelope.Error == "" {
		t.Fatal("envelope has empty error message")
	}
	if dec.More() {
		t.Fatal("trailing data after the error envelope")
	}
	close(release)
	wg.Wait()
}

// TestStatusRecorderOrdering covers the three WriteHeader/Write
// interleavings the logging and metrics layers depend on.
func TestStatusRecorderOrdering(t *testing.T) {
	// Explicit status before the body: recorded verbatim.
	inner := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: inner}
	sr.WriteHeader(http.StatusNotFound)
	n, err := sr.Write([]byte("nope"))
	if err != nil || n != 4 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if sr.statusOr200() != http.StatusNotFound || inner.Code != http.StatusNotFound {
		t.Fatalf("status = %d (inner %d), want 404", sr.statusOr200(), inner.Code)
	}
	if sr.bytes != 4 {
		t.Fatalf("bytes = %d, want 4", sr.bytes)
	}

	// Body first: the implicit 200 commit is recorded.
	sr2 := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	sr2.Write([]byte("x"))
	if sr2.status != http.StatusOK {
		t.Fatalf("implicit status = %d, want 200", sr2.status)
	}

	// Handler never wrote anything: statusOr200 reports 200 without
	// mutating the recorder (net/http sends 200 on its own).
	sr3 := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	if sr3.statusOr200() != http.StatusOK {
		t.Fatalf("statusOr200 = %d", sr3.statusOr200())
	}
	if sr3.status != 0 {
		t.Fatal("statusOr200 mutated the recorder")
	}
}

// TestLoggingRecordsExplicitStatus: a handler that sets its own status
// must show that status in the access line, not 200.
func TestLoggingRecordsExplicitStatus(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	}), Logging(logger))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/teapot", nil))
	if !strings.Contains(buf.String(), "418") {
		t.Fatalf("access line = %q, want explicit 418", buf.String())
	}
}

// TestMetricsCountLimiterSheds: when Metrics wraps the limiter, a shed
// 503 is a request AND an error — capacity rejections must not be
// invisible in /metricsz.
func TestMetricsCountLimiterSheds(t *testing.T) {
	m := NewMetrics()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	})
	h := Chain(slow, m.Middleware(), ConcurrencyLimit(1))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := srv.Client().Get(srv.URL + "/a")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := srv.Client().Get(srv.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	close(release)
	wg.Wait()

	snap := m.Snapshot()["/a"]
	if snap.Requests != 2 {
		t.Fatalf("requests = %d, want 2 (one served, one shed)", snap.Requests)
	}
	if snap.Errors != 1 {
		t.Fatalf("errors = %d, want the shed 503 counted", snap.Errors)
	}
}

func TestStatusRecorderFlushPassthrough(t *testing.T) {
	// SSE streaming must survive the middleware stack: the recorder must
	// implement Flush.
	var flushed bool
	inner := httptest.NewRecorder() // implements Flusher
	sr := &statusRecorder{ResponseWriter: flushRecorder{inner, &flushed}}
	sr.Flush()
	if !flushed {
		t.Fatal("flush not forwarded")
	}
}

type flushRecorder struct {
	http.ResponseWriter
	flushed *bool
}

func (f flushRecorder) Flush() { *f.flushed = true }
