package httpmw

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
}

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(name string) func(http.Handler) http.Handler {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(okHandler(), mw("outer"), mw("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Recover(logger))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(buf.String(), "boom") {
		t.Fatal("panic not logged")
	}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	h := Chain(okHandler(), RequestID())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	id := rec.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("no request id assigned")
	}
	// Client-supplied ids are preserved.
	rec2 := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-Request-Id", "client-id-7")
	h.ServeHTTP(rec2, req)
	if got := rec2.Header().Get("X-Request-Id"); got != "client-id-7" {
		t.Fatalf("client id not preserved: %q", got)
	}
	// Distinct requests get distinct ids.
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, httptest.NewRequest("GET", "/", nil))
	if rec3.Header().Get("X-Request-Id") == id {
		t.Fatal("request ids not unique")
	}
}

func TestLoggingWritesJSONAccessLine(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	tracer := obs.NewTracer(obs.TraceConfig{IDSeed: 7})
	h := Chain(okHandler(), RequestID(), Trace(tracer, "test"), Logging(logger))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/augment", nil))

	var line accessLine
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &line); err != nil {
		t.Fatalf("access line is not JSON: %v (line %q)", err, buf.String())
	}
	if line.Method != "GET" || line.Path != "/v1/augment" || line.Status != 200 {
		t.Fatalf("access line = %+v", line)
	}
	if line.RequestID == "" {
		t.Fatal("access line missing request id")
	}
	if line.TraceID == "" {
		t.Fatal("access line missing trace id")
	}
	if line.Bytes != 2 || line.DurMs < 0 {
		t.Fatalf("access line = %+v, want 2 bytes and non-negative latency", line)
	}
	if line.Shed || line.Degraded {
		t.Fatalf("clean 200 flagged shed/degraded: %+v", line)
	}
	// The logged trace id matches the stored trace.
	snap := tracer.Snapshot()
	if len(snap.Recent) != 1 || snap.Recent[0].TraceID != line.TraceID {
		t.Fatalf("log trace id %q not in store %+v", line.TraceID, snap.Recent)
	}
}

// TestLoggingFlagsShedAndDegraded: the two operational flags must be
// visible per request, not just in aggregate stats.
func TestLoggingFlagsShedAndDegraded(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)

	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-PAS-Degraded", "1")
		fmt.Fprint(w, "raw prompt")
	}), Logging(logger))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/augment", nil))
	var line accessLine
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &line); err != nil {
		t.Fatal(err)
	}
	if !line.Degraded || line.Shed {
		t.Fatalf("degraded response logged as %+v", line)
	}

	buf.Reset()
	h = Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSONError(w, http.StatusServiceUnavailable, "server overloaded")
	}), Logging(logger))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/augment", nil))
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &line); err != nil {
		t.Fatal(err)
	}
	if !line.Shed || line.Status != http.StatusServiceUnavailable {
		t.Fatalf("shed response logged as %+v", line)
	}
}

// TestTraceMiddleware covers the root-span lifecycle: a fresh trace
// when the client sent nothing, a continuation when it sent a valid
// traceparent, and a fresh root — never inheritance — on garbage.
func TestTraceMiddleware(t *testing.T) {
	tracer := obs.NewTracer(obs.TraceConfig{IDSeed: 11})
	var childTrace string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, span := obs.StartSpan(r.Context(), "work")
		childTrace = span.Context().TraceID.String()
		span.End()
		fmt.Fprint(w, "ok")
	}), RequestID(), Trace(tracer, "svc"))

	// No traceparent: fresh root, echoed on the response.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/augment", nil))
	echoed, ok := obs.ParseTraceparent(rec.Header().Get(obs.TraceparentHeader))
	if !ok {
		t.Fatalf("response traceparent %q unparseable", rec.Header().Get(obs.TraceparentHeader))
	}
	if echoed.TraceID.String() != childTrace {
		t.Fatalf("handler child trace %s != echoed %s", childTrace, echoed.TraceID)
	}
	snap := tracer.Snapshot()
	if len(snap.Recent) != 1 || len(snap.Recent[0].Spans) != 2 {
		t.Fatalf("want 1 trace with root+child, got %+v", snap.Recent)
	}

	// Valid upstream traceparent: same trace id continues.
	upstream := "00-aaaabbbbccccddddeeeeffff00001111-1234567890abcdef-01"
	req := httptest.NewRequest("GET", "/v1/augment", nil)
	req.Header.Set(obs.TraceparentHeader, upstream)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if childTrace != "aaaabbbbccccddddeeeeffff00001111" {
		t.Fatalf("continuation trace id = %s, want upstream's", childTrace)
	}

	// Malformed traceparent: fresh root, never inherited.
	req = httptest.NewRequest("GET", "/v1/augment", nil)
	req.Header.Set(obs.TraceparentHeader, "00-GARBAGE-1234567890abcdef-01")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if childTrace == "aaaabbbbccccddddeeeeffff00001111" || childTrace == "" {
		t.Fatalf("malformed traceparent inherited: trace id %s", childTrace)
	}

	// A 5xx marks the trace errored so it is always kept.
	boom := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusBadGateway)
	}), Trace(tracer, "svc"))
	boom.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	snap = tracer.Snapshot()
	found := false
	for _, tr := range snap.Recent {
		if tr.Error {
			found = true
		}
	}
	if !found {
		t.Fatal("5xx did not mark its trace errored")
	}
}

// TestTraceNilTracerPassthrough: tracing disabled must cost nothing and
// change nothing.
func TestTraceNilTracerPassthrough(t *testing.T) {
	h := okHandler()
	got := Trace(nil, "svc")(h)
	if reflect.ValueOf(got).Pointer() != reflect.ValueOf(h).Pointer() {
		t.Fatal("nil tracer did not return the handler unchanged")
	}
}

func TestConcurrencyLimitSheds(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		fmt.Fprint(w, "done")
	})
	h := Chain(slow, ConcurrencyLimit(1))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := srv.Client().Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started // first request is in flight

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("503 without Retry-After")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("shed response content type = %q, want JSON envelope", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"error"`) {
		t.Fatalf("shed body = %q, want error envelope", body)
	}
	close(release)
	wg.Wait()
}

// TestConcurrencyLimitSkipsCancelledClients: a request whose client
// disconnected before a slot freed up must not run the handler.
func TestConcurrencyLimitSkipsCancelledClients(t *testing.T) {
	var ran bool
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ran = true
	}), ConcurrencyLimit(1))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/", nil).WithContext(ctx)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if ran {
		t.Fatal("handler ran for a disconnected client")
	}

	// A live client still gets through afterwards: the cancelled
	// request released its slot.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !ran {
		t.Fatal("slot not released after cancelled request")
	}
}

func TestMetricsCountsAndErrors(t *testing.T) {
	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/bad" {
			http.Error(w, "no", http.StatusBadRequest)
			return
		}
		time.Sleep(time.Millisecond)
		fmt.Fprint(w, "ok")
	}), m.Middleware())

	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/good", nil))
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/bad", nil))

	snap := m.Snapshot()
	good, bad := snap["/good"], snap["/bad"]
	if good.Requests != 3 || good.Errors != 0 {
		t.Fatalf("good stats = %+v", good)
	}
	if bad.Requests != 1 || bad.Errors != 1 {
		t.Fatalf("bad stats = %+v", bad)
	}
	if good.MeanMs < 0 {
		t.Fatalf("mean = %v", good.MeanMs)
	}
}

func TestMetricsHandlerServesJSON(t *testing.T) {
	m := NewMetrics()
	h := Chain(okHandler(), m.Middleware())
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/a", nil))

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"/a"`) {
		t.Fatalf("metrics body = %s", rec.Body.String())
	}
}

// TestConcurrencyLimitRetryAfterEnvelope pins the shed response's exact
// shape: Retry-After must be a positive integer number of seconds
// (clients do arithmetic on it) and the body must be the standard
// {"error": ...} envelope with nothing trailing it.
func TestConcurrencyLimitRetryAfterEnvelope(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	})
	h := Chain(slow, ConcurrencyLimit(1))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := srv.Client().Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}
	var envelope struct {
		Error string `json:"error"`
	}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&envelope); err != nil {
		t.Fatalf("shed body is not the JSON envelope: %v", err)
	}
	if envelope.Error == "" {
		t.Fatal("envelope has empty error message")
	}
	if dec.More() {
		t.Fatal("trailing data after the error envelope")
	}
	close(release)
	wg.Wait()
}

// TestStatusRecorderOrdering covers the three WriteHeader/Write
// interleavings the logging and metrics layers depend on, now through
// the shared obs.ResponseRecorder.
func TestStatusRecorderOrdering(t *testing.T) {
	// Explicit status before the body: recorded verbatim.
	inner := httptest.NewRecorder()
	sr := obs.WrapResponseWriter(inner)
	sr.WriteHeader(http.StatusNotFound)
	n, err := sr.Write([]byte("nope"))
	if err != nil || n != 4 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if sr.StatusOr200() != http.StatusNotFound || inner.Code != http.StatusNotFound {
		t.Fatalf("status = %d (inner %d), want 404", sr.StatusOr200(), inner.Code)
	}
	if sr.BytesWritten() != 4 {
		t.Fatalf("bytes = %d, want 4", sr.BytesWritten())
	}

	// Body first: the implicit 200 commit is recorded.
	sr2 := obs.WrapResponseWriter(httptest.NewRecorder())
	sr2.Write([]byte("x"))
	if sr2.Status() != http.StatusOK {
		t.Fatalf("implicit status = %d, want 200", sr2.Status())
	}

	// Handler never wrote anything: StatusOr200 reports 200 without
	// mutating the recorder (net/http sends 200 on its own).
	sr3 := obs.WrapResponseWriter(httptest.NewRecorder())
	if sr3.StatusOr200() != http.StatusOK {
		t.Fatalf("StatusOr200 = %d", sr3.StatusOr200())
	}
	if sr3.Status() != 0 {
		t.Fatal("StatusOr200 mutated the recorder")
	}
}

// TestMiddlewareChainWrapsOnce: Trace, Logging, and Metrics all wrap
// the response writer, but the request must see a single shared
// recorder — the old stack kept two private copies that could disagree.
func TestMiddlewareChainWrapsOnce(t *testing.T) {
	m := NewMetrics()
	tracer := obs.NewTracer(obs.TraceConfig{IDSeed: 3})
	var seen http.ResponseWriter
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = w
		fmt.Fprint(w, "ok")
	}), Trace(tracer, "svc"), Logging(log.New(io.Discard, "", 0)), m.Middleware())
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/once", nil))

	rec, ok := seen.(*obs.ResponseRecorder)
	if !ok {
		t.Fatalf("handler saw %T, want *obs.ResponseRecorder", seen)
	}
	if _, isNested := rec.ResponseWriter.(*obs.ResponseRecorder); isNested {
		t.Fatal("recorder wraps another recorder: double wrap")
	}
}

// TestLoggingRecordsExplicitStatus: a handler that sets its own status
// must show that status in the access line, not 200.
func TestLoggingRecordsExplicitStatus(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	}), Logging(logger))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/teapot", nil))
	if !strings.Contains(buf.String(), "418") {
		t.Fatalf("access line = %q, want explicit 418", buf.String())
	}
}

// TestMetricsCountLimiterSheds: when Metrics wraps the limiter, a shed
// 503 is a request AND an error — capacity rejections must not be
// invisible in /metricsz.
func TestMetricsCountLimiterSheds(t *testing.T) {
	m := NewMetrics()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	})
	h := Chain(slow, m.Middleware(), ConcurrencyLimit(1))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := srv.Client().Get(srv.URL + "/a")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := srv.Client().Get(srv.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	close(release)
	wg.Wait()

	snap := m.Snapshot()["/a"]
	if snap.Requests != 2 {
		t.Fatalf("requests = %d, want 2 (one served, one shed)", snap.Requests)
	}
	if snap.Errors != 1 {
		t.Fatalf("errors = %d, want the shed 503 counted", snap.Errors)
	}
}

func TestStatusRecorderFlushPassthrough(t *testing.T) {
	// SSE streaming must survive the middleware stack: the recorder must
	// implement Flush.
	var flushed bool
	inner := httptest.NewRecorder() // implements Flusher
	sr := obs.WrapResponseWriter(flushRecorder{inner, &flushed})
	sr.Flush()
	if !flushed {
		t.Fatal("flush not forwarded")
	}
}

type flushRecorder struct {
	http.ResponseWriter
	flushed *bool
}

func (f flushRecorder) Flush() { *f.flushed = true }
