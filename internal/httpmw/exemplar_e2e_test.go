package httpmw

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"repro/internal/obs"
)

// TestExemplarsResolveToStoredTraces is the acceptance path for
// trace-linked exemplars: drive requests through the daemons' real
// middleware chain (RequestID → Trace → Metrics), scrape
// /metricsz?exemplars=1, and check every exemplar trace id is present
// in /debug/traces — a slow histogram bucket must name a span an
// operator can actually pull up.
func TestExemplarsResolveToStoredTraces(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: 1, IDSeed: 7})
	metrics := NewMetrics()
	metrics.Register(reg)

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if _, err := io.WriteString(w, "ok"); err != nil {
			t.Errorf("writing response: %v", err)
		}
	})
	app := httptest.NewServer(Chain(inner,
		Recover(nil), RequestID(), Trace(tracer, "test"), metrics.Middleware()))
	defer app.Close()
	dbg := httptest.NewServer(obs.DebugMux(reg, tracer, metrics.Handler()))
	defer dbg.Close()

	for i := 0; i < 5; i++ {
		resp, err := http.Get(app.URL + "/v1/augment")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("request %d read: %v", i, err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(dbg.URL + "/metricsz?exemplars=1")
	if err != nil {
		t.Fatalf("scraping metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.OpenMetricsContentType {
		t.Errorf("content type = %q, want %q", got, obs.OpenMetricsContentType)
	}

	exemplarRE := regexp.MustCompile(`# \{trace_id="([0-9a-f]{32})"\}`)
	var ids []string
	for _, m := range exemplarRE.FindAllStringSubmatch(string(body), -1) {
		ids = append(ids, m[1])
	}
	if len(ids) == 0 {
		t.Fatalf("no exemplars in scrape:\n%s", body)
	}

	resp, err = http.Get(dbg.URL + "/debug/traces")
	if err != nil {
		t.Fatalf("fetching traces: %v", err)
	}
	var snap obs.TracesSnapshot
	decodeErr := json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if decodeErr != nil {
		t.Fatalf("decoding traces: %v", decodeErr)
	}
	stored := make(map[string]bool)
	for _, tr := range snap.Recent {
		stored[tr.TraceID] = true
	}
	for _, tr := range snap.Slowest {
		stored[tr.TraceID] = true
	}
	for _, id := range ids {
		if !stored[id] {
			t.Errorf("exemplar trace id %s not present in /debug/traces (have %d traces)", id, len(stored))
		}
	}
}

// TestMetricsHistogramWithoutTrace covers the chain without a tracer:
// the histogram still observes, just without exemplars, and the 0.0.4
// scrape stays clean.
func TestMetricsHistogramWithoutTrace(t *testing.T) {
	reg := obs.NewRegistry()
	metrics := NewMetrics()
	metrics.Register(reg)

	srv := httptest.NewServer(Chain(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		metrics.Middleware()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	out := rr.Body.String()
	countRE := regexp.MustCompile(`pas_http_request_duration_seconds_count\{path="/x"\} 1`)
	if !countRE.MatchString(out) {
		t.Errorf("histogram count missing from scrape:\n%s", out)
	}
	if regexp.MustCompile(`trace_id`).MatchString(out) {
		t.Errorf("text scrape leaked exemplars:\n%s", out)
	}
}
