package httpmw

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strings"

	"repro/internal/serving"
)

// TenantHeader names the caller's tenant explicitly. When absent, the
// middleware falls back to credential headers so keyed clients get
// per-key fair-share without any client change.
const TenantHeader = "X-PAS-Tenant"

// apiKeyHeader is the secondary tenant source for keyed deployments.
const apiKeyHeader = "X-API-Key"

// maxTenantLen caps tenant ids so a hostile header cannot bloat the
// per-tenant stats table or log lines.
const maxTenantLen = 64

// Tenant resolves the caller's tenant id and stores it on the request
// context for the serving layer's fair-share admission. Order of
// precedence: X-PAS-Tenant, then X-API-Key, then an Authorization
// bearer token — credentials are fingerprinted, never used verbatim,
// so tenant ids stay safe to log. Requests with no usable identity run
// as the shared default tenant.
func Tenant() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if id := TenantFromRequest(r); id != "" {
				r = r.WithContext(serving.WithTenant(r.Context(), id))
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TenantFromRequest extracts the tenant id the Tenant middleware would
// assign: the sanitized X-PAS-Tenant value, or a fingerprint of the
// request's credential. Empty means anonymous (shared default tenant).
func TenantFromRequest(r *http.Request) string {
	if id := sanitizeTenant(r.Header.Get(TenantHeader)); id != "" {
		return id
	}
	if key := r.Header.Get(apiKeyHeader); key != "" {
		return fingerprintTenant(key)
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok && tok != "" {
			return fingerprintTenant(tok)
		}
	}
	return ""
}

// sanitizeTenant accepts only ids that are safe as metric labels and
// log fields: [A-Za-z0-9._-], at most maxTenantLen runes. Anything
// else is treated as absent rather than half-cleaned, so a given
// header always maps to the same tenant.
func sanitizeTenant(id string) string {
	if id == "" || len(id) > maxTenantLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return ""
		}
	}
	return id
}

// fingerprintTenant derives a stable, non-reversible tenant id from a
// credential so API keys and bearer tokens never appear in stats,
// metrics labels, or access logs.
func fingerprintTenant(secret string) string {
	sum := sha256.Sum256([]byte(secret))
	return "key-" + hex.EncodeToString(sum[:6])
}
