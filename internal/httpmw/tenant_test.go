package httpmw

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serving"
)

func tenantRequest(hdr, val string) *http.Request {
	r := httptest.NewRequest("POST", "/v1/augment", nil)
	if hdr != "" {
		r.Header.Set(hdr, val)
	}
	return r
}

func TestTenantFromRequestPrecedence(t *testing.T) {
	cases := []struct {
		name string
		set  func(*http.Request)
		want string // "" = anonymous; "key-" prefix = fingerprint expected
	}{
		{"explicit header", func(r *http.Request) {
			r.Header.Set(TenantHeader, "acme-prod")
		}, "acme-prod"},
		{"header beats api key", func(r *http.Request) {
			r.Header.Set(TenantHeader, "acme")
			r.Header.Set("X-API-Key", "s3cret")
		}, "acme"},
		{"api key fingerprinted", func(r *http.Request) {
			r.Header.Set("X-API-Key", "s3cret")
		}, "key-"},
		{"bearer token fingerprinted", func(r *http.Request) {
			r.Header.Set("Authorization", "Bearer tok-123")
		}, "key-"},
		{"basic auth ignored", func(r *http.Request) {
			r.Header.Set("Authorization", "Basic dXNlcjpwdw==")
		}, ""},
		{"anonymous", func(r *http.Request) {}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tenantRequest("", "")
			tc.set(r)
			got := TenantFromRequest(r)
			if tc.want == "key-" {
				if !strings.HasPrefix(got, "key-") || len(got) != len("key-")+12 {
					t.Fatalf("tenant = %q, want a key- fingerprint", got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("tenant = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestTenantFingerprintNeverEchoesSecret: credentials map to stable
// ids that do not contain the secret, so tenant ids are loggable.
func TestTenantFingerprintNeverEchoesSecret(t *testing.T) {
	a := TenantFromRequest(tenantRequest("X-API-Key", "super-secret-key"))
	b := TenantFromRequest(tenantRequest("X-API-Key", "super-secret-key"))
	other := TenantFromRequest(tenantRequest("X-API-Key", "different"))
	if a != b {
		t.Fatalf("same key, different tenants: %q vs %q", a, b)
	}
	if a == other {
		t.Fatal("distinct keys collided")
	}
	if strings.Contains(a, "secret") {
		t.Fatalf("tenant id %q leaks the credential", a)
	}
}

func TestTenantSanitization(t *testing.T) {
	cases := []struct {
		raw, want string
	}{
		{"ok_id-1.2", "ok_id-1.2"},
		{"has space", ""},
		{"semi;colon", ""},
		{"läbel", ""},
		{strings.Repeat("x", 65), ""},
		{strings.Repeat("x", 64), strings.Repeat("x", 64)},
	}
	for _, tc := range cases {
		if got := sanitizeTenant(tc.raw); got != tc.want {
			t.Errorf("sanitizeTenant(%q) = %q, want %q", tc.raw, got, tc.want)
		}
	}
}

// TestTenantMiddlewareTagsContext: the middleware stores the resolved
// id where serving.TenantFrom finds it; anonymous requests keep the
// shared default tenant.
func TestTenantMiddlewareTagsContext(t *testing.T) {
	var seen string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = serving.TenantFrom(r.Context())
	}), Tenant())

	r := tenantRequest(TenantHeader, "acme")
	h.ServeHTTP(httptest.NewRecorder(), r)
	if seen != "acme" {
		t.Fatalf("tenant in ctx = %q, want acme", seen)
	}

	h.ServeHTTP(httptest.NewRecorder(), tenantRequest("", ""))
	if seen != serving.DefaultTenant {
		t.Fatalf("anonymous tenant = %q, want %q", seen, serving.DefaultTenant)
	}
}

// TestLoggingIncludesTenantAndDegradeLevel: the access line carries the
// tenant and the ladder rung, and any non-empty X-PAS-Degraded counts
// as degraded (not just the legacy "1").
func TestLoggingIncludesTenantAndDegradeLevel(t *testing.T) {
	var buf bytes.Buffer
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-PAS-Degraded", "trim")
	}), Logging(log.New(&buf, "", 0)))
	h.ServeHTTP(httptest.NewRecorder(), tenantRequest(TenantHeader, "acme"))
	for _, want := range []string{`"tenant":"acme"`, `"degrade_level":"trim"`, `"degraded":true`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("access line %s missing %s", buf.String(), want)
		}
	}
}

// TestConcurrencyLimitHintPricesRetryAfter: the shed response carries
// the dynamic hint instead of the constant 1.
func TestConcurrencyLimitHintPricesRetryAfter(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	})
	h := Chain(slow, ConcurrencyLimitHint(1, func() int { return 7 }))

	go h.ServeHTTP(httptest.NewRecorder(), tenantRequest("", ""))
	<-entered
	defer close(block)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, tenantRequest("", ""))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
}
