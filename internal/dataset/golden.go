package dataset

import (
	"fmt"

	"repro/internal/facet"
)

// goldenPrompts holds 5 hand-written example prompts per category. Together
// with complementary prompts derived from each category's need profile,
// they form D_golden — the paper's curated few-shot seed set ("4 to 5 pairs
// of few-shot examples for each category from BaiChuan").
var goldenPrompts = map[facet.Category][]string{
	facet.Coding:        {"Write a python function to reverse a linked list.", "My golang code deadlocks, help me debug it.", "Implement a bloom filter in rust.", "Write unit tests for this parser.", "How do I program a retry wrapper using the standard api?"},
	facet.QA:            {"What is the boiling point of water at altitude?", "Why does metal feel colder than wood?", "How does a microwave heat food?", "What causes thunder?", "When was the telephone invented?"},
	facet.Writing:       {"Write a farewell email to my team.", "Help me draft a cover letter.", "Compose a toast for my sister's wedding.", "Write a product launch announcement.", "Draft a blog article on remote work."},
	facet.Math:          {"Calculate the integral of x squared from 0 to 3.", "Solve x^2 - 5x + 6 = 0.", "What is a 15 percent tip on 64 dollars?", "Find the probability of two heads in three flips.", "Sum the first 100 odd numbers."},
	facet.Reason:        {"Here is a logic puzzle: three boxes with mislabeled fruit. Deduce the answer.", "Solve this riddle about two doors with one lying guard.", "A puzzle: four people crossing a bridge with one torch. What follows?", "If you face the island where everyone lies on tuesdays, then what do you do? Use logic.", "Solve this riddle about crossing a river with a wolf a goat and a cabbage."},
	facet.Translation:   {"Translate 'good morning, how are you' into french.", "How do you say 'where is the train station' in german?", "Provide a spanish translation of 'thank you for your hospitality'.", "Translate 'the meeting is postponed to friday' into chinese.", "How do you say 'my luggage is lost' in spanish?"},
	facet.Summarization: {"Summarize this long article about coral reefs into key points.", "Give me a tldr summary of the meeting transcript from monday.", "Condense my 3000-word travel journal into a short summary.", "Shorten this research paper on sleep cycles to its key ideas.", "Summarize a 20-page quarterly earnings report into key points."},
	facet.Roleplay:      {"Pretend you are a medieval blacksmith and greet me in character.", "Roleplay as a 1920s detective; imagine we just met.", "Act as an enthusiastic museum guide. You are showing me around.", "You are a stern but fair chess coach — stay in persona while we chat.", "Pretend you are a friendly alien ambassador and greet me in character."},
	facet.Brainstorm:    {"Brainstorm a list of ideas for names for a coffee shop near a library.", "Suggest creative options for birthday gifts for a chemist.", "Give me ideas: icebreakers for a remote team. List many.", "I need a creative list of side project ideas using open data.", "Brainstorm a list of ideas for ways to reuse glass jars."},
	facet.Knowledge:     {"Explain how photosynthesis works.", "Describe the history of the silk road and the mechanism behind it.", "Explain the science of fermentation.", "Can you explain how blood pressure regulation works and how it works?", "Describe the physiology of high-altitude adaptation."},
	facet.Advice:        {"What is the best way of preparing for a system design interview? Any tips?", "Give me advice on starting to run at 40.", "Help me improve at negotiating a salary offer with practical tips.", "Should I change how I approach reducing screen time before bed? Recommend steps.", "Give me advice on keeping houseplants alive."},
	facet.Analytical:    {"Analyze the trade offs of remote work versus office work.", "Compare sql versus nosql for a startup and evaluate the pros and cons.", "Assess monolith versus microservices; which wins and under what judgment criteria?", "Evaluate renting versus buying a home for a small team.", "Analyze the trade offs of electric cars versus hybrids."},
	facet.Extraction:    {"Extract the dates and amounts from this invoice.", "Parse the fields of this log line into json and identify each item.", "Find and extract email addresses from this text dump as a table.", "Identify all person entities in this paragraph and return json.", "Extract action items from these notes."},
	facet.Chitchat:      {"Hello! How is your morning going?", "Hi there, anything fun to chat about?", "Good morning! Any plans for the weekend?", "Hey, how are you feeling today?", "Thanks for the help earlier, you are great to chat with."},
}

// Golden returns D_golden: for each category, 5 (prompt, complement)
// pairs whose complements demand the category's top needs. The pairs are
// deterministic and pass the critic by construction.
func Golden() map[facet.Category][]Pair {
	out := make(map[facet.Category][]Pair, facet.CategoryCount)
	for _, c := range facet.Categories() {
		prompts := goldenPrompts[c]
		top := cleanTop(facet.NeedPrior(c), 2)
		pairs := make([]Pair, 0, len(prompts))
		for i, prompt := range prompts {
			variant := fmt.Sprintf("golden/%s/%d", c, i)
			pairs = append(pairs, Pair{
				Prompt:     prompt,
				Complement: facet.RenderDirectives(top, variant),
				Category:   c.String(),
				Source:     "golden",
			})
		}
		out[c] = pairs
	}
	return out
}

// cleanTop picks up to k of the highest-weighted facets, skipping any
// facet that conflicts with an already chosen one — golden complements
// must never demand mutually contradictory treatment (conciseness plus
// exhaustive coverage, say), or they would teach the defect the critic
// exists to remove.
func cleanTop(w facet.Weights, k int) []facet.Facet {
	var out []facet.Facet
	for _, f := range w.Top(facet.Count) {
		ok := true
		for _, g := range out {
			if facet.ConflictsWith(f, g) || facet.ConflictsWith(g, f) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, f)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// GoldenExamplesFor returns the golden pairs of one category.
func GoldenExamplesFor(c facet.Category) []Pair {
	return Golden()[c]
}
