package dataset

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/facet"
)

// TestJSONLRoundTripProperty: any dataset of structurally valid pairs
// (arbitrary unicode prompt/complement text) survives the JSONL round
// trip exactly.
func TestJSONLRoundTripProperty(t *testing.T) {
	f := func(prompts, complements []string, catRaw uint8) bool {
		var d Dataset
		n := len(prompts)
		if len(complements) < n {
			n = len(complements)
		}
		for i := 0; i < n; i++ {
			p := Pair{
				Prompt:     "p" + prompts[i], // prefix guarantees non-empty
				Complement: "c" + complements[i],
				Category:   facet.Category(int(catRaw) % facet.CategoryCount).String(),
			}
			if err := d.Add(p); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := d.WriteJSONL(&buf); err != nil {
			return false
		}
		got, err := ReadJSONL(&buf)
		if err != nil {
			return false
		}
		if got.Len() != d.Len() {
			return false
		}
		for i := range d.Pairs {
			if got.Pairs[i] != d.Pairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCategoryCountsConsistentProperty: counts always sum to Len and
// agree with ByCategory bucket sizes.
func TestCategoryCountsConsistentProperty(t *testing.T) {
	f := func(cats []uint8) bool {
		var d Dataset
		for i, c := range cats {
			p := Pair{
				Prompt:     "p",
				Complement: "c",
				Category:   facet.Category(int(c) % facet.CategoryCount).String(),
			}
			if err := d.Add(p); err != nil {
				return false
			}
			_ = i
		}
		counts := d.CategoryCounts()
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != d.Len() {
			return false
		}
		for c, pairs := range d.ByCategory() {
			if counts[c] != len(pairs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
