package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/facet"
)

func TestPairValidate(t *testing.T) {
	good := Pair{Prompt: "p", Complement: "c", Category: "coding"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]Pair{
		"empty prompt":     {Complement: "c"},
		"empty complement": {Prompt: "p"},
		"bad category":     {Prompt: "p", Complement: "c", Category: "bogus"},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s should fail validation", name)
		}
	}
	// Empty category is allowed (defaults to QA downstream).
	if err := (Pair{Prompt: "p", Complement: "c"}).Validate(); err != nil {
		t.Errorf("empty category should be valid: %v", err)
	}
}

func TestCategoryOrDefault(t *testing.T) {
	if (Pair{Category: "math"}).CategoryOrDefault() != facet.Math {
		t.Error("math not parsed")
	}
	if (Pair{Category: ""}).CategoryOrDefault() != facet.QA {
		t.Error("empty should default to QA")
	}
}

func TestDatasetAddRejectsInvalid(t *testing.T) {
	var d Dataset
	if err := d.Add(Pair{}); err == nil {
		t.Fatal("invalid pair accepted")
	}
	if err := d.Add(Pair{Prompt: "p", Complement: "c", Category: "qa"}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var d Dataset
	pairs := []Pair{
		{Prompt: "write code", Complement: "be specific", Category: "coding", Source: "generated"},
		{Prompt: "explain tides", Complement: "give context", Category: "knowledge"},
		{Prompt: "unicode ✓ prompt", Complement: "with \"quotes\" and\nnewline", Category: "qa"},
	}
	for _, p := range pairs {
		if err := d.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(pairs) {
		t.Fatalf("round trip lost pairs: %d", got.Len())
	}
	for i := range pairs {
		if got.Pairs[i] != pairs[i] {
			t.Errorf("pair %d = %+v, want %+v", i, got.Pairs[i], pairs[i])
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json\n")); err == nil {
		t.Error("malformed json should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"prompt":"","complement":"c"}` + "\n")); err == nil {
		t.Error("invalid pair should fail")
	}
	d, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Error("blank lines should be skipped")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pairs.jsonl")
	var d Dataset
	if err := d.Add(Pair{Prompt: "p", Complement: "c", Category: "math"}); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Pairs[0].Category != "math" {
		t.Fatalf("loaded %+v", got.Pairs)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestByCategoryAndCounts(t *testing.T) {
	var d Dataset
	for i := 0; i < 3; i++ {
		if err := d.Add(Pair{Prompt: "p", Complement: "c", Category: "coding"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Add(Pair{Prompt: "p", Complement: "c", Category: "qa"}); err != nil {
		t.Fatal(err)
	}
	by := d.ByCategory()
	if len(by[facet.Coding]) != 3 || len(by[facet.QA]) != 1 {
		t.Fatalf("ByCategory = %v", by)
	}
	counts := d.CategoryCounts()
	if counts[facet.Coding] != 3 || counts[facet.QA] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestGoldenShape(t *testing.T) {
	g := Golden()
	if len(g) != facet.CategoryCount {
		t.Fatalf("golden covers %d categories, want %d", len(g), facet.CategoryCount)
	}
	for c, pairs := range g {
		if len(pairs) < 4 || len(pairs) > 5 {
			t.Errorf("category %v has %d golden pairs, paper uses 4-5", c, len(pairs))
		}
		for _, p := range pairs {
			if err := p.Validate(); err != nil {
				t.Errorf("golden pair invalid: %v", err)
			}
			if p.Category != c.String() {
				t.Errorf("golden pair category %q under bucket %v", p.Category, c)
			}
			// Golden complements must demand at least one of the
			// category's top needs and carry no defects.
			dirs := facet.DetectDirectives(p.Complement)
			if dirs.Len() == 0 {
				t.Errorf("golden complement carries no directives: %q", p.Complement)
			}
			if facet.DetectAnswerLeak(p.Complement) {
				t.Errorf("golden complement leaks an answer: %q", p.Complement)
			}
		}
	}
}

func TestGoldenExamplesFor(t *testing.T) {
	pairs := GoldenExamplesFor(facet.Coding)
	if len(pairs) == 0 {
		t.Fatal("no golden coding pairs")
	}
	for _, p := range pairs {
		if p.Category != "coding" {
			t.Fatalf("wrong category %q", p.Category)
		}
	}
}
