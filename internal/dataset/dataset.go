// Package dataset defines the record types that flow through the PAS data
// pipeline — curated prompts, (prompt, complementary prompt) pairs, and
// golden few-shot examples — together with a JSONL store for persisting
// them, mirroring how instruction-tuning datasets are shipped in practice.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/facet"
)

// Pair is one training example for the PAS model: a user prompt and the
// complementary prompt that should be appended to it.
type Pair struct {
	// Prompt is the user's original prompt.
	Prompt string `json:"prompt"`
	// Complement is the complementary prompt (never a rewrite of Prompt).
	Complement string `json:"complement"`
	// Category is the curated category label.
	Category string `json:"category"`
	// Source records provenance ("generated", "golden", "regenerated:N").
	Source string `json:"source,omitempty"`
}

// Validate checks structural invariants of a pair.
func (p Pair) Validate() error {
	if p.Prompt == "" {
		return fmt.Errorf("dataset: pair has empty prompt")
	}
	if p.Complement == "" {
		return fmt.Errorf("dataset: pair for %q has empty complement", truncate(p.Prompt, 40))
	}
	if p.Category != "" {
		if _, err := facet.ParseCategory(p.Category); err != nil {
			return fmt.Errorf("dataset: pair for %q: %w", truncate(p.Prompt, 40), err)
		}
	}
	return nil
}

// CategoryOrDefault parses the pair's category, falling back to QA.
func (p Pair) CategoryOrDefault() facet.Category {
	c, err := facet.ParseCategory(p.Category)
	if err != nil {
		return facet.QA
	}
	return c
}

// Dataset is an ordered collection of pairs.
type Dataset struct {
	Pairs []Pair
}

// Add appends a pair after validating it.
func (d *Dataset) Add(p Pair) error {
	if err := p.Validate(); err != nil {
		return err
	}
	d.Pairs = append(d.Pairs, p)
	return nil
}

// Len returns the number of pairs.
func (d *Dataset) Len() int { return len(d.Pairs) }

// ByCategory buckets the pairs by their category label.
func (d *Dataset) ByCategory() map[facet.Category][]Pair {
	out := make(map[facet.Category][]Pair)
	for _, p := range d.Pairs {
		c := p.CategoryOrDefault()
		out[c] = append(out[c], p)
	}
	return out
}

// CategoryCounts returns the per-category pair counts in taxonomy order —
// the data behind Figure 6.
func (d *Dataset) CategoryCounts() map[facet.Category]int {
	out := make(map[facet.Category]int)
	for _, p := range d.Pairs {
		out[p.CategoryOrDefault()]++
	}
	return out
}

// WriteJSONL streams the dataset to w as one JSON object per line.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, p := range d.Pairs {
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("dataset: encoding pair %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL stream into a Dataset, validating each pair.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	d := &Dataset{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var p Pair
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if err := d.Add(p); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading: %w", err)
	}
	return d, nil
}

// SaveFile writes the dataset to path as JSONL.
func (d *Dataset) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: closing %s: %w", path, cerr)
		}
	}()
	return d.WriteJSONL(f)
}

// LoadFile reads a JSONL dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
