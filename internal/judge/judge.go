// Package judge implements the LLM-as-judge evaluation substrate standing
// in for the GPT-4 judges of Arena-Hard and AlpacaEval 2.0. A judge reads
// the original user prompt and two candidate responses, scores each
// response from its words alone — need coverage, relevance, trap
// correctness, constraint compliance — and picks a winner with calibrated
// noise.
//
// Real LLM judges have a documented length bias; this judge models it
// explicitly (longer answers get a bonus unrelated to quality), which is
// what the length-controlled (LC) variant of AlpacaEval 2.0 then corrects
// for. See evalbench for the harnesses that aggregate verdicts into the
// paper's metrics.
package judge

import (
	"fmt"
	"math"

	"repro/internal/facet"
	"repro/internal/metrics"
	"repro/internal/textkit"
)

// Config controls a judge's behaviour.
type Config struct {
	// LengthBias is the score bonus per e-fold of response length —
	// the stylistic bias the LC metric exists to remove. Typical: 0.20.
	LengthBias float64
	// PositionBias is a score bonus for the first-presented response —
	// the documented order effect of LLM judges. Benchmarks cancel it
	// by judging both orders; the default is 0 so single-order metrics
	// stay unbiased unless a study turns it on.
	PositionBias float64
	// Noise is the scale of verdict randomness. Typical: 0.6.
	Noise float64
	// Seed decorrelates judges.
	Seed uint64
}

// DefaultConfig returns the GPT-4-like judge settings used by the paper's
// benchmarks. The noise scale is calibrated so that pairwise win rates on
// Arena-Hard move by single-digit points for typical augmentation gains,
// matching the deltas the paper reports.
func DefaultConfig() Config {
	return Config{LengthBias: 0.20, Noise: 2.0, Seed: 0x9e3}
}

// Judge scores and compares responses.
type Judge struct {
	cfg Config
}

// New creates a judge.
// It returns an error when the configuration is out of range.
func New(cfg Config) (*Judge, error) {
	if cfg.LengthBias < 0 || cfg.LengthBias > 1 {
		return nil, fmt.Errorf("judge: LengthBias must be in [0,1], got %v", cfg.LengthBias)
	}
	if cfg.PositionBias < 0 || cfg.PositionBias > 1 {
		return nil, fmt.Errorf("judge: PositionBias must be in [0,1], got %v", cfg.PositionBias)
	}
	if cfg.Noise < 0 || cfg.Noise > 5 {
		return nil, fmt.Errorf("judge: Noise must be in [0,5], got %v", cfg.Noise)
	}
	return &Judge{cfg: cfg}, nil
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config) *Judge {
	j, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return j
}

// Score rates one response against the user's prompt. Higher is better.
// The scale is arbitrary but consistent within a judge; Compare works on
// score differences.
func (j *Judge) Score(prompt, response string) float64 {
	a := facet.AnalyzePrompt(prompt)
	delivered := facet.DetectDelivered(response)

	// Need coverage: how much of what the prompt needs does the response
	// visibly deliver?
	var needTotal, covered float64
	for f := 0; f < facet.Count; f++ {
		w := a.Needs[f]
		if w <= 0 {
			continue
		}
		needTotal += w
		d := delivered[f]
		if d > 2 {
			d = 2
		}
		covered += w * d / 2
	}
	score := 0.5 // fluency floor
	if needTotal > 0 {
		score += 3 * covered / needTotal
	}

	// Relevance: the response must actually talk about the prompt's
	// content words. A rewritten prompt that drifted loses here.
	score += 1.5 * overlap(prompt, response)

	// World knowledge: the judge knows the trap bank.
	if a.Trapped {
		switch {
		case a.Trap.ClaimsRight(response):
			score += 0.8
		case a.Trap.ClaimsWrong(response):
			score -= 1.2
		default:
			score -= 0.3 // dodged the question
		}
	}

	// Constraint compliance.
	words := textkit.WordCount(response)
	if a.Constraints.Has(facet.Conciseness) && words > 80 {
		// Penalty grows with the overshoot so it cannot be bought back
		// by the length bonus below.
		score -= 1.5 + 0.8*math.Log(float64(words)/80)
	}
	if a.Constraints.Has(facet.Structure) && delivered[facet.Structure] == 0 {
		score -= 0.75
	}
	if a.Constraints.Has(facet.Style) && delivered[facet.Style] == 0 {
		score -= 0.5
	}

	// The infamous length bias.
	score += j.cfg.LengthBias * (math.Log1p(float64(words)) - math.Log1p(60))
	return score
}

// Verdict is the outcome of one pairwise comparison.
type Verdict struct {
	// AWins reports whether response A was preferred.
	AWins bool
	// ProbA is the judge's calibrated probability that A is better.
	ProbA float64
	// ScoreA and ScoreB are the underlying quality scores (before noise).
	ScoreA, ScoreB float64
}

// Compare judges response A against response B for the given prompt. The
// salt decorrelates repeated judgements of the same pair (position-swap
// runs, bootstrap draws).
func (j *Judge) Compare(prompt, respA, respB, salt string) Verdict {
	sa := j.Score(prompt, respA)
	sb := j.Score(prompt, respB)
	diff := sa - sb + j.cfg.PositionBias
	noise := (textkit.Unit("judge\x00"+salt+"\x00"+prompt+"\x00"+respA+"\x00"+respB, j.cfg.Seed) - 0.5) * 2 * j.cfg.Noise
	prob := metrics.Logistic(diff / 1.2)
	return Verdict{
		AWins:  diff+noise > 0,
		ProbA:  prob,
		ScoreA: sa,
		ScoreB: sb,
	}
}

// LengthGap returns the log-length difference len(A)-len(B) feature used
// by the LC correction.
func LengthGap(respA, respB string) float64 {
	return math.Log1p(float64(textkit.WordCount(respA))) - math.Log1p(float64(textkit.WordCount(respB)))
}

// overlap measures content-word overlap: the fraction of the prompt's
// distinctive words (length >= 5) that appear in the response.
func overlap(prompt, response string) float64 {
	pw := contentWords(prompt)
	if len(pw) == 0 {
		return 1
	}
	rw := make(map[string]bool)
	for _, w := range textkit.Words(response) {
		rw[w] = true
	}
	hit := 0
	for w := range pw {
		if rw[w] {
			hit++
		}
	}
	return float64(hit) / float64(len(pw))
}

func contentWords(text string) map[string]bool {
	out := make(map[string]bool)
	for _, w := range textkit.Words(text) {
		if len(w) >= 5 {
			out[w] = true
		}
	}
	return out
}
