package judge

import (
	"math"
	"testing"
	"testing/quick"
)

// TestCompareProbBoundsProperty: ProbA is a probability and the two
// orderings are complementary (prob(A beats B) + prob(B beats A) = 1,
// since scores are order-free).
func TestCompareProbBoundsProperty(t *testing.T) {
	j := MustNew(DefaultConfig())
	f := func(prompt, a, b, salt string) bool {
		v1 := j.Compare(prompt, a, b, salt)
		v2 := j.Compare(prompt, b, a, salt)
		if v1.ProbA < 0 || v1.ProbA > 1 || math.IsNaN(v1.ProbA) {
			return false
		}
		return math.Abs(v1.ProbA+v2.ProbA-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestScoreFiniteProperty: Score never returns NaN or infinity for any
// text pair.
func TestScoreFiniteProperty(t *testing.T) {
	j := MustNew(DefaultConfig())
	f := func(prompt, resp string) bool {
		s := j.Score(prompt, resp)
		return !math.IsNaN(s) && !math.IsInf(s, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScoreMatchesVerdictProperty: AWins with zero noise is exactly the
// sign of the score difference.
func TestScoreMatchesVerdictProperty(t *testing.T) {
	noiseless := MustNew(Config{LengthBias: 0.2, Noise: 0, Seed: 5})
	f := func(prompt, a, b string) bool {
		v := noiseless.Compare(prompt, a, b, "s")
		return v.AWins == (v.ScoreA > v.ScoreB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
