package judge

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/facet"
	"repro/internal/simllm"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{LengthBias: -0.1, Noise: 0.5}); err == nil {
		t.Error("negative bias should fail")
	}
	if _, err := New(Config{LengthBias: 0.2, Noise: 9}); err == nil {
		t.Error("huge noise should fail")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Error(err)
	}
}

func TestScorePrefersNeedCoverage(t *testing.T) {
	j := MustNew(DefaultConfig())
	prompt := "Explain how photosynthesis works and the mechanism behind it."
	good := "By way of background, photosynthesis converts light. Covering all aspects of photosynthesis, including edge conditions. It is established that the mechanism is verified."
	bad := "Photosynthesis is a thing plants do."
	if j.Score(prompt, good) <= j.Score(prompt, bad) {
		t.Fatalf("coverage not rewarded: good=%.2f bad=%.2f", j.Score(prompt, good), j.Score(prompt, bad))
	}
}

func TestScorePenalisesTrapFailure(t *testing.T) {
	j := MustNew(DefaultConfig())
	prompt := "If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?"
	tr, _ := facet.FindTrap(prompt)
	right := "Note the wording: " + tr.RightClaim + "."
	wrong := "The answer: " + tr.WrongClaim + "."
	if j.Score(prompt, right) <= j.Score(prompt, wrong) {
		t.Fatal("trap correctness not rewarded")
	}
}

func TestScorePenalisesConstraintViolation(t *testing.T) {
	j := MustNew(DefaultConfig())
	prompt := "Briefly summarize this long article about coral reefs."
	short := "In short: coral reefs summary, distilled. briefly the key points."
	long := "In summary, first, " + strings.Repeat("the coral reefs article says many things about article coral reefs summarize. ", 30)
	if j.Score(prompt, short) <= j.Score(prompt, long) {
		t.Fatalf("violation not penalised: short=%.2f long=%.2f", j.Score(prompt, short), j.Score(prompt, long))
	}
}

func TestScoreRewardsRelevance(t *testing.T) {
	j := MustNew(DefaultConfig())
	prompt := "Analyze the trade offs of monolith versus microservices."
	onTopic := "Covering all aspects, the monolith versus microservices trade offs are examined. first, second, finally."
	offTopic := "Covering all aspects, gardening thrives with sunlight. first, second, finally."
	if j.Score(prompt, onTopic) <= j.Score(prompt, offTopic) {
		t.Fatal("relevance not rewarded")
	}
}

func TestLengthBiasExistsAndIsRemovable(t *testing.T) {
	biased := MustNew(DefaultConfig())
	unbiased := MustNew(Config{LengthBias: 0, Noise: 0.6, Seed: 1})
	prompt := "Give me advice on keeping houseplants alive."
	short := "Specifically, water houseplants weekly. In particular, light matters."
	long := short + " " + strings.Repeat("This consideration of houseplants merits attention. ", 40)

	dBiased := biased.Score(prompt, long) - biased.Score(prompt, short)
	dUnbiased := unbiased.Score(prompt, long) - unbiased.Score(prompt, short)
	if dBiased <= dUnbiased {
		t.Fatalf("length bias missing: biased gap %.3f <= unbiased gap %.3f", dBiased, dUnbiased)
	}
}

func TestCompareDeterministicAndNoisy(t *testing.T) {
	j := MustNew(DefaultConfig())
	prompt := "Explain the science of fermentation."
	a := "By way of background, fermentation converts sugars. For example, consider the case of yogurt."
	b := "Fermentation happens."
	v1 := j.Compare(prompt, a, b, "s1")
	v2 := j.Compare(prompt, a, b, "s1")
	if v1 != v2 {
		t.Fatal("same salt must give same verdict")
	}
	if !v1.AWins {
		t.Fatal("clearly better response lost")
	}
	if v1.ProbA < 0.5 {
		t.Fatalf("ProbA = %v for better response", v1.ProbA)
	}
}

func TestCompareNoiseFlipsCloseCalls(t *testing.T) {
	j := MustNew(DefaultConfig())
	prompt := "What is dark matter?"
	a := "Specifically, dark matter is unseen mass."
	b := "In particular, dark matter does not emit light."
	winsA := 0
	for i := 0; i < 60; i++ {
		if j.Compare(prompt, a, b, fmt.Sprintf("n%d", i)).AWins {
			winsA++
		}
	}
	if winsA == 0 || winsA == 60 {
		t.Fatalf("near-tie should split under noise: winsA=%d/60", winsA)
	}
}

// TestEndToEndAugmentationWinsJudgement wires the full mechanism: a
// response to an augmented prompt should beat the bare response in the
// judge's eyes more often than not — the paper's core claim in miniature.
func TestEndToEndAugmentationWinsJudgement(t *testing.T) {
	j := MustNew(DefaultConfig())
	m := simllm.MustModel(simllm.GPT40613)
	prompts := []string{
		"Describe the history and mechanism of how blood pressure regulation works.",
		"Give me advice on negotiating a salary offer.",
		"Explain how photosynthesis works.",
		"Analyze the trade offs of remote work versus office work.",
	}
	wins, total := 0, 0
	for _, p := range prompts {
		needs := facet.AnalyzePrompt(p).Needs.Top(2)
		aug := facet.RenderDirectives(needs, "e2e")
		for i := 0; i < 25; i++ {
			salt := fmt.Sprintf("r%d", i)
			bare := m.Respond(p, simllm.Options{Salt: salt})
			augmented := m.Respond(p+"\n"+aug, simllm.Options{Salt: salt})
			if j.Compare(p, augmented, bare, salt).ProbA > 0.5 {
				wins++
			}
			total++
		}
	}
	rate := float64(wins) / float64(total)
	if rate < 0.55 {
		t.Fatalf("augmented responses won only %.2f of judgements", rate)
	}
}

func TestLengthGapSign(t *testing.T) {
	if LengthGap("one two three four five six", "one") <= 0 {
		t.Fatal("longer A should give positive gap")
	}
	if LengthGap("one", "one two three") >= 0 {
		t.Fatal("shorter A should give negative gap")
	}
}

func TestOverlapEdgeCases(t *testing.T) {
	j := MustNew(DefaultConfig())
	// Prompt with no content words should not crash or zero out.
	s := j.Score("hi", "hello there")
	if s < -10 || s > 10 {
		t.Fatalf("degenerate score = %v", s)
	}
}

func BenchmarkCompare(b *testing.B) {
	j := MustNew(DefaultConfig())
	m := simllm.MustModel(simllm.GPT4Turbo)
	prompt := "Explain the science of fermentation."
	ra := m.Respond(prompt, simllm.Options{Salt: "a"})
	rb := m.Respond(prompt, simllm.Options{Salt: "b"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Compare(prompt, ra, rb, "bench")
	}
}

// TestPositionBiasAndSwapCancellation models the documented order effect
// of LLM judges and verifies the harness countermeasure: judging both
// orders cancels the bias exactly.
func TestPositionBiasAndSwapCancellation(t *testing.T) {
	biased := MustNew(Config{LengthBias: 0.2, PositionBias: 0.5, Noise: 0, Seed: 3})
	prompt := "What is dark matter?"
	a := "Specifically, dark matter is unseen mass."
	b := "In particular, dark matter does not emit light."

	v1 := biased.Compare(prompt, a, b, "s")
	v2 := biased.Compare(prompt, b, a, "s")
	// With near-tied responses and positive position bias, whoever is
	// presented first wins.
	if !v1.AWins || !v2.AWins {
		t.Fatalf("position bias should favour the first slot: %v %v", v1.AWins, v2.AWins)
	}
	// Swap-averaged win rate is exactly 0.5 — the bias cancels.
	winsA := 0
	if v1.AWins {
		winsA++
	}
	if !v2.AWins {
		winsA++
	}
	if winsA != 1 {
		t.Fatalf("swap-averaging should give 1 win of 2, got %d", winsA)
	}
}

func TestPositionBiasValidation(t *testing.T) {
	if _, err := New(Config{LengthBias: 0.2, PositionBias: -0.1, Noise: 0.5}); err == nil {
		t.Error("negative position bias should fail")
	}
	if _, err := New(Config{LengthBias: 0.2, PositionBias: 2, Noise: 0.5}); err == nil {
		t.Error("huge position bias should fail")
	}
}
