package sft

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/facet"
	"repro/internal/simllm"
)

// TestPolicyRowsNormalisedProperty: after training on any golden-derived
// dataset, every category's facet propensities sum to ~1.
func TestPolicyRowsNormalisedProperty(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	m, err := Train(base, goldenDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c, row := range m.Policy().CategoryFacet {
		var sum float64
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative propensity in category %d", c)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("category %d propensities sum to %v", c, sum)
		}
	}
}

func goldenDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	d := &dataset.Dataset{}
	for _, pairs := range dataset.Golden() {
		for _, p := range pairs {
			if err := d.Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

// TestComplementNeverEmptyProperty: for arbitrary prompt text and salt,
// the model always emits a non-empty complement, and (unless it is a
// deliberate defect expression) the complement parses into directives.
func TestComplementNeverEmptyProperty(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	m, err := Train(base, goldenDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(prompt, salt string) bool {
		c := m.Complement(prompt, salt)
		if c == "" {
			return false
		}
		return facet.DetectDirectives(c).Len() > 0 || facet.DetectAnswerLeak(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestComplementPreservesPromptProperty: the complement never contains
// the user's prompt (it supplements, it does not echo or rewrite).
func TestComplementDoesNotEchoPrompt(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	m, err := Train(base, goldenDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prompts := []string{
		"Write a python function that implements a skip list.",
		"Explain the mechanism of antibiotic resistance.",
		"Summarize the meeting transcript from monday into key points.",
	}
	for _, p := range prompts {
		for _, salt := range []string{"a", "b", "c"} {
			c := m.Complement(p, salt)
			if len(c) > 0 && len(p) > 0 && containsFold(c, p) {
				t.Fatalf("complement echoes the prompt: %q", c)
			}
		}
	}
}

func containsFold(haystack, needle string) bool {
	h, n := []rune(haystack), []rune(needle)
	if len(n) == 0 || len(n) > len(h) {
		return false
	}
	for i := 0; i+len(n) <= len(h); i++ {
		match := true
		for j := range n {
			a, b := h[i+j], n[j]
			if a >= 'A' && a <= 'Z' {
				a += 32
			}
			if b >= 'A' && b <= 'Z' {
				b += 32
			}
			if a != b {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
