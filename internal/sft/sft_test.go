package sft

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/facet"
	"repro/internal/simllm"
)

// cleanDataset builds a curated-quality training set: golden pairs
// replicated with varied prompts.
func cleanDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := &dataset.Dataset{}
	for _, pairs := range dataset.Golden() {
		for _, p := range pairs {
			if err := d.Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

// dirtyDataset corrupts a fraction of complements with the three defect
// classes, like skipping the §3.2 selection stage would.
func dirtyDataset(t *testing.T, defectFrac float64) *dataset.Dataset {
	t.Helper()
	clean := cleanDataset(t)
	d := &dataset.Dataset{}
	n := 0
	for _, p := range clean.Pairs {
		n++
		if float64(n%10)/10 < defectFrac {
			switch n % 3 {
			case 0:
				p.Complement = facet.RenderAnswerLeak(fmt.Sprint(n))
			case 1:
				p.Complement = facet.RenderConflicting(facet.Conciseness, fmt.Sprint(n))
				p.Prompt = "Briefly, " + p.Prompt
			case 2:
				p.Complement = facet.RenderDirectives([]facet.Facet{
					facet.Completeness, facet.Examples, facet.Context, facet.Safety, facet.Planning,
				}, fmt.Sprint(n))
				p.Prompt = "Hello there friend!"
				p.Category = "chitchat"
			}
		}
		if err := d.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestTrainValidation(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	if _, err := Train(nil, cleanDataset(t), DefaultConfig()); err == nil {
		t.Error("nil base should fail")
	}
	if _, err := Train(base, &dataset.Dataset{}, DefaultConfig()); err != ErrNoData {
		t.Error("empty data should fail with ErrNoData")
	}
	if _, err := Train(base, cleanDataset(t), Config{Smoothing: -1}); err == nil {
		t.Error("negative smoothing should fail")
	}
}

func TestTrainLearnsCategoryFacets(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	m, err := Train(base, cleanDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pol := m.Policy()
	// Golden coding complements demand specificity+accuracy (the top
	// needs); the learned propensity must reflect that.
	coding := pol.CategoryFacet[facet.Coding]
	if coding[facet.Specificity] < coding[facet.Style] {
		t.Fatalf("coding policy did not learn specificity: %v", coding)
	}
	writing := pol.CategoryFacet[facet.Writing]
	if writing[facet.Style] < writing[facet.Accuracy] {
		t.Fatalf("writing policy did not learn style: %v", writing)
	}
}

func TestTrainMeasuresDefectRates(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	clean, err := Train(base, cleanDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Train(base, dirtyDataset(t, 0.3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cp, dp := clean.Policy(), dirty.Policy()
	if cp.LeakRate != 0 {
		t.Errorf("clean leak rate = %v, want 0", cp.LeakRate)
	}
	if dp.LeakRate <= cp.LeakRate {
		t.Errorf("dirty leak rate %v not above clean %v", dp.LeakRate, cp.LeakRate)
	}
	totalDirty := dp.LeakRate + dp.ConflictRate + dp.OverreachRate
	if totalDirty < 0.15 || totalDirty > 0.45 {
		t.Errorf("dirty defect mass = %v, want near 0.3", totalDirty)
	}
}

func TestComplementDeterministicAndDirected(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	m, err := Train(base, cleanDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := "Write a python function that implements a bloom filter."
	if m.Complement(p, "s") != m.Complement(p, "s") {
		t.Fatal("not deterministic")
	}
	aug := m.Complement(p, "s")
	if facet.DetectDirectives(aug).Len() == 0 {
		t.Fatalf("complement carries no directives: %q", aug)
	}
	if strings.Contains(strings.ToLower(aug), "bloom filter implementation code") {
		t.Fatalf("complement looks like an answer: %q", aug)
	}
}

func TestCleanModelProducesFewerDefects(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	clean, err := Train(base, cleanDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Train(base, dirtyDataset(t, 0.3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prompts := []string{
		"Briefly summarize this long article about coral reefs.",
		"Briefly explain how vaccines work.",
		"Hello! How is your morning going?",
		"Briefly, what is dark matter?",
	}
	defects := func(m *Model) int {
		n := 0
		for _, p := range prompts {
			a := facet.AnalyzePrompt(p)
			for i := 0; i < 50; i++ {
				aug := m.Complement(p, fmt.Sprintf("d%d", i))
				dirs := facet.DetectDirectives(aug)
				if facet.DetectAnswerLeak(aug) ||
					len(facet.ConflictingDirectives(a, dirs)) > 0 ||
					(dirs.Len() >= 4 && a.Complexity < 1) {
					n++
				}
			}
		}
		return n
	}
	dc, dd := defects(clean), defects(dirty)
	if dd <= dc {
		t.Fatalf("dirty-trained model should emit more defects: clean=%d dirty=%d", dc, dd)
	}
}

func TestWeakerBaseIsNoisier(t *testing.T) {
	data := cleanDataset(t)
	strong, err := Train(simllm.MustModel(simllm.Qwen27B), data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Train(simllm.MustModel(simllm.LLaMA27B), data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// On-target rate: fraction of complements demanding a top-2 need.
	prompts := []string{
		"Write a python function that implements a rate limiter.",
		"Explain how photosynthesis works.",
		"Analyze the trade offs of sql versus nosql for a startup.",
		"Solve x^2 - 5x + 6 = 0.",
	}
	onTarget := func(m *Model) int {
		n := 0
		for _, p := range prompts {
			top := facet.AnalyzePrompt(p).Needs.Top(3)
			topSet := facet.NewSet(top...)
			for i := 0; i < 50; i++ {
				dirs := facet.DetectDirectives(m.Complement(p, fmt.Sprintf("n%d", i)))
				hit := false
				for _, f := range dirs.Facets() {
					if topSet.Has(f) {
						hit = true
					}
				}
				if hit {
					n++
				}
			}
		}
		return n
	}
	s, w := onTarget(strong), onTarget(weak)
	if s < w {
		t.Fatalf("stronger base should be at least as on-target: strong=%d weak=%d", s, w)
	}
}

func TestTrapDirectiveLearned(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	d := cleanDataset(t)
	// Add trap-prompt pairs whose complements demand vigilance.
	trapPrompt := "If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?"
	for i := 0; i < 10; i++ {
		if err := d.Add(dataset.Pair{
			Prompt:     trapPrompt,
			Complement: facet.RenderDirectives([]facet.Facet{facet.TrapAware, facet.Reasoning}, fmt.Sprint(i)),
			Category:   "reasoning",
		}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Train(base, d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy().TrapDirective < 0.9 {
		t.Fatalf("trap directive propensity = %v, want ~1", m.Policy().TrapDirective)
	}
	warned := 0
	for i := 0; i < 30; i++ {
		aug := m.Complement(trapPrompt, fmt.Sprintf("t%d", i))
		if facet.DetectDirectives(aug).Has(facet.TrapAware) {
			warned++
		}
	}
	if warned < 25 {
		t.Fatalf("trained model warned only %d/30 times", warned)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	m, err := Train(base, cleanDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseName() != m.BaseName() {
		t.Fatalf("base name lost: %s", got.BaseName())
	}
	p := "Explain the science of fermentation."
	if got.Complement(p, "x") != m.Complement(p, "x") {
		t.Fatal("loaded model behaves differently")
	}
}

func TestSaveLoadFile(t *testing.T) {
	base := simllm.MustModel(simllm.Qwen27B)
	m, err := Train(base, cleanDataset(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pas.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "none.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadRejectsBadFormat(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"format":"other"}`)); err == nil {
		t.Error("wrong format should fail")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := Load(strings.NewReader(`{"format":"pas-sft-v1","base":{"Name":"x","Quality":0.5,"Obedience":0.5,"TrapResistance":0.5,"Verbosity":1},"policy":{"category_facet":[[0.1]]}}`)); err == nil {
		t.Error("wrong policy shape should fail")
	}
}

func BenchmarkTrain(b *testing.B) {
	base := simllm.MustModel(simllm.Qwen27B)
	d := &dataset.Dataset{}
	for _, pairs := range dataset.Golden() {
		for _, p := range pairs {
			if err := d.Add(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(base, d, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComplement(b *testing.B) {
	base := simllm.MustModel(simllm.Qwen27B)
	d := &dataset.Dataset{}
	for _, pairs := range dataset.Golden() {
		for _, p := range pairs {
			if err := d.Add(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	m, err := Train(base, d, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Complement("Write a python function that implements a trie.", "bench")
	}
}
