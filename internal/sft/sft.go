// Package sft simulates supervised fine-tuning of a base LLM on a
// (prompt, complementary prompt) dataset, producing the PAS model M_p of
// §3.4.
//
// Real SFT distils the training distribution into the model's behaviour:
// the paper's central empirical claim (the Table 5 ablation) is that the
// *quality of the training pairs propagates through fine-tuning into
// downstream win rates*. This package preserves exactly that causal path.
// Training fits, per category, the propensity of each facet being
// demanded — and it also fits the dataset's bad habits: the rates of
// answer-leak, constraint-conflict, and over-reach defects present in the
// pairs. A model trained on unselected data therefore reproduces those
// defects at inference time, and measurably loses benchmark points.
//
// The fitted policy is a plain counts-and-smoothing model; the base LLM's
// quality contributes execution noise (a 7B base renders the learned
// policy less faithfully than a 70B would), which is what separates
// Table 1 (Qwen2-7B base) from Table 2 (LLaMA-2-7B base).
package sft

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
	"repro/internal/facet"
	"repro/internal/simllm"
	"repro/internal/textkit"
)

// Policy is what fine-tuning learns from the pair dataset.
type Policy struct {
	// CategoryFacet[c][f] is the smoothed propensity of facet f being
	// demanded for prompts of category c.
	CategoryFacet [][]float64 `json:"category_facet"`
	// LeakRate is the fraction of training complements that directly
	// answered the prompt (defect class 3 of Figure 5).
	LeakRate float64 `json:"leak_rate"`
	// ConflictRate is the fraction that conflicted with the prompt's
	// explicit constraints (defect class 1/4).
	ConflictRate float64 `json:"conflict_rate"`
	// OverreachRate is the fraction demanding >= 4 facets on a simple
	// prompt (defect class 2).
	OverreachRate float64 `json:"overreach_rate"`
	// TrapDirective is, among trap prompts, the fraction whose
	// complement demanded vigilance.
	TrapDirective float64 `json:"trap_directive"`
	// AvgFacets is the mean number of directives per complement.
	AvgFacets float64 `json:"avg_facets"`
	// Examples is the training-set size.
	Examples int `json:"examples"`
}

// Config controls training.
type Config struct {
	// Smoothing is the Laplace pseudo-count per (category, facet) cell.
	Smoothing float64
	// Seed feeds the model's inference-time draws.
	Seed uint64
}

// DefaultConfig returns standard training settings.
func DefaultConfig() Config { return Config{Smoothing: 0.5, Seed: 0x5f7} }

// ErrNoData is returned when training on an empty dataset.
var ErrNoData = errors.New("sft: empty training set")

// Model is a fine-tuned prompt-complement model: the PAS model M_p.
type Model struct {
	policy Policy
	base   simllm.Profile
	seed   uint64
}

// Train fine-tunes base on the dataset and returns the resulting model.
func Train(base *simllm.Model, data *dataset.Dataset, cfg Config) (*Model, error) {
	if base == nil {
		return nil, errors.New("sft: nil base model")
	}
	if data == nil || data.Len() == 0 {
		return nil, ErrNoData
	}
	if cfg.Smoothing < 0 {
		return nil, fmt.Errorf("sft: smoothing must be >= 0, got %v", cfg.Smoothing)
	}

	counts := make([][]float64, facet.CategoryCount)
	for i := range counts {
		counts[i] = make([]float64, facet.Count)
		for j := range counts[i] {
			counts[i][j] = cfg.Smoothing
		}
	}
	var leaks, conflicts, overreaches, facetSum, withDirs float64
	var traps, trapWarned float64

	for _, p := range data.Pairs {
		a := facet.AnalyzePrompt(p.Prompt)
		cat := p.CategoryOrDefault()
		dirs := facet.DetectDirectives(p.Complement)

		if a.Trapped {
			traps++
			if dirs.Has(facet.TrapAware) {
				trapWarned++
			}
		}
		// Every pair shapes the learned facet policy — SFT does not know
		// which examples are defective, so conflict and over-reach pairs
		// corrupt the propensities in addition to registering as habits.
		if dirs.Len() > 0 {
			facetSum += float64(dirs.Len())
			withDirs++
			for _, f := range dirs.Facets() {
				counts[cat][f]++
			}
		}
		switch {
		case facet.DetectAnswerLeak(p.Complement):
			leaks++
		case len(facet.ConflictingDirectives(a, dirs)) > 0:
			conflicts++
		case dirs.Len() >= 4 && a.Complexity < 1:
			overreaches++
		}
	}

	n := float64(data.Len())
	pol := Policy{
		CategoryFacet: counts,
		LeakRate:      leaks / n,
		ConflictRate:  conflicts / n,
		OverreachRate: overreaches / n,
		Examples:      data.Len(),
	}
	if traps > 0 {
		pol.TrapDirective = trapWarned / traps
	} else {
		// No trap examples seen: the model neither learned nor unlearned
		// vigilance; fall back to the base's own instinct.
		pol.TrapDirective = base.Profile().TrapResistance
	}
	if withDirs > 0 {
		pol.AvgFacets = facetSum / withDirs
	} else {
		pol.AvgFacets = 2
	}
	// Normalise per category to propensities.
	for c := range pol.CategoryFacet {
		var total float64
		for _, v := range pol.CategoryFacet[c] {
			total += v
		}
		if total > 0 {
			for f := range pol.CategoryFacet[c] {
				pol.CategoryFacet[c][f] /= total
			}
		}
	}
	return &Model{policy: pol, base: base.Profile(), seed: cfg.Seed ^ textkit.Hash64(base.Name())}, nil
}

// Policy returns a copy of the fitted policy.
func (m *Model) Policy() Policy {
	out := m.policy
	out.CategoryFacet = make([][]float64, len(m.policy.CategoryFacet))
	for i, row := range m.policy.CategoryFacet {
		out.CategoryFacet[i] = append([]float64(nil), row...)
	}
	return out
}

// BaseName returns the fine-tuned base model's name.
func (m *Model) BaseName() string { return m.base.Name }

// Complement generates a complementary prompt for the user prompt — the
// PAS inference call p_c = M_p(p). The same salt yields the same output.
func (m *Model) Complement(prompt, salt string) string {
	a := facet.AnalyzePrompt(prompt)
	// Execution fidelity: how faithfully the base expresses the learned
	// policy. Weaker bases amplify learned defect rates and add facet
	// selection noise.
	infidelity := 1.6 - m.base.Quality

	if m.draw(prompt, "leak", salt) < m.policy.LeakRate*infidelity {
		return facet.RenderAnswerLeak(prompt + salt)
	}
	if a.Constraints.Len() > 0 && m.draw(prompt, "conflict", salt) < m.policy.ConflictRate*infidelity {
		return facet.RenderConflicting(a.Constraints.Facets()[0], prompt+salt)
	}
	if a.Complexity < 1 && m.draw(prompt, "overreach", salt) < m.policy.OverreachRate*infidelity {
		return facet.RenderDirectives([]facet.Facet{
			facet.Completeness, facet.Examples, facet.Context, facet.Safety, facet.Planning,
		}, prompt+salt)
	}

	// Base-capacity limits: a weaker base sometimes flubs the learned
	// mapping (falling back to a generic, weakly-useful complement) or
	// garbles one facet choice. This is why fine-tuning the same data
	// onto LLaMA-2-7B (Table 2) trails the Qwen2-7B build (Table 1).
	var want []facet.Facet
	if m.draw(prompt, "flub", salt) < 1.1*(0.8-m.base.Quality) {
		want = []facet.Facet{facet.Specificity}
	} else {
		want = m.pickFacets(a, prompt, salt)
		if len(want) > 0 && m.draw(prompt, "garble", salt) < 0.8*(0.8-m.base.Quality) {
			sub := facet.Facet(int(m.draw(prompt, "garblepick", salt) * float64(facet.Count)))
			if sub.Valid() && !conflictsConstraint(a, sub) {
				want[len(want)-1] = sub
			}
		}
	}
	if a.Trapped && m.draw(prompt, "trapdir", salt) < m.policy.TrapDirective {
		if !hasFacet(want, facet.TrapAware) {
			want = append([]facet.Facet{facet.TrapAware}, want...)
		}
	}
	if len(want) == 0 {
		want = []facet.Facet{facet.Specificity}
	}
	return facet.RenderDirectives(want, prompt+salt)
}

// pickFacets scores each facet by learned propensity times prompt need
// and keeps the top learned-average count.
func (m *Model) pickFacets(a facet.Analysis, prompt, salt string) []facet.Facet {
	noise := 0.25 * (1.2 - m.base.Quality)
	type scored struct {
		f facet.Facet
		s float64
	}
	var cands []scored
	for f := 0; f < facet.Count; f++ {
		prop := m.policy.CategoryFacet[a.Category][f]
		s := prop * (0.4 + a.Needs[f])
		s += (m.draw(prompt, "pick/"+facet.Facet(f).String(), salt) - 0.5) * noise * prop * 4
		if conflictsConstraint(a, facet.Facet(f)) {
			// A well-trained policy learned to avoid these; residual
			// conflict habit is handled by ConflictRate above.
			continue
		}
		if s > 0 {
			cands = append(cands, scored{facet.Facet(f), s})
		}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].s > cands[j-1].s; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	k := int(m.policy.AvgFacets + 0.5)
	if k < 1 {
		k = 1
	}
	if k > 3 {
		k = 3
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]facet.Facet, len(cands))
	for i, c := range cands {
		out[i] = c.f
	}
	return out
}

// ComplementCheap is the brownout complement: one generic specificity
// directive, rendered with no prompt analysis, no policy scoring, and
// no defect simulation — constant work per call. It is what the
// serving tier's trim rung serves when the full model's admission
// queue is saturated: strictly less useful than Complement, still a
// valid p_c (it only adds guidance), and far cheaper.
func (m *Model) ComplementCheap(prompt, salt string) string {
	return facet.RenderDirectives([]facet.Facet{facet.Specificity}, prompt+salt)
}

func (m *Model) draw(prompt, purpose, salt string) float64 {
	return textkit.Unit(purpose+"\x00"+salt+"\x00"+prompt, m.seed)
}

func conflictsConstraint(a facet.Analysis, f facet.Facet) bool {
	for _, g := range a.Constraints.Facets() {
		if f != g && facet.ConflictsWith(f, g) {
			return true
		}
	}
	return false
}

func hasFacet(fs []facet.Facet, f facet.Facet) bool {
	for _, x := range fs {
		if x == f {
			return true
		}
	}
	return false
}

// persisted is the on-disk model format.
type persisted struct {
	Format string         `json:"format"`
	Base   simllm.Profile `json:"base"`
	Seed   uint64         `json:"seed"`
	Policy Policy         `json:"policy"`
}

const formatV1 = "pas-sft-v1"

// Save writes the model to w as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(persisted{Format: formatV1, Base: m.base, Seed: m.seed, Policy: m.policy})
}

// Bytes returns the model in its Save serialization — the canonical
// byte form used for checkpoint snapshots and artifact comparison.
// Save is deterministic (no maps, no timestamps), so equal models
// produce equal bytes.
func (m *Model) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sft: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("sft: closing %s: %w", path, cerr)
		}
	}()
	return m.Save(f)
}

// Load reads a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("sft: decoding model: %w", err)
	}
	if p.Format != formatV1 {
		return nil, fmt.Errorf("sft: unsupported model format %q", p.Format)
	}
	if err := p.Base.Validate(); err != nil {
		return nil, err
	}
	if len(p.Policy.CategoryFacet) != facet.CategoryCount {
		return nil, fmt.Errorf("sft: policy has %d categories, want %d",
			len(p.Policy.CategoryFacet), facet.CategoryCount)
	}
	for i, row := range p.Policy.CategoryFacet {
		if len(row) != facet.Count {
			return nil, fmt.Errorf("sft: policy category %d has %d facets, want %d", i, len(row), facet.Count)
		}
	}
	return &Model{policy: p.Policy, base: p.Base, seed: p.Seed}, nil
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sft: %w", err)
	}
	defer f.Close()
	return Load(f)
}
