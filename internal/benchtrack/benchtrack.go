// Package benchtrack is the benchmark-trajectory subsystem: a
// registered suite of hot-path measurements (see suite.go) run
// in-process by cmd/pasbench, recorded into a schema-versioned report
// (the committed BENCH_hotpath.json), and diffed against that baseline
// by a noise-aware comparator (compare.go) so CI fails when the hot
// path regresses — before anyone notices it in production.
//
// Methodology: each benchmark runs K independent repetitions
// (Options.Reps); within a rep, per-op latency is sampled with a
// monotonic clock and allocations with runtime.ReadMemStats deltas.
// The recorded result is the median across reps, with the inter-rep
// IQR kept alongside so the comparator can widen its tolerance where a
// benchmark is genuinely noisy (shared CI runners) instead of using
// one global fudge factor.
package benchtrack

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/metrics"
)

// SchemaVersion is stamped into every Report; the comparator refuses
// to diff reports of different versions rather than misread fields.
const SchemaVersion = 1

// Report is the trajectory file shape (BENCH_hotpath.json).
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	// Revision is the VCS commit the binary was built from ("unknown"
	// for unstamped builds — go test, go run).
	Revision   string   `json:"revision"`
	Benchmarks []Result `json:"benchmarks"`
}

// Result is one benchmark's median-of-reps measurement.
type Result struct {
	Name      string `json:"name"`
	Reps      int    `json:"reps"`
	OpsPerRep int    `json:"ops_per_rep"`
	// Latency quantiles in nanoseconds per op (median across reps).
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
	// QPS is ops per wall-clock second (median across reps).
	QPS float64 `json:"qps"`
	// AllocsPerOp / BytesPerOp are ReadMemStats deltas divided by ops;
	// zero for macro benchmarks that cannot isolate their allocations.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// P50IQRNs / P99IQRNs are the interquartile ranges of the per-rep
	// quantiles — the noise band the comparator adds to its tolerance.
	P50IQRNs float64 `json:"p50_iqr_ns"`
	P99IQRNs float64 `json:"p99_iqr_ns"`
}

// RepSample is one repetition's measurement, produced either by the
// runner's micro loop or by a macro benchmark's RunRep.
type RepSample struct {
	P50Ns       float64
	P99Ns       float64
	QPS         float64
	AllocsPerOp float64
	BytesPerOp  float64
	// Ops is how many operations the rep measured (macro benchmarks
	// report it themselves; micro reps use Benchmark.Ops).
	Ops int
}

// Benchmark is one registered measurement. Exactly one of Setup (micro
// form: the runner times op() Ops times per rep) or RunRep (macro
// form: the benchmark measures one whole rep itself, e.g. a loadgen
// cluster run) must be set.
type Benchmark struct {
	Name string
	// Ops per rep for the micro form. Ignored when RunRep is set.
	Ops int
	// Setup builds the op under measurement plus its cleanup; it runs
	// once per rep so state (caches, cores) never leaks across reps.
	Setup func() (op func() error, cleanup func(), err error)
	// RunRep runs one macro repetition.
	RunRep func() (RepSample, error)
}

// Options shapes a Run.
type Options struct {
	// Reps is the repetition count per benchmark. Default 5.
	Reps int
	// Filter, when non-nil, selects benchmarks by name.
	Filter *regexp.Regexp
	// MaxOps caps micro-benchmark ops per rep (CI smoke runs). 0 keeps
	// each benchmark's declared count.
	MaxOps int
	// ProfileDir, when set, captures one extra uncounted rep per micro
	// benchmark under the CPU profiler and writes <name>.cpu.pprof plus
	// a post-rep <name>.heap.pprof there.
	ProfileDir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Run executes every suite benchmark matching opts.Filter and returns
// the stamped report. Benchmarks run sequentially — parallel
// benchmarks would contend and corrupt each other's latency samples.
func Run(suite []Benchmark, opts Options) (Report, error) {
	if opts.Reps <= 0 {
		opts.Reps = 5
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rep := Report{
		SchemaVersion: SchemaVersion,
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		Revision:      buildRevision(),
	}
	for _, b := range suite {
		if opts.Filter != nil && !opts.Filter.MatchString(b.Name) {
			continue
		}
		res, err := runOne(b, opts, logf)
		if err != nil {
			return Report{}, fmt.Errorf("benchtrack: %s: %w", b.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if len(rep.Benchmarks) == 0 {
		return Report{}, errors.New("benchtrack: no benchmarks matched")
	}
	return rep, nil
}

func runOne(b Benchmark, opts Options, logf func(string, ...any)) (Result, error) {
	if (b.Setup == nil) == (b.RunRep == nil) {
		return Result{}, errors.New("exactly one of Setup or RunRep must be set")
	}
	ops := b.Ops
	if opts.MaxOps > 0 && ops > opts.MaxOps {
		ops = opts.MaxOps
	}
	samples := make([]RepSample, 0, opts.Reps)
	for r := 0; r < opts.Reps; r++ {
		var s RepSample
		var err error
		if b.RunRep != nil {
			s, err = b.RunRep()
		} else {
			s, err = microRep(b, ops, false, "")
		}
		if err != nil {
			return Result{}, fmt.Errorf("rep %d: %w", r+1, err)
		}
		samples = append(samples, s)
		logf("%s rep %d/%d: p50=%.0fns p99=%.0fns qps=%.0f allocs/op=%.2f",
			b.Name, r+1, opts.Reps, s.P50Ns, s.P99Ns, s.QPS, s.AllocsPerOp)
	}
	if opts.ProfileDir != "" && b.Setup != nil {
		if _, err := microRep(b, ops, true, filepath.Join(opts.ProfileDir, b.Name)); err != nil {
			return Result{}, fmt.Errorf("profile rep: %w", err)
		}
		logf("%s: profiles written to %s.{cpu,heap}.pprof", b.Name, filepath.Join(opts.ProfileDir, b.Name))
	}
	return aggregate(b.Name, samples), nil
}

// microRep runs one timed repetition of a micro benchmark. When
// profile is set, the rep runs under the CPU profiler and dumps a heap
// profile afterwards; profiled reps are never used for measurement.
func microRep(b Benchmark, ops int, profile bool, profilePrefix string) (RepSample, error) {
	op, cleanup, err := b.Setup()
	if err != nil {
		return RepSample{}, fmt.Errorf("setup: %w", err)
	}
	if cleanup != nil {
		defer cleanup()
	}
	// Warm up outside the measured window: first-op costs (lazy init,
	// cache fill paths) belong to Setup's story, not the steady state.
	warm := ops / 10
	if warm > 100 {
		warm = 100
	}
	if warm < 1 {
		warm = 1
	}
	for i := 0; i < warm; i++ {
		if err := op(); err != nil {
			return RepSample{}, fmt.Errorf("warmup op: %w", err)
		}
	}

	if profile {
		f, err := os.Create(profilePrefix + ".cpu.pprof")
		if err != nil {
			return RepSample{}, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return RepSample{}, err
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}

	// The latency slice is preallocated before the MemStats window so
	// the harness's own allocations never count against the op.
	lat := make([]float64, ops)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	wall := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := op(); err != nil {
			return RepSample{}, fmt.Errorf("op %d: %w", i, err)
		}
		lat[i] = float64(time.Since(t0).Nanoseconds())
	}
	elapsed := time.Since(wall)
	runtime.ReadMemStats(&after)

	if profile {
		hf, err := os.Create(profilePrefix + ".heap.pprof")
		if err != nil {
			return RepSample{}, err
		}
		werr := pprof.WriteHeapProfile(hf)
		cerr := hf.Close()
		if werr != nil {
			return RepSample{}, werr
		}
		if cerr != nil {
			return RepSample{}, cerr
		}
	}

	s := RepSample{
		P50Ns: quantile(lat, 0.50),
		P99Ns: quantile(lat, 0.99),
		Ops:   ops,
	}
	if elapsed > 0 {
		s.QPS = float64(ops) / elapsed.Seconds()
	}
	s.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	s.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	return s, nil
}

// aggregate folds per-rep samples into the recorded Result: median per
// metric, IQR across reps for the latency quantiles.
func aggregate(name string, samples []RepSample) Result {
	pick := func(f func(RepSample) float64) []float64 {
		xs := make([]float64, len(samples))
		for i, s := range samples {
			xs[i] = f(s)
		}
		return xs
	}
	p50s := pick(func(s RepSample) float64 { return s.P50Ns })
	p99s := pick(func(s RepSample) float64 { return s.P99Ns })
	return Result{
		Name:        name,
		Reps:        len(samples),
		OpsPerRep:   samples[0].Ops,
		P50Ns:       median(p50s),
		P99Ns:       median(p99s),
		QPS:         median(pick(func(s RepSample) float64 { return s.QPS })),
		AllocsPerOp: median(pick(func(s RepSample) float64 { return s.AllocsPerOp })),
		BytesPerOp:  median(pick(func(s RepSample) float64 { return s.BytesPerOp })),
		P50IQRNs:    iqr(p50s),
		P99IQRNs:    iqr(p99s),
	}
}

func quantile(xs []float64, q float64) float64 {
	v, err := metrics.Quantile(xs, q)
	if err != nil {
		return 0
	}
	return v
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// iqr is the interquartile range — the spread of the middle half of
// the reps, robust to a single outlier rep (a GC pause, a noisy
// neighbor on a shared runner).
func iqr(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) < 2 {
		return 0
	}
	return quantile(s, 0.75) - quantile(s, 0.25)
}

func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}
