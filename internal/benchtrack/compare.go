package benchtrack

import (
	"errors"
	"fmt"
)

// ErrSchemaMismatch reports that baseline and current were generated
// under different report schemas; the diff would be meaningless, so
// the comparator refuses instead of guessing.
var ErrSchemaMismatch = errors.New("benchtrack: report schema mismatch")

// Tolerance is the comparator's noise policy. Zero fields select the
// defaults, which are deliberately generous: the gate runs on shared
// CI runners, and a flaky perf gate is worse than a loose one —
// genuine regressions (the injected-2x kind) clear these bars easily.
type Tolerance struct {
	// LatencyFrac is the allowed fractional latency growth before the
	// IQR band is added (0.75 = +75%). Default 0.75.
	LatencyFrac float64
	// IQRMult scales the baseline's inter-rep IQR added on top of the
	// fractional band. Default 3.
	IQRMult float64
	// AllocFrac is the allowed fractional allocs/op growth. Default
	// 0.25 — allocation counts are near-deterministic, so the band is
	// much tighter than latency.
	AllocFrac float64
	// AllocSlack is the absolute allocs/op slack added to the
	// fractional band, so a 0→1 alloc change on a zero-alloc path
	// still needs AllocSlack+1 to trip. Default 2.
	AllocSlack float64
	// BytesFrac / BytesSlack do the same for bytes/op. Defaults 0.5
	// and 256.
	BytesFrac  float64
	BytesSlack float64
}

func (t Tolerance) withDefaults() Tolerance {
	if t.LatencyFrac == 0 {
		t.LatencyFrac = 0.75
	}
	if t.IQRMult == 0 {
		t.IQRMult = 3
	}
	if t.AllocFrac == 0 {
		t.AllocFrac = 0.25
	}
	if t.AllocSlack == 0 {
		t.AllocSlack = 2
	}
	if t.BytesFrac == 0 {
		t.BytesFrac = 0.5
	}
	if t.BytesSlack == 0 {
		t.BytesSlack = 256
	}
	return t
}

// Verdict classifies one benchmark's baseline→current movement.
type Verdict string

const (
	// VerdictOK: within the tolerance band (including harmless noise).
	VerdictOK Verdict = "ok"
	// VerdictImproved: meaningfully faster than baseline — worth
	// re-baselining so the win is locked in.
	VerdictImproved Verdict = "improved"
	// VerdictRegression: outside the band; the gate fails.
	VerdictRegression Verdict = "regression"
	// VerdictNoBaseline: new benchmark, nothing to compare against.
	VerdictNoBaseline Verdict = "no_baseline"
	// VerdictMissing: present in the baseline but not in the current
	// run — a silently dropped benchmark would blind the trajectory,
	// so this fails the gate too.
	VerdictMissing Verdict = "missing"
)

// Delta is one benchmark's comparison outcome. Details carries a
// human-readable line per checked metric that was notable.
type Delta struct {
	Name    string
	Verdict Verdict
	Details []string
}

// Compare diffs current against baseline under tol and reports one
// Delta per benchmark (baseline order, then new benchmarks). regressed
// is true when any delta is VerdictRegression or VerdictMissing.
func Compare(baseline, current Report, tol Tolerance) (deltas []Delta, regressed bool, err error) {
	if baseline.SchemaVersion != current.SchemaVersion {
		return nil, false, fmt.Errorf("%w: baseline v%d, current v%d",
			ErrSchemaMismatch, baseline.SchemaVersion, current.SchemaVersion)
	}
	tol = tol.withDefaults()

	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
	}
	seen := make(map[string]bool, len(baseline.Benchmarks))
	for _, base := range baseline.Benchmarks {
		seen[base.Name] = true
		c, ok := cur[base.Name]
		if !ok {
			deltas = append(deltas, Delta{Name: base.Name, Verdict: VerdictMissing,
				Details: []string{"present in baseline but not measured in this run"}})
			regressed = true
			continue
		}
		deltas = append(deltas, compareOne(base, c, tol))
	}
	for _, c := range current.Benchmarks {
		if !seen[c.Name] {
			deltas = append(deltas, Delta{Name: c.Name, Verdict: VerdictNoBaseline,
				Details: []string{"new benchmark; commit the regenerated baseline to start tracking it"}})
		}
	}
	for _, d := range deltas {
		if d.Verdict == VerdictRegression {
			regressed = true
		}
	}
	return deltas, regressed, nil
}

func compareOne(base, cur Result, tol Tolerance) Delta {
	d := Delta{Name: base.Name, Verdict: VerdictOK}
	bad := func(format string, args ...any) {
		d.Verdict = VerdictRegression
		d.Details = append(d.Details, fmt.Sprintf(format, args...))
	}

	// Lower-is-better latency: the limit is the fractional band plus
	// the baseline's own measured noise, scaled.
	checkLatency := func(metric string, b, c, bIQR float64) {
		limit := b*(1+tol.LatencyFrac) + tol.IQRMult*bIQR
		if c > limit {
			bad("%s %.0fns > limit %.0fns (baseline %.0fns, IQR %.0fns)", metric, c, limit, b, bIQR)
		}
	}
	checkLatency("p50", base.P50Ns, cur.P50Ns, base.P50IQRNs)
	checkLatency("p99", base.P99Ns, cur.P99Ns, base.P99IQRNs)

	if limit := base.AllocsPerOp*(1+tol.AllocFrac) + tol.AllocSlack; cur.AllocsPerOp > limit {
		bad("allocs/op %.2f > limit %.2f (baseline %.2f)", cur.AllocsPerOp, limit, base.AllocsPerOp)
	}
	if limit := base.BytesPerOp*(1+tol.BytesFrac) + tol.BytesSlack; cur.BytesPerOp > limit {
		bad("bytes/op %.0f > limit %.0f (baseline %.0f)", cur.BytesPerOp, limit, base.BytesPerOp)
	}

	if d.Verdict == VerdictOK && base.P50Ns > 0 && base.P99Ns > 0 &&
		cur.P50Ns < base.P50Ns*0.9 && cur.P99Ns < base.P99Ns*0.9 {
		d.Verdict = VerdictImproved
		d.Details = append(d.Details, fmt.Sprintf("p50 %.0f→%.0fns, p99 %.0f→%.0fns; consider re-baselining",
			base.P50Ns, cur.P50Ns, base.P99Ns, cur.P99Ns))
	}
	return d
}
