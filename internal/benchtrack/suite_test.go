package benchtrack

import (
	"regexp"
	"testing"
)

// TestSuiteSmoke runs every registered benchmark at drastically reduced
// scale: the point is that each one sets up, measures, and tears down
// cleanly (goroutines joined, servers closed), not the numbers.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke is seconds-scale")
	}
	suite := Suite()
	if len(suite) != 7 {
		t.Fatalf("suite has %d benchmarks, want 7", len(suite))
	}
	names := map[string]bool{}
	for _, b := range suite {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
	}
	for _, want := range []string{
		"serving_key", "cached_augment", "singleflight_miss",
		"admission_fast_path", "degraded_breaker_open", "ring_owner",
		"loadgen_cluster",
	} {
		if !names[want] {
			t.Errorf("suite missing %q", want)
		}
	}

	rep, err := Run(suite, Options{Reps: 1, MaxOps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != len(suite) {
		t.Fatalf("measured %d of %d benchmarks", len(rep.Benchmarks), len(suite))
	}
	for _, r := range rep.Benchmarks {
		if r.P50Ns <= 0 || r.QPS <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
}

// TestSuiteMicroOnly keeps a fast always-on check over the micro
// benchmarks (no HTTP servers, sub-second).
func TestSuiteMicroOnly(t *testing.T) {
	rep, err := Run(Suite(), Options{
		Reps:   1,
		MaxOps: 200,
		Filter: regexp.MustCompile("serving_key|ring_owner|degraded_breaker_open"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("measured %d, want 3", len(rep.Benchmarks))
	}
}
