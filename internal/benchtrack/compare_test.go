package benchtrack

import (
	"errors"
	"testing"
)

func baselineReport() Report {
	return Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     "go1.22",
		Revision:      "abc123def456",
		Benchmarks: []Result{
			{Name: "cached_augment", Reps: 5, OpsPerRep: 1000,
				P50Ns: 400, P99Ns: 2000, QPS: 2e6, AllocsPerOp: 1, BytesPerOp: 80,
				P50IQRNs: 20, P99IQRNs: 150},
			{Name: "ring_owner", Reps: 5, OpsPerRep: 1000,
				P50Ns: 200, P99Ns: 250, QPS: 4e6, AllocsPerOp: 0, BytesPerOp: 0,
				P50IQRNs: 10, P99IQRNs: 12},
		},
	}
}

func findDelta(t *testing.T, deltas []Delta, name string) Delta {
	t.Helper()
	for _, d := range deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta for %s in %+v", name, deltas)
	return Delta{}
}

// Within-noise movement must not trip the gate: +20% latency is inside
// the default 75% band, and equal allocs are equal.
func TestCompareWithinNoise(t *testing.T) {
	base := baselineReport()
	cur := baselineReport()
	cur.Benchmarks[0].P50Ns = 480  // +20%
	cur.Benchmarks[0].P99Ns = 2300 // +15%
	deltas, regressed, err := Compare(base, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("within-noise movement flagged as regression: %+v", deltas)
	}
	if d := findDelta(t, deltas, "cached_augment"); d.Verdict != VerdictOK {
		t.Fatalf("verdict = %s, want ok", d.Verdict)
	}
}

// The acceptance case: an injected 2x latency regression must fail the
// gate under the default tolerance (2x > 1.75x + 3*IQR here).
func TestCompareInjected2xRegression(t *testing.T) {
	base := baselineReport()
	cur := baselineReport()
	cur.Benchmarks[0].P50Ns *= 2
	cur.Benchmarks[0].P99Ns *= 2
	deltas, regressed, err := Compare(base, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("2x latency regression passed the gate: %+v", deltas)
	}
	d := findDelta(t, deltas, "cached_augment")
	if d.Verdict != VerdictRegression {
		t.Fatalf("verdict = %s, want regression", d.Verdict)
	}
	if len(d.Details) == 0 {
		t.Fatal("regression delta carries no detail lines")
	}
	// The untouched benchmark stays clean.
	if d := findDelta(t, deltas, "ring_owner"); d.Verdict != VerdictOK {
		t.Fatalf("ring_owner verdict = %s, want ok", d.Verdict)
	}
}

// Allocation growth has its own much tighter band: +5 allocs/op on a
// 1-alloc path is a regression even though latency is unchanged.
func TestCompareAllocRegression(t *testing.T) {
	base := baselineReport()
	cur := baselineReport()
	cur.Benchmarks[0].AllocsPerOp = 6
	_, regressed, err := Compare(base, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("+5 allocs/op passed the gate")
	}
}

// A clear improvement is reported as such, never as a failure.
func TestCompareImprovement(t *testing.T) {
	base := baselineReport()
	cur := baselineReport()
	cur.Benchmarks[0].P50Ns = 200  // -50%
	cur.Benchmarks[0].P99Ns = 1000 // -50%
	deltas, regressed, err := Compare(base, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("improvement flagged as regression: %+v", deltas)
	}
	if d := findDelta(t, deltas, "cached_augment"); d.Verdict != VerdictImproved {
		t.Fatalf("verdict = %s, want improved", d.Verdict)
	}
}

// A benchmark present in the baseline but absent from the run fails
// the gate (the trajectory would silently go blind); a brand-new
// benchmark is informational only.
func TestCompareMissingAndNew(t *testing.T) {
	base := baselineReport()
	cur := baselineReport()
	cur.Benchmarks = cur.Benchmarks[:1] // drop ring_owner
	cur.Benchmarks = append(cur.Benchmarks, Result{Name: "brand_new", P50Ns: 1, P99Ns: 2})
	deltas, regressed, err := Compare(base, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("dropped benchmark passed the gate")
	}
	if d := findDelta(t, deltas, "ring_owner"); d.Verdict != VerdictMissing {
		t.Fatalf("dropped benchmark verdict = %s, want missing", d.Verdict)
	}
	if d := findDelta(t, deltas, "brand_new"); d.Verdict != VerdictNoBaseline {
		t.Fatalf("new benchmark verdict = %s, want no_baseline", d.Verdict)
	}
}

// Comparing across schema versions is refused with the typed error.
func TestCompareSchemaMismatch(t *testing.T) {
	base := baselineReport()
	cur := baselineReport()
	cur.SchemaVersion = SchemaVersion + 1
	_, _, err := Compare(base, cur, Tolerance{})
	if !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("err = %v, want ErrSchemaMismatch", err)
	}
}

// A noisy baseline (large IQR) widens the band: the same absolute
// movement that trips a quiet benchmark passes a noisy one.
func TestCompareIQRWidensBand(t *testing.T) {
	base := baselineReport()
	cur := baselineReport()
	// 2x p99 on ring_owner: quiet baseline (IQR 12) → regression.
	cur.Benchmarks[1].P99Ns = 500
	_, regressed, err := Compare(base, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("2x p99 on a quiet baseline passed")
	}
	// Same movement with a noisy baseline (IQR 30: limit 250*1.75+90 =
	// 527.5) → within band.
	base.Benchmarks[1].P99IQRNs = 30
	_, regressed, err = Compare(base, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("noisy-baseline band did not widen")
	}
}
