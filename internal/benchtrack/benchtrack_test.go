package benchtrack

import (
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestRunMicroBenchmark(t *testing.T) {
	setups, cleanups := 0, 0
	suite := []Benchmark{{
		Name: "spin",
		Ops:  2000,
		Setup: func() (func() error, func(), error) {
			setups++
			buf := make([]byte, 64)
			op := func() error {
				for i := range buf {
					buf[i] = byte(i)
				}
				return nil
			}
			return op, func() { cleanups++ }, nil
		},
	}}
	rep, err := Run(suite, Options{Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Errorf("schema = %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
	if rep.GeneratedUnix <= 0 || rep.GoVersion == "" || rep.Revision == "" {
		t.Errorf("provenance incomplete: %+v", rep)
	}
	if setups != 3 || cleanups != 3 {
		t.Errorf("setups=%d cleanups=%d, want 3 each (one per rep)", setups, cleanups)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1", len(rep.Benchmarks))
	}
	r := rep.Benchmarks[0]
	if r.Name != "spin" || r.Reps != 3 || r.OpsPerRep != 2000 {
		t.Errorf("result meta wrong: %+v", r)
	}
	if r.P50Ns <= 0 || r.P99Ns < r.P50Ns {
		t.Errorf("bad quantiles: p50=%v p99=%v", r.P50Ns, r.P99Ns)
	}
	if r.QPS <= 0 {
		t.Error("QPS not computed")
	}
}

func TestRunMacroBenchmark(t *testing.T) {
	reps := 0
	suite := []Benchmark{{
		Name: "macro",
		RunRep: func() (RepSample, error) {
			reps++
			return RepSample{P50Ns: 100, P99Ns: 300, QPS: 5000, Ops: 42}, nil
		},
	}}
	rep, err := Run(suite, Options{Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reps != 4 {
		t.Errorf("RunRep calls = %d, want 4", reps)
	}
	r := rep.Benchmarks[0]
	if r.P50Ns != 100 || r.P99Ns != 300 || r.QPS != 5000 || r.OpsPerRep != 42 {
		t.Errorf("macro result wrong: %+v", r)
	}
	if r.P50IQRNs != 0 {
		t.Errorf("identical reps must have zero IQR, got %v", r.P50IQRNs)
	}
}

func TestRunFilterAndMaxOps(t *testing.T) {
	opsSeen := 0
	suite := []Benchmark{
		{Name: "wanted", Ops: 100000, Setup: func() (func() error, func(), error) {
			opsSeen = 0
			return func() error { opsSeen++; return nil }, nil, nil
		}},
		{Name: "skipped", RunRep: func() (RepSample, error) {
			t.Error("filtered-out benchmark ran")
			return RepSample{}, nil
		}},
	}
	rep, err := Run(suite, Options{Reps: 1, Filter: regexp.MustCompile("^wanted$"), MaxOps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "wanted" {
		t.Fatalf("filter failed: %+v", rep.Benchmarks)
	}
	if rep.Benchmarks[0].OpsPerRep != 50 {
		t.Errorf("MaxOps not applied: ops=%d", rep.Benchmarks[0].OpsPerRep)
	}
	// opsSeen counts warmup + measured ops of the last rep.
	if opsSeen < 50 {
		t.Errorf("only %d ops ran", opsSeen)
	}

	if _, err := Run(suite, Options{Filter: regexp.MustCompile("nothing-matches")}); err == nil {
		t.Fatal("empty match must be an error, not an empty report")
	}
}

func TestRunBenchmarkErrorPropagates(t *testing.T) {
	wantErr := errors.New("op exploded")
	suite := []Benchmark{{
		Name: "boom",
		Ops:  10,
		Setup: func() (func() error, func(), error) {
			n := 0
			return func() error {
				n++
				if n > 3 {
					return wantErr
				}
				return nil
			}, nil, nil
		},
	}}
	if _, err := Run(suite, Options{Reps: 1}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped %v", err, wantErr)
	}

	both := []Benchmark{{Name: "both-set",
		Setup:  func() (func() error, func(), error) { return nil, nil, nil },
		RunRep: func() (RepSample, error) { return RepSample{}, nil }}}
	if _, err := Run(both, Options{}); err == nil {
		t.Fatal("benchmark with both Setup and RunRep must be rejected")
	}
}

func TestRunProfileCapture(t *testing.T) {
	dir := t.TempDir()
	suite := []Benchmark{{
		Name: "profiled",
		Ops:  500,
		Setup: func() (func() error, func(), error) {
			return func() error { _ = make([]byte, 128); return nil }, nil, nil
		},
	}}
	if _, err := Run(suite, Options{Reps: 1, ProfileDir: dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"profiled.cpu.pprof", "profiled.heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s not written: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
