package benchtrack

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/httpmw"
	"repro/internal/loadgen"
	"repro/internal/ring"
	"repro/internal/serving"
)

// Suite returns the registered hot-path benchmarks, the measurements
// BENCH_hotpath.json tracks. Order is stable; names are the comparator
// keys, so renaming one is a baseline-regeneration event.
//
// The micro benchmarks run against a bare serving.Core with a
// synthetic complement function — building a full pas.System takes
// seconds of corpus/model fitting and would measure setup, not the hot
// path. The macro benchmark (loadgen_cluster) runs the real HTTP
// serving shape: three in-process replicas behind a consistent-hash
// front, driven by the seeded load generator.
func Suite() []Benchmark {
	return []Benchmark{
		servingKeyBenchmark(),
		cachedAugmentBenchmark(),
		singleflightMissBenchmark(),
		admissionFastPathBenchmark(),
		degradedBreakerBenchmark(),
		ringOwnerBenchmark(),
		loadgenClusterBenchmark(),
	}
}

const benchModel = "pas-bench"

// sink defeats dead-code elimination of pure ops.
var sink string

func benchCorpus(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("benchtrack prompt %03d: explain consistent hashing to a practitioner", i)
	}
	return out
}

// synthComplement stands in for the PAS model: deterministic, cheap,
// and shaped like a real complement (prefix + the prompt).
func synthComplement(prompt, salt string) string {
	return "Answer precisely and cite assumptions. " + prompt + salt
}

// servingKeyBenchmark measures serving.Key — computed once per request
// and once per ring route, the first line of the hot path.
func servingKeyBenchmark() Benchmark {
	return Benchmark{
		Name: "serving_key",
		Ops:  200_000,
		Setup: func() (func() error, func(), error) {
			prompts := benchCorpus(64)
			i := 0
			op := func() error {
				sink = serving.Key(prompts[i%len(prompts)], "tone: concise", benchModel)
				i++
				return nil
			}
			return op, nil, nil
		},
	}
}

// cachedAugmentBenchmark measures Core.Do on a warm cache — the p50
// path of production traffic (BENCH_serving.json showed ~89% of a
// zipfian burst hits it).
func cachedAugmentBenchmark() Benchmark {
	return Benchmark{
		Name: "cached_augment",
		Ops:  100_000,
		Setup: func() (func() error, func(), error) {
			core, err := serving.New(synthComplement, serving.Config{CacheSize: 4096})
			if err != nil {
				return nil, nil, err
			}
			ctx := context.Background()
			prompts := benchCorpus(256)
			for _, p := range prompts {
				if _, err := core.Do(ctx, p, "", benchModel); err != nil {
					return nil, nil, fmt.Errorf("warming cache: %w", err)
				}
			}
			i := 0
			op := func() error {
				out, err := core.Do(ctx, prompts[i%len(prompts)], "", benchModel)
				sink = out
				i++
				return err
			}
			return op, nil, nil
		},
	}
}

// singleflightMissBenchmark measures the uncached leader path: key,
// single-flight registration, admission, compute. Caching is disabled
// so every op is a genuine miss.
func singleflightMissBenchmark() Benchmark {
	return Benchmark{
		Name: "singleflight_miss",
		Ops:  50_000,
		Setup: func() (func() error, func(), error) {
			core, err := serving.New(synthComplement, serving.Config{CacheSize: -1})
			if err != nil {
				return nil, nil, err
			}
			ctx := context.Background()
			prompts := benchCorpus(64)
			i := 0
			op := func() error {
				out, err := core.Do(ctx, prompts[i%len(prompts)], "", benchModel)
				sink = out
				i++
				return err
			}
			return op, nil, nil
		},
	}
}

// admissionFastPathBenchmark measures the tenant-aware admission fast
// path end to end: header parse (httpmw.TenantFromRequest), context
// tagging, and an uncontended Do through the fair-share queue. This is
// the per-request overhead the tenant machinery adds when the system is
// NOT overloaded — the price every request pays for isolation.
func admissionFastPathBenchmark() Benchmark {
	return Benchmark{
		Name: "admission_fast_path",
		Ops:  100_000,
		Setup: func() (func() error, func(), error) {
			core, err := serving.New(synthComplement, serving.Config{
				CacheSize:     -1,
				MaxInFlight:   16,
				QueueDepth:    64,
				TenantWeights: map[string]int{"t0": 4, "t1": 2},
				MaxTenants:    8,
			})
			if err != nil {
				return nil, nil, err
			}
			base := context.Background()
			prompts := benchCorpus(64)
			// Pre-built requests with the three identity shapes the parser
			// handles: an explicit tenant, an API key, and anonymous.
			reqs := make([]*http.Request, 3)
			for j := range reqs {
				reqs[j] = httptest.NewRequest(http.MethodPost, "/v1/augment", nil)
			}
			reqs[0].Header.Set("X-PAS-Tenant", "t0")
			reqs[1].Header.Set("X-API-Key", "sk-bench-secret-1")
			i := 0
			op := func() error {
				tenant := httpmw.TenantFromRequest(reqs[i%len(reqs)])
				ctx := base
				if tenant != "" {
					ctx = serving.WithTenant(base, tenant)
				}
				out, err := core.Do(ctx, prompts[i%len(prompts)], "", benchModel)
				sink = out
				i++
				return err
			}
			return op, nil, nil
		},
	}
}

// degradedBreakerBenchmark measures the fail-fast path: with the
// breaker open, Do must return ErrBreakerOpen in far less time than a
// computation — that cheapness is what makes degradation protective
// rather than decorative. Setup wedges the single compute slot with a
// blocked computation, then trips the breaker with one shed request.
func degradedBreakerBenchmark() Benchmark {
	return Benchmark{
		Name: "degraded_breaker_open",
		Ops:  50_000,
		Setup: func() (func() error, func(), error) {
			block := make(chan struct{})
			var started sync.Once
			startedCh := make(chan struct{})
			core, err := serving.New(func(prompt, salt string) string {
				started.Do(func() { close(startedCh) })
				<-block
				return "blocked"
			}, serving.Config{
				CacheSize:        -1,
				MaxInFlight:      1,
				QueueDepth:       0,
				BreakerThreshold: 1,
				BreakerCooldown:  time.Hour,
			})
			if err != nil {
				return nil, nil, err
			}
			ctx := context.Background()
			blockerDone := make(chan struct{})
			go func() {
				defer close(blockerDone)
				_, _ = core.Do(ctx, "blocker", "", benchModel)
			}()
			<-startedCh
			// unblock releases the wedged computation exactly once,
			// whether setup fails here or cleanup runs after the rep.
			var unblockOnce sync.Once
			unblock := func() {
				unblockOnce.Do(func() {
					close(block)
					<-blockerDone
				})
			}
			// The slot is wedged; this request sheds (queue depth 0),
			// which is the breaker's one allowed failure — it opens.
			if _, err := core.Do(ctx, "trip", "", benchModel); err != serving.ErrQueueFull {
				unblock()
				return nil, nil, fmt.Errorf("tripping breaker: got %v, want ErrQueueFull", err)
			}
			prompts := benchCorpus(64)
			i := 0
			op := func() error {
				_, err := core.Do(ctx, prompts[i%len(prompts)], "", benchModel)
				i++
				if err != serving.ErrBreakerOpen {
					return fmt.Errorf("got %v, want ErrBreakerOpen", err)
				}
				if !serving.Overloaded(err) {
					return fmt.Errorf("ErrBreakerOpen not classified Overloaded")
				}
				return nil
			}
			return op, unblock, nil
		},
	}
}

// ringOwnerBenchmark measures consistent-hash owner selection at the
// production shape: 8 members × default vnodes, keyed by serving.Key
// bytes exactly as pasproxy routes.
func ringOwnerBenchmark() Benchmark {
	return Benchmark{
		Name: "ring_owner",
		Ops:  200_000,
		Setup: func() (func() error, func(), error) {
			rg := ring.New(0) // default vnodes
			for m := 0; m < 8; m++ {
				rg.Add(fmt.Sprintf("http://replica-%d.pas.internal:8440", m))
			}
			prompts := benchCorpus(512)
			keys := make([]string, len(prompts))
			for i, p := range prompts {
				keys[i] = serving.Key(p, "", benchModel)
			}
			i := 0
			op := func() error {
				owner, ok := rg.Owner(keys[i%len(keys)])
				if !ok {
					return fmt.Errorf("empty ring")
				}
				sink = owner
				i++
				return nil
			}
			return op, nil, nil
		},
	}
}

// loadgenClusterBenchmark is the macro measurement: a short seeded
// loadgen run against three in-process replicas behind a ring-routed
// front — the whole serving tier including HTTP, JSON, and routing.
// Latency quantiles come from the loadgen report; allocations are not
// isolatable across goroutines, so allocs/op stays zero here.
func loadgenClusterBenchmark() Benchmark {
	return Benchmark{
		Name: "loadgen_cluster",
		RunRep: func() (RepSample, error) {
			type replica struct {
				core *serving.Core
				srv  *httptest.Server
			}
			replicas := make([]*replica, 3)
			urls := make([]string, 3)
			rg := ring.New(0)
			for i := range replicas {
				core, err := serving.New(synthComplement, serving.Config{CacheSize: 4096})
				if err != nil {
					return RepSample{}, err
				}
				mux := http.NewServeMux()
				mux.Handle("/v1/augment", augmentHandler(core))
				mux.Handle("/v1/stats", core.StatsHandler())
				srv := httptest.NewServer(mux)
				replicas[i] = &replica{core: core, srv: srv}
				urls[i] = srv.URL
				rg.Add(srv.URL)
			}
			defer func() {
				for _, r := range replicas {
					r.srv.Close()
				}
			}()

			client := &http.Client{Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     30 * time.Second,
			}}
			defer client.CloseIdleConnections()
			front := httptest.NewServer(frontHandler(rg, client))
			defer front.Close()

			rep, err := loadgen.Run(context.Background(), loadgen.Config{
				Target:      front.URL,
				Prompts:     benchCorpus(60),
				Requests:    400,
				Concurrency: 8,
				Seed:        7,
				HTTPClient:  client,
				Replicas:    urls,
			})
			if err != nil {
				return RepSample{}, err
			}
			if rep.Errors > 0 {
				return RepSample{}, fmt.Errorf("%d/%d requests failed (first: %s)",
					rep.Errors, rep.Requests, rep.FirstError)
			}
			// Sanity: ring locality must hold or the number is measuring
			// a broken cluster.
			if rep.ClusterMisses != int64(rep.DistinctKeys) {
				return RepSample{}, fmt.Errorf("locality broken: %d misses for %d distinct keys",
					rep.ClusterMisses, rep.DistinctKeys)
			}
			return RepSample{
				P50Ns: rep.LatencyP50Ms * 1e6,
				P99Ns: rep.LatencyP99Ms * 1e6,
				QPS:   rep.AchievedQPS,
				Ops:   rep.Requests,
			}, nil
		},
	}
}

// augmentHandler is the minimal passerve-shaped augment endpoint over
// a serving core: the fields loadgen sends and reads, nothing else.
func augmentHandler(core *serving.Core) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Prompt string `json:"prompt"`
			Salt   string `json:"salt"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
			return
		}
		out, err := core.Do(r.Context(), req.Prompt, req.Salt, benchModel)
		if err != nil {
			status := http.StatusInternalServerError
			if serving.Overloaded(err) {
				status = http.StatusServiceUnavailable
			}
			http.Error(w, `{"error":"serving"}`, status)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := json.NewEncoder(w).Encode(map[string]any{
			"augmented": out, "degraded": false,
		}); err != nil {
			return
		}
	})
}

// frontHandler is the minimal pasproxy-shaped router: hash the
// (prompt, salt, model) key onto the ring, forward the request to the
// owner replica, relay the response.
func frontHandler(rg *ring.Ring, client *http.Client) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
			return
		}
		var req struct {
			Prompt string `json:"prompt"`
			Salt   string `json:"salt"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
			return
		}
		owner, ok := rg.Owner(serving.Key(req.Prompt, req.Salt, benchModel))
		if !ok {
			http.Error(w, `{"error":"no replicas"}`, http.StatusServiceUnavailable)
			return
		}
		up, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			owner+"/v1/augment", bytes.NewReader(body))
		if err != nil {
			http.Error(w, `{"error":"routing"}`, http.StatusInternalServerError)
			return
		}
		up.Header.Set("Content-Type", "application/json; charset=utf-8")
		resp, err := client.Do(up)
		if err != nil {
			http.Error(w, `{"error":"replica unreachable"}`, http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			return
		}
	})
}
