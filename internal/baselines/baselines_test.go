package baselines

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/facet"
	"repro/internal/simllm"
	"repro/internal/textkit"
)

func TestNoneAndCoT(t *testing.T) {
	if (None{}).Transform("hello", "s") != "hello" {
		t.Error("None must be identity")
	}
	if (None{}).Name() != "None" {
		t.Error("None name")
	}
	out := (CoT{}).Transform("Solve x^2 = 4.", "s")
	if !strings.Contains(out, "Solve x^2 = 4.") {
		t.Error("CoT must preserve the prompt")
	}
	if !facet.DetectDirectives(out).Has(facet.Reasoning) {
		t.Error("CoT must add a reasoning directive")
	}
}

func TestStatic(t *testing.T) {
	s := Static{MethodName: "OPRO", Instruction: "Please be specific."}
	if s.Name() != "OPRO" {
		t.Error("name")
	}
	if got := s.Transform("p", "x"); got != "p\nPlease be specific." {
		t.Errorf("Transform = %q", got)
	}
	empty := Static{MethodName: "X"}
	if empty.Transform("p", "x") != "p" {
		t.Error("empty instruction must be identity")
	}
}

func TestNewBPOValidation(t *testing.T) {
	if _, err := NewBPO("no-such-model"); err == nil {
		t.Fatal("unknown base should fail")
	}
	b, err := NewBPO(simllm.LLaMA27B)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "BPO" {
		t.Error("name")
	}
}

func TestBPORewritesRatherThanAppends(t *testing.T) {
	b := MustBPO(simllm.LLaMA27B)
	prompt := "Describe the history and mechanism of how blood pressure regulation works in detail."
	rewrites := 0
	for i := 0; i < 30; i++ {
		out := b.Transform(prompt, fmt.Sprint(i))
		if out == "" {
			t.Fatal("empty rewrite")
		}
		if !strings.HasPrefix(out, prompt) {
			rewrites++ // original text was altered, not merely suffixed
		}
	}
	if rewrites < 10 {
		t.Fatalf("BPO almost never rewrote the prompt: %d/30", rewrites)
	}
}

func TestBPOSometimesDropsContentWords(t *testing.T) {
	b := MustBPO(simllm.LLaMA27B)
	prompt := "Analyze the trade offs of monolith versus microservices for a startup team."
	contentLoss := 0
	for i := 0; i < 40; i++ {
		out := strings.ToLower(b.Transform(prompt, fmt.Sprint(i)))
		for _, w := range []string{"monolith", "microservices", "startup"} {
			if !strings.Contains(out, w) {
				contentLoss++
				break
			}
		}
	}
	if contentLoss == 0 {
		t.Fatal("BPO never lost content — instability mechanism missing")
	}
	if contentLoss > 35 {
		t.Fatalf("BPO loses content almost always (%d/40) — too destructive", contentLoss)
	}
}

func TestBPODeterministic(t *testing.T) {
	b := MustBPO(simllm.LLaMA27B)
	p := "Summarize this long article about coral reefs."
	if b.Transform(p, "s") != b.Transform(p, "s") {
		t.Fatal("not deterministic")
	}
}

func TestBPOCanConflictWithConstraints(t *testing.T) {
	b := MustBPO(simllm.LLaMA27B)
	prompt := "Briefly summarize this long article about coral reefs."
	conflicts := 0
	for i := 0; i < 60; i++ {
		out := b.Transform(prompt, fmt.Sprint(i))
		a := facet.AnalyzePrompt(prompt)
		dirs := facet.DetectDirectives(out)
		if len(facet.ConflictingDirectives(a, dirs)) > 0 {
			conflicts++
		}
	}
	if conflicts == 0 {
		t.Fatal("BPO never conflicts with constraints — it has no critic, some conflicts expected")
	}
}

func TestMethodsTable(t *testing.T) {
	ms := Methods()
	if len(ms) != 6 {
		t.Fatalf("table 3 has 6 rows, got %d", len(ms))
	}
	var pas, bpo Info
	for _, m := range ms {
		switch m.Name {
		case "PAS":
			pas = m
		case "BPO":
			bpo = m
		}
	}
	if !pas.NoHumanLabor || !pas.LLMAgnostic || !pas.TaskAgnostic {
		t.Fatalf("PAS row wrong: %+v", pas)
	}
	if bpo.NoHumanLabor {
		t.Fatal("BPO requires human labour in Table 3")
	}
	if pas.DataConsumption != 9000 || bpo.DataConsumption != 14000 {
		t.Fatal("data consumption figures wrong")
	}
}

func TestEfficiencyRatios(t *testing.T) {
	want := map[string]float64{"BPO": 14000.0 / 9000, "PPO": 77000.0 / 9000, "DPO": 170000.0 / 9000}
	for _, m := range Methods() {
		if w, ok := want[m.Name]; ok {
			got, err := Efficiency(m)
			if err != nil {
				t.Fatal(err)
			}
			if got != w {
				t.Errorf("%s efficiency = %v, want %v", m.Name, got, w)
			}
		}
		if m.Name == "OPRO" {
			if _, err := Efficiency(m); err == nil {
				t.Error("OPRO has no comparable consumption; Efficiency should fail")
			}
		}
	}
}

// trainingScorer scores an instruction by how many of the wanted facets
// it demands, minus a length penalty — a cheap stand-in for "accuracy on
// the task's training set".
func trainingScorer(want ...facet.Facet) Scorer {
	return func(instruction string) float64 {
		dirs := facet.DetectDirectives(instruction)
		score := 0.0
		for _, f := range want {
			if dirs.Has(f) {
				score += 1
			}
		}
		return score - 0.1*float64(dirs.Len())
	}
}

func TestOptimizeOPROFindsGoodInstruction(t *testing.T) {
	res, err := OptimizeOPRO(trainingScorer(facet.Reasoning, facet.Accuracy), 30, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dirs := facet.DetectDirectives(res.Best.Instruction)
	if !dirs.Has(facet.Reasoning) || !dirs.Has(facet.Accuracy) {
		t.Fatalf("OPRO missed target facets: %q", res.Best.Instruction)
	}
	if res.ScorerCalls < 30 {
		t.Fatalf("OPRO cost accounting wrong: %d calls", res.ScorerCalls)
	}
	if res.Best.MethodName != "OPRO" {
		t.Error("method name")
	}
}

func TestOptimizeProTeGiFindsGoodInstruction(t *testing.T) {
	res, err := OptimizeProTeGi(trainingScorer(facet.Structure, facet.Examples), 12, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dirs := facet.DetectDirectives(res.Best.Instruction)
	if !dirs.Has(facet.Structure) || !dirs.Has(facet.Examples) {
		t.Fatalf("ProTeGi missed target facets: %q", res.Best.Instruction)
	}
	if res.Score <= 0 {
		t.Fatalf("score = %v", res.Score)
	}
}

func TestOptimizerValidation(t *testing.T) {
	if _, err := OptimizeOPRO(nil, 5, 5, 1); err == nil {
		t.Error("nil scorer should fail")
	}
	if _, err := OptimizeOPRO(trainingScorer(), 0, 5, 1); err == nil {
		t.Error("0 iterations should fail")
	}
	if _, err := OptimizeProTeGi(nil, 5, 5, 1); err == nil {
		t.Error("nil scorer should fail")
	}
	if _, err := OptimizeProTeGi(trainingScorer(), 5, 0, 1); err == nil {
		t.Error("0 beam should fail")
	}
}

func TestRejoinReadable(t *testing.T) {
	toks := textkit.Tokenize("Hello, world! How are you?")
	strs := make([]string, len(toks))
	for i, tok := range toks {
		strs[i] = string(tok)
	}
	got := rejoin(strs)
	if got != "hello, world! how are you?" {
		t.Fatalf("rejoin = %q", got)
	}
}

func BenchmarkBPOTransform(b *testing.B) {
	bp := MustBPO(simllm.LLaMA27B)
	prompt := "Describe the history and mechanism of how blood pressure regulation works."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bp.Transform(prompt, "bench")
	}
}
