package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/facet"
)

// Scorer evaluates a candidate instruction on a task's training set and
// returns a score (higher is better). The task-specific optimizers below
// spend many Scorer calls per task — the cost that makes them, per the
// paper's Table 3, neither task-agnostic nor human-labour-free (the
// training set with its objective must be assembled per task).
type Scorer func(instruction string) float64

// OptimizeResult reports an optimisation run.
type OptimizeResult struct {
	// Best is the optimised instruction, ready to serve as a Static APE.
	Best Static
	// Score is the best training score found.
	Score float64
	// ScorerCalls counts objective evaluations — the efficiency cost.
	ScorerCalls int
}

// candidate instructions are rendered facet subsets; search moves by
// adding, removing, or swapping one facet.
type candidate struct {
	facets facet.Set
	score  float64
}

func renderCandidate(s facet.Set, variant string) string {
	return facet.RenderDirectives(s.Facets(), variant)
}

func mutate(s facet.Set, rng *rand.Rand) facet.Set {
	f := facet.Facet(rng.Intn(facet.Count))
	switch rng.Intn(3) {
	case 0:
		return s.With(f)
	case 1:
		return s.Without(f)
	default:
		g := facet.Facet(rng.Intn(facet.Count))
		return s.Without(f).With(g)
	}
}

// OptimizeOPRO reproduces OPRO (Yang et al.): the optimizer keeps a
// trajectory of scored instructions and proposes new candidates informed
// by the best so far, accepting improvements.
func OptimizeOPRO(score Scorer, iterations, proposalsPerIter int, seed int64) (OptimizeResult, error) {
	if score == nil {
		return OptimizeResult{}, fmt.Errorf("baselines: opro: nil scorer")
	}
	if iterations < 1 || proposalsPerIter < 1 {
		return OptimizeResult{}, fmt.Errorf("baselines: opro: iterations and proposals must be >= 1 (got %d, %d)",
			iterations, proposalsPerIter)
	}
	rng := rand.New(rand.NewSource(seed))
	calls := 0
	eval := func(s facet.Set) candidate {
		calls++
		return candidate{facets: s, score: score(renderCandidate(s, fmt.Sprintf("opro/%d", calls)))}
	}
	best := eval(facet.NewSet(facet.Reasoning)) // seed instruction
	for it := 0; it < iterations; it++ {
		for p := 0; p < proposalsPerIter; p++ {
			cand := eval(mutate(best.facets, rng))
			if cand.score > best.score {
				best = cand
			}
		}
	}
	return OptimizeResult{
		Best:        Static{MethodName: "OPRO", Instruction: renderCandidate(best.facets, "opro/final")},
		Score:       best.score,
		ScorerCalls: calls,
	}, nil
}

// OptimizeProTeGi reproduces ProTeGi/APO (Pryzant et al.): beam search
// where each beam member is expanded by "textual gradient" edits —
// candidate fixes for the facets the current instruction fails to demand.
func OptimizeProTeGi(score Scorer, rounds, beamWidth int, seed int64) (OptimizeResult, error) {
	if score == nil {
		return OptimizeResult{}, fmt.Errorf("baselines: protegi: nil scorer")
	}
	if rounds < 1 || beamWidth < 1 {
		return OptimizeResult{}, fmt.Errorf("baselines: protegi: rounds and beam width must be >= 1 (got %d, %d)",
			rounds, beamWidth)
	}
	rng := rand.New(rand.NewSource(seed))
	calls := 0
	eval := func(s facet.Set) candidate {
		calls++
		return candidate{facets: s, score: score(renderCandidate(s, fmt.Sprintf("protegi/%d", calls)))}
	}
	beam := []candidate{eval(facet.NewSet(facet.Specificity))}
	for r := 0; r < rounds; r++ {
		var expanded []candidate
		expanded = append(expanded, beam...)
		for _, b := range beam {
			// Gradient step: propose adding each missing facet the
			// criticism pass flags (simulated as two random absent
			// facets), plus one removal.
			for k := 0; k < 2; k++ {
				f := facet.Facet(rng.Intn(facet.Count))
				if !b.facets.Has(f) {
					expanded = append(expanded, eval(b.facets.With(f)))
				}
			}
			if b.facets.Len() > 1 {
				fs := b.facets.Facets()
				expanded = append(expanded, eval(b.facets.Without(fs[rng.Intn(len(fs))])))
			}
		}
		// Keep the top beamWidth.
		for i := 1; i < len(expanded); i++ {
			for j := i; j > 0 && expanded[j].score > expanded[j-1].score; j-- {
				expanded[j], expanded[j-1] = expanded[j-1], expanded[j]
			}
		}
		if len(expanded) > beamWidth {
			expanded = expanded[:beamWidth]
		}
		beam = expanded
	}
	return OptimizeResult{
		Best:        Static{MethodName: "ProTeGi", Instruction: renderCandidate(beam[0].facets, "protegi/final")},
		Score:       beam[0].score,
		ScorerCalls: calls,
	}, nil
}
