// Package baselines implements the comparison systems of the paper's
// evaluation: BPO (the previous state-of-the-art black-box prompt
// optimizer), zero-shot chain-of-thought, and the task-specific optimizers
// OPRO and ProTeGi/APO, plus the method metadata (human labour, data
// consumption, agnosticity) behind Table 3 and Figure 7.
package baselines

import "fmt"

// APE transforms a user prompt before it reaches the main model. PAS
// (package pas) and every baseline implement this interface, which is what
// makes the evaluation harness method-agnostic.
type APE interface {
	// Name identifies the method in reports.
	Name() string
	// Transform returns the text the main model should receive in place
	// of prompt. The salt decorrelates repeated calls.
	Transform(prompt, salt string) string
}

// None is the no-APE baseline: the prompt passes through untouched.
type None struct{}

// Name implements APE.
func (None) Name() string { return "None" }

// Transform implements APE.
func (None) Transform(prompt, _ string) string { return prompt }

// CoT is the zero-shot chain-of-thought baseline of Kojima et al.: it
// appends the fixed "think step by step" instruction to every prompt.
type CoT struct{}

// Name implements APE.
func (CoT) Name() string { return "Zero-shot CoT" }

// Transform implements APE.
func (CoT) Transform(prompt, _ string) string {
	return prompt + "\nPlease think step by step; show your reasoning."
}

// Static wraps a fixed learned instruction as an APE, the serving form of
// the task-specific optimizers.
type Static struct {
	// MethodName is the producing optimizer's name.
	MethodName string
	// Instruction is appended to every prompt.
	Instruction string
}

// Name implements APE.
func (s Static) Name() string { return s.MethodName }

// Transform implements APE.
func (s Static) Transform(prompt, _ string) string {
	if s.Instruction == "" {
		return prompt
	}
	return prompt + "\n" + s.Instruction
}

// Info describes a method's cost and flexibility profile — the rows of
// Table 3 and the bars of Figure 7. Data consumption figures are the
// paper's (§4.4.1), in number of training examples.
type Info struct {
	Name            string
	DataConsumption int  // training examples consumed; 0 = not comparable
	NoHumanLabor    bool // fully automatic data pipeline
	LLMAgnostic     bool // one trained artefact serves any downstream LLM
	TaskAgnostic    bool // serves any task without per-task optimisation
}

// Methods returns the flexibility/efficiency records for every method in
// the paper's comparison, in Table 3 row order (PAS last).
func Methods() []Info {
	return []Info{
		{Name: "PPO", DataConsumption: 77000, NoHumanLabor: false, LLMAgnostic: false, TaskAgnostic: true},
		{Name: "DPO", DataConsumption: 170000, NoHumanLabor: false, LLMAgnostic: false, TaskAgnostic: true},
		{Name: "OPRO", DataConsumption: 0, NoHumanLabor: false, LLMAgnostic: false, TaskAgnostic: false},
		{Name: "ProTeGi", DataConsumption: 0, NoHumanLabor: false, LLMAgnostic: false, TaskAgnostic: false},
		{Name: "BPO", DataConsumption: 14000, NoHumanLabor: false, LLMAgnostic: true, TaskAgnostic: true},
		{Name: "PAS", DataConsumption: 9000, NoHumanLabor: true, LLMAgnostic: true, TaskAgnostic: true},
	}
}

// Efficiency returns Consumption_method / Consumption_PAS, the paper's
// §4.4.1 ratio. It returns an error for methods without a comparable data
// figure (OPRO and ProTeGi are not task-agnostic, so the paper excludes
// them).
func Efficiency(method Info) (float64, error) {
	if method.DataConsumption == 0 {
		return 0, fmt.Errorf("baselines: %s has no comparable data consumption", method.Name)
	}
	const pasConsumption = 9000
	return float64(method.DataConsumption) / pasConsumption, nil
}
