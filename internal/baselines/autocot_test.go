package baselines

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/facet"
)

func taskQuestions(t *testing.T, n int) []string {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Size = n * 3
	cfg.Seed = 17
	cfg.JunkRate = 0
	cfg.DuplicateRate = 0
	pool, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, p := range pool {
		if len(out) == n {
			break
		}
		if p.Truth.Category == facet.Math || p.Truth.Category == facet.Reason {
			out = append(out, p.Text)
		}
	}
	return out
}

func TestNewAutoCoTValidation(t *testing.T) {
	qs := taskQuestions(t, 30)
	if _, err := NewAutoCoT(nil, DefaultAutoCoTConfig()); err == nil {
		t.Error("empty questions should fail")
	}
	cfg := DefaultAutoCoTConfig()
	cfg.Clusters = 0
	if _, err := NewAutoCoT(qs, cfg); err == nil {
		t.Error("zero clusters should fail")
	}
	cfg = DefaultAutoCoTConfig()
	cfg.DemoModel = "nope"
	if _, err := NewAutoCoT(qs, cfg); err == nil {
		t.Error("unknown demo model should fail")
	}
	cfg = DefaultAutoCoTConfig()
	cfg.MaxDemoWords = 2
	if _, err := NewAutoCoT(qs, cfg); err == nil {
		t.Error("tiny demo budget should fail")
	}
}

func TestAutoCoTBuildsClusteredDemos(t *testing.T) {
	qs := taskQuestions(t, 40)
	a, err := NewAutoCoT(qs, DefaultAutoCoTConfig())
	if err != nil {
		t.Fatal(err)
	}
	demos := a.Demos()
	if len(demos) == 0 || len(demos) > DefaultAutoCoTConfig().Clusters {
		t.Fatalf("demo count %d out of range", len(demos))
	}
	for _, d := range demos {
		if !strings.HasPrefix(d, "Q: ") || !strings.Contains(d, "\nA: ") {
			t.Fatalf("malformed demo: %q", d)
		}
	}
	if a.Name() != "Auto-CoT" {
		t.Error("name")
	}
}

func TestAutoCoTTransformShape(t *testing.T) {
	qs := taskQuestions(t, 40)
	a, err := NewAutoCoT(qs, DefaultAutoCoTConfig())
	if err != nil {
		t.Fatal(err)
	}
	prompt := "Solve x^2 - 5x + 6 = 0."
	out := a.Transform(prompt, "s")
	if !strings.Contains(out, prompt) {
		t.Fatal("prompt lost")
	}
	if !strings.Contains(out, a.Demos()[0]) {
		t.Fatal("demonstrations not prepended")
	}
	if !facet.DetectDirectives(out).Has(facet.Reasoning) {
		t.Fatal("CoT trigger missing")
	}
}

func TestAutoCoTDeterministic(t *testing.T) {
	qs := taskQuestions(t, 40)
	a, err := NewAutoCoT(qs, DefaultAutoCoTConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAutoCoT(qs, DefaultAutoCoTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(a.Demos(), "|") != strings.Join(b.Demos(), "|") {
		t.Fatal("demo construction not deterministic")
	}
}
