package baselines

import (
	"fmt"
	"strings"

	"repro/internal/facet"
	"repro/internal/simllm"
	"repro/internal/textkit"
)

// BPO reproduces the Black-box Prompt Optimization baseline (Cheng et
// al.), the paper's previous state of the art. Unlike PAS, BPO *rewrites*
// the user prompt rather than complementing it. Its fine-tuned rewriter
// (a LLaMA-2-7B trained on 14k human-preference pairs) paraphrases the
// prompt — sometimes dropping content words or an explicit constraint cue
// in the process — and splices in directive phrases it learned from
// preference data.
//
// The information loss is the source of the instability the paper
// observes (Table 1: BPO lands below the no-APE baseline on some models):
// the downstream model answers the rewrite, but the judge scores the
// response against the user's *original* prompt.
type BPO struct {
	base simllm.Profile
	seed uint64
}

// NewBPO creates the rewriter on the given base model. The paper's BPO
// uses LLaMA-2-7B-instruct.
func NewBPO(baseModel string) (*BPO, error) {
	p, err := simllm.LookupProfile(baseModel)
	if err != nil {
		return nil, fmt.Errorf("baselines: bpo: %w", err)
	}
	return &BPO{base: p, seed: textkit.Hash64("bpo/" + baseModel)}, nil
}

// MustBPO is NewBPO for the fixed roster in experiments.
func MustBPO(baseModel string) *BPO {
	b, err := NewBPO(baseModel)
	if err != nil {
		panic(err)
	}
	return b
}

// Name implements APE.
func (b *BPO) Name() string { return "BPO" }

// Transform rewrites the prompt. The rewrite keeps most words, drops each
// content word with a base-dependent probability (paraphrase loss), and
// appends one or two directives from the rewriter's learned distribution.
func (b *BPO) Transform(prompt, salt string) string {
	toks := textkit.Tokenize(prompt)
	dropRate := 0.03 + 0.10*(1-b.base.Quality)

	var kept []string
	for i, tok := range toks {
		s := string(tok)
		key := fmt.Sprintf("drop/%d/%s/%s", i, s, salt)
		if len(s) > 3 && textkit.Unit(key+prompt, b.seed) < dropRate {
			continue // paraphrase lost this word
		}
		kept = append(kept, s)
	}
	rewritten := rejoin(kept)
	if strings.TrimSpace(rewritten) == "" {
		rewritten = prompt
	}

	// Learned directive splice: BPO's preference training teaches it the
	// crowd-pleasing improvements — detail, structure — applied with less
	// regard for the specific prompt's needs than PAS's curated policy.
	a := facet.AnalyzePrompt(prompt)
	dir := b.pickDirectives(a, prompt, salt)
	if len(dir) > 0 {
		rewritten += " " + facet.RenderDirectives(dir, prompt+salt+"bpo")
	}
	return rewritten
}

func (b *BPO) pickDirectives(a facet.Analysis, prompt, salt string) []facet.Facet {
	// Preference-data favourites, in learned order of prevalence.
	favourites := []facet.Facet{facet.Completeness, facet.Structure, facet.Specificity, facet.Examples}
	var out []facet.Facet
	for _, f := range favourites {
		if len(out) == 2 {
			break
		}
		if textkit.Unit("dir/"+f.String()+"/"+salt+prompt, b.seed) < 0.35+0.35*b.base.Quality {
			out = append(out, f)
		}
	}
	// The preference habit occasionally overrides an explicit constraint
	// (e.g. demanding completeness on a "briefly" prompt) — BPO has no
	// critic stage to catch this.
	if a.Constraints.Has(facet.Conciseness) {
		filtered := out[:0]
		for _, f := range out {
			if facet.ConflictsWith(f, facet.Conciseness) &&
				textkit.Unit("respect/"+salt+prompt, b.seed) < 0.55 {
				continue
			}
			filtered = append(filtered, f)
		}
		out = filtered
	}
	return out
}

// rejoin reassembles tokens into readable text: punctuation attaches to
// the preceding token, words are space-separated.
func rejoin(toks []string) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 && isWordLike(t) {
			sb.WriteByte(' ')
		}
		sb.WriteString(t)
	}
	return sb.String()
}

func isWordLike(t string) bool {
	if t == "" {
		return false
	}
	c := t[0]
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}
