package baselines

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/embed"
	"repro/internal/simllm"
)

// AutoCoT reproduces Auto-CoT (Zhang et al., §2.1 of the paper):
// cluster a task's questions, pick one representative per cluster,
// generate a zero-shot chain-of-thought rationale for each, and prepend
// those demonstrations to every future prompt. Unlike PAS it needs the
// task's question pool up front — it is a per-task artefact, which is
// why it does not appear in the paper's task-agnostic comparisons.
type AutoCoT struct {
	demos []string
}

// AutoCoTConfig controls demonstration construction.
type AutoCoTConfig struct {
	// Clusters is the number of demonstrations (one per cluster).
	Clusters int
	// DemoModel generates the rationales.
	DemoModel string
	// Seed drives clustering.
	Seed int64
	// MaxDemoWords truncates each rationale, following Auto-CoT's
	// simplicity heuristics.
	MaxDemoWords int
}

// DefaultAutoCoTConfig returns the settings of the original method
// (8 clusters).
func DefaultAutoCoTConfig() AutoCoTConfig {
	return AutoCoTConfig{Clusters: 8, DemoModel: simllm.GPT35Turbo, Seed: 1, MaxDemoWords: 60}
}

// NewAutoCoT builds demonstrations from the task's question pool.
func NewAutoCoT(questions []string, cfg AutoCoTConfig) (*AutoCoT, error) {
	if len(questions) == 0 {
		return nil, fmt.Errorf("baselines: autocot: no questions")
	}
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("baselines: autocot: Clusters must be >= 1, got %d", cfg.Clusters)
	}
	if cfg.MaxDemoWords < 10 {
		return nil, fmt.Errorf("baselines: autocot: MaxDemoWords must be >= 10, got %d", cfg.MaxDemoWords)
	}
	profile, err := simllm.LookupProfile(cfg.DemoModel)
	if err != nil {
		return nil, fmt.Errorf("baselines: autocot: %w", err)
	}
	demoModel, err := simllm.New(profile)
	if err != nil {
		return nil, err
	}

	enc, err := embed.New(embed.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := enc.Fit(questions); err != nil {
		return nil, fmt.Errorf("baselines: autocot: %w", err)
	}
	vecs := enc.EncodeBatch(questions)
	assign, err := cluster.KMeans(vecs, cfg.Clusters, 20, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("baselines: autocot: %w", err)
	}

	// Representative per cluster: first question assigned to it (the
	// original selects by proximity to centroid; first-in is a stable
	// deterministic simplification).
	picked := make(map[int]string)
	for i, q := range questions {
		c := assign[i]
		if _, ok := picked[c]; !ok {
			picked[c] = q
		}
	}
	a := &AutoCoT{}
	for c := 0; c < cfg.Clusters; c++ {
		q, ok := picked[c]
		if !ok {
			continue
		}
		rationale := demoModel.Respond(q+"\nPlease step by step; show your reasoning.",
			simllm.Options{Salt: fmt.Sprintf("autocot/%d", c), MaxSections: 2})
		a.demos = append(a.demos, fmt.Sprintf("Q: %s\nA: %s", q, truncateWords(rationale, cfg.MaxDemoWords)))
	}
	if len(a.demos) == 0 {
		return nil, fmt.Errorf("baselines: autocot: no demonstrations built")
	}
	return a, nil
}

// Demos returns the constructed demonstrations.
func (a *AutoCoT) Demos() []string { return a.demos }

// Name implements APE.
func (a *AutoCoT) Name() string { return "Auto-CoT" }

// Transform prepends the demonstrations and appends the CoT trigger.
func (a *AutoCoT) Transform(prompt, _ string) string {
	var b strings.Builder
	for _, d := range a.demos {
		b.WriteString(d)
		b.WriteString("\n\n")
	}
	b.WriteString("Q: ")
	b.WriteString(prompt)
	b.WriteString("\nPlease step by step; show your reasoning.")
	return b.String()
}

func truncateWords(s string, n int) string {
	fields := strings.Fields(s)
	if len(fields) <= n {
		return s
	}
	return strings.Join(fields[:n], " ")
}
