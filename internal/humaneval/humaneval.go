// Package humaneval simulates the paper's §4.5 human evaluation: a pool
// of raters scores responses on a 1-5 rubric, from which the Table 4
// metrics (full-mark proportion, average score, availability proportion)
// and the Figure 1 GSB (good/same/bad) win rates are computed.
//
// Each simulated rater is an independent judge with personal length
// preference, strictness bias, and noise — the inter-rater disagreement
// that makes human evaluation noisy is part of the model.
package humaneval

import (
	"fmt"

	"repro/internal/facet"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/textkit"
)

// Category is one of the eight §4.5 evaluation categories. Each maps to a
// prompt-generation source category so the harness can sample on-theme
// prompts.
type Category struct {
	// Name is the paper's label (Table 4 / Figure 1).
	Name string
	// Source is the corpus category prompts are drawn from.
	Source facet.Category
}

// Categories returns the paper's eight human-evaluation categories in
// Table 4 row order.
func Categories() []Category {
	return []Category{
		{Name: "Analysis and Judgment", Source: facet.Analytical},
		{Name: "Subjective Advice", Source: facet.Advice},
		{Name: "Subjective Recommendation", Source: facet.Brainstorm},
		{Name: "Common Sense", Source: facet.QA},
		{Name: "Event Query", Source: facet.Summarization},
		{Name: "Entity Query", Source: facet.Extraction},
		{Name: "Industry Knowledge", Source: facet.Coding},
		{Name: "Academic Knowledge", Source: facet.Knowledge},
	}
}

// Rater is one simulated human evaluator.
type Rater struct {
	id    int
	noise float64
	seed  uint64
	judge *judge.Judge
}

// NewPool creates n raters with individually varied bias and noise.
func NewPool(n int, seed uint64) ([]Rater, error) {
	if n < 1 {
		return nil, fmt.Errorf("humaneval: pool size must be >= 1, got %d", n)
	}
	pool := make([]Rater, n)
	for i := range pool {
		// Vary length preference in [0.05, 0.35] and personal noise in
		// [0.15, 0.5] — enough individuality that raters disagree on
		// borderline answers, small enough that inter-rater agreement
		// (Fleiss kappa) stays clearly above chance, as with real pools.
		cfg := judge.Config{
			LengthBias: 0.05 + 0.30*float64(i%7)/6,
			Noise:      0.15 + 0.35*float64(i%5)/4,
			Seed:       seed + uint64(i)*0x9e3779b9,
		}
		j, err := judge.New(cfg)
		if err != nil {
			return nil, err
		}
		pool[i] = Rater{id: i, noise: cfg.Noise, seed: cfg.Seed, judge: j}
	}
	return pool, nil
}

// Rate scores a response on the 1-5 rubric. 5 is a full mark; >= 3 counts
// as "available" (usable answer), matching the paper's metrics.
func (r Rater) Rate(prompt, response string) int {
	s := r.judge.Score(prompt, response)
	// Personal mood noise: deterministic per (rater, prompt, response) but
	// different across raters, so the pool genuinely disagrees.
	s += (textkit.Unit(prompt+"\x00"+response, r.seed) - 0.5) * 2 * r.noise
	// Map the judge's open scale onto the rubric. Thresholds are fixed
	// so that a typical unaided mid-tier response lands around 3-4.
	switch {
	case s >= 3.9:
		return 5
	case s >= 3.0:
		return 4
	case s >= 2.0:
		return 3
	case s >= 1.0:
		return 2
	default:
		return 1
	}
}

// Summary holds the Table 4 metrics for one condition.
type Summary struct {
	// FullMark is the proportion of ratings equal to 5.
	FullMark float64
	// Average is the mean rating.
	Average float64
	// Availability is the proportion of ratings >= 3.
	Availability float64
	// N is the number of ratings aggregated.
	N int
}

// Summarize aggregates ratings into Table 4 metrics.
// It returns an error for an empty or out-of-range rating set.
func Summarize(ratings []int) (Summary, error) {
	if len(ratings) == 0 {
		return Summary{}, fmt.Errorf("humaneval: no ratings")
	}
	var sum Summary
	var total float64
	for _, v := range ratings {
		if v < 1 || v > 5 {
			return Summary{}, fmt.Errorf("humaneval: rating %d out of 1-5", v)
		}
		total += float64(v)
		if v == 5 {
			sum.FullMark++
		}
		if v >= 3 {
			sum.Availability++
		}
	}
	n := float64(len(ratings))
	sum.FullMark /= n
	sum.Availability /= n
	sum.Average = total / n
	sum.N = len(ratings)
	return sum, nil
}

// GSB tallies a good/same/bad comparison: for each prompt, the rater
// majority decides whether system A was better (Good), indistinguishable
// (Same), or worse (Bad) than system B.
type GSB struct {
	Good, Same, Bad int
}

// WinRate returns Good / (Good + Same + Bad), the Figure 1 percentage.
func (g GSB) WinRate() float64 {
	total := g.Good + g.Same + g.Bad
	if total == 0 {
		return 0
	}
	return float64(g.Good) / float64(total)
}

// CompareGSB runs the pool over one prompt's two responses and returns the
// majority verdict as a single-prompt GSB increment.
func CompareGSB(pool []Rater, prompt, respA, respB string) (GSB, error) {
	if len(pool) == 0 {
		return GSB{}, fmt.Errorf("humaneval: empty rater pool")
	}
	var a, b int
	for _, r := range pool {
		ra := r.Rate(prompt, respA)
		rb := r.Rate(prompt, respB)
		switch {
		case ra > rb:
			a++
		case rb > ra:
			b++
		}
	}
	var g GSB
	switch {
	case a > b:
		g.Good++
	case b > a:
		g.Bad++
	default:
		g.Same++
	}
	return g, nil
}

// Add accumulates another GSB tally.
func (g *GSB) Add(other GSB) {
	g.Good += other.Good
	g.Same += other.Same
	g.Bad += other.Bad
}

// MeanSummaries averages a slice of summaries (the Table 4 "Average" row),
// weighting each summary equally as the paper does across categories.
func MeanSummaries(sums []Summary) Summary {
	if len(sums) == 0 {
		return Summary{}
	}
	var fm, av, avail []float64
	n := 0
	for _, s := range sums {
		fm = append(fm, s.FullMark)
		av = append(av, s.Average)
		avail = append(avail, s.Availability)
		n += s.N
	}
	return Summary{
		FullMark:     metrics.Mean(fm),
		Average:      metrics.Mean(av),
		Availability: metrics.Mean(avail),
		N:            n,
	}
}
