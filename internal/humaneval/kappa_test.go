package humaneval

import (
	"fmt"
	"testing"

	"repro/internal/simllm"
)

func TestFleissKappaValidation(t *testing.T) {
	if _, err := FleissKappa(nil); err == nil {
		t.Error("no items should fail")
	}
	if _, err := FleissKappa([][]int{{3}}); err == nil {
		t.Error("single rater should fail")
	}
	if _, err := FleissKappa([][]int{{3, 4}, {3}}); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := FleissKappa([][]int{{0, 4}}); err == nil {
		t.Error("rating 0 should fail")
	}
	if _, err := FleissKappa([][]int{{6, 4}}); err == nil {
		t.Error("rating 6 should fail")
	}
}

func TestFleissKappaPerfectAgreement(t *testing.T) {
	ratings := [][]int{{4, 4, 4}, {2, 2, 2}, {5, 5, 5}, {3, 3, 3}}
	k, err := FleissKappa(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if k < 0.999 {
		t.Fatalf("perfect agreement kappa = %v, want ~1", k)
	}
}

func TestFleissKappaSingleCategoryConvention(t *testing.T) {
	k, err := FleissKappa([][]int{{3, 3}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("degenerate single-category kappa = %v, want 1", k)
	}
}

func TestFleissKappaDisagreementIsLow(t *testing.T) {
	// Raters systematically disagree across categories.
	ratings := [][]int{
		{1, 3, 5}, {2, 4, 1}, {5, 2, 3}, {4, 1, 2}, {3, 5, 4},
		{1, 4, 2}, {5, 3, 1}, {2, 5, 4}, {4, 2, 5}, {3, 1, 4},
	}
	k, err := FleissKappa(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if k > 0.2 {
		t.Fatalf("disagreement kappa = %v, want near or below 0", k)
	}
}

// TestPoolKappaAboveChance validates the simulated rater pool: despite
// personal bias and noise, raters share the quality signal, so their
// agreement must sit clearly above chance (and below perfect).
func TestPoolKappaAboveChance(t *testing.T) {
	pool, err := NewPool(5, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := simllm.MustModel(simllm.GPT40613)
	prompts := []string{
		"Explain the mechanism of antibiotic resistance.",
		"Give me advice on keeping houseplants alive.",
		"Analyze the trade offs of sql versus nosql for a startup.",
		"Summarize this long article about coral reefs into key points.",
	}
	var ratings [][]int
	for i, p := range prompts {
		for k := 0; k < 10; k++ {
			resp := m.Respond(p, simllm.Options{Salt: fmt.Sprintf("k/%d/%d", i, k)})
			row := make([]int, len(pool))
			for j, r := range pool {
				row[j] = r.Rate(p, resp)
			}
			ratings = append(ratings, row)
		}
	}
	kappa, err := FleissKappa(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if kappa < 0.05 {
		t.Fatalf("pool kappa = %.3f — raters look like pure noise", kappa)
	}
	if kappa > 0.95 {
		t.Fatalf("pool kappa = %.3f — raters have no individuality", kappa)
	}
}
