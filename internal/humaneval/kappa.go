package humaneval

import "fmt"

// FleissKappa measures inter-rater agreement for the rubric study: the
// statistic human-evaluation sections report to show the raters are not
// noise. ratings[i][j] is rater j's 1-5 score for item i; every item
// must be scored by the same number (>= 2) of raters.
//
// Kappa is 1 for perfect agreement, 0 for chance-level, negative for
// systematic disagreement.
func FleissKappa(ratings [][]int) (float64, error) {
	if len(ratings) == 0 {
		return 0, fmt.Errorf("humaneval: no items")
	}
	raters := len(ratings[0])
	if raters < 2 {
		return 0, fmt.Errorf("humaneval: need >= 2 raters, got %d", raters)
	}
	const categories = 5
	counts := make([][categories]float64, len(ratings))
	var catTotals [categories]float64
	for i, row := range ratings {
		if len(row) != raters {
			return 0, fmt.Errorf("humaneval: item %d has %d ratings, want %d", i, len(row), raters)
		}
		for _, v := range row {
			if v < 1 || v > categories {
				return 0, fmt.Errorf("humaneval: rating %d out of 1-%d", v, categories)
			}
			counts[i][v-1]++
			catTotals[v-1]++
		}
	}

	n := float64(len(ratings))
	m := float64(raters)

	// Per-item agreement P_i and its mean.
	var pBar float64
	for i := range counts {
		var s float64
		for _, c := range counts[i] {
			s += c * c
		}
		pBar += (s - m) / (m * (m - 1))
	}
	pBar /= n

	// Chance agreement P_e from the marginal category distribution.
	var pe float64
	total := n * m
	for _, c := range catTotals {
		p := c / total
		pe += p * p
	}
	if pe == 1 {
		// All raters used one category everywhere: agreement is perfect
		// but kappa's denominator vanishes; report 1 by convention.
		return 1, nil
	}
	return (pBar - pe) / (1 - pe), nil
}
