package humaneval

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/facet"
	"repro/internal/simllm"
)

func TestCategoriesShape(t *testing.T) {
	cats := Categories()
	if len(cats) != 8 {
		t.Fatalf("table 4 has 8 categories, got %d", len(cats))
	}
	seen := map[string]bool{}
	for _, c := range cats {
		if c.Name == "" || !c.Source.Valid() {
			t.Errorf("bad category %+v", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate category %s", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 1); err == nil {
		t.Error("empty pool should fail")
	}
	pool, err := NewPool(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 9 {
		t.Fatalf("pool size %d", len(pool))
	}
}

func TestRateRangeAndMonotonicity(t *testing.T) {
	pool, err := NewPool(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	prompt := "Explain how photosynthesis works and the mechanism behind it."
	good := "By way of background, photosynthesis converts light energy. Covering all aspects of photosynthesis, including edge conditions. It is established that the mechanism is verified. For example, consider the case of leaves."
	bad := "idk"
	for _, r := range pool {
		rg, rb := r.Rate(prompt, good), r.Rate(prompt, bad)
		if rg < 1 || rg > 5 || rb < 1 || rb > 5 {
			t.Fatalf("ratings out of range: %d %d", rg, rb)
		}
		if rg <= rb {
			t.Fatalf("rater %d rated bad (%d) >= good (%d)", r.id, rb, rg)
		}
	}
}

func TestRatersDisagree(t *testing.T) {
	pool, err := NewPool(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := simllm.MustModel(simllm.GPT35Turbo)
	prompt := "Give me advice on starting to run at 40."
	// Across a handful of responses, at least one must split the pool —
	// individual raters have personal thresholds and noise.
	disagreements := 0
	for i := 0; i < 8; i++ {
		resp := m.Respond(prompt, simllm.Options{Salt: fmt.Sprintf("r%d", i)})
		seen := map[int]bool{}
		for _, r := range pool {
			seen[r.Rate(prompt, resp)] = true
		}
		if len(seen) >= 2 {
			disagreements++
		}
	}
	if disagreements == 0 {
		t.Fatal("raters never disagree — pool has no diversity")
	}
}

func TestSummarize(t *testing.T) {
	sum, err := Summarize([]int{5, 4, 3, 2, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 6 {
		t.Fatalf("N = %d", sum.N)
	}
	if got := sum.FullMark; got != 2.0/6 {
		t.Errorf("FullMark = %v", got)
	}
	if got := sum.Availability; got != 4.0/6 {
		t.Errorf("Availability = %v", got)
	}
	if got := sum.Average; got != 20.0/6 {
		t.Errorf("Average = %v", got)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty ratings should fail")
	}
	if _, err := Summarize([]int{0}); err == nil {
		t.Error("rating 0 should fail")
	}
	if _, err := Summarize([]int{6}); err == nil {
		t.Error("rating 6 should fail")
	}
}

func TestCompareGSBMajority(t *testing.T) {
	pool, err := NewPool(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	prompt := "Explain the science of fermentation."
	strong := "By way of background, fermentation converts sugars. Covering all aspects of fermentation, including edge conditions. For example, consider the case of yogurt. It is established that the process is verified."
	weak := "Fermentation exists."
	g, err := CompareGSB(pool, prompt, strong, weak)
	if err != nil {
		t.Fatal(err)
	}
	if g.Good != 1 || g.Bad != 0 {
		t.Fatalf("GSB = %+v, want clear Good", g)
	}
	g2, err := CompareGSB(pool, prompt, weak, strong)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Bad != 1 {
		t.Fatalf("reversed GSB = %+v", g2)
	}
	if _, err := CompareGSB(nil, prompt, strong, weak); err == nil {
		t.Error("empty pool should fail")
	}
}

func TestGSBAddAndWinRate(t *testing.T) {
	var g GSB
	g.Add(GSB{Good: 3, Same: 1, Bad: 1})
	g.Add(GSB{Good: 1})
	if g.Good != 4 || g.Same != 1 || g.Bad != 1 {
		t.Fatalf("Add = %+v", g)
	}
	if wr := g.WinRate(); wr != 4.0/6 {
		t.Fatalf("WinRate = %v", wr)
	}
	if (GSB{}).WinRate() != 0 {
		t.Fatal("empty GSB winrate should be 0")
	}
}

func TestMeanSummaries(t *testing.T) {
	got := MeanSummaries([]Summary{
		{FullMark: 0.2, Average: 3, Availability: 0.8, N: 10},
		{FullMark: 0.4, Average: 4, Availability: 0.9, N: 10},
	})
	if math.Abs(got.FullMark-0.3) > 1e-9 || got.Average != 3.5 || got.N != 20 {
		t.Fatalf("mean = %+v", got)
	}
	if MeanSummaries(nil).N != 0 {
		t.Fatal("empty mean should be zero")
	}
}

// TestAugmentationImprovesHumanScores wires the §4.5 claim in miniature:
// PAS-style augmented responses earn better rubric scores than bare ones.
func TestAugmentationImprovesHumanScores(t *testing.T) {
	pool, err := NewPool(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := simllm.MustModel(simllm.GPT40613)
	prompts := []string{
		"Analyze the trade offs of remote work versus office work.",
		"Give me advice on negotiating a salary offer.",
		"Describe the physiology of high-altitude adaptation.",
	}
	var bare, augd []int
	for _, p := range prompts {
		aug := facet.RenderDirectives(facet.AnalyzePrompt(p).Needs.Top(2), "he")
		for i := 0; i < 10; i++ {
			salt := fmt.Sprintf("h%d", i)
			rb := m.Respond(p, simllm.Options{Salt: salt})
			ra := m.Respond(p+"\n"+aug, simllm.Options{Salt: salt})
			for _, r := range pool[:3] {
				bare = append(bare, r.Rate(p, rb))
				augd = append(augd, r.Rate(p, ra))
			}
		}
	}
	sb, err := Summarize(bare)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Summarize(augd)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Average <= sb.Average {
		t.Fatalf("augmented avg %.2f <= bare %.2f", sa.Average, sb.Average)
	}
}
