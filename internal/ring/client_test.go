package ring

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a minimal passerve stand-in: /v1/augment echoes an
// augmented prompt and records which prompts it served; /v1/status
// answers probes.
type fakeReplica struct {
	name     string
	delay    atomic.Int64 // nanoseconds added to every augment
	fail     atomic.Int32 // HTTP status to answer augments with; 0 = 200
	pressure atomic.Value // brownout rung reported by /v1/status ("", "trim", "raw")
	level    atomic.Value // X-PAS-Degraded value set on augment responses

	mu     sync.Mutex
	served map[string]int // prompt -> times served here
	srv    *httptest.Server
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{name: name, served: make(map[string]int)}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/status":
			w.Header().Set("Content-Type", "application/json")
			body := `{"status":"ok"}`
			if p, _ := f.pressure.Load().(string); p != "" {
				body = fmt.Sprintf(`{"status":"ok","pressure":%q}`, p)
			}
			_, _ = w.Write([]byte(body))
		case "/v1/augment":
			if d := f.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if code := f.fail.Load(); code != 0 {
				http.Error(w, "injected failure", int(code))
				return
			}
			var req augmentWireRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			f.mu.Lock()
			f.served[req.Prompt]++
			f.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			if lv, _ := f.level.Load().(string); lv != "" {
				w.Header().Set("X-PAS-Degraded", lv)
			}
			_ = json.NewEncoder(w).Encode(map[string]any{
				"augmented": req.Prompt + "\n[" + f.name + "]",
			})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) servedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.served {
		n += c
	}
	return n
}

func newTestCluster(t *testing.T, n int, mutate func(*Config)) (*Client, []*fakeReplica) {
	t.Helper()
	reps := make([]*fakeReplica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = newFakeReplica(t, fmt.Sprintf("r%d", i))
		urls[i] = reps[i].srv.URL
	}
	cfg := Config{Replicas: urls, Degrade: true}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, reps
}

// TestClientValidation: satellite 1's contract — bad replica lists fail
// at construction with a clear error, not at the first request.
func TestClientValidation(t *testing.T) {
	cases := [][]string{
		nil,
		{""},
		{"not-a-url"},
		{"ftp://host:1"},
		{"http://"},
		{"http://host:1/path"},
		{"http://host:1?q=1"},
	}
	for _, replicas := range cases {
		if _, err := NewClient(Config{Replicas: replicas}); err == nil {
			t.Fatalf("NewClient(%v) succeeded, want validation error", replicas)
		}
	}
	c, err := NewClient(Config{Replicas: []string{"http://host:1/", " http://host:1", "http://other:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Ring().Members(); len(got) != 2 {
		t.Fatalf("dedup/trim failed: members %v", got)
	}
}

// TestClientLocality: repeated prompts land on exactly one replica each
// — the consistent-hash routing preserves per-key cache locality.
func TestClientLocality(t *testing.T) {
	c, reps := newTestCluster(t, 3, nil)
	ctx := context.Background()

	const keysN, repsN = 40, 5
	for rep := 0; rep < repsN; rep++ {
		for i := 0; i < keysN; i++ {
			prompt := fmt.Sprintf("prompt %d", i)
			aug, deg, err := c.AugmentContextDegraded(ctx, prompt, "")
			if err != nil || deg {
				t.Fatalf("augment: err=%v degraded=%v", err, deg)
			}
			if !strings.HasPrefix(aug, prompt+"\n[r") {
				t.Fatalf("unexpected augmented text %q", aug)
			}
		}
	}
	// Every prompt must have been served by exactly one replica.
	for i := 0; i < keysN; i++ {
		prompt := fmt.Sprintf("prompt %d", i)
		owners := 0
		for _, r := range reps {
			r.mu.Lock()
			n := r.served[prompt]
			r.mu.Unlock()
			if n > 0 {
				owners++
				if n != repsN {
					t.Fatalf("prompt %q served %d times by %s, want %d", prompt, n, r.name, repsN)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("prompt %q served by %d replicas, want exactly 1", prompt, owners)
		}
	}
	// And the traffic spread across more than one replica overall.
	busy := 0
	for _, r := range reps {
		if r.servedCount() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("all keys landed on %d replica(s); ring is not spreading", busy)
	}
}

// TestClientFailover: a hard-down owner is skipped — the request is
// served by the successor, counted as a failover, and the dead member
// is suspected by the data path.
func TestClientFailover(t *testing.T) {
	c, reps := newTestCluster(t, 3, func(cfg *Config) {
		cfg.RequestTimeout = 2 * time.Second
	})
	ctx := context.Background()

	// Find a prompt owned by replica 0 so we know who to kill.
	prompt := ""
	for i := 0; ; i++ {
		p := fmt.Sprintf("victim prompt %d", i)
		if owner, _ := c.Owner(p, ""); owner == reps[0].srv.URL {
			prompt = p
			break
		}
	}
	reps[0].srv.Close()

	aug, deg, err := c.AugmentContextDegraded(ctx, prompt, "")
	if err != nil || deg {
		t.Fatalf("failover augment: err=%v degraded=%v", err, deg)
	}
	if !strings.Contains(aug, "[r1]") && !strings.Contains(aug, "[r2]") {
		t.Fatalf("expected a successor to serve, got %q", aug)
	}
	s := c.Stats()
	if s.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", s.Failovers)
	}
	if st := c.Membership().Snapshot()[0]; st.State == "up" {
		t.Fatalf("dead owner still marked up after data-path error")
	}
}

// TestClientAllDownDegrades: with every replica gone the client serves
// the raw prompt flagged degraded (Degrade on) or a typed error
// (Degrade off) — never a hang, never a silent fallback.
func TestClientAllDownDegrades(t *testing.T) {
	c, reps := newTestCluster(t, 2, func(cfg *Config) {
		cfg.RequestTimeout = time.Second
		cfg.Health.DownAfter = 1
	})
	for _, r := range reps {
		r.srv.Close()
	}
	ctx := context.Background()

	aug, deg, err := c.AugmentContextDegraded(ctx, "still works", "")
	if err != nil {
		t.Fatalf("degrade mode returned error: %v", err)
	}
	if !deg || aug != "still works" {
		t.Fatalf("want raw prompt + degraded, got %q degraded=%v", aug, deg)
	}
	if c.Stats().Degraded != 1 {
		t.Fatalf("degraded counter = %d, want 1", c.Stats().Degraded)
	}

	// The first sweep suspected both members; the second one's failures
	// cross DownAfter and evict them, emptying the ring — after which
	// requests degrade on ErrNoReplicas without even dialing.
	if _, _, err := c.AugmentContextDegraded(ctx, "second", ""); err != nil {
		t.Fatalf("second degraded request: %v", err)
	}
	if c.Membership().Live() != 0 {
		t.Fatalf("members still live after hard failures: %+v", c.Membership().Snapshot())
	}
	if aug, deg, err := c.AugmentContextDegraded(ctx, "empty ring", ""); err != nil || !deg || aug != "empty ring" {
		t.Fatalf("empty-ring request: %q %v %v", aug, deg, err)
	}

	cFailClosed, reps2 := newTestCluster(t, 1, func(cfg *Config) {
		cfg.Degrade = false
		cfg.RequestTimeout = time.Second
	})
	reps2[0].srv.Close()
	if _, _, err := cFailClosed.AugmentContextDegraded(ctx, "p", ""); err == nil {
		t.Fatal("fail-closed client returned nil error with all replicas down")
	}
}

// TestClientHedging: a pathologically slow owner does not hold the
// request hostage — the hedge races the successor and wins fast. The
// slow owner keeps its key ownership (locality is preserved for the
// healthy case), but this request is served within the hedge budget.
func TestClientHedging(t *testing.T) {
	c, reps := newTestCluster(t, 3, func(cfg *Config) {
		cfg.Hedge = true
		cfg.HedgeMin = 10 * time.Millisecond
		cfg.HedgeMax = 20 * time.Millisecond
		cfg.RequestTimeout = 10 * time.Second
	})
	ctx := context.Background()

	prompt := ""
	for i := 0; ; i++ {
		p := fmt.Sprintf("slow prompt %d", i)
		if owner, _ := c.Owner(p, ""); owner == reps[0].srv.URL {
			prompt = p
			break
		}
	}
	reps[0].delay.Store(int64(3 * time.Second))

	start := time.Now()
	aug, deg, err := c.AugmentContextDegraded(ctx, prompt, "")
	elapsed := time.Since(start)
	if err != nil || deg {
		t.Fatalf("hedged augment: err=%v degraded=%v", err, deg)
	}
	if strings.Contains(aug, "[r0]") {
		t.Fatalf("slow owner won the race implausibly fast: %q", aug)
	}
	if elapsed >= 3*time.Second {
		t.Fatalf("hedge never fired; request took %v", elapsed)
	}
}

// TestClientBreaker: a replica that keeps erroring opens its breaker,
// after which calls skip it without dialing (its successor serves), and
// the breaker state surfaces in Stats.
func TestClientBreaker(t *testing.T) {
	c, reps := newTestCluster(t, 2, func(cfg *Config) {
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = time.Minute
		cfg.RequestTimeout = 2 * time.Second
	})
	ctx := context.Background()

	prompt := ""
	for i := 0; ; i++ {
		p := fmt.Sprintf("breaker prompt %d", i)
		if owner, _ := c.Owner(p, ""); owner == reps[0].srv.URL {
			prompt = p
			break
		}
	}
	reps[0].fail.Store(http.StatusInternalServerError)

	for i := 0; i < 4; i++ {
		if _, _, err := c.AugmentContextDegraded(ctx, prompt, ""); err != nil {
			t.Fatalf("request %d failed despite successor: %v", i, err)
		}
	}
	if got := c.Stats().Breakers[reps[0].srv.URL]; got != "open" {
		t.Fatalf("owner breaker state %q, want open", got)
	}
	// The failing replica saw exactly BreakerThreshold dials; the rest
	// were refused locally.
	if n := reps[0].servedCount(); n != 0 {
		t.Fatalf("failing replica recorded %d served augments, want 0", n)
	}
}
