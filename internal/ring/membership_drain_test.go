package ring

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// drainableServer is a fake replica whose /v1/status can announce
// draining or go dead, counting the probes it answers.
type drainableServer struct {
	srv      *httptest.Server
	dead     atomic.Bool
	draining atomic.Bool
	probes   int64
}

func newDrainableServer(t *testing.T) *drainableServer {
	t.Helper()
	d := &drainableServer{}
	d.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/status" {
			http.NotFound(w, r)
			return
		}
		atomic.AddInt64(&d.probes, 1)
		if d.dead.Load() {
			http.Error(w, "unhealthy", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		status := `{"status":"ok"}`
		if d.draining.Load() {
			status = `{"status":"draining"}`
		}
		_, _ = w.Write([]byte(status))
	}))
	t.Cleanup(d.srv.Close)
	return d
}

// TestDrainingStateMachine: a probe that reads status "draining" moves
// the member off the ring without failure bookkeeping; data-path
// observations cannot move it while it drains; a healthy probe brings
// it straight back, and sustained probe failures finish it off to Down.
func TestDrainingStateMachine(t *testing.T) {
	rep := newDrainableServer(t)
	ring := New(8)
	m := NewMembership([]string{rep.srv.URL}, ring, rep.srv.Client(), HealthConfig{
		ProbeTimeout: time.Second,
		DownAfter:    2,
	})
	ctx := context.Background()

	rep.draining.Store(true)
	m.ProbeOne(ctx, rep.srv.URL)
	st := m.Snapshot()[0]
	if st.State != "draining" || st.Drains != 1 || st.Fails != 0 {
		t.Fatalf("after draining probe: %+v, want draining/1 drains/0 fails", st)
	}
	if ring.Size() != 0 {
		t.Fatal("draining member still on the ring")
	}
	if m.Live() != 0 {
		t.Fatalf("Live() = %d, want 0 (draining is not routable)", m.Live())
	}
	if _, _, drains := m.Churn(); drains != 1 {
		t.Fatalf("Churn drains = %d, want 1", drains)
	}

	// Data-path outcomes are ignored while draining: a success (the
	// replica still answers cache hits) must not re-ring it, a failure
	// must not smear its record.
	m.Observe(rep.srv.URL, nil)
	if st := m.Snapshot()[0]; st.State != "draining" || ring.Size() != 0 {
		t.Fatalf("data-path success moved a draining member: %v ring %d", st.State, ring.Size())
	}
	m.Observe(rep.srv.URL, errors.New("boom"))
	if st := m.Snapshot()[0]; st.State != "draining" || st.Fails != 0 {
		t.Fatalf("data-path failure touched a draining member: %+v", st)
	}

	// Draining again is not another transition.
	m.ProbeOne(ctx, rep.srv.URL)
	if st := m.Snapshot()[0]; st.Drains != 1 {
		t.Fatalf("repeat draining probe counted again: drains %d", st.Drains)
	}

	// A healthy probe (the restarted process) rejoins the ring.
	rep.draining.Store(false)
	m.ProbeOne(ctx, rep.srv.URL)
	if st := m.Snapshot()[0]; st.State != "up" || ring.Size() != 1 {
		t.Fatalf("after recovery probe: %v ring %d, want up/1", st.State, ring.Size())
	}

	// Drain again, then die: DownAfter probe failures finish it to Down
	// directly — no suspect detour, it was already off the ring.
	rep.draining.Store(true)
	m.ProbeOne(ctx, rep.srv.URL)
	rep.dead.Store(true)
	m.ProbeOne(ctx, rep.srv.URL)
	if st := m.Snapshot()[0]; st.State != "draining" {
		t.Fatalf("one failure mid-drain: %v, want still draining", st.State)
	}
	m.ProbeOne(ctx, rep.srv.URL)
	st = m.Snapshot()[0]
	if st.State != "down" || st.Downs != 1 {
		t.Fatalf("dead drainer: %v downs %d, want down/1", st.State, st.Downs)
	}
}

// TestMembershipAddRemove: the member set is dynamic — Add puts a new
// replica on the ring, Remove takes it off and forgets it, and both
// report whether anything changed.
func TestMembershipAddRemove(t *testing.T) {
	ring := New(8)
	m := NewMembership([]string{"http://a:1"}, ring, nil, HealthConfig{DownAfter: 2})

	if !m.Add("http://b:1") {
		t.Fatal("adding a new member reported no change")
	}
	if m.Add("http://b:1") {
		t.Fatal("re-adding a routable member reported a change")
	}
	if ring.Size() != 2 || m.Live() != 2 || len(m.Snapshot()) != 2 {
		t.Fatalf("after add: ring %d live %d members %d", ring.Size(), m.Live(), len(m.Snapshot()))
	}

	// A Down member re-added by the operator comes back optimistically.
	m.Observe("http://b:1", errors.New("gone"))
	m.Observe("http://b:1", errors.New("gone"))
	if m.Live() != 1 {
		t.Fatalf("Live() = %d after eviction, want 1", m.Live())
	}
	if !m.Add("http://b:1") {
		t.Fatal("re-adding a down member reported no change")
	}
	if st := m.Snapshot()[1]; st.State != "up" || st.Fails != 0 {
		t.Fatalf("re-added member: %+v, want up with a clean slate", st)
	}
	if ring.Size() != 2 {
		t.Fatal("re-added member missing from ring")
	}

	if !m.Remove("http://b:1") {
		t.Fatal("removing a member reported no change")
	}
	if m.Remove("http://b:1") {
		t.Fatal("removing a gone member reported a change")
	}
	if ring.Size() != 1 || len(m.Snapshot()) != 1 {
		t.Fatalf("after remove: ring %d members %d, want 1/1", ring.Size(), len(m.Snapshot()))
	}
	if adds, removes, _ := m.Churn(); adds != 2 || removes != 1 {
		t.Fatalf("churn = %d adds %d removes, want 2/1", adds, removes)
	}
}

// TestProbeLoopLifecycle: removing a member cancels its probe loop (a
// departed replica is not probed forever) and re-adding it starts a
// fresh one — including for members added after Start.
func TestProbeLoopLifecycle(t *testing.T) {
	rep := newDrainableServer(t)
	ring := New(8)
	m := NewMembership(nil, ring, rep.srv.Client(), HealthConfig{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		DownAfter:     2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	// Added after Start: the loop must begin probing on its own.
	m.Add(rep.srv.URL)
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt64(&rep.probes) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("member added after Start was never probed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Removed: probing stops. Allow one in-flight probe to land, then
	// require silence.
	m.Remove(rep.srv.URL)
	time.Sleep(60 * time.Millisecond)
	settled := atomic.LoadInt64(&rep.probes)
	time.Sleep(150 * time.Millisecond)
	if got := atomic.LoadInt64(&rep.probes); got != settled {
		t.Fatalf("removed member still probed: %d -> %d", settled, got)
	}

	// Re-added: probing resumes with a fresh loop.
	m.Add(rep.srv.URL)
	for atomic.LoadInt64(&rep.probes) == settled {
		if time.Now().After(deadline) {
			t.Fatal("re-added member was never probed again")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
