package ring

import (
	"context"
	"strings"
	"testing"
)

// ownerOf finds the fake replica that owns (prompt, salt) on c's ring.
func ownerOf(t *testing.T, c *Client, reps []*fakeReplica, prompt, salt string) *fakeReplica {
	t.Helper()
	url, ok := c.Owner(prompt, salt)
	if !ok {
		t.Fatal("empty ring")
	}
	for _, r := range reps {
		if r.srv.URL == url {
			return r
		}
	}
	t.Fatalf("owner %s not among fakes", url)
	return nil
}

// TestClientBrownoutReroute: a replica whose probe reports raw-level
// brownout pressure is demoted behind healthy successors — its keys
// fail over instead of being fed into a passthrough-only core — and
// comes back as owner when the pressure clears.
func TestClientBrownoutReroute(t *testing.T) {
	c, reps := newTestCluster(t, 3, nil)
	ctx := context.Background()
	owner := ownerOf(t, c, reps, "p", "s")

	owner.pressure.Store("raw")
	c.Membership().ProbeAll(ctx)

	aug, level, err := c.AugmentContextLevel(ctx, "p", "s")
	if err != nil || level != "" {
		t.Fatalf("reroute request = (%q, %q, %v), want full-quality success", aug, level, err)
	}
	if strings.Contains(aug, "["+owner.name+"]") {
		t.Fatalf("browned-out owner served %q; want a healthy successor", aug)
	}
	s := c.Stats()
	if s.BrownoutReroutes != 1 {
		t.Fatalf("brownout_reroutes = %d, want 1", s.BrownoutReroutes)
	}
	if s.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1 (non-owner served)", s.Failovers)
	}
	found := false
	for _, m := range s.Members {
		if m.URL == owner.srv.URL {
			found = true
			if m.Pressure != "raw" {
				t.Fatalf("member pressure = %q, want raw: %+v", m.Pressure, m)
			}
		}
	}
	if !found {
		t.Fatal("owner missing from member snapshot")
	}

	// Pressure clears on the next probe; the owner takes its keys back.
	owner.pressure.Store("")
	c.Membership().ProbeAll(ctx)
	aug, _, err = c.AugmentContextLevel(ctx, "p", "s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(aug, "["+owner.name+"]") {
		t.Fatalf("recovered owner did not serve: %q", aug)
	}
}

// TestClientBrownoutWholeFleetKeepsOrder: when every candidate is
// browned out there is nothing better to prefer — the owner keeps its
// keys and no reroute is counted.
func TestClientBrownoutWholeFleetKeepsOrder(t *testing.T) {
	c, reps := newTestCluster(t, 3, nil)
	ctx := context.Background()
	for _, r := range reps {
		r.pressure.Store("raw")
	}
	c.Membership().ProbeAll(ctx)

	owner := ownerOf(t, c, reps, "p", "s")
	aug, _, err := c.AugmentContextLevel(ctx, "p", "s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(aug, "["+owner.name+"]") {
		t.Fatalf("owner lost its keys under fleet-wide brownout: %q", aug)
	}
	if got := c.Stats().BrownoutReroutes; got != 0 {
		t.Fatalf("brownout_reroutes = %d, want 0", got)
	}
}

// TestClientLevelPropagates: the rung a replica answers with rides the
// header back through the cluster client.
func TestClientLevelPropagates(t *testing.T) {
	c, reps := newTestCluster(t, 2, nil)
	ctx := context.Background()
	for _, r := range reps {
		r.level.Store("trim")
	}
	_, level, err := c.AugmentContextLevel(ctx, "p", "s")
	if err != nil || level != "trim" {
		t.Fatalf("(level, err) = (%q, %v), want trim", level, err)
	}
	// The boolean interface folds any rung into degraded=true.
	_, degraded, err := c.AugmentContextDegraded(ctx, "p2", "s")
	if err != nil || !degraded {
		t.Fatalf("(degraded, err) = (%v, %v), want true", degraded, err)
	}
}
