package ring

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serving"
)

// ErrNoReplicas is returned (fail-closed mode) when every replica is
// Down and the ring is empty; with Config.Degrade the client returns
// the raw prompt instead, flagged degraded.
var ErrNoReplicas = errors.New("ring: no live replicas")

// Config sizes the cluster augmentation client. Zero values select
// defaults.
type Config struct {
	// Replicas are the passerve base URLs (e.g. http://10.0.0.1:8422).
	// Required, deduplicated, trailing slashes stripped.
	Replicas []string
	// VNodes is the virtual-node count per replica on the routing ring.
	// Default DefaultVNodes.
	VNodes int
	// Model scopes the shard key, mirroring the model dimension of the
	// replica-side cache key (serving.Key). One cluster serves one
	// model, so any constant — including "" — preserves locality; set
	// it when one proxy fronts several model fleets.
	Model string
	// RequestTimeout bounds one augmentation attempt against one
	// replica. Default 5s; the request context's deadline tightens it.
	RequestTimeout time.Duration
	// BreakerThreshold arms a per-replica circuit breaker: that many
	// consecutive failed calls open it for BreakerCooldown. Default 5;
	// negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is each breaker's open→half-open window.
	// Default 2s.
	BreakerCooldown time.Duration
	// Hedge enables hedged reads: when the owner replica has not
	// answered within the adaptive tail percentile, the same request
	// races against the owner's successor on the ring. Locality
	// survives because the hedge fires only for the slow tail — the
	// common path still hits exactly the owner.
	Hedge bool
	// HedgeMin / HedgeMax clamp the adaptive hedge delay. Defaults
	// 20ms / 2s.
	HedgeMin, HedgeMax time.Duration
	// Degrade fails open: when every candidate replica fails, return
	// the raw prompt flagged degraded instead of an error — the same
	// plug-and-play guarantee the single-node proxy gives.
	Degrade bool
	// Health configures the active prober.
	Health HealthConfig
	// HTTPClient carries augmentation and probe traffic; nil builds a
	// default with sane connection pooling.
	HTTPClient *http.Client
}

// replicaCounters are per-replica lifetime data-path counters.
type replicaCounters struct {
	requests int64 // successful augmentations served by this replica
	errors   int64 // failed attempts against this replica
}

// Client routes augmentation requests across a replica fleet by
// consistent hash of the serving cache key. It implements the same
// AugmentContextDegraded contract as pas.System, so the reverse proxy
// can swap an in-process system for a cluster without knowing the
// difference. Safe for concurrent use.
type Client struct {
	cfg    Config
	ring   *Ring
	mem    *Membership
	hedger *resilience.Hedger // nil when hedging is off
	hc     *http.Client

	mu       sync.Mutex
	breakers map[string]*resilience.Breaker // nil map when disabled
	counters map[string]*replicaCounters

	requests  int64
	failovers int64 // successes served by a non-owner replica
	degraded  int64
	// brownoutReroutes counts requests whose owner was deprioritized
	// because its last probe reported raw-level brownout pressure.
	brownoutReroutes int64
}

// NewClient validates the replica list and builds the routing tier.
// Call Start to begin active health checking; without it the membership
// stays as observed by the data path only.
func NewClient(cfg Config) (*Client, error) {
	replicas, err := NormalizeReplicas(cfg.Replicas)
	if err != nil {
		return nil, err
	}
	cfg.Replicas = replicas
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 20 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 2 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	c := &Client{
		cfg:      cfg,
		ring:     New(cfg.VNodes),
		hc:       hc,
		counters: make(map[string]*replicaCounters, len(replicas)),
	}
	c.mem = NewMembership(replicas, c.ring, hc, cfg.Health)
	if cfg.BreakerThreshold > 0 {
		c.breakers = make(map[string]*resilience.Breaker, len(replicas))
		for _, r := range replicas {
			c.breakers[r] = resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
			})
		}
	}
	for _, r := range replicas {
		c.counters[r] = &replicaCounters{}
	}
	if cfg.Hedge {
		c.hedger = &resilience.Hedger{MinDelay: cfg.HedgeMin, MaxDelay: cfg.HedgeMax}
	}
	return c, nil
}

// NormalizeReplicas validates a replica URL list up front — absolute
// http(s) URLs, no path/query baggage — and returns it deduplicated
// with trailing slashes stripped. Commands call it at flag-parse time
// so a typo fails at startup with a clear message instead of as the
// first request's 502.
func NormalizeReplicas(replicas []string) ([]string, error) {
	if len(replicas) == 0 {
		return nil, errors.New("ring: at least one replica URL is required")
	}
	out := make([]string, 0, len(replicas))
	seen := make(map[string]struct{}, len(replicas))
	for _, r := range replicas {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		u, err := url.Parse(r)
		if err != nil {
			return nil, fmt.Errorf("ring: replica URL %q: %w", r, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" || u.Host == "" {
			return nil, fmt.Errorf("ring: replica URL %q must be absolute http(s)://host[:port]", r)
		}
		if u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
			return nil, fmt.Errorf("ring: replica URL %q must be a bare base URL (no path or query)", r)
		}
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	return out, nil
}

// Start launches the active health prober; it stops when ctx ends.
func (c *Client) Start(ctx context.Context) { c.mem.Start(ctx) }

// AddReplica joins one replica to the fleet at runtime: the URL is
// validated and normalized, a fresh breaker and counters are armed, and
// the membership table puts it on the ring (starting its probe loop
// when the prober is running). Adding a replica that is already present
// and routable is a harmless no-op. It returns the normalized URL and
// whether the membership actually changed.
func (c *Client) AddReplica(rawurl string) (string, bool, error) {
	norm, err := NormalizeReplicas([]string{rawurl})
	if err != nil {
		return "", false, err
	}
	url := norm[0]
	c.mu.Lock()
	if _, ok := c.counters[url]; !ok {
		c.counters[url] = &replicaCounters{}
	}
	if c.breakers != nil {
		if _, ok := c.breakers[url]; !ok {
			// A re-added replica starts with a clean breaker: its past
			// failures belonged to the process that was retired.
			c.breakers[url] = resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: c.cfg.BreakerThreshold,
				Cooldown:  c.cfg.BreakerCooldown,
			})
		}
	}
	c.mu.Unlock()
	return url, c.mem.Add(url), nil
}

// RemoveReplica retires one replica: off the ring, probe loop stopped,
// breaker dropped (so a later re-add starts closed). The lifetime
// counters stay — traffic it served still happened. It reports whether
// the replica was a member.
func (c *Client) RemoveReplica(rawurl string) (bool, error) {
	norm, err := NormalizeReplicas([]string{rawurl})
	if err != nil {
		return false, err
	}
	url := norm[0]
	c.mu.Lock()
	delete(c.breakers, url)
	c.mu.Unlock()
	return c.mem.Remove(url), nil
}

// Membership exposes the health table (stats surfaces, tests).
func (c *Client) Membership() *Membership { return c.mem }

// Ring exposes the routing ring (stats surfaces, tests).
func (c *Client) Ring() *Ring { return c.ring }

// Owner returns the replica that owns (prompt, salt) right now — the
// one whose cache the request will warm.
func (c *Client) Owner(prompt, salt string) (string, bool) {
	return c.ring.Owner(serving.Key(prompt, salt, c.cfg.Model))
}

// result carries one successful remote augmentation.
type result struct {
	augmented string
	level     string // X-PAS-Degraded wire value; "" = full quality
	replica   string
}

// wire shapes of POST /v1/augment, mirroring the root package's
// AugmentRequest/AugmentResponse. Redeclared rather than imported: the
// root package sits above internal/ring in the dependency order, and
// the JSON field names are the stable contract.
type augmentWireRequest struct {
	Prompt string `json:"prompt"`
	Salt   string `json:"salt,omitempty"`
}

type augmentWireResponse struct {
	Augmented string `json:"augmented"`
	Degraded  bool   `json:"degraded,omitempty"`
}

// AugmentContextDegraded routes one augmentation to the key's owner
// replica (hedging to and failing over across ring successors), and
// applies the fail-open policy when the whole fleet is unreachable. It
// mirrors pas.System.AugmentContextDegraded so the proxy treats
// in-process and clustered augmentation identically.
func (c *Client) AugmentContextDegraded(ctx context.Context, prompt, salt string) (augmented string, degraded bool, err error) {
	augmented, level, err := c.AugmentContextLevel(ctx, prompt, salt)
	return augmented, level != "", err
}

// AugmentContextLevel is AugmentContextDegraded with the degradation
// rung: the X-PAS-Degraded wire value the serving replica answered
// with ("" full, "trim", "1" raw/fail-open). It implements the proxy's
// level-aware augmenter interface.
func (c *Client) AugmentContextLevel(ctx context.Context, prompt, salt string) (augmented, level string, err error) {
	atomic.AddInt64(&c.requests, 1)
	key := serving.Key(prompt, salt, c.cfg.Model)
	cands := c.ring.Successors(key, 0) // live members, owner first
	owner := ""
	if len(cands) > 0 {
		owner = cands[0]
	}
	cands = c.partitionByPressure(cands)
	ctx, span := obs.StartSpan(ctx, "ring.route")
	defer span.End()
	if owner != "" {
		span.SetAttr("ring.owner", owner)
	}
	res, err := c.tryCandidates(ctx, cands, prompt, salt)
	if err == nil {
		span.SetAttr("ring.replica", res.replica)
		span.SetAttrBool("degraded", res.level != "")
		// Failovers count against the true ring owner — a brownout
		// demotion that lands the request elsewhere is a failover too.
		if res.replica != "" && owner != "" && res.replica != owner {
			atomic.AddInt64(&c.failovers, 1)
		}
		return res.augmented, res.level, nil
	}
	span.SetError(err)
	if c.cfg.Degrade {
		// The plug-and-play guarantee: a routing-tier failure serves
		// the raw prompt, never a PAS-side error.
		atomic.AddInt64(&c.degraded, 1)
		obs.AddEvent(ctx, "ring.degraded", "cause", err.Error())
		span.SetAttrBool("degraded", true)
		return prompt, "1", nil
	}
	return "", "", err
}

// partitionByPressure stably moves raw-brownout members behind every
// healthy candidate: a replica announcing raw pressure answers only
// passthroughs, so hedges and failovers should land on successors that
// can still do full-quality work. Locality degrades gracefully — the
// raw members stay candidates of last resort, and order within each
// partition is preserved. A whole-fleet brownout leaves the original
// order (nothing better to prefer).
func (c *Client) partitionByPressure(cands []string) []string {
	if len(cands) < 2 {
		return cands
	}
	raw := 0
	for _, u := range cands {
		if c.mem.Pressure(u) == "raw" {
			raw++
		}
	}
	if raw == 0 || raw == len(cands) {
		return cands
	}
	if c.mem.Pressure(cands[0]) == "raw" {
		atomic.AddInt64(&c.brownoutReroutes, 1)
	}
	out := make([]string, 0, len(cands))
	for _, u := range cands {
		if c.mem.Pressure(u) != "raw" {
			out = append(out, u)
		}
	}
	for _, u := range cands {
		if c.mem.Pressure(u) == "raw" {
			out = append(out, u)
		}
	}
	return out
}

// tryCandidates serves one request from the candidate list. The
// primary attempt starts at the owner and walks successors on hard
// failure; when hedging is on, a slow owner additionally races a
// second attempt that starts at the first successor. The atomic cursor
// hands each attempt its own starting offset.
func (c *Client) tryCandidates(ctx context.Context, cands []string, prompt, salt string) (result, error) {
	if len(cands) == 0 {
		return result{}, ErrNoReplicas
	}
	var cursor int32
	fn := func(ctx context.Context) (result, error) {
		start := int(atomic.AddInt32(&cursor, 1)) - 1
		if start >= len(cands) {
			start = len(cands) - 1
		}
		var lastErr error
		for i := start; i < len(cands); i++ {
			res, err := c.callReplica(ctx, cands[i], prompt, salt)
			if err == nil {
				return res, nil
			}
			lastErr = err
			if cerr := ctx.Err(); cerr != nil {
				// The caller is gone (or the hedge lost the race);
				// walking further replicas serves no one.
				break
			}
		}
		return result{}, lastErr
	}
	hedger := c.hedger
	if len(cands) < 2 {
		hedger = nil // nothing to hedge against
	}
	return resilience.Hedge(ctx, hedger, fn)
}

// callReplica performs one POST /v1/augment against one replica,
// through its circuit breaker, reporting transport reachability to the
// membership table.
func (c *Client) callReplica(ctx context.Context, replica, prompt, salt string) (result, error) {
	var done func(bool)
	if b := c.breakerFor(replica); b != nil {
		var berr error
		done, berr = b.Allow()
		if berr != nil {
			return result{}, fmt.Errorf("ring: replica %s: %w", replica, berr)
		}
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	ctx, span := obs.StartSpan(ctx, "ring.augment")
	span.SetAttr("ring.replica", replica)
	defer span.End()

	res, err := c.doAugment(ctx, replica, prompt, salt)
	if err != nil {
		span.SetError(err)
		if done != nil {
			// Terminal errors (the caller cancelling, 4xx) say nothing
			// about replica health; everything else feeds the breaker.
			done(resilience.Classify(err) == resilience.Terminal)
		}
		c.count(replica, false)
		return result{}, err
	}
	if done != nil {
		done(true)
	}
	c.count(replica, true)
	span.SetAttrBool("degraded", res.level != "")
	return res, nil
}

// doAugment is the bare HTTP exchange.
func (c *Client) doAugment(ctx context.Context, replica, prompt, salt string) (result, error) {
	body, err := json.Marshal(augmentWireRequest{Prompt: prompt, Salt: salt})
	if err != nil {
		return result{}, fmt.Errorf("ring: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/v1/augment", bytes.NewReader(body))
	if err != nil {
		return result{}, fmt.Errorf("ring: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	// The replica continues this trace, so one trace id spans
	// proxy→replica→(replica-side serving core).
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.mem.Observe(replica, err)
		return result{}, fmt.Errorf("ring: replica %s: %w", replica, err)
	}
	defer resp.Body.Close()
	// Reachable at the transport level — HTTP-level shedding (503) is
	// breaker food, not a membership failure.
	c.mem.Observe(replica, nil)
	if resp.StatusCode != http.StatusOK {
		// Read a bounded slice of the error body for the message, and
		// classify so the breaker and retry layers treat 503 as
		// overload and 4xx as terminal.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("ring: replica %s: status %d: %s", replica, resp.StatusCode, bytes.TrimSpace(msg))
		switch {
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			return result{}, resilience.AsOverload(err)
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return result{}, resilience.AsTerminal(err)
		}
		return result{}, err
	}
	var wire augmentWireResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&wire); err != nil {
		return result{}, fmt.Errorf("ring: replica %s: decoding response: %w", replica, err)
	}
	// The header carries the rung ("trim" or "1"); the body's boolean
	// covers replicas old enough to flag degradation without a level.
	level := resp.Header.Get("X-PAS-Degraded")
	if level == "" && wire.Degraded {
		level = "1"
	}
	return result{augmented: wire.Augmented, level: level, replica: replica}, nil
}

// breakerFor returns the replica's breaker, nil when disabled.
func (c *Client) breakerFor(replica string) *resilience.Breaker {
	if c.breakers == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakers[replica]
}

// count records one data-path outcome for a replica.
func (c *Client) count(replica string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rc, exists := c.counters[replica]
	if !exists {
		return
	}
	if ok {
		rc.requests++
	} else {
		rc.errors++
	}
}

// ReplicaStats is one replica's data-path snapshot.
type ReplicaStats struct {
	URL string `json:"url"`
	// Requests counts augmentations this replica served; Errors counts
	// failed attempts against it (breaker-open refusals included).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// Stats is the cluster client's snapshot, shaped for GET /v1/stats.
type Stats struct {
	Requests  int64 `json:"requests"`
	Failovers int64 `json:"failovers"`
	Degraded  int64 `json:"degraded"`
	// BrownoutReroutes counts requests whose owner was demoted behind
	// healthier successors because it reported raw brownout pressure.
	BrownoutReroutes int64 `json:"brownout_reroutes,omitempty"`
	// Live is the routable member count; Members the full health table.
	Live    int            `json:"live"`
	Members []MemberStatus `json:"members"`
	// Replicas reports data-path traffic per replica, in replica order.
	Replicas []ReplicaStats    `json:"replicas"`
	Breakers map[string]string `json:"breakers,omitempty"`
	Hedging  bool              `json:"hedging"`
}

// Stats returns a monitoring snapshot.
func (c *Client) Stats() Stats {
	s := Stats{
		Requests:         atomic.LoadInt64(&c.requests),
		Failovers:        atomic.LoadInt64(&c.failovers),
		Degraded:         atomic.LoadInt64(&c.degraded),
		BrownoutReroutes: atomic.LoadInt64(&c.brownoutReroutes),
		Live:             c.mem.Live(),
		Members:          c.mem.Snapshot(),
		Hedging:          c.hedger != nil,
	}
	c.mu.Lock()
	// Per-replica traffic follows the live membership table, not the
	// boot-time config: replicas come and go at runtime.
	for _, m := range s.Members {
		rs := ReplicaStats{URL: m.URL}
		if rc := c.counters[m.URL]; rc != nil {
			rs.Requests, rs.Errors = rc.requests, rc.errors
		}
		s.Replicas = append(s.Replicas, rs)
	}
	breakers := make(map[string]*resilience.Breaker, len(c.breakers))
	for u, b := range c.breakers {
		breakers[u] = b
	}
	c.mu.Unlock()
	if len(breakers) > 0 {
		s.Breakers = make(map[string]string, len(breakers))
		for u, b := range breakers {
			s.Breakers[u] = b.State().String()
		}
	}
	return s
}

// StatsHandler serves the snapshot as JSON; pasproxy mounts it at
// GET /v1/stats in cluster mode.
func (c *Client) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Stats()); err != nil {
			obs.AddEvent(r.Context(), "ring.stats_write_error", "cause", err.Error())
		}
	})
}

// RegisterMetrics exposes the routing tier on reg under the pas_ring_
// namespace, read from Stats at scrape time.
func (c *Client) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector(func(e *obs.Emitter) {
		s := c.Stats()
		e.Counter("pas_ring_requests_total", "Requests entering the cluster routing tier.", float64(s.Requests))
		e.Counter("pas_ring_failovers_total", "Requests served by a non-owner replica.", float64(s.Failovers))
		e.Counter("pas_ring_degraded_total", "Requests served fail-open after the whole fleet failed.", float64(s.Degraded))
		e.Counter("pas_ring_brownout_reroutes_total", "Requests whose owner was deprioritized for raw brownout pressure.", float64(s.BrownoutReroutes))
		e.Gauge("pas_ring_live_members", "Members currently routable (up or suspect).", float64(s.Live))
		adds, removes, _ := c.mem.Churn()
		e.Counter("pas_ring_members_added_total", "Members joined at runtime.", float64(adds))
		e.Counter("pas_ring_members_removed_total", "Members retired at runtime.", float64(removes))
		for _, m := range s.Members {
			state := 0.0
			switch m.State {
			case "suspect":
				state = 1
			case "down":
				state = 2
			case "draining":
				state = 3
			}
			e.Gauge("pas_ring_member_state", "Member health (0 up, 1 suspect, 2 down, 3 draining).", state, "replica", m.URL)
			e.Counter("pas_ring_probes_total", "Health probes issued.", float64(m.Probes), "replica", m.URL)
			e.Counter("pas_ring_probe_failures_total", "Health probes failed.", float64(m.ProbeFails), "replica", m.URL)
			e.Counter("pas_ring_member_downs_total", "Evictions of the member from the ring.", float64(m.Downs), "replica", m.URL)
			e.Counter("pas_ring_member_drains_total", "Graceful departures into draining, by replica.", float64(m.Drains), "replica", m.URL)
		}
		for _, r := range s.Replicas {
			e.Counter("pas_ring_replica_requests_total", "Augmentations served, by replica.", float64(r.Requests), "replica", r.URL)
			e.Counter("pas_ring_replica_errors_total", "Failed attempts, by replica.", float64(r.Errors), "replica", r.URL)
		}
	})
}
