package ring

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/resilience"
)

// State is a member's health position. Transitions:
//
//	Up ──probe/request failure──▶ Suspect ──DownAfter consecutive──▶ Down
//	any ──probe/request success──▶ Up
//	any ──probe sees "draining"──▶ Draining ──probe sees "ok"──▶ Up
//	Draining ──DownAfter probe failures──▶ Down
//
// Up and Suspect members stay on the routing ring (a suspect member is
// probably alive — one lost probe should not reshuffle 1/N of the key
// space); Down members are removed, which is what moves their keys to
// successors. A Down member keeps being probed at backed-off intervals
// and rejoins the ring on its first successful probe.
//
// Draining is the third, deliberate state: the member answers probes
// (it is healthy) but has announced it is shutting down, so it is taken
// off the ring without any failure bookkeeping — no suspect detour, no
// breaker food, no error streak. Only probes move a member in or out of
// Draining; data-path observations are ignored while it drains, because
// the replica intentionally keeps serving cache hits and in-flight work
// while refusing new computations.
type State int

const (
	// StateUp: the member answers probes; route to it.
	StateUp State = iota
	// StateSuspect: recent failures below the Down threshold; still
	// routed, but one more failure streak away from eviction.
	StateSuspect
	// StateDown: evicted from the ring; probed on backoff until it
	// recovers.
	StateDown
	// StateDraining: healthy but shutting down; off the ring by its own
	// request. Probes keep watching it — a drained process that
	// restarts and reports ok rejoins, one that disappears goes Down.
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateDraining:
		return "draining"
	}
	return "unknown"
}

// routable reports whether a member in state s should be on the ring.
func routable(s State) bool { return s == StateUp || s == StateSuspect }

// wireDrainingStatus is the /v1/status "status" value a draining
// replica reports. Deliberately redeclared here rather than imported
// from the root package (which would be an import cycle); it is part
// of the HTTP wire contract, like augmentWireRequest.
const wireDrainingStatus = "draining"

// HealthConfig sizes the active health checker. Zero values select
// defaults.
type HealthConfig struct {
	// ProbeInterval is the target spacing between probes of a healthy
	// member; the actual sleep is jittered over [interval/2, interval)
	// so a fleet of probers decorrelates. Default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. Default 1s.
	ProbeTimeout time.Duration
	// ProbePath is the status endpoint probed on each member. Default
	// /v1/status (served by passerve and pasllm alike).
	ProbePath string
	// DownAfter is the consecutive-failure count that evicts a member
	// from the ring. Default 3.
	DownAfter int
	// Now injects the clock for state timestamps; tests pin it.
	// Default time.Now.
	Now func() time.Time
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbePath == "" {
		c.ProbePath = "/v1/status"
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// member is one replica's health record.
type member struct {
	url     string
	state   State
	fails   int    // consecutive failures since the last success
	lastErr string // most recent failure, for stats
	since   time.Time
	// pressure is the brownout rung the member's last successful probe
	// reported ("", "trim", or "raw"). A raw-pressure member stays on
	// the ring — it is healthy and still answers — but the client
	// deprioritizes it so hedges and failovers land on replicas that
	// can serve full-quality work.
	pressure string

	probes     int64
	probeFails int64
	downs      int64 // ->Down transitions
	drains     int64 // ->Draining transitions
}

// Membership tracks replica health and keeps the routing ring in sync:
// only Up and Suspect members are on the ring. Safe for concurrent
// use. The member set is dynamic: Add and Remove reshape it at
// runtime, starting and stopping probe loops to match.
type Membership struct {
	ring *Ring
	cfg  HealthConfig
	hc   *http.Client

	mu      sync.Mutex
	members map[string]*member
	order   []string // stable iteration order for snapshots
	// runCtx is the context Start was called with; nil before Start.
	// Probe loops started later (Add after Start) inherit it.
	runCtx context.Context
	// cancels stops one member's probe loop; Remove uses it so a
	// departed replica is not probed forever.
	cancels map[string]context.CancelFunc

	// Lifetime churn counters.
	adds    int64
	removes int64
	drains  int64
}

// NewMembership creates a table over replicas, all initially Up and on
// the ring (optimistic start: the first probe sweep corrects it within
// one interval, and routing to a briefly-dead member degrades per
// request rather than blocking startup). hc may be nil for a default
// client; its transport is shared by probes only — the data path has
// its own client.
func NewMembership(replicas []string, ring *Ring, hc *http.Client, cfg HealthConfig) *Membership {
	cfg = cfg.withDefaults()
	if hc == nil {
		hc = &http.Client{}
	}
	m := &Membership{
		ring:    ring,
		cfg:     cfg,
		hc:      hc,
		members: make(map[string]*member, len(replicas)),
		cancels: make(map[string]context.CancelFunc),
	}
	now := cfg.Now()
	for _, r := range replicas {
		if _, dup := m.members[r]; dup {
			continue
		}
		m.members[r] = &member{url: r, state: StateUp, since: now}
		m.order = append(m.order, r)
	}
	ring.SetMembers(m.order)
	return m
}

// Start launches one probe goroutine per member; they stop when ctx
// ends. Members added later get their loop started immediately under
// the same ctx. Call at most once.
func (m *Membership) Start(ctx context.Context) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runCtx = ctx
	for _, u := range m.order {
		m.startLoopLocked(u)
	}
}

// startLoopLocked spawns url's probe loop if Start has been called and
// one is not already running. Caller holds m.mu.
func (m *Membership) startLoopLocked(url string) {
	if m.runCtx == nil {
		return
	}
	if _, running := m.cancels[url]; running {
		return
	}
	ctx, cancel := context.WithCancel(m.runCtx)
	m.cancels[url] = cancel
	go m.probeLoop(ctx, url)
}

// stopLoopLocked cancels url's probe loop, if any. Caller holds m.mu.
func (m *Membership) stopLoopLocked(url string) {
	if cancel, ok := m.cancels[url]; ok {
		cancel()
		delete(m.cancels, url)
	}
}

// Add inserts a member (or revives a removed-from-ring one), puts it on
// the ring optimistically, and starts its probe loop when the checker
// is running. It reports whether anything changed: adding a member that
// is already present and routable is a no-op.
func (m *Membership) Add(url string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	if mem, ok := m.members[url]; ok {
		m.startLoopLocked(url) // heal a lost loop even when state is fine
		if routable(mem.state) {
			return false
		}
		// Known but off-ring (Down or Draining): the operator says it is
		// back. Reset to Up; the next probe corrects optimism.
		mem.state = StateUp
		mem.fails = 0
		mem.lastErr = ""
		mem.since = now
		m.ring.Add(url)
		m.adds++
		return true
	}
	m.members[url] = &member{url: url, state: StateUp, since: now}
	m.order = append(m.order, url)
	m.ring.Add(url)
	m.startLoopLocked(url)
	m.adds++
	return true
}

// Remove deletes a member: off the ring, record dropped, probe loop
// cancelled. It reports whether the member existed.
func (m *Membership) Remove(url string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[url]
	if !ok {
		return false
	}
	if routable(mem.state) {
		m.ring.Remove(url)
	}
	delete(m.members, url)
	for i, u := range m.order {
		if u == url {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.stopLoopLocked(url)
	m.removes++
	return true
}

// probeLoop probes one member forever. Healthy members are probed every
// ProbeInterval with jitter; a failing member's probes back off on the
// capped full-jitter envelope of resilience.Policy, so a dead replica
// costs a bounded probe rate instead of a tight reconnect loop.
func (m *Membership) probeLoop(ctx context.Context, url string) {
	healthy := resilience.Policy{
		BaseDelay: m.cfg.ProbeInterval / 2,
		MaxDelay:  m.cfg.ProbeInterval / 2,
	}
	failing := resilience.Policy{
		BaseDelay: m.cfg.ProbeInterval,
		MaxDelay:  8 * m.cfg.ProbeInterval,
	}
	for {
		fails := m.failCount(url)
		var d time.Duration
		if fails == 0 {
			// Jittered over [interval/2, interval): Delay(0) is full
			// jitter over [0, interval/2).
			d = m.cfg.ProbeInterval/2 + healthy.Delay(0)
		} else {
			d = failing.Delay(fails - 1)
			if min := m.cfg.ProbeInterval / 2; d < min {
				d = min
			}
		}
		if err := resilience.SleepContext(ctx, d); err != nil {
			return
		}
		m.ProbeOne(ctx, url)
	}
}

// ProbeOne probes one member once and applies the state transition.
// Exported so callers can force a synchronous sweep (startup, tests).
func (m *Membership) ProbeOne(ctx context.Context, url string) {
	// The probe runs without the table lock: a slow replica must not
	// stall snapshots or the data path's health observations.
	draining, pressure, err := m.probe(ctx, url)
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[url]
	if !ok {
		return
	}
	mem.probes++
	if err != nil {
		mem.probeFails++
	} else {
		// Only a successful probe speaks for the replica's brownout
		// rung; a failed one says nothing (the last reading stands
		// until eviction takes the member off the ring anyway).
		mem.pressure = pressure
	}
	m.applyLocked(mem, err, draining, true)
}

// ProbeAll sweeps every member once, synchronously.
func (m *Membership) ProbeAll(ctx context.Context) {
	m.mu.Lock()
	urls := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, u := range urls {
		m.ProbeOne(ctx, u)
	}
}

// probe issues one GET ProbePath and reports whether the member looks
// alive: any 2xx is healthy, everything else (or a transport error) is
// a failure. A healthy body whose JSON status reads "draining" flags
// the member as deliberately leaving, and its "pressure" field carries
// the brownout rung; a non-JSON 2xx body stays plain healthy for
// compatibility with simpler status endpoints.
func (m *Membership) probe(ctx context.Context, url string) (draining bool, pressure string, err error) {
	ctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+m.cfg.ProbePath, nil)
	if err != nil {
		return false, "", fmt.Errorf("ring: building probe: %w", err)
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return false, "", fmt.Errorf("ring: probe %s: %w", url, err)
	}
	defer resp.Body.Close()
	// Read (and thereby drain, so the transport can reuse the
	// connection) a bounded prefix of the body: it carries the
	// draining announcement.
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return false, "", fmt.Errorf("ring: probe %s: status %d", url, resp.StatusCode)
	}
	var wire struct {
		Status   string `json:"status"`
		Pressure string `json:"pressure"`
	}
	if jsonErr := json.Unmarshal(body, &wire); jsonErr == nil {
		return wire.Status == wireDrainingStatus, wire.Pressure, nil
	}
	return false, "", nil
}

// Observe feeds a data-path outcome into the health table: the augment
// client calls it with transport-level results so a dead replica is
// suspected at request speed instead of waiting for the next probe.
// err nil marks the member reachable; non-nil counts like a failed
// probe. HTTP-level overload (a live replica shedding) must NOT be
// reported here — shedding is what breakers are for.
func (m *Membership) Observe(url string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[url]
	if !ok {
		return
	}
	m.applyLocked(mem, err, false, false)
}

// applyLocked applies one observation. Only probes (fromProbe) can
// move a member into or out of Draining: a draining replica keeps
// answering in-flight and cached work on purpose, so data-path
// successes must not re-ring it and data-path failures must not smear
// its record. Caller holds m.mu.
func (m *Membership) applyLocked(mem *member, err error, draining, fromProbe bool) {
	now := m.cfg.Now()
	if mem.state == StateDraining && !fromProbe {
		return
	}
	if err == nil && draining {
		if mem.state != StateDraining {
			if routable(mem.state) {
				m.ring.Remove(mem.url)
			}
			mem.state = StateDraining
			mem.since = now
			mem.drains++
			m.drains++
		}
		mem.fails = 0
		mem.lastErr = ""
		return
	}
	if err == nil {
		wasRoutable := routable(mem.state)
		if mem.state != StateUp {
			mem.state = StateUp
			mem.since = now
		}
		mem.fails = 0
		mem.lastErr = ""
		if !wasRoutable {
			m.ring.Add(mem.url)
		}
		return
	}
	mem.fails++
	mem.lastErr = err.Error()
	switch mem.state {
	case StateUp:
		mem.state = StateSuspect
		mem.since = now
	case StateSuspect:
		if mem.fails >= m.cfg.DownAfter {
			mem.state = StateDown
			mem.since = now
			mem.downs++
			m.ring.Remove(mem.url)
		}
	case StateDraining:
		// A drainer that stops answering has finished exiting (or
		// died); it is already off the ring — just mark it Down so the
		// probe cadence backs off until a restart brings it back.
		if mem.fails >= m.cfg.DownAfter {
			mem.state = StateDown
			mem.since = now
			mem.downs++
		}
	case StateDown:
		// Already evicted; the streak just keeps the backoff growing.
	}
}

// Pressure returns the brownout rung a member last reported; ""
// for unknown members or members that have not announced pressure.
func (m *Membership) Pressure(url string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mem, ok := m.members[url]; ok {
		return mem.pressure
	}
	return ""
}

// failCount returns a member's consecutive-failure streak.
func (m *Membership) failCount(url string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mem, ok := m.members[url]; ok {
		return mem.fails
	}
	return 0
}

// MemberStatus is one member's snapshot, shaped for JSON stats bodies.
type MemberStatus struct {
	URL   string `json:"url"`
	State string `json:"state"`
	// Fails is the consecutive-failure streak; 0 for a healthy member.
	Fails   int    `json:"fails,omitempty"`
	LastErr string `json:"last_error,omitempty"`
	// Pressure is the brownout rung the member last reported ("",
	// "trim", or "raw"); the client deprioritizes raw-pressure members.
	Pressure string `json:"pressure,omitempty"`
	// Probes / ProbeFails are lifetime probe counters; Downs counts
	// evictions from the ring; Drains counts graceful departures.
	Probes     int64 `json:"probes"`
	ProbeFails int64 `json:"probe_fails"`
	Downs      int64 `json:"downs"`
	Drains     int64 `json:"drains,omitempty"`
}

// Snapshot returns every member's status in the stable replica order.
func (m *Membership) Snapshot() []MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberStatus, 0, len(m.order))
	for _, u := range m.order {
		mem := m.members[u]
		out = append(out, MemberStatus{
			URL:        mem.url,
			State:      mem.state.String(),
			Fails:      mem.fails,
			LastErr:    mem.lastErr,
			Pressure:   mem.pressure,
			Probes:     mem.probes,
			ProbeFails: mem.probeFails,
			Downs:      mem.downs,
			Drains:     mem.drains,
		})
	}
	return out
}

// Live returns how many members are currently routable (Up or
// Suspect): draining members are healthy but deliberately excluded.
func (m *Membership) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, mem := range m.members {
		if routable(mem.state) {
			n++
		}
	}
	return n
}

// Churn returns the lifetime membership-change counters: members
// added, members removed, and observed transitions into Draining.
func (m *Membership) Churn() (adds, removes, drains int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.adds, m.removes, m.drains
}
