package ring

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/resilience"
)

// State is a member's health position. Transitions:
//
//	Up ──probe/request failure──▶ Suspect ──DownAfter consecutive──▶ Down
//	any ──probe/request success──▶ Up
//
// Up and Suspect members stay on the routing ring (a suspect member is
// probably alive — one lost probe should not reshuffle 1/N of the key
// space); Down members are removed, which is what moves their keys to
// successors. A Down member keeps being probed at backed-off intervals
// and rejoins the ring on its first successful probe.
type State int

const (
	// StateUp: the member answers probes; route to it.
	StateUp State = iota
	// StateSuspect: recent failures below the Down threshold; still
	// routed, but one more failure streak away from eviction.
	StateSuspect
	// StateDown: evicted from the ring; probed on backoff until it
	// recovers.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// HealthConfig sizes the active health checker. Zero values select
// defaults.
type HealthConfig struct {
	// ProbeInterval is the target spacing between probes of a healthy
	// member; the actual sleep is jittered over [interval/2, interval)
	// so a fleet of probers decorrelates. Default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. Default 1s.
	ProbeTimeout time.Duration
	// ProbePath is the status endpoint probed on each member. Default
	// /v1/status (served by passerve and pasllm alike).
	ProbePath string
	// DownAfter is the consecutive-failure count that evicts a member
	// from the ring. Default 3.
	DownAfter int
	// Now injects the clock for state timestamps; tests pin it.
	// Default time.Now.
	Now func() time.Time
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbePath == "" {
		c.ProbePath = "/v1/status"
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// member is one replica's health record.
type member struct {
	url     string
	state   State
	fails   int    // consecutive failures since the last success
	lastErr string // most recent failure, for stats
	since   time.Time

	probes     int64
	probeFails int64
	downs      int64 // Suspect->Down transitions
}

// Membership tracks replica health and keeps the routing ring in sync:
// only members not Down are on the ring. Safe for concurrent use.
type Membership struct {
	ring *Ring
	cfg  HealthConfig
	hc   *http.Client

	mu      sync.Mutex
	members map[string]*member
	order   []string // stable iteration order for snapshots
}

// NewMembership creates a table over replicas, all initially Up and on
// the ring (optimistic start: the first probe sweep corrects it within
// one interval, and routing to a briefly-dead member degrades per
// request rather than blocking startup). hc may be nil for a default
// client; its transport is shared by probes only — the data path has
// its own client.
func NewMembership(replicas []string, ring *Ring, hc *http.Client, cfg HealthConfig) *Membership {
	cfg = cfg.withDefaults()
	if hc == nil {
		hc = &http.Client{}
	}
	m := &Membership{
		ring:    ring,
		cfg:     cfg,
		hc:      hc,
		members: make(map[string]*member, len(replicas)),
	}
	now := cfg.Now()
	for _, r := range replicas {
		if _, dup := m.members[r]; dup {
			continue
		}
		m.members[r] = &member{url: r, state: StateUp, since: now}
		m.order = append(m.order, r)
	}
	ring.SetMembers(m.order)
	return m
}

// Start launches one probe goroutine per member; they stop when ctx
// ends. Call at most once.
func (m *Membership) Start(ctx context.Context) {
	m.mu.Lock()
	urls := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, u := range urls {
		go m.probeLoop(ctx, u)
	}
}

// probeLoop probes one member forever. Healthy members are probed every
// ProbeInterval with jitter; a failing member's probes back off on the
// capped full-jitter envelope of resilience.Policy, so a dead replica
// costs a bounded probe rate instead of a tight reconnect loop.
func (m *Membership) probeLoop(ctx context.Context, url string) {
	healthy := resilience.Policy{
		BaseDelay: m.cfg.ProbeInterval / 2,
		MaxDelay:  m.cfg.ProbeInterval / 2,
	}
	failing := resilience.Policy{
		BaseDelay: m.cfg.ProbeInterval,
		MaxDelay:  8 * m.cfg.ProbeInterval,
	}
	for {
		fails := m.failCount(url)
		var d time.Duration
		if fails == 0 {
			// Jittered over [interval/2, interval): Delay(0) is full
			// jitter over [0, interval/2).
			d = m.cfg.ProbeInterval/2 + healthy.Delay(0)
		} else {
			d = failing.Delay(fails - 1)
			if min := m.cfg.ProbeInterval / 2; d < min {
				d = min
			}
		}
		if err := resilience.SleepContext(ctx, d); err != nil {
			return
		}
		m.ProbeOne(ctx, url)
	}
}

// ProbeOne probes one member once and applies the state transition.
// Exported so callers can force a synchronous sweep (startup, tests).
func (m *Membership) ProbeOne(ctx context.Context, url string) {
	// The probe runs without the table lock: a slow replica must not
	// stall snapshots or the data path's health observations.
	err := m.probe(ctx, url)
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[url]
	if !ok {
		return
	}
	mem.probes++
	if err != nil {
		mem.probeFails++
	}
	m.observeLocked(mem, err)
}

// ProbeAll sweeps every member once, synchronously.
func (m *Membership) ProbeAll(ctx context.Context) {
	m.mu.Lock()
	urls := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, u := range urls {
		m.ProbeOne(ctx, u)
	}
}

// probe issues one GET ProbePath and reports whether the member looks
// alive: any 2xx is healthy, everything else (or a transport error) is
// a failure.
func (m *Membership) probe(ctx context.Context, url string) error {
	ctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+m.cfg.ProbePath, nil)
	if err != nil {
		return fmt.Errorf("ring: building probe: %w", err)
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return fmt.Errorf("ring: probe %s: %w", url, err)
	}
	defer resp.Body.Close()
	// Drain so the transport can reuse the connection for the next
	// probe; health is the status code.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("ring: probe %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// Observe feeds a data-path outcome into the health table: the augment
// client calls it with transport-level results so a dead replica is
// suspected at request speed instead of waiting for the next probe.
// err nil marks the member reachable; non-nil counts like a failed
// probe. HTTP-level overload (a live replica shedding) must NOT be
// reported here — shedding is what breakers are for.
func (m *Membership) Observe(url string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[url]
	if !ok {
		return
	}
	m.observeLocked(mem, err)
}

// observeLocked applies one observation. Caller holds m.mu.
func (m *Membership) observeLocked(mem *member, err error) {
	now := m.cfg.Now()
	if err == nil {
		wasDown := mem.state == StateDown
		if mem.state != StateUp {
			mem.state = StateUp
			mem.since = now
		}
		mem.fails = 0
		mem.lastErr = ""
		if wasDown {
			m.ring.Add(mem.url)
		}
		return
	}
	mem.fails++
	mem.lastErr = err.Error()
	switch mem.state {
	case StateUp:
		mem.state = StateSuspect
		mem.since = now
	case StateSuspect:
		if mem.fails >= m.cfg.DownAfter {
			mem.state = StateDown
			mem.since = now
			mem.downs++
			m.ring.Remove(mem.url)
		}
	case StateDown:
		// Already evicted; the streak just keeps the backoff growing.
	}
}

// failCount returns a member's consecutive-failure streak.
func (m *Membership) failCount(url string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mem, ok := m.members[url]; ok {
		return mem.fails
	}
	return 0
}

// MemberStatus is one member's snapshot, shaped for JSON stats bodies.
type MemberStatus struct {
	URL   string `json:"url"`
	State string `json:"state"`
	// Fails is the consecutive-failure streak; 0 for a healthy member.
	Fails   int    `json:"fails,omitempty"`
	LastErr string `json:"last_error,omitempty"`
	// Probes / ProbeFails are lifetime probe counters; Downs counts
	// evictions from the ring.
	Probes     int64 `json:"probes"`
	ProbeFails int64 `json:"probe_fails"`
	Downs      int64 `json:"downs"`
}

// Snapshot returns every member's status in the stable replica order.
func (m *Membership) Snapshot() []MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberStatus, 0, len(m.order))
	for _, u := range m.order {
		mem := m.members[u]
		out = append(out, MemberStatus{
			URL:        mem.url,
			State:      mem.state.String(),
			Fails:      mem.fails,
			LastErr:    mem.lastErr,
			Probes:     mem.probes,
			ProbeFails: mem.probeFails,
			Downs:      mem.downs,
		})
	}
	return out
}

// Live returns how many members are currently routable (not Down).
func (m *Membership) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, mem := range m.members {
		if mem.state != StateDown {
			n++
		}
	}
	return n
}
