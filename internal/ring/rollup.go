package ring

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// rollup.go is the cluster-wide /metricsz: the proxy scrapes every
// member's exposition, parses it with internal/obs, tags each series
// with instance="<replica>", folds in its own registry under
// instance="proxy", and serves the merged exposition. One scrape of the
// proxy therefore sees the whole fleet without a separate collector.

// scrapeOKName is the synthetic per-instance gauge the rollup adds so
// dashboards can tell "member down" apart from "member idle".
const scrapeOKName = "pas_cluster_scrape_ok"

// localInstance labels the proxy's own registry in the rollup.
const localInstance = "proxy"

// MetricsRollup returns a handler serving the merged cluster
// exposition. local is the proxy's own registry (nil to roll up members
// only); timeout bounds the whole scrape fan-out, default 2s. Members
// are scraped concurrently on each request — Down members are still
// attempted (their scrape_ok series reads 0 when unreachable), so a
// recovered-but-not-yet-probed member shows up immediately.
func (c *Client) MetricsRollup(local *obs.Registry, timeout time.Duration) http.Handler {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		ctx, span := obs.StartSpan(ctx, "ring.metrics_rollup")
		defer span.End()

		members := c.mem.Snapshot()
		scrapes := make([]obs.ScrapedExposition, len(members))
		var wg sync.WaitGroup
		for i, m := range members {
			wg.Add(1)
			go func(i int, url string) {
				defer wg.Done()
				fams, err := c.scrapeMember(ctx, url)
				ok := 1.0
				if err != nil {
					ok, fams = 0, nil
				}
				fams = append(fams, obs.Family{
					Name: scrapeOKName,
					Help: "Whether the last rollup scrape of this instance succeeded.",
					Type: "gauge",
					Samples: []obs.Sample{
						{Name: scrapeOKName, Value: ok},
					},
				})
				scrapes[i] = obs.ScrapedExposition{Instance: url, Families: fams}
			}(i, m.URL)
		}
		wg.Wait()

		if local != nil {
			var b strings.Builder
			if err := local.WriteText(&b); err == nil {
				if fams, err := obs.ParseExposition(strings.NewReader(b.String())); err == nil {
					scrapes = append(scrapes, obs.ScrapedExposition{Instance: localInstance, Families: fams})
				}
			}
		}

		merged := obs.MergeExpositions(scrapes)
		span.SetAttr("ring.members", fmt.Sprint(len(members)))
		w.Header().Set("Content-Type", obs.TextContentType)
		if err := obs.WriteFamilies(w, merged); err != nil {
			obs.AddEvent(ctx, "ring.rollup_write_error", "cause", err.Error())
		}
	})
}

// scrapeMember fetches and parses one member's /metricsz.
func (c *Client) scrapeMember(ctx context.Context, url string) ([]obs.Family, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metricsz", nil)
	if err != nil {
		return nil, fmt.Errorf("ring: building scrape: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("ring: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain the error body so the connection is reusable.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("ring: scraping %s: status %d", url, resp.StatusCode)
	}
	fams, err := obs.ParseExposition(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("ring: parsing %s exposition: %w", url, err)
	}
	return fams, nil
}
