// Package ring is the cluster routing tier of the PAS serving stack: a
// consistent-hash ring over passerve replicas, a membership table with
// active health checking, and an HTTP augmentation client with
// per-replica circuit breakers and hedged cross-replica reads.
//
// The ring hashes the *same bytes* the replica's serving cache shards
// on — serving.Key(prompt, salt, model) — so every repeated key routes
// to one owner replica and the per-process TTL-LRU caches of N replicas
// compose into a distributed cache with near-perfect hit locality.
// Virtual nodes smooth the key distribution; removing a member moves
// only the keys that member owned (≈1/N of the space), which is the
// whole point of hashing consistently instead of key%N.
package ring

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/textkit"
)

// ringSeed decorrelates the ring's hash space from the other FNV users
// in the repo (cache sharding, embedding); an arbitrary odd constant.
const ringSeed = 0x9a7c5f1d3b2e4a61

// DefaultVNodes is the virtual-node count per member when the caller
// passes 0. 128 vnodes keep the per-member share of a 3-replica ring
// within a few percent of 1/3.
const DefaultVNodes = 128

// hashKey positions a routing key on the ring.
func hashKey(key string) uint64 { return textkit.Hash64Seed(key, ringSeed) }

// hashPoint positions virtual node i of a member on the ring.
func hashPoint(member string, i int) uint64 {
	return textkit.Hash64Seed(member+"\x00"+strconv.Itoa(i), ringSeed)
}

// point is one virtual node: a position on the 64-bit ring and the
// member it belongs to.
type point struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring. Membership changes rebuild the sorted
// point slice (members change rarely; lookups are the hot path, served
// lock-shared by binary search). Safe for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []point
	members map[string]struct{}
}

// New creates an empty ring with the given virtual-node count per
// member (0 selects DefaultVNodes).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// Add inserts a member; adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	r.rebuild()
}

// Remove deletes a member; removing an absent member is a no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	r.rebuild()
}

// SetMembers replaces the whole membership in one rebuild.
func (r *Ring) SetMembers(members []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.members = make(map[string]struct{}, len(members))
	for _, m := range members {
		r.members[m] = struct{}{}
	}
	r.rebuild()
}

// rebuild regenerates the sorted point slice. Caller holds r.mu.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for m := range r.members {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, point{hash: hashPoint(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnode labels is vanishingly rare
		// but must still order deterministically across processes.
		return r.points[i].member < r.points[j].member
	})
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's position. ok is false on an empty ring.
func (r *Ring) Owner(key string) (member string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.at(hashKey(key))].member, true
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner — the owner first, then the replicas a hedged or
// failed-over read falls back to. n <= 0 or n > members returns all.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i, start := 0, r.at(hashKey(key)); len(out) < n && i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	return out
}

// at returns the index of the first point at or clockwise after h,
// wrapping past the highest point to the lowest. Caller holds r.mu.
func (r *Ring) at(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// String describes the ring for logs.
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("ring(%d members, %d vnodes each)", len(r.members), r.vnodes)
}
