package ring

import (
	"fmt"
	"testing"

	"repro/internal/serving"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like real shard keys: the serving cache key of a
		// distinct prompt.
		out[i] = serving.Key(fmt.Sprintf("prompt %d: explain consistent hashing", i), "", "m")
	}
	return out
}

// TestOwnerDeterministic: two rings built from the same membership give
// every key the same owner — routing must agree across proxy restarts
// and across processes.
func TestOwnerDeterministic(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, r2 := New(0), New(0)
	r1.SetMembers(members)
	// Build r2 incrementally in a different order; the ring is a pure
	// function of the member set.
	r2.Add("http://c:1")
	r2.Add("http://a:1")
	r2.Add("http://b:1")
	for _, k := range keys(1000) {
		o1, ok1 := r1.Owner(k)
		o2, ok2 := r2.Owner(k)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("owner mismatch for %q: %q vs %q", k, o1, o2)
		}
	}
}

// TestDistributionBalance: with the default vnode count, no member of a
// 3-replica ring owns a grossly skewed share of the key space.
func TestDistributionBalance(t *testing.T) {
	r := New(0)
	r.SetMembers([]string{"http://a:1", "http://b:1", "http://c:1"})
	counts := map[string]int{}
	ks := keys(9000)
	for _, k := range ks {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("empty ring")
		}
		counts[o]++
	}
	for m, n := range counts {
		share := float64(n) / float64(len(ks))
		if share < 0.20 || share > 0.47 {
			t.Fatalf("member %s owns %.1f%% of keys; want a rough third", m, 100*share)
		}
	}
}

// TestRebalanceMovesOnlyOwnedKeys is the consistent-hashing contract
// the whole tier is built on: killing one of three replicas moves
// exactly the keys that replica owned — measured ≈1/3 of the space —
// and not a single key whose owner survived.
func TestRebalanceMovesOnlyOwnedKeys(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := New(0)
	r.SetMembers(members)
	ks := keys(9000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k], _ = r.Owner(k)
	}

	const killed = "http://b:1"
	r.Remove(killed)

	moved := 0
	for _, k := range ks {
		after, ok := r.Owner(k)
		if !ok {
			t.Fatal("ring emptied")
		}
		if after == killed {
			t.Fatalf("key still routed to removed member")
		}
		if before[k] == killed {
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key owned by surviving member %s moved to %s — consistent hashing violated", before[k], after)
		}
	}
	frac := float64(moved) / float64(len(ks))
	if frac < 0.20 || frac > 0.47 {
		t.Fatalf("killing 1 of 3 replicas moved %.1f%% of keys; want ≈33%%", 100*frac)
	}

	// Re-adding the member restores every original assignment.
	r.Add(killed)
	for _, k := range ks {
		if after, _ := r.Owner(k); after != before[k] {
			t.Fatalf("re-added member did not restore ownership of %q", k)
		}
	}
}

// TestSuccessorsOwnerFirstDistinct: the candidate list starts at the
// owner and never repeats a member.
func TestSuccessorsOwnerFirstDistinct(t *testing.T) {
	r := New(0)
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r.SetMembers(members)
	for _, k := range keys(200) {
		owner, _ := r.Owner(k)
		succ := r.Successors(k, 0)
		if len(succ) != len(members) {
			t.Fatalf("Successors returned %d members, want %d", len(succ), len(members))
		}
		if succ[0] != owner {
			t.Fatalf("Successors[0] = %s, owner = %s", succ[0], owner)
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("duplicate member %s in successors", m)
			}
			seen[m] = true
		}
	}
	if got := r.Successors(keys(1)[0], 2); len(got) != 2 {
		t.Fatalf("Successors(n=2) returned %d members", len(got))
	}
}

// TestEmptyRing: lookups on an empty ring fail soft.
func TestEmptyRing(t *testing.T) {
	r := New(0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("Owner on empty ring reported ok")
	}
	if s := r.Successors("k", 3); len(s) != 0 {
		t.Fatalf("Successors on empty ring returned %v", s)
	}
}
