package ring

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMetricsRollup: the cluster /metricsz merges live members'
// expositions under instance labels, marks the dead member's scrape as
// failed, and folds in the proxy's own registry.
func TestMetricsRollup(t *testing.T) {
	mkMember := func(hits float64) *httptest.Server {
		reg := obs.NewRegistry()
		reg.Counter("pas_serving_cache_hits_total", "Cache hits.").Add(hits)
		mux := http.NewServeMux()
		mux.Handle("/metricsz", reg.Handler())
		mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte(`{"status":"ok"}`))
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	m1, m2 := mkMember(7), mkMember(3)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	c, err := NewClient(Config{Replicas: []string{m1.URL, m2.URL, dead.URL}})
	if err != nil {
		t.Fatal(err)
	}
	local := obs.NewRegistry()
	local.Counter("pas_ring_requests_total", "Routing requests.").Add(10)

	rec := httptest.NewRecorder()
	c.MetricsRollup(local, 0).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz/cluster", nil))
	body := rec.Body.String()

	for _, want := range []string{
		`pas_serving_cache_hits_total{instance="` + m1.URL + `"} 7`,
		`pas_serving_cache_hits_total{instance="` + m2.URL + `"} 3`,
		`pas_cluster_scrape_ok{instance="` + dead.URL + `"} 0`,
		`pas_cluster_scrape_ok{instance="` + m1.URL + `"} 1`,
		`pas_ring_requests_total{instance="proxy"} 10`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("rollup missing %q:\n%s", want, body)
		}
	}
	if got := rec.Header().Get("Content-Type"); got != obs.TextContentType {
		t.Fatalf("content type %q", got)
	}
	// The merged output must itself be a valid exposition.
	if _, err := obs.ParseExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("rollup output does not parse: %v", err)
	}
}

// TestMetricsRollupMidDrain: a draining member is off the routing ring
// but still very much observable — its /metricsz keeps being scraped
// (scrape_ok 1, series present) right up until the process dies, which
// is exactly the window an operator watches during a rolling restart.
func TestMetricsRollupMidDrain(t *testing.T) {
	reg := obs.NewRegistry()
	reg.CounterVec("pas_serving_shed_total", "Sheds.", "reason").With("draining").Add(5)
	mux := http.NewServeMux()
	mux.Handle("/metricsz", reg.Handler())
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"status":"draining"}`))
	})
	draining := httptest.NewServer(mux)
	t.Cleanup(draining.Close)

	healthyReg := obs.NewRegistry()
	healthyReg.Counter("pas_serving_cache_hits_total", "Cache hits.").Add(4)
	hmux := http.NewServeMux()
	hmux.Handle("/metricsz", healthyReg.Handler())
	hmux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	healthy := httptest.NewServer(hmux)
	t.Cleanup(healthy.Close)

	c, err := NewClient(Config{Replicas: []string{healthy.URL, draining.URL}})
	if err != nil {
		t.Fatal(err)
	}
	// Let the prober observe the drain: the member leaves the ring but
	// stays in the membership table that drives the rollup scrape.
	c.Membership().ProbeAll(context.Background())
	if c.Membership().Live() != 1 {
		t.Fatalf("Live() = %d after drain probe, want 1", c.Membership().Live())
	}

	rec := httptest.NewRecorder()
	c.MetricsRollup(obs.NewRegistry(), 0).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz/cluster", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`pas_cluster_scrape_ok{instance="` + draining.URL + `"} 1`,
		`pas_cluster_scrape_ok{instance="` + healthy.URL + `"} 1`,
		`reason="draining"`,
		`pas_serving_cache_hits_total{instance="` + healthy.URL + `"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("mid-drain rollup missing %q:\n%s", want, body)
		}
	}
	if _, err := obs.ParseExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("mid-drain rollup does not parse: %v", err)
	}
}
