package ring

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func adminRequest(t *testing.T, h http.Handler, method, target, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestAdminHandlerAuthAndMutations: the membership admin API refuses
// everything without a configured token, authenticates via header or
// bearer, and joins/retires replicas through the client.
func TestAdminHandlerAuthAndMutations(t *testing.T) {
	c, err := NewClient(Config{Replicas: []string{"http://a:1", "http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}

	// No token configured: the endpoint is disabled, not open.
	disabled := c.AdminHandler("")
	if w := adminRequest(t, disabled, http.MethodGet, "/v1/cluster/replicas", "", nil); w.Code != http.StatusForbidden {
		t.Fatalf("tokenless handler answered %d, want 403", w.Code)
	}

	h := c.AdminHandler("hunter2")
	for name, hdr := range map[string]map[string]string{
		"no credential": nil,
		"wrong token":   {"X-PAS-Admin-Token": "nope"},
		"wrong bearer":  {"Authorization": "Bearer nope"},
	} {
		if w := adminRequest(t, h, http.MethodPost, "/v1/cluster/replicas", `{"url":"http://evil:1"}`, hdr); w.Code != http.StatusForbidden {
			t.Fatalf("%s: answered %d, want 403", name, w.Code)
		}
	}
	if len(c.Membership().Snapshot()) != 2 {
		t.Fatal("unauthorized request mutated the fleet")
	}
	auth := map[string]string{"X-PAS-Admin-Token": "hunter2"}

	// GET lists the health table.
	w := adminRequest(t, h, http.MethodGet, "/v1/cluster/replicas", "", map[string]string{"Authorization": "Bearer hunter2"})
	if w.Code != http.StatusOK {
		t.Fatalf("GET answered %d: %s", w.Code, w.Body)
	}
	var members []MemberStatus
	if err := json.Unmarshal(w.Body.Bytes(), &members); err != nil || len(members) != 2 {
		t.Fatalf("GET body = %s (err %v), want 2 members", w.Body, err)
	}

	// POST joins a replica; the second join is an acknowledged no-op.
	w = adminRequest(t, h, http.MethodPost, "/v1/cluster/replicas", `{"url":"http://c:1/"}`, auth)
	if w.Code != http.StatusOK {
		t.Fatalf("POST answered %d: %s", w.Code, w.Body)
	}
	var resp adminMemberResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.URL != "http://c:1" || !resp.Changed || resp.Live != 3 {
		t.Fatalf("POST reply = %+v, want normalized url, changed, live 3", resp)
	}
	if c.Ring().Size() != 3 {
		t.Fatalf("ring size = %d after join, want 3", c.Ring().Size())
	}
	w = adminRequest(t, h, http.MethodPost, "/v1/cluster/replicas", `{"url":"http://c:1"}`, auth)
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if w.Code != http.StatusOK || resp.Changed {
		t.Fatalf("repeat POST = %d %+v, want 200 unchanged", w.Code, resp)
	}

	// Bad URLs are rejected at the door.
	if w := adminRequest(t, h, http.MethodPost, "/v1/cluster/replicas", `{"url":"ftp://nope"}`, auth); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid URL answered %d, want 400", w.Code)
	}
	if w := adminRequest(t, h, http.MethodPost, "/v1/cluster/replicas", ``, auth); w.Code != http.StatusBadRequest {
		t.Fatalf("missing URL answered %d, want 400", w.Code)
	}

	// DELETE retires it (query form); a repeat is 404.
	w = adminRequest(t, h, http.MethodDelete, "/v1/cluster/replicas?url=http://c:1", "", auth)
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if w.Code != http.StatusOK || !resp.Changed || resp.Live != 2 {
		t.Fatalf("DELETE = %d %+v, want 200 changed live 2", w.Code, resp)
	}
	if c.Ring().Size() != 2 {
		t.Fatalf("ring size = %d after retire, want 2", c.Ring().Size())
	}
	if w := adminRequest(t, h, http.MethodDelete, "/v1/cluster/replicas?url=http://c:1", "", auth); w.Code != http.StatusNotFound {
		t.Fatalf("repeat DELETE answered %d, want 404", w.Code)
	}

	if w := adminRequest(t, h, http.MethodPut, "/v1/cluster/replicas", "", auth); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT answered %d, want 405", w.Code)
	}
}

// TestAddRemoveReplicaBreakers: a retired replica's breaker is dropped
// so a later re-add starts closed, and Stats follows the live
// membership rather than the boot-time replica list.
func TestAddRemoveReplicaBreakers(t *testing.T) {
	c, err := NewClient(Config{Replicas: []string{"http://a:1"}, BreakerThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, changed, err := c.AddReplica("http://b:1"); err != nil || !changed {
		t.Fatalf("AddReplica = changed %v, err %v", changed, err)
	}
	// Trip b's breaker, retire it, rejoin it: the breaker must be new.
	b := c.breakerFor("http://b:1")
	if b == nil {
		t.Fatal("joined replica has no breaker")
	}
	done, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	done(false)
	if b.State().String() != "open" {
		t.Fatalf("breaker state %s after failure, want open", b.State())
	}
	if removed, err := c.RemoveReplica("http://b:1"); err != nil || !removed {
		t.Fatalf("RemoveReplica = %v, %v", removed, err)
	}
	if _, _, err := c.AddReplica("http://b:1"); err != nil {
		t.Fatal(err)
	}
	if got := c.breakerFor("http://b:1"); got == b || got.State().String() != "closed" {
		t.Fatalf("re-added replica kept its tripped breaker (state %s)", got.State())
	}

	s := c.Stats()
	if len(s.Replicas) != 2 {
		t.Fatalf("Stats lists %d replicas, want the 2 live members", len(s.Replicas))
	}
	for _, r := range s.Replicas {
		if r.URL != "http://a:1" && r.URL != "http://b:1" {
			t.Fatalf("Stats lists unexpected replica %q", r.URL)
		}
	}
}
