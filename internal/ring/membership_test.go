package ring

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// statusServer is a fake replica whose /v1/status can be flipped dead.
func statusServer(t *testing.T, dead *atomic.Bool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/status" {
			http.NotFound(w, r)
			return
		}
		if dead.Load() {
			http.Error(w, "unhealthy", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestHealthTransitions drives the three-state machine: a healthy
// member stays Up; failures walk Up→Suspect→Down and evict it from the
// ring; a successful probe brings it straight back.
func TestHealthTransitions(t *testing.T) {
	var dead atomic.Bool
	srv := statusServer(t, &dead)

	ring := New(8)
	m := NewMembership([]string{srv.URL}, ring, srv.Client(), HealthConfig{
		ProbeTimeout: time.Second,
		DownAfter:    3,
	})
	ctx := context.Background()

	m.ProbeOne(ctx, srv.URL)
	if st := m.Snapshot()[0]; st.State != "up" {
		t.Fatalf("after healthy probe: state %s, want up", st.State)
	}
	if ring.Size() != 1 {
		t.Fatal("healthy member missing from ring")
	}

	dead.Store(true)
	m.ProbeOne(ctx, srv.URL)
	if st := m.Snapshot()[0]; st.State != "suspect" {
		t.Fatalf("after 1 failure: state %s, want suspect", st.State)
	}
	if ring.Size() != 1 {
		t.Fatal("suspect member must stay on the ring")
	}

	m.ProbeOne(ctx, srv.URL)
	m.ProbeOne(ctx, srv.URL)
	st := m.Snapshot()[0]
	if st.State != "down" || st.Downs != 1 {
		t.Fatalf("after 3 failures: state %s downs %d, want down/1", st.State, st.Downs)
	}
	if ring.Size() != 0 {
		t.Fatal("down member still on the ring")
	}
	if m.Live() != 0 {
		t.Fatalf("Live() = %d, want 0", m.Live())
	}

	dead.Store(false)
	m.ProbeOne(ctx, srv.URL)
	st = m.Snapshot()[0]
	if st.State != "up" || st.Fails != 0 {
		t.Fatalf("after recovery: state %s fails %d, want up/0", st.State, st.Fails)
	}
	if ring.Size() != 1 {
		t.Fatal("recovered member not re-added to ring")
	}
}

// TestObserveFeedsHealth: data-path transport errors walk the same
// state machine, so a dead replica is evicted at request speed without
// waiting for the prober.
func TestObserveFeedsHealth(t *testing.T) {
	ring := New(8)
	m := NewMembership([]string{"http://a:1", "http://b:1"}, ring, nil, HealthConfig{DownAfter: 2})

	m.Observe("http://a:1", context.DeadlineExceeded)
	m.Observe("http://a:1", context.DeadlineExceeded)
	if st := m.Snapshot()[0]; st.State != "down" {
		t.Fatalf("state %s, want down", st.State)
	}
	if got := ring.Members(); len(got) != 1 || got[0] != "http://b:1" {
		t.Fatalf("ring members = %v, want only b", got)
	}

	m.Observe("http://a:1", nil)
	if st := m.Snapshot()[0]; st.State != "up" {
		t.Fatalf("state %s, want up after success", st.State)
	}
	if ring.Size() != 2 {
		t.Fatal("recovered member not back on ring")
	}

	// Unknown members are ignored, not invented.
	m.Observe("http://nope:1", nil)
	if len(m.Snapshot()) != 2 {
		t.Fatal("Observe invented a member")
	}
}

// TestStartProbesUntilCancel: the background prober notices a death
// within a few intervals and stops cleanly with the context.
func TestStartProbesUntilCancel(t *testing.T) {
	var dead atomic.Bool
	srv := statusServer(t, &dead)

	ring := New(8)
	m := NewMembership([]string{srv.URL}, ring, srv.Client(), HealthConfig{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		DownAfter:     2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	dead.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for m.Live() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prober never evicted the dead member: %+v", m.Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}

	dead.Store(false)
	for m.Live() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("prober never recovered the member: %+v", m.Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
}
