package ring

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"strings"
)

// adminMemberRequest is the POST/DELETE body of the cluster membership
// admin API: one replica base URL.
type adminMemberRequest struct {
	URL string `json:"url"`
}

// adminMemberResponse answers a membership mutation.
type adminMemberResponse struct {
	URL     string `json:"url"`
	Changed bool   `json:"changed"`
	Live    int    `json:"live"`
}

// AdminHandler returns the cluster membership admin endpoint, mounted
// by pasproxy at /v1/cluster/replicas:
//
//	GET    — the membership snapshot (same shape as Stats().Members)
//	POST   {"url": "http://host:port"} — join a replica
//	DELETE {"url": ...} or ?url=...    — retire a replica
//
// Membership mutations reshape traffic for the whole fleet, so the
// endpoint is never open: an empty token disables it entirely (403 on
// every request) rather than defaulting to unauthenticated. Requests
// authenticate with X-PAS-Admin-Token or Authorization: Bearer.
func (c *Client) AdminHandler(token string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if token == "" {
			http.Error(w, "admin API disabled: start pasproxy with -admin-token", http.StatusForbidden)
			return
		}
		if !adminTokenMatches(r, token) {
			http.Error(w, "missing or invalid admin token", http.StatusForbidden)
			return
		}
		switch r.Method {
		case http.MethodGet:
			writeAdminJSON(w, http.StatusOK, c.mem.Snapshot())
		case http.MethodPost:
			url, ok := adminMemberURL(w, r)
			if !ok {
				return
			}
			norm, changed, err := c.AddReplica(url)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeAdminJSON(w, http.StatusOK, adminMemberResponse{URL: norm, Changed: changed, Live: c.mem.Live()})
		case http.MethodDelete:
			url, ok := adminMemberURL(w, r)
			if !ok {
				return
			}
			removed, err := c.RemoveReplica(url)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			status := http.StatusOK
			if !removed {
				status = http.StatusNotFound
			}
			writeAdminJSON(w, status, adminMemberResponse{URL: url, Changed: removed, Live: c.mem.Live()})
		default:
			w.Header().Set("Allow", "GET, POST, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// adminTokenMatches checks the request's credential in constant time.
func adminTokenMatches(r *http.Request, token string) bool {
	got := r.Header.Get("X-PAS-Admin-Token")
	if got == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			got = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1
}

// adminMemberURL extracts the target replica URL from the query or a
// small JSON body, writing the error response itself on failure.
func adminMemberURL(w http.ResponseWriter, r *http.Request) (string, bool) {
	if u := r.URL.Query().Get("url"); u != "" {
		return u, true
	}
	var req adminMemberRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return "", false
	}
	if req.URL == "" {
		http.Error(w, `missing replica url (body {"url": ...} or ?url=)`, http.StatusBadRequest)
		return "", false
	}
	return req.URL, true
}

func writeAdminJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ring: writing admin response: %v", err)
	}
}
