package evalbench

import (
	"fmt"
	"strings"

	"repro/internal/augment"
	"repro/internal/baselines"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/facet"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/simllm"
)

// DomainReport is the §3.3 extension experiment: a PAS trained only on
// one category's generated data, evaluated on that domain against the
// general PAS and the no-APE baseline.
type DomainReport struct {
	Category facet.Category
	// Pairs is the size of the specialised training set.
	Pairs int
	// None, General, Specialized are mean win probabilities (x100)
	// against the reference on the domain prompt set.
	None, General, Specialized float64
	MainModel                  string
}

// DomainStudy builds a specialised PAS for the category and compares it
// on a domain-only benchmark.
func (a *Artifacts) DomainStudy(cat facet.Category, nPrompts int) (*DomainReport, error) {
	if !cat.Valid() {
		return nil, fmt.Errorf("evalbench: invalid category %d", int(cat))
	}
	if nPrompts < 1 {
		return nil, fmt.Errorf("evalbench: nPrompts must be >= 1, got %d", nPrompts)
	}

	// Specialised dataset: same curated prompts, generation restricted to
	// the domain with a high cap (the §3.3 control knob).
	augCfg := a.Options.Build.Augment
	augCfg.Categories = []facet.Category{cat}
	augCfg.PerCategoryCap = 0
	augCfg.HeavyCategoryCap = 0
	gen, err := augment.Run(a.Build.Curated, dataset.Golden(), augCfg)
	if err != nil {
		return nil, fmt.Errorf("evalbench: domain generation: %w", err)
	}
	specialized, err := pipeline.Retrain(a.Options.Build.BaseModel, gen.Data, a.Options.Build.SFT)
	if err != nil {
		return nil, fmt.Errorf("evalbench: domain retrain: %w", err)
	}

	// Domain prompt set.
	genCfg := corpus.DefaultConfig()
	genCfg.Seed = a.Options.Suite.Seed + 11
	genCfg.Size = nPrompts * facet.CategoryCount * 6
	genCfg.JunkRate = 0
	genCfg.DuplicateRate = 0
	genCfg.CategoryBias = 0
	pool, err := corpus.Generate(genCfg)
	if err != nil {
		return nil, err
	}
	var prompts []string
	for _, p := range pool {
		if p.Truth.Category == cat && len(prompts) < nPrompts {
			prompts = append(prompts, p.Text)
		}
	}
	if len(prompts) < nPrompts {
		return nil, fmt.Errorf("evalbench: only %d/%d domain prompts", len(prompts), nPrompts)
	}

	main, err := model(simllm.GPT40613)
	if err != nil {
		return nil, err
	}
	ref, err := model(a.Options.Suite.AlpacaReference)
	if err != nil {
		return nil, err
	}

	score := func(ape baselines.APE) float64 {
		var probs []float64
		for i, p := range prompts {
			salt := fmt.Sprintf("domain/%d", i)
			resp := main.Respond(ape.Transform(p, salt), simllm.Options{Salt: salt})
			refResp := ref.Respond(p, simllm.Options{Salt: salt + "/ref"})
			probs = append(probs, a.Suite.Judge().Compare(p, resp, refResp, salt).ProbA)
		}
		return 100 * metrics.Mean(probs)
	}

	return &DomainReport{
		Category:    cat,
		Pairs:       gen.Data.Len(),
		None:        score(baselines.None{}),
		General:     score(a.PASAPE()),
		Specialized: score(pasAPE{model: specialized, label: "PAS-" + cat.String()}),
		MainModel:   simllm.GPT40613,
	}, nil
}

func (r *DomainReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Domain specialization (§3.3): category %s, %d specialised pairs, main model %s\n",
		r.Category, r.Pairs, r.MainModel)
	t := newTable("APE", "Win prob vs reference (%)")
	t.addRow("None", f2(r.None))
	t.addRow("PAS (general)", f2(r.General))
	t.addRow("PAS (specialised)", f2(r.Specialized))
	b.WriteString(t.String())
	return b.String()
}
