package evalbench

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/facet"
	"repro/internal/metrics"
	"repro/internal/simllm"
)

// CategoryRow is one category's AlpacaEval slice.
type CategoryRow struct {
	Category facet.Category
	N        int
	// WinProb is the mean calibrated win probability (x100) against the
	// reference on this category's prompts.
	WinProb float64
}

// BreakdownReport decomposes a method's AlpacaEval score by prompt
// category — the judge-side counterpart of Figure 1's per-category human
// evaluation.
type BreakdownReport struct {
	MainModel string
	Method    string
	Rows      []CategoryRow
}

// CategoryBreakdown evaluates one (main model, APE) pair per category on
// the AlpacaEval suite.
func (s *Suite) CategoryBreakdown(mainModel string, ape baselines.APE) (*BreakdownReport, error) {
	if ape == nil {
		return nil, fmt.Errorf("evalbench: nil APE")
	}
	main, err := model(mainModel)
	if err != nil {
		return nil, err
	}
	probs := make([]float64, len(s.alpaca))
	parallelFor(len(s.alpaca), func(i int) {
		p := s.alpaca[i]
		resp := main.Respond(ape.Transform(p, gameSalt(mainModel, i)), simllm.Options{Salt: gameSalt(mainModel, i)})
		probs[i] = s.judge.Compare(p, resp, s.alpacaRefs[i], gameSalt(mainModel, i)+"/c").ProbA
	})

	byCat := make(map[facet.Category][]float64)
	for i, c := range s.alpacaCats {
		byCat[c] = append(byCat[c], probs[i])
	}
	rep := &BreakdownReport{MainModel: mainModel, Method: ape.Name()}
	for _, c := range facet.Categories() {
		ps := byCat[c]
		if len(ps) == 0 {
			continue
		}
		rep.Rows = append(rep.Rows, CategoryRow{Category: c, N: len(ps), WinProb: 100 * metrics.Mean(ps)})
	}
	return rep, nil
}

// String renders the breakdown.
func (r *BreakdownReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AlpacaEval win probability by category: %s + %s\n", r.MainModel, r.Method)
	t := newTable("Category", "Prompts", "Win prob (%)")
	for _, row := range r.Rows {
		t.addRow(row.Category.String(), fmt.Sprint(row.N), f2(row.WinProb))
	}
	b.WriteString(t.String())
	return b.String()
}
