package evalbench

import (
	"fmt"
	"strings"
)

// table is a minimal text-table renderer for experiment reports: aligned
// columns, a header rule, plain ASCII so output diffs cleanly.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

func signed(v float64) string { return fmt.Sprintf("%+.2f", v) }
