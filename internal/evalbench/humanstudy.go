package evalbench

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/facet"
	"repro/internal/humaneval"
	"repro/internal/simllm"
)

// CategoryEval is one row of Table 4 plus its Figure 1 GSB tally.
type CategoryEval struct {
	Category string
	// Baseline and PAS are the Table 4 metric triples.
	Baseline, PAS humaneval.Summary
	// GSB compares PAS (A) against the baseline (B) per prompt.
	GSB humaneval.GSB
}

// HumanStudyReport reproduces Table 4 and Figure 1(b).
type HumanStudyReport struct {
	MainModel  string
	Categories []CategoryEval
}

// HumanStudy runs the §4.5 evaluation: per category, the rater pool
// scores the main model's bare and PAS-augmented responses.
func (a *Artifacts) HumanStudy() (*HumanStudyReport, error) {
	nPrompts := a.Options.HumanPrompts
	if nPrompts < 1 {
		return nil, fmt.Errorf("evalbench: HumanPrompts must be >= 1, got %d", nPrompts)
	}
	nRaters := a.Options.Raters
	if nRaters < 1 {
		return nil, fmt.Errorf("evalbench: Raters must be >= 1, got %d", nRaters)
	}
	mainName := a.Options.HumanMainModel
	if mainName == "" {
		mainName = simllm.Qwen272B
	}
	main, err := model(mainName)
	if err != nil {
		return nil, fmt.Errorf("evalbench: human study main model: %w", err)
	}
	pool, err := humaneval.NewPool(nRaters, uint64(a.Options.Suite.Seed)+0xa11)
	if err != nil {
		return nil, err
	}
	prompts, err := humanPrompts(nPrompts, a.Options.Suite.Seed+3)
	if err != nil {
		return nil, err
	}
	pas := a.PASAPE()

	rep := &HumanStudyReport{MainModel: mainName}
	for _, cat := range humaneval.Categories() {
		var baseRatings, pasRatings []int
		var gsb humaneval.GSB
		for i, p := range prompts[cat.Source] {
			salt := fmt.Sprintf("human/%s/%d", cat.Name, i)
			bare := main.Respond(p, simllm.Options{Salt: salt})
			augmented := main.Respond(pas.Transform(p, salt), simllm.Options{Salt: salt})
			for _, r := range pool {
				baseRatings = append(baseRatings, r.Rate(p, bare))
				pasRatings = append(pasRatings, r.Rate(p, augmented))
			}
			g, err := humaneval.CompareGSB(pool, p, augmented, bare)
			if err != nil {
				return nil, err
			}
			gsb.Add(g)
		}
		baseSum, err := humaneval.Summarize(baseRatings)
		if err != nil {
			return nil, fmt.Errorf("evalbench: %s baseline: %w", cat.Name, err)
		}
		pasSum, err := humaneval.Summarize(pasRatings)
		if err != nil {
			return nil, fmt.Errorf("evalbench: %s pas: %w", cat.Name, err)
		}
		rep.Categories = append(rep.Categories, CategoryEval{
			Category: cat.Name,
			Baseline: baseSum,
			PAS:      pasSum,
			GSB:      gsb,
		})
	}
	return rep, nil
}

// humanPrompts samples n prompts for every source category used by the
// human study.
func humanPrompts(n int, seed int64) (map[facet.Category][]string, error) {
	want := make(map[facet.Category]bool)
	for _, c := range humaneval.Categories() {
		want[c.Source] = true
	}
	cfg := corpus.DefaultConfig()
	cfg.Seed = seed
	cfg.Size = n * facet.CategoryCount * 8
	cfg.JunkRate = 0
	cfg.DuplicateRate = 0
	cfg.CategoryBias = 0
	pool, err := corpus.Generate(cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[facet.Category][]string)
	for _, p := range pool {
		if want[p.Truth.Category] && len(out[p.Truth.Category]) < n {
			out[p.Truth.Category] = append(out[p.Truth.Category], p.Text)
		}
	}
	for c := range want {
		if len(out[c]) < n {
			return nil, fmt.Errorf("evalbench: only %d/%d prompts for %v", len(out[c]), n, c)
		}
	}
	return out, nil
}

// MeanBaseline averages the baseline summaries across categories.
func (r *HumanStudyReport) MeanBaseline() humaneval.Summary {
	sums := make([]humaneval.Summary, len(r.Categories))
	for i, c := range r.Categories {
		sums[i] = c.Baseline
	}
	return humaneval.MeanSummaries(sums)
}

// MeanPAS averages the PAS summaries across categories.
func (r *HumanStudyReport) MeanPAS() humaneval.Summary {
	sums := make([]humaneval.Summary, len(r.Categories))
	for i, c := range r.Categories {
		sums[i] = c.PAS
	}
	return humaneval.MeanSummaries(sums)
}

// String renders Table 4 followed by the Figure 1(b) win rates.
func (r *HumanStudyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: human evaluation, PAS vs non-PAS (main model %s)\n", r.MainModel)
	t := newTable("Benchmark", "Full Mark", "Avg Score", "Availability",
		"Full Mark (PAS)", "Avg Score (PAS)", "Availability (PAS)")
	for _, c := range r.Categories {
		t.addRow(c.Category,
			pct(c.Baseline.FullMark), f2(c.Baseline.Average), pct(c.Baseline.Availability),
			fmt.Sprintf("%s (%s)", pct(c.PAS.FullMark), signed(100*(c.PAS.FullMark-c.Baseline.FullMark))),
			fmt.Sprintf("%s (%s)", f2(c.PAS.Average), signed(c.PAS.Average-c.Baseline.Average)),
			fmt.Sprintf("%s (%s)", pct(c.PAS.Availability), signed(100*(c.PAS.Availability-c.Baseline.Availability))))
	}
	mb, mp := r.MeanBaseline(), r.MeanPAS()
	t.addRow("Average",
		pct(mb.FullMark), f2(mb.Average), pct(mb.Availability),
		fmt.Sprintf("%s (%s)", pct(mp.FullMark), signed(100*(mp.FullMark-mb.FullMark))),
		fmt.Sprintf("%s (%s)", f2(mp.Average), signed(mp.Average-mb.Average)),
		fmt.Sprintf("%s (%s)", pct(mp.Availability), signed(100*(mp.Availability-mb.Availability))))
	b.WriteString(t.String())

	b.WriteString("\nFigure 1(b): GSB win rate of PAS vs baseline per category\n")
	g := newTable("Category", "Good", "Same", "Bad", "Win rate")
	for _, c := range r.Categories {
		g.addRow(c.Category, fmt.Sprint(c.GSB.Good), fmt.Sprint(c.GSB.Same), fmt.Sprint(c.GSB.Bad), pct(c.GSB.WinRate()))
	}
	b.WriteString(g.String())
	return b.String()
}
