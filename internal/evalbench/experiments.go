package evalbench

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/pipeline"
	"repro/internal/sft"
	"repro/internal/simllm"
)

// Options configures an experiment run: the benchmark suites, the PAS
// build, and the baseline bases.
type Options struct {
	// Suite sizes the benchmarks.
	Suite SuiteConfig
	// Build configures the primary PAS construction (Table 1 uses a
	// Qwen2-7B base).
	Build pipeline.Config
	// AltBase is the alternative PAS base of Table 2 (LLaMA-2-7B, the
	// same base BPO uses).
	AltBase string
	// BPOBase is the BPO rewriter's base model.
	BPOBase string
	// HumanPrompts is the number of prompts per human-eval category
	// (Table 4 / Figure 1).
	HumanPrompts int
	// Raters is the simulated rater-pool size.
	Raters int
	// HumanMainModel is the downstream model the human study evaluates.
	HumanMainModel string
}

// DefaultOptions returns paper-scale settings.
func DefaultOptions() Options {
	return Options{
		Suite:          DefaultSuiteConfig(),
		Build:          pipeline.DefaultConfig(),
		AltBase:        simllm.LLaMA27B,
		BPOBase:        simllm.LLaMA27B,
		HumanPrompts:   30,
		Raters:         7,
		HumanMainModel: simllm.Qwen272B,
	}
}

// QuickOptions returns a reduced-scale configuration for tests and smoke
// runs: same pipeline, smaller suites and pools.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Suite.ArenaSize = 60
	o.Suite.AlpacaSize = 90
	o.Build.CorpusSize = 3000
	o.Build.ClassifierExamples = 2000
	o.Build.Augment.PerCategoryCap = 60
	o.Build.Augment.HeavyCategoryCap = 120
	o.HumanPrompts = 8
	o.Raters = 5
	return o
}

// Artifacts holds the expensive shared state of the experiment drivers:
// trained systems and the benchmark suites. Prepare builds it once; every
// table/figure driver reuses it.
type Artifacts struct {
	Options Options
	Suite   *Suite
	// Build is the primary PAS construction (with selection).
	Build *pipeline.Result
	// PAS is the primary PAS model (Build.Model).
	PAS *sft.Model
	// PASAlt is PAS fine-tuned on the Table 2 alternative base.
	PASAlt *sft.Model
	// NoSelection is the Table 5 ablation model: same curated prompts,
	// selection/regeneration disabled.
	NoSelection *sft.Model
	// NoSelectionStats reports the ablated generation pipeline.
	NoSelectionStats pipeline.Result
	// BPO is the baseline rewriter.
	BPO *baselines.BPO
}

// Prepare builds all systems and suites an experiment run needs.
func Prepare(opt Options) (*Artifacts, error) {
	suite, err := NewSuite(opt.Suite)
	if err != nil {
		return nil, err
	}
	build, err := pipeline.Build(opt.Build)
	if err != nil {
		return nil, err
	}
	alt, err := pipeline.Retrain(opt.AltBase, build.Dataset, opt.Build.SFT)
	if err != nil {
		return nil, fmt.Errorf("evalbench: alt base: %w", err)
	}
	ablated, err := pipeline.AblateSelection(build.Curated, opt.Build.Augment)
	if err != nil {
		return nil, fmt.Errorf("evalbench: ablation: %w", err)
	}
	noSel, err := pipeline.Retrain(opt.Build.BaseModel, ablated.Data, opt.Build.SFT)
	if err != nil {
		return nil, fmt.Errorf("evalbench: ablation retrain: %w", err)
	}
	bpo, err := baselines.NewBPO(opt.BPOBase)
	if err != nil {
		return nil, err
	}
	return &Artifacts{
		Options:     opt,
		Suite:       suite,
		Build:       build,
		PAS:         build.Model,
		PASAlt:      alt,
		NoSelection: noSel,
		NoSelectionStats: pipeline.Result{
			Dataset:      ablated.Data,
			AugmentStats: ablated.Stats,
		},
		BPO: bpo,
	}, nil
}

// pasAPE adapts an sft model to the APE interface (the public pas.System
// does the same for library users; the harness stays inside internal).
type pasAPE struct {
	model *sft.Model
	label string
}

func (p pasAPE) Name() string { return p.label }

func (p pasAPE) Transform(prompt, salt string) string {
	c := p.model.Complement(prompt, salt)
	if c == "" {
		return prompt
	}
	return prompt + "\n" + c
}

// PASAPE exposes the primary PAS model as an APE named "PAS".
func (a *Artifacts) PASAPE() baselines.APE { return pasAPE{model: a.PAS, label: "PAS"} }

// PASAltAPE exposes the Table 2 model as an APE.
func (a *Artifacts) PASAltAPE() baselines.APE { return pasAPE{model: a.PASAlt, label: "PAS"} }

// NoSelectionAPE exposes the Table 5 ablation model as an APE.
func (a *Artifacts) NoSelectionAPE() baselines.APE {
	return pasAPE{model: a.NoSelection, label: "wo selection"}
}

// MethodGrid evaluates one APE across all six main models, returning one
// row per model in Table 1 order.
func (a *Artifacts) MethodGrid(ape baselines.APE) ([]Row, error) {
	rows := make([]Row, 0, len(simllm.MainModels()))
	for _, m := range simllm.MainModels() {
		row, err := a.Suite.EvaluateRow(m, ape)
		if err != nil {
			return nil, fmt.Errorf("evalbench: %s with %s: %w", m, ape.Name(), err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MeanRow averages a method grid into the paper's "Average" row.
func MeanRow(rows []Row) Row {
	if len(rows) == 0 {
		return Row{}
	}
	out := Row{MainModel: "Average", Method: rows[0].Method}
	for _, r := range rows {
		out.ArenaHard += r.ArenaHard
		out.Alpaca += r.Alpaca
		out.AlpacaLC += r.AlpacaLC
	}
	n := float64(len(rows))
	out.ArenaHard /= n
	out.Alpaca /= n
	out.AlpacaLC /= n
	return out
}
