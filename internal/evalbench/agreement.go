package evalbench

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/humaneval"
	"repro/internal/simllm"
)

// AgreementReport validates the LLM-as-judge against the simulated human
// raters — the sanity check real judge-based benchmarks publish (how
// often does GPT-4-as-judge agree with human majority preference?).
type AgreementReport struct {
	// N is the number of comparisons evaluated.
	N int
	// Agree counts prompts where the judge's pairwise verdict matched
	// the rater-majority GSB verdict (ties excluded from both sides).
	Agree int
	// Ties counts prompts the rater pool scored as a draw (excluded
	// from the rate).
	Ties int
}

// Rate returns the agreement fraction over non-tied comparisons.
func (r AgreementReport) Rate() float64 {
	n := r.N - r.Ties
	if n <= 0 {
		return 0
	}
	return float64(r.Agree) / float64(n)
}

// JudgeAgreement compares the judge and the rater pool on nPrompts
// (bare vs PAS-augmented responses of the human-study main model).
func (a *Artifacts) JudgeAgreement(nPrompts int) (AgreementReport, error) {
	if nPrompts < 1 {
		return AgreementReport{}, fmt.Errorf("evalbench: nPrompts must be >= 1, got %d", nPrompts)
	}
	mainName := a.Options.HumanMainModel
	if mainName == "" {
		mainName = simllm.Qwen272B
	}
	main, err := model(mainName)
	if err != nil {
		return AgreementReport{}, err
	}
	pool, err := humaneval.NewPool(a.Options.Raters, uint64(a.Options.Suite.Seed)+0xa91)
	if err != nil {
		return AgreementReport{}, err
	}

	gen := corpus.DefaultConfig()
	gen.Seed = a.Options.Suite.Seed + 17
	gen.Size = nPrompts * 4
	gen.JunkRate = 0
	gen.DuplicateRate = 0
	pool2, err := corpus.Generate(gen)
	if err != nil {
		return AgreementReport{}, err
	}
	pas := a.PASAPE()

	var rep AgreementReport
	for i, p := range pool2 {
		if rep.N == nPrompts {
			break
		}
		salt := fmt.Sprintf("agree/%d", i)
		bare := main.Respond(p.Text, simllm.Options{Salt: salt})
		augmented := main.Respond(pas.Transform(p.Text, salt), simllm.Options{Salt: salt})
		rep.N++

		g, err := humaneval.CompareGSB(pool, p.Text, augmented, bare)
		if err != nil {
			return AgreementReport{}, err
		}
		if g.Same == 1 {
			rep.Ties++
			continue
		}
		judgeSaysAug := a.Suite.Judge().Compare(p.Text, augmented, bare, salt).AWins
		humansSayAug := g.Good == 1
		if judgeSaysAug == humansSayAug {
			rep.Agree++
		}
	}
	return rep, nil
}

// String renders the agreement study.
func (r AgreementReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Judge-human agreement: %d comparisons, %d rater ties, agreement %.1f%%\n",
		r.N, r.Ties, 100*r.Rate())
	return b.String()
}
