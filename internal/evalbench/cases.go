package evalbench

import (
	"fmt"
	"strings"

	"repro/internal/facet"
	"repro/internal/simllm"
)

// Figure6Report reproduces Figure 6: the category distribution of the
// generated prompt-complementary dataset.
type Figure6Report struct {
	Total  int
	Counts []Figure6Item
}

// Figure6Item is one slice of the distribution.
type Figure6Item struct {
	Category facet.Category
	Count    int
	Fraction float64
}

// Figure6 tallies the primary build's dataset.
func (a *Artifacts) Figure6() *Figure6Report {
	counts := a.Build.Dataset.CategoryCounts()
	rep := &Figure6Report{Total: a.Build.Dataset.Len()}
	for _, c := range facet.Categories() {
		n := counts[c]
		frac := 0.0
		if rep.Total > 0 {
			frac = float64(n) / float64(rep.Total)
		}
		rep.Counts = append(rep.Counts, Figure6Item{Category: c, Count: n, Fraction: frac})
	}
	return rep
}

func (r *Figure6Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: prompt complementary dataset distribution (%d pairs)\n", r.Total)
	t := newTable("Category", "Pairs", "Share", "")
	for _, it := range r.Counts {
		bar := strings.Repeat("#", int(it.Fraction*100+0.5))
		t.addRow(it.Category.String(), fmt.Sprint(it.Count), pct(it.Fraction), bar)
	}
	b.WriteString(t.String())
	return b.String()
}

// Case is one case-study record: the paper's §4.6 qualitative examples.
type Case struct {
	Title      string
	Prompt     string
	Complement string
	Bare       string
	Augmented  string
	// Notes records the mechanised observation for the case (e.g. trap
	// avoided).
	Notes string
}

// CaseStudies reruns the paper's three case studies through the primary
// PAS model and a strong downstream model.
func (a *Artifacts) CaseStudies() ([]Case, error) {
	main, err := model(simllm.GPT4Turbo)
	if err != nil {
		return nil, err
	}
	pas := a.PASAPE()
	studies := []struct {
		title, prompt string
	}{
		{"Case 1: logic trap (Figure 1/2)",
			"If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?"},
		{"Case 2: instruct following (Figure 8)",
			"How to boil water quickly in ancient times? Briefly, what should I know?"},
		{"Case 3: comprehensive answer (Figure 9)",
			"Does blood pressure increase or decrease when the body loses blood? Explain how blood pressure regulation works."},
	}
	var out []Case
	for i, st := range studies {
		salt := fmt.Sprintf("case/%d", i)
		augInput := pas.Transform(st.prompt, salt)
		c := Case{
			Title:      st.title,
			Prompt:     st.prompt,
			Complement: strings.TrimPrefix(augInput, st.prompt+"\n"),
			Bare:       main.Respond(st.prompt, simllm.Options{Salt: salt}),
			Augmented:  main.Respond(augInput, simllm.Options{Salt: salt}),
		}
		if tr, ok := facet.FindTrap(st.prompt); ok {
			// The paper's Figure 1 shows one failing bare sample; a single
			// draw is anecdote, so sample the trap case across seeds and
			// report the rates, displaying a seed with the paper's
			// contrast when one exists.
			const trials = 30
			var bareRight, augRight int
			for k := 0; k < trials; k++ {
				s := fmt.Sprintf("case/%d/%d", i, k)
				in := pas.Transform(st.prompt, s)
				bare := main.Respond(st.prompt, simllm.Options{Salt: s})
				augmented := main.Respond(in, simllm.Options{Salt: s})
				if tr.ClaimsRight(bare) {
					bareRight++
				}
				if tr.ClaimsRight(augmented) {
					augRight++
				}
				if !tr.ClaimsRight(bare) && tr.ClaimsRight(augmented) && !strings.Contains(c.Notes, "shown") {
					c.Bare, c.Augmented = bare, augmented
					c.Complement = strings.TrimPrefix(in, st.prompt+"\n")
					c.Notes = "shown: "
				}
			}
			c.Notes += fmt.Sprintf("trap avoided %d/%d bare vs %d/%d with PAS", bareRight, trials, augRight, trials)
		} else {
			j := a.Suite.Judge()
			c.Notes = fmt.Sprintf("judge score bare %.2f vs augmented %.2f",
				j.Score(st.prompt, c.Bare), j.Score(st.prompt, c.Augmented))
		}
		out = append(out, c)
	}
	return out, nil
}

// RenderCases formats case studies for the CLI.
func RenderCases(cases []Case) string {
	var b strings.Builder
	for _, c := range cases {
		fmt.Fprintf(&b, "== %s ==\n", c.Title)
		fmt.Fprintf(&b, "User: %s\n", c.Prompt)
		fmt.Fprintf(&b, "PAS:  %s\n", c.Complement)
		fmt.Fprintf(&b, "-- response without PAS --\n%s\n", indent(c.Bare))
		fmt.Fprintf(&b, "-- response with PAS --\n%s\n", indent(c.Augmented))
		fmt.Fprintf(&b, "note: %s\n\n", c.Notes)
	}
	return b.String()
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
