// Package evalbench implements the paper's evaluation harness: the
// Arena-Hard and AlpacaEval 2.0 benchmark suites with their LLM-as-judge
// scoring (including the length-controlled variant), the human-evaluation
// study, and the experiment drivers that regenerate every table and
// figure of §4. See DESIGN.md §4 for the experiment index.
package evalbench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/baselines"
	"repro/internal/corpus"
	"repro/internal/facet"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/simllm"
)

// SuiteConfig sizes and seeds the benchmark suites.
type SuiteConfig struct {
	// ArenaSize is the number of Arena-Hard prompts (the real benchmark
	// has 500).
	ArenaSize int
	// AlpacaSize is the number of AlpacaEval prompts (the real benchmark
	// has 805).
	AlpacaSize int
	// Seed drives prompt sampling.
	Seed int64
	// Judge configures the LLM-as-judge.
	Judge judge.Config
	// ArenaReference is the reference model Arena-Hard win rates are
	// measured against (the real benchmark uses a GPT-4 snapshot).
	ArenaReference string
	// AlpacaReference is the AlpacaEval 2.0 reference model; the real
	// benchmark uses GPT-4-1106-preview, which therefore scores ~50
	// against itself — visible in the paper's Table 1.
	AlpacaReference string
}

// DefaultSuiteConfig returns paper-scale suites.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{
		ArenaSize:       500,
		AlpacaSize:      805,
		Seed:            7,
		Judge:           judge.DefaultConfig(),
		ArenaReference:  simllm.GPT40613,
		AlpacaReference: simllm.GPT41106,
	}
}

// Suite holds the benchmark prompts and the precomputed reference
// responses they are judged against.
type Suite struct {
	cfg        SuiteConfig
	arena      []string
	alpaca     []string
	alpacaCats []facet.Category
	judge      *judge.Judge
	arenaRefs  []string
	alpacaRefs []string
}

// NewSuite samples the two benchmark prompt sets and precomputes the
// reference responses.
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	if cfg.ArenaSize < 1 || cfg.AlpacaSize < 1 {
		return nil, fmt.Errorf("evalbench: suite sizes must be >= 1 (arena %d, alpaca %d)",
			cfg.ArenaSize, cfg.AlpacaSize)
	}
	j, err := judge.New(cfg.Judge)
	if err != nil {
		return nil, err
	}
	arenaRef, err := model(cfg.ArenaReference)
	if err != nil {
		return nil, fmt.Errorf("evalbench: arena reference: %w", err)
	}
	alpacaRef, err := model(cfg.AlpacaReference)
	if err != nil {
		return nil, fmt.Errorf("evalbench: alpaca reference: %w", err)
	}

	arena, alpaca, alpacaCats, err := samplePrompts(cfg)
	if err != nil {
		return nil, err
	}
	s := &Suite{cfg: cfg, arena: arena, alpaca: alpaca, alpacaCats: alpacaCats, judge: j}
	s.arenaRefs = make([]string, len(arena))
	for i, p := range arena {
		s.arenaRefs[i] = arenaRef.Respond(p, simllm.Options{Salt: refSalt(i)})
	}
	s.alpacaRefs = make([]string, len(alpaca))
	for i, p := range alpaca {
		s.alpacaRefs[i] = alpacaRef.Respond(p, simllm.Options{Salt: refSalt(i)})
	}
	return s, nil
}

func refSalt(i int) string { return fmt.Sprintf("ref/%d", i) }

// samplePrompts draws the Arena-Hard set (reasoning-heavy, trap-laden,
// analytic prompts demanding multi-facet answers) and the AlpacaEval set
// (a general mix), both junk- and duplicate-free.
func samplePrompts(cfg SuiteConfig) (arena, alpaca []string, alpacaCats []facet.Category, err error) {
	gen := corpus.DefaultConfig()
	gen.Seed = cfg.Seed
	gen.Size = (cfg.ArenaSize + cfg.AlpacaSize) * 6
	gen.JunkRate = 0
	gen.DuplicateRate = 0
	gen.CategoryBias = 0
	pool, err := corpus.Generate(gen)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("evalbench: sampling prompts: %w", err)
	}
	hard := map[facet.Category]bool{
		facet.Reason: true, facet.Math: true, facet.Coding: true,
		facet.Analytical: true, facet.Knowledge: true,
	}
	for _, p := range pool {
		switch {
		case len(arena) < cfg.ArenaSize && hard[p.Truth.Category]:
			arena = append(arena, p.Text)
		case len(alpaca) < cfg.AlpacaSize:
			alpaca = append(alpaca, p.Text)
			alpacaCats = append(alpacaCats, p.Truth.Category)
		}
		if len(arena) == cfg.ArenaSize && len(alpaca) == cfg.AlpacaSize {
			break
		}
	}
	if len(arena) < cfg.ArenaSize || len(alpaca) < cfg.AlpacaSize {
		return nil, nil, nil, fmt.Errorf("evalbench: pool too small: got %d/%d arena, %d/%d alpaca",
			len(arena), cfg.ArenaSize, len(alpaca), cfg.AlpacaSize)
	}
	return arena, alpaca, alpacaCats, nil
}

// Row is one line of Tables 1, 2 or 5: a (main model, APE method) pair
// with its three benchmark scores.
type Row struct {
	MainModel string
	Method    string
	ArenaHard float64 // win rate % vs the arena reference
	Alpaca    float64 // AlpacaEval 2.0 weighted win rate %
	AlpacaLC  float64 // length-controlled win rate %
}

// Average returns the row's mean score, the paper's "Average" column.
func (r Row) Average() float64 { return (r.ArenaHard + r.Alpaca + r.AlpacaLC) / 3 }

// EvaluateRow benchmarks one (main model, APE) pair on both suites.
// Per-prompt work is independent, so it fans out across GOMAXPROCS
// workers; every per-prompt result is written to its own slot, keeping
// the aggregate byte-identical to a serial run.
func (s *Suite) EvaluateRow(mainModel string, ape baselines.APE) (Row, error) {
	if ape == nil {
		return Row{}, fmt.Errorf("evalbench: nil APE")
	}
	main, err := model(mainModel)
	if err != nil {
		return Row{}, err
	}
	row := Row{MainModel: mainModel, Method: ape.Name()}

	// Arena-Hard: discrete pairwise wins against the reference, judged
	// in both positions to cancel position bias.
	arenaWins := make([]float64, len(s.arena))
	parallelFor(len(s.arena), func(i int) {
		p := s.arena[i]
		resp := main.Respond(ape.Transform(p, gameSalt(mainModel, i)), simllm.Options{Salt: gameSalt(mainModel, i)})
		v1 := s.judge.Compare(p, resp, s.arenaRefs[i], gameSalt(mainModel, i)+"/a")
		v2 := s.judge.Compare(p, s.arenaRefs[i], resp, gameSalt(mainModel, i)+"/b")
		if v1.AWins {
			arenaWins[i]++
		}
		if !v2.AWins {
			arenaWins[i]++
		}
	})
	var wins float64
	for _, w := range arenaWins {
		wins += w
	}
	row.ArenaHard = 100 * wins / float64(2*len(s.arena))

	// AlpacaEval 2.0: mean calibrated win probability against the
	// reference (the "weighted win rate"), plus the length-controlled
	// variant, which regresses the per-example win probability on the
	// log-length gap and reports the win rate at gap zero.
	probs := make([]float64, len(s.alpaca))
	gaps := make([]float64, len(s.alpaca))
	parallelFor(len(s.alpaca), func(i int) {
		p := s.alpaca[i]
		resp := main.Respond(ape.Transform(p, gameSalt(mainModel, i)), simllm.Options{Salt: gameSalt(mainModel, i)})
		v := s.judge.Compare(p, resp, s.alpacaRefs[i], gameSalt(mainModel, i)+"/c")
		probs[i] = v.ProbA
		gaps[i] = judge.LengthGap(resp, s.alpacaRefs[i])
	})
	row.Alpaca = 100 * metrics.Mean(probs)
	row.AlpacaLC = 100 * lengthControlled(probs, gaps)
	return row, nil
}

// parallelFor runs fn(0..n-1) across GOMAXPROCS workers. Callers must
// write only to their own index's slot.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The claim lives in the loop header so the bound is visible:
			// next only grows, so every worker exits once it passes n.
			for i := int(atomic.AddInt64(&next, 1)); i < n; i = int(atomic.AddInt64(&next, 1)) {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// lengthControlled fits win ~ alpha + beta*gap and evaluates at gap = 0,
// clamped to [0,1]. When the gap is constant (degenerate), it falls back
// to the raw mean.
func lengthControlled(probs, gaps []float64) float64 {
	fit, err := metrics.LinearRegression(gaps, probs)
	if err != nil {
		return clamp01(metrics.Mean(probs))
	}
	return clamp01(fit.Predict(0))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func gameSalt(model string, i int) string { return fmt.Sprintf("%s/%d", model, i) }

// ArenaPrompts returns the Arena-Hard prompt set (read-only).
func (s *Suite) ArenaPrompts() []string { return s.arena }

// AlpacaPrompts returns the AlpacaEval prompt set (read-only).
func (s *Suite) AlpacaPrompts() []string { return s.alpaca }

// Judge exposes the suite's judge for auxiliary analyses.
func (s *Suite) Judge() *judge.Judge { return s.judge }

func model(name string) (*simllm.Model, error) {
	p, err := simllm.LookupProfile(name)
	if err != nil {
		return nil, err
	}
	return simllm.New(p)
}
