package evalbench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baselines"
	"repro/internal/metrics"
	"repro/internal/simllm"
)

// LeaderboardEntry is one contender in the joint Bradley–Terry ranking.
type LeaderboardEntry struct {
	// Name labels the (main model, APE) pair.
	Name string
	// Strength is the centred Bradley–Terry log-strength.
	Strength float64
	// WinRateVsRef is the implied win probability against the first
	// (reference) entry.
	WinRateVsRef float64
}

// LeaderboardReport ranks contenders jointly from all pairwise games —
// the Chatbot-Arena-style aggregation behind Arena-Hard, computed with
// the MM Bradley–Terry fitter in internal/metrics.
type LeaderboardReport struct {
	Entries []LeaderboardEntry
	Games   int
}

// Contender pairs a main model with an APE for the leaderboard.
type Contender struct {
	MainModel string
	APE       baselines.APE
}

// Leaderboard plays every contender against every other on the
// Arena-Hard prompt set (both positions) and fits Bradley–Terry
// strengths. The first contender serves as the reference for the implied
// win rates.
func (a *Artifacts) Leaderboard(contenders []Contender) (*LeaderboardReport, error) {
	if len(contenders) < 2 {
		return nil, fmt.Errorf("evalbench: leaderboard needs >= 2 contenders, got %d", len(contenders))
	}
	prompts := a.Suite.ArenaPrompts()

	// Generate each contender's responses once.
	responses := make([][]string, len(contenders))
	names := make([]string, len(contenders))
	for ci, c := range contenders {
		if c.APE == nil {
			return nil, fmt.Errorf("evalbench: contender %d has nil APE", ci)
		}
		m, err := model(c.MainModel)
		if err != nil {
			return nil, err
		}
		names[ci] = fmt.Sprintf("%s + %s", c.MainModel, c.APE.Name())
		responses[ci] = make([]string, len(prompts))
		for pi, p := range prompts {
			salt := fmt.Sprintf("lb/%d/%d", ci, pi)
			responses[ci][pi] = m.Respond(c.APE.Transform(p, salt), simllm.Options{Salt: salt})
		}
	}

	// Round-robin games, judged in both positions.
	wins := make([][]float64, len(contenders))
	for i := range wins {
		wins[i] = make([]float64, len(contenders))
	}
	games := 0
	for i := 0; i < len(contenders); i++ {
		for j := i + 1; j < len(contenders); j++ {
			for pi, p := range prompts {
				salt := fmt.Sprintf("lbg/%d/%d/%d", i, j, pi)
				if a.Suite.Judge().Compare(p, responses[i][pi], responses[j][pi], salt).AWins {
					wins[i][j]++
				} else {
					wins[j][i]++
				}
				if a.Suite.Judge().Compare(p, responses[j][pi], responses[i][pi], salt+"/swap").AWins {
					wins[j][i]++
				} else {
					wins[i][j]++
				}
				games += 2
			}
		}
	}

	strengths, err := metrics.BradleyTerry(wins, 200)
	if err != nil {
		return nil, fmt.Errorf("evalbench: fitting leaderboard: %w", err)
	}
	rep := &LeaderboardReport{Games: games}
	for i, n := range names {
		rep.Entries = append(rep.Entries, LeaderboardEntry{
			Name:         n,
			Strength:     strengths[i],
			WinRateVsRef: metrics.WinRate(strengths, i, 0),
		})
	}
	sort.Slice(rep.Entries, func(x, y int) bool { return rep.Entries[x].Strength > rep.Entries[y].Strength })
	return rep, nil
}

func (r *LeaderboardReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bradley-Terry leaderboard (%d judged games)\n", r.Games)
	t := newTable("Rank", "System", "BT log-strength", "Win rate vs reference")
	for i, e := range r.Entries {
		t.addRow(fmt.Sprint(i+1), e.Name, fmt.Sprintf("%+.3f", e.Strength), pct(e.WinRateVsRef))
	}
	b.WriteString(t.String())
	return b.String()
}

// RowCI augments a Table 1 row with a bootstrap confidence interval on
// the AlpacaEval win probability.
type RowCI struct {
	Row Row
	// Alpaca95 is the 95% bootstrap CI of the AlpacaEval score.
	Alpaca95 metrics.Interval
}

// EvaluateRowCI evaluates a row and bootstraps the AlpacaEval metric.
func (s *Suite) EvaluateRowCI(mainModel string, ape baselines.APE, resamples int) (RowCI, error) {
	if resamples < 1 {
		return RowCI{}, fmt.Errorf("evalbench: resamples must be >= 1, got %d", resamples)
	}
	main, err := model(mainModel)
	if err != nil {
		return RowCI{}, err
	}
	if ape == nil {
		return RowCI{}, fmt.Errorf("evalbench: nil APE")
	}
	row, err := s.EvaluateRow(mainModel, ape)
	if err != nil {
		return RowCI{}, err
	}
	var probs []float64
	for i, p := range s.alpaca {
		salt := gameSalt(mainModel, i)
		resp := main.Respond(ape.Transform(p, salt), simllm.Options{Salt: salt})
		probs = append(probs, s.judge.Compare(p, resp, s.alpacaRefs[i], salt+"/c").ProbA)
	}
	ci, err := metrics.BootstrapMeanCI(probs, resamples, 0.95, 42)
	if err != nil {
		return RowCI{}, err
	}
	ci.Point *= 100
	ci.Lo *= 100
	ci.Hi *= 100
	return RowCI{Row: row, Alpaca95: ci}, nil
}
