package evalbench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/facet"
)

// FullResults bundles every experiment's report for machine-readable
// export — the artefact a reproduction CI would diff against a checked-in
// expected file.
type FullResults struct {
	Table1      *Table1Report      `json:"table1"`
	Table2      *Table2Report      `json:"table2"`
	Table3      *Table3Report      `json:"table3"`
	HumanStudy  *HumanStudyReport  `json:"table4_fig1"`
	Table5      *Table5Report      `json:"table5"`
	Figure6     *Figure6Report     `json:"fig6"`
	Figure7     *Figure7Report     `json:"fig7"`
	Domain      *DomainReport      `json:"domain"`
	Leaderboard *LeaderboardReport `json:"leaderboard"`
	Agreement   AgreementReport    `json:"judge_agreement"`
	Breakdown   *BreakdownReport   `json:"pas_category_breakdown"`
	Cases       []Case             `json:"cases"`
}

// RunAll executes every experiment once and bundles the reports. The
// domain study uses nDomainPrompts prompts; the leaderboard ranks the
// default contender set.
func (a *Artifacts) RunAll(nDomainPrompts int) (*FullResults, error) {
	out := &FullResults{}
	var err error
	if out.Table1, err = a.Table1(); err != nil {
		return nil, fmt.Errorf("evalbench: table1: %w", err)
	}
	if out.Table2, err = a.Table2(); err != nil {
		return nil, fmt.Errorf("evalbench: table2: %w", err)
	}
	out.Table3 = a.Table3()
	if out.HumanStudy, err = a.HumanStudy(); err != nil {
		return nil, fmt.Errorf("evalbench: human study: %w", err)
	}
	if out.Table5, err = a.Table5(); err != nil {
		return nil, fmt.Errorf("evalbench: table5: %w", err)
	}
	out.Figure6 = a.Figure6()
	if out.Figure7, err = a.Figure7(); err != nil {
		return nil, fmt.Errorf("evalbench: fig7: %w", err)
	}
	if out.Domain, err = a.DomainStudy(facet.Coding, nDomainPrompts); err != nil {
		return nil, fmt.Errorf("evalbench: domain: %w", err)
	}
	if out.Leaderboard, err = a.Leaderboard(defaultContenders(a)); err != nil {
		return nil, fmt.Errorf("evalbench: leaderboard: %w", err)
	}
	if out.Agreement, err = a.JudgeAgreement(nDomainPrompts); err != nil {
		return nil, fmt.Errorf("evalbench: agreement: %w", err)
	}
	if out.Breakdown, err = a.Suite.CategoryBreakdown("gpt-4-0613", a.PASAPE()); err != nil {
		return nil, fmt.Errorf("evalbench: breakdown: %w", err)
	}
	if out.Cases, err = a.CaseStudies(); err != nil {
		return nil, fmt.Errorf("evalbench: cases: %w", err)
	}
	return out, nil
}

func defaultContenders(a *Artifacts) []Contender {
	return []Contender{
		{MainModel: "gpt-4-turbo-2024-04-09", APE: a.PASAPE()},
		{MainModel: "gpt-4-turbo-2024-04-09", APE: noneAPE{}},
		{MainModel: "gpt-4-0613", APE: a.PASAPE()},
		{MainModel: "gpt-4-0613", APE: noneAPE{}},
		{MainModel: "gpt-3.5-turbo-1106", APE: noneAPE{}},
	}
}

// noneAPE is the identity transform (kept local to avoid exporting the
// baselines type through JSON).
type noneAPE struct{}

func (noneAPE) Name() string                      { return "None" }
func (noneAPE) Transform(prompt, _ string) string { return prompt }

// WriteJSON writes the bundle as stable, indented JSON.
func (r *FullResults) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("evalbench: encoding results: %w", err)
	}
	return nil
}

// String renders every report in experiment order.
func (r *FullResults) String() string {
	var b strings.Builder
	write := func(s fmt.Stringer) {
		b.WriteString(s.String())
		b.WriteString("\n")
	}
	if r.Table1 != nil {
		write(r.Table1)
	}
	if r.Table2 != nil {
		write(r.Table2)
	}
	if r.Table3 != nil {
		write(r.Table3)
	}
	if r.HumanStudy != nil {
		write(r.HumanStudy)
	}
	if r.Table5 != nil {
		write(r.Table5)
	}
	if r.Figure6 != nil {
		write(r.Figure6)
	}
	if r.Figure7 != nil {
		write(r.Figure7)
	}
	if r.Domain != nil {
		write(r.Domain)
	}
	if r.Leaderboard != nil {
		write(r.Leaderboard)
	}
	if r.Agreement.N > 0 {
		write(r.Agreement)
	}
	if r.Breakdown != nil {
		write(r.Breakdown)
	}
	if len(r.Cases) > 0 {
		b.WriteString(RenderCases(r.Cases))
	}
	return b.String()
}
