package evalbench

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
)

// Table1Report reproduces Table 1: PAS vs BPO vs no APE across the six
// main models.
type Table1Report struct {
	Baseline, BPO, PAS []Row
}

// Table1 evaluates the three method grids.
func (a *Artifacts) Table1() (*Table1Report, error) {
	base, err := a.MethodGrid(baselines.None{})
	if err != nil {
		return nil, err
	}
	bpo, err := a.MethodGrid(a.BPO)
	if err != nil {
		return nil, err
	}
	pas, err := a.MethodGrid(a.PASAPE())
	if err != nil {
		return nil, err
	}
	return &Table1Report{Baseline: base, BPO: bpo, PAS: pas}, nil
}

// PASGainOverBaseline returns mean(PAS avg) - mean(baseline avg): the
// paper's headline "+8.00".
func (r *Table1Report) PASGainOverBaseline() float64 {
	return MeanRow(r.PAS).Average() - MeanRow(r.Baseline).Average()
}

// PASGainOverBPO returns mean(PAS avg) - mean(BPO avg): the paper's
// "+6.09".
func (r *Table1Report) PASGainOverBPO() float64 {
	return MeanRow(r.PAS).Average() - MeanRow(r.BPO).Average()
}

// BPOUnstable reports the main models on which BPO scores below the
// no-APE baseline — the instability the paper calls out.
func (r *Table1Report) BPOUnstable() []string {
	var out []string
	for i := range r.BPO {
		if r.BPO[i].Average() < r.Baseline[i].Average() {
			out = append(out, r.BPO[i].MainModel)
		}
	}
	return out
}

func (r *Table1Report) String() string {
	var b strings.Builder
	b.WriteString("Table 1: PAS vs BPO vs no APE (win rates, %)\n")
	t := newTable("Main Model", "APE-model", "Arena-hard", "AlpacaEval 2.0", "AlpacaEval 2.0 (LC)", "Average", "Delta")
	writeGrid := func(rows []Row, deltas []Row) {
		for i, row := range rows {
			delta := ""
			if deltas != nil {
				delta = signed(row.Average() - deltas[i].Average())
			}
			t.addRow(row.MainModel, row.Method, f2(row.ArenaHard), f2(row.Alpaca), f2(row.AlpacaLC), f2(row.Average()), delta)
		}
		mean := MeanRow(rows)
		meanDelta := ""
		if deltas != nil {
			meanDelta = signed(mean.Average() - MeanRow(deltas).Average())
		}
		t.addRow("Average", mean.Method, f2(mean.ArenaHard), f2(mean.Alpaca), f2(mean.AlpacaLC), f2(mean.Average()), meanDelta)
	}
	writeGrid(r.Baseline, nil)
	writeGrid(r.BPO, nil)
	writeGrid(r.PAS, r.Baseline)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "PAS - baseline: %s   PAS - BPO: %s   BPO below baseline on: %v\n",
		signed(r.PASGainOverBaseline()), signed(r.PASGainOverBPO()), r.BPOUnstable())
	return b.String()
}

// Table2Report reproduces Table 2: PAS and BPO on the same base model
// (LLaMA-2-7B-instruct).
type Table2Report struct {
	BPO, PAS []Row
}

// Table2 evaluates BPO and the alternative-base PAS grid.
func (a *Artifacts) Table2() (*Table2Report, error) {
	bpo, err := a.MethodGrid(a.BPO)
	if err != nil {
		return nil, err
	}
	pas, err := a.MethodGrid(a.PASAltAPE())
	if err != nil {
		return nil, err
	}
	return &Table2Report{BPO: bpo, PAS: pas}, nil
}

// PASGainOverBPO returns the mean average-score gain of same-base PAS
// over BPO (the paper's "+3.41").
func (r *Table2Report) PASGainOverBPO() float64 {
	return MeanRow(r.PAS).Average() - MeanRow(r.BPO).Average()
}

func (r *Table2Report) String() string {
	var b strings.Builder
	b.WriteString("Table 2: PAS vs BPO with the same base model (LLaMA-2-7B)\n")
	t := newTable("Main Model", "Method", "Arena-hard", "AlpacaEval 2.0", "AlpacaEval 2.0 (LC)", "Average", "Delta")
	for _, row := range r.BPO {
		t.addRow(row.MainModel, row.Method, f2(row.ArenaHard), f2(row.Alpaca), f2(row.AlpacaLC), f2(row.Average()), "")
	}
	mb := MeanRow(r.BPO)
	t.addRow("Average", mb.Method, f2(mb.ArenaHard), f2(mb.Alpaca), f2(mb.AlpacaLC), f2(mb.Average()), "")
	for i, row := range r.PAS {
		t.addRow(row.MainModel, row.Method, f2(row.ArenaHard), f2(row.Alpaca), f2(row.AlpacaLC), f2(row.Average()),
			signed(row.Average()-r.BPO[i].Average()))
	}
	mp := MeanRow(r.PAS)
	t.addRow("Average", mp.Method, f2(mp.ArenaHard), f2(mp.Alpaca), f2(mp.AlpacaLC), f2(mp.Average()),
		signed(r.PASGainOverBPO()))
	b.WriteString(t.String())
	return b.String()
}

// Table3Report reproduces Table 3: the human-labour/flexibility matrix.
type Table3Report struct {
	Methods []baselines.Info
}

// Table3 returns the static capability audit.
func (a *Artifacts) Table3() *Table3Report {
	return &Table3Report{Methods: baselines.Methods()}
}

func (r *Table3Report) String() string {
	var b strings.Builder
	b.WriteString("Table 3: need for human labour and flexibility\n")
	t := newTable("Method", "No Human Labor", "LLM-Agnostic", "Task-Agnostic")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, m := range r.Methods {
		t.addRow(m.Name, mark(m.NoHumanLabor), mark(m.LLMAgnostic), mark(m.TaskAgnostic))
	}
	b.WriteString(t.String())
	return b.String()
}

// Table5Report reproduces Table 5: the selection/regeneration ablation.
type Table5Report struct {
	PAS, NoSelection []Row
}

// Table5 evaluates the primary PAS grid against the no-selection grid.
func (a *Artifacts) Table5() (*Table5Report, error) {
	pas, err := a.MethodGrid(a.PASAPE())
	if err != nil {
		return nil, err
	}
	noSel, err := a.MethodGrid(a.NoSelectionAPE())
	if err != nil {
		return nil, err
	}
	return &Table5Report{PAS: pas, NoSelection: noSel}, nil
}

// AblationDrop returns mean(no-selection avg) - mean(PAS avg); negative
// values mean removing selection hurts (the paper reports -3.80).
func (r *Table5Report) AblationDrop() float64 {
	return MeanRow(r.NoSelection).Average() - MeanRow(r.PAS).Average()
}

func (r *Table5Report) String() string {
	var b strings.Builder
	b.WriteString("Table 5: ablation of the data selection + regeneration module\n")
	t := newTable("Main Model", "PAS-model", "Arena-hard", "AlpacaEval 2.0", "AlpacaEval 2.0 (LC)", "Average", "Delta")
	for _, row := range r.PAS {
		t.addRow(row.MainModel, "PAS", f2(row.ArenaHard), f2(row.Alpaca), f2(row.AlpacaLC), f2(row.Average()), "")
	}
	mp := MeanRow(r.PAS)
	t.addRow("Average", "PAS", f2(mp.ArenaHard), f2(mp.Alpaca), f2(mp.AlpacaLC), f2(mp.Average()), "")
	for i, row := range r.NoSelection {
		t.addRow(row.MainModel, "wo selection", f2(row.ArenaHard), f2(row.Alpaca), f2(row.AlpacaLC), f2(row.Average()),
			signed(row.Average()-r.PAS[i].Average()))
	}
	mn := MeanRow(r.NoSelection)
	t.addRow("Average", "wo selection", f2(mn.ArenaHard), f2(mn.Alpaca), f2(mn.AlpacaLC), f2(mn.Average()),
		signed(r.AblationDrop()))
	b.WriteString(t.String())
	return b.String()
}

// Figure7Report reproduces Figure 7: data-efficiency comparison.
type Figure7Report struct {
	Items []Figure7Item
}

// Figure7Item is one bar of the figure.
type Figure7Item struct {
	Method      string
	Consumption int
	// Efficiency is Consumption_method / Consumption_PAS; 1 for PAS.
	Efficiency float64
}

// Figure7 computes the efficiency ratios for the task-agnostic methods.
func (a *Artifacts) Figure7() (*Figure7Report, error) {
	rep := &Figure7Report{}
	for _, m := range baselines.Methods() {
		if m.DataConsumption == 0 {
			continue // OPRO/ProTeGi: not task-agnostic, excluded per §4.4.1
		}
		eff, err := baselines.Efficiency(m)
		if err != nil {
			return nil, err
		}
		rep.Items = append(rep.Items, Figure7Item{Method: m.Name, Consumption: m.DataConsumption, Efficiency: eff})
	}
	return rep, nil
}

func (r *Figure7Report) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: data consumption and efficiency relative to PAS\n")
	t := newTable("Method", "Training examples", "Consumption/PAS")
	for _, it := range r.Items {
		t.addRow(it.Method, fmt.Sprintf("%d", it.Consumption), fmt.Sprintf("%.2fx", it.Efficiency))
	}
	b.WriteString(t.String())
	return b.String()
}
