package evalbench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/facet"
	"repro/internal/simllm"
)

// Prepare is the expensive step (~10s at quick scale); share one
// Artifacts across the package's tests.
var (
	prepOnce sync.Once
	prepArt  *Artifacts
	prepErr  error
)

func artifacts(t testing.TB) *Artifacts {
	t.Helper()
	prepOnce.Do(func() {
		prepArt, prepErr = Prepare(QuickOptions())
	})
	if prepErr != nil {
		t.Fatal(prepErr)
	}
	return prepArt
}

func TestNewSuiteValidation(t *testing.T) {
	cfg := DefaultSuiteConfig()
	cfg.ArenaSize = 0
	if _, err := NewSuite(cfg); err == nil {
		t.Error("zero arena should fail")
	}
	cfg = DefaultSuiteConfig()
	cfg.ArenaReference = "nope"
	cfg.ArenaSize, cfg.AlpacaSize = 5, 5
	if _, err := NewSuite(cfg); err == nil {
		t.Error("unknown reference should fail")
	}
}

func TestSuitePromptSets(t *testing.T) {
	art := artifacts(t)
	s := art.Suite
	if len(s.ArenaPrompts()) != QuickOptions().Suite.ArenaSize {
		t.Fatalf("arena size %d", len(s.ArenaPrompts()))
	}
	if len(s.AlpacaPrompts()) != QuickOptions().Suite.AlpacaSize {
		t.Fatalf("alpaca size %d", len(s.AlpacaPrompts()))
	}
	for _, p := range s.ArenaPrompts() {
		if strings.TrimSpace(p) == "" {
			t.Fatal("empty arena prompt")
		}
	}
}

func TestEvaluateRowErrors(t *testing.T) {
	art := artifacts(t)
	if _, err := art.Suite.EvaluateRow("unknown-model", baselines.None{}); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := art.Suite.EvaluateRow(simllm.GPT40613, nil); err == nil {
		t.Error("nil APE should fail")
	}
}

func TestBaselineNearFiftyAgainstOwnReference(t *testing.T) {
	art := artifacts(t)
	// AlpacaEval's reference is GPT-4-1106-preview; that model without
	// APE must land near 50, as in the paper's Table 1.
	row, err := art.Suite.EvaluateRow(simllm.GPT41106, baselines.None{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Alpaca < 42 || row.Alpaca > 58 {
		t.Fatalf("self-reference AlpacaEval = %.2f, want near 50", row.Alpaca)
	}
}

// TestTable1Shape asserts the paper's headline findings hold:
// PAS > baseline everywhere, PAS > BPO everywhere, BPO unstable.
func TestTable1Shape(t *testing.T) {
	art := artifacts(t)
	rep, err := art.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Baseline) != 6 || len(rep.BPO) != 6 || len(rep.PAS) != 6 {
		t.Fatalf("grids should have 6 rows each")
	}
	for i := range rep.PAS {
		if rep.PAS[i].Average() <= rep.Baseline[i].Average() {
			t.Errorf("%s: PAS %.2f <= baseline %.2f",
				rep.PAS[i].MainModel, rep.PAS[i].Average(), rep.Baseline[i].Average())
		}
		if rep.PAS[i].Average() <= rep.BPO[i].Average() {
			t.Errorf("%s: PAS %.2f <= BPO %.2f",
				rep.PAS[i].MainModel, rep.PAS[i].Average(), rep.BPO[i].Average())
		}
	}
	if gain := rep.PASGainOverBaseline(); gain < 4 || gain > 16 {
		t.Errorf("PAS gain over baseline = %.2f, want the paper's order of magnitude (4-16)", gain)
	}
	if gain := rep.PASGainOverBPO(); gain < 3 {
		t.Errorf("PAS gain over BPO = %.2f, want >= 3", gain)
	}
	if len(rep.BPOUnstable()) == 0 {
		t.Error("BPO should fall below the baseline on at least one model")
	}
	out := rep.String()
	for _, want := range []string{"Table 1", "Arena-hard", "PAS", "BPO", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestTable2Shape asserts same-base PAS still beats BPO but trails the
// Qwen2-based build of Table 1.
func TestTable2Shape(t *testing.T) {
	art := artifacts(t)
	t2, err := art.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if t2.PASGainOverBPO() <= 0 {
		t.Errorf("same-base PAS should beat BPO: gain %.2f", t2.PASGainOverBPO())
	}
	t1, err := art.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if MeanRow(t2.PAS).Average() >= MeanRow(t1.PAS).Average() {
		t.Errorf("LLaMA-2-7B-based PAS (%.2f) should trail Qwen2-7B-based PAS (%.2f)",
			MeanRow(t2.PAS).Average(), MeanRow(t1.PAS).Average())
	}
	if !strings.Contains(t2.String(), "Table 2") {
		t.Error("report header missing")
	}
}

func TestTable3Shape(t *testing.T) {
	art := artifacts(t)
	rep := art.Table3()
	if len(rep.Methods) != 6 {
		t.Fatalf("6 methods expected, got %d", len(rep.Methods))
	}
	last := rep.Methods[len(rep.Methods)-1]
	if last.Name != "PAS" || !last.NoHumanLabor || !last.LLMAgnostic || !last.TaskAgnostic {
		t.Fatalf("PAS row wrong: %+v", last)
	}
	if !strings.Contains(rep.String(), "Task-Agnostic") {
		t.Error("render missing column")
	}
}

// TestTable5Shape asserts the ablation: dropping selection/regeneration
// costs points on every model.
func TestTable5Shape(t *testing.T) {
	art := artifacts(t)
	rep, err := art.Table5()
	if err != nil {
		t.Fatal(err)
	}
	drop := rep.AblationDrop()
	if drop >= -0.5 {
		t.Fatalf("ablation drop = %.2f, want a clear negative", drop)
	}
	if drop < -10 {
		t.Fatalf("ablation drop = %.2f, implausibly large", drop)
	}
	if !strings.Contains(rep.String(), "wo selection") {
		t.Error("render missing ablation rows")
	}
}

// TestHumanStudyShape asserts Table 4 / Figure 1: PAS improves the mean
// human-eval metrics and wins more GSB comparisons than it loses.
func TestHumanStudyShape(t *testing.T) {
	art := artifacts(t)
	rep, err := art.HumanStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Categories) != 8 {
		t.Fatalf("8 categories expected, got %d", len(rep.Categories))
	}
	mb, mp := rep.MeanBaseline(), rep.MeanPAS()
	if mp.Average <= mb.Average {
		t.Errorf("PAS average score %.2f <= baseline %.2f", mp.Average, mb.Average)
	}
	if mp.Availability < mb.Availability-0.02 {
		t.Errorf("PAS availability %.3f clearly below baseline %.3f", mp.Availability, mb.Availability)
	}
	var good, bad int
	for _, c := range rep.Categories {
		good += c.GSB.Good
		bad += c.GSB.Bad
	}
	if good <= bad {
		t.Errorf("GSB: PAS won %d vs lost %d", good, bad)
	}
	out := rep.String()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Figure 1(b)") {
		t.Error("render missing sections")
	}
}

func TestFigure6Shape(t *testing.T) {
	art := artifacts(t)
	rep := art.Figure6()
	if rep.Total != art.Build.Dataset.Len() {
		t.Fatalf("total %d != dataset %d", rep.Total, art.Build.Dataset.Len())
	}
	if len(rep.Counts) != 14 {
		t.Fatalf("14 categories expected, got %d", len(rep.Counts))
	}
	sum := 0
	for _, it := range rep.Counts {
		sum += it.Count
	}
	if sum != rep.Total {
		t.Fatalf("counts sum %d != total %d", sum, rep.Total)
	}
	if !strings.Contains(rep.String(), "Figure 6") {
		t.Error("render header missing")
	}
}

func TestFigure7Shape(t *testing.T) {
	art := artifacts(t)
	rep, err := art.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Items) != 4 {
		t.Fatalf("PAS, BPO, PPO, DPO expected; got %d items", len(rep.Items))
	}
	byName := map[string]Figure7Item{}
	for _, it := range rep.Items {
		byName[it.Method] = it
	}
	if byName["PAS"].Efficiency != 1 {
		t.Error("PAS efficiency should be 1x")
	}
	if byName["DPO"].Efficiency < byName["PPO"].Efficiency ||
		byName["PPO"].Efficiency < byName["BPO"].Efficiency {
		t.Error("efficiency ordering wrong")
	}
	if !strings.Contains(rep.String(), "Figure 7") {
		t.Error("render header missing")
	}
}

// TestCaseStudies asserts the paper's qualitative cases mechanically:
// case 1's logic trap is avoided with PAS.
func TestCaseStudies(t *testing.T) {
	art := artifacts(t)
	cases, err := art.CaseStudies()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("3 case studies expected, got %d", len(cases))
	}
	if !strings.Contains(cases[0].Notes, "trap avoided") {
		t.Errorf("case 1 trap not avoided with PAS: %s", cases[0].Notes)
	}
	for i, c := range cases {
		if c.Complement == "" || c.Bare == "" || c.Augmented == "" {
			t.Errorf("case %d incomplete: %+v", i, c)
		}
	}
	if !strings.Contains(RenderCases(cases), "Case 1") {
		t.Error("render missing case title")
	}
}

func TestHumanStudyValidation(t *testing.T) {
	art := artifacts(t)
	bad := *art
	bad.Options.HumanPrompts = 0
	if _, err := bad.HumanStudy(); err == nil {
		t.Error("zero prompts should fail")
	}
	bad = *art
	bad.Options.Raters = 0
	if _, err := bad.HumanStudy(); err == nil {
		t.Error("zero raters should fail")
	}
}

func TestMeanRowEmpty(t *testing.T) {
	if MeanRow(nil).Average() != 0 {
		t.Error("empty mean row should be zero")
	}
}

// TestDomainStudyShape verifies the §3.3 specialization claim: a PAS
// trained only on one category's data matches the general system on that
// domain (within noise) while using far fewer pairs, and both clearly
// beat the no-APE baseline.
func TestDomainStudyShape(t *testing.T) {
	art := artifacts(t)
	rep, err := art.DomainStudy(facet.Coding, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 || rep.Pairs >= art.Build.Dataset.Len() {
		t.Fatalf("specialised dataset size %d vs general %d", rep.Pairs, art.Build.Dataset.Len())
	}
	if rep.General <= rep.None || rep.Specialized <= rep.None {
		t.Fatalf("PAS variants must beat baseline: none=%.2f general=%.2f specialised=%.2f",
			rep.None, rep.General, rep.Specialized)
	}
	if rep.Specialized < rep.General-3 {
		t.Fatalf("specialised (%.2f) should be within noise of general (%.2f)", rep.Specialized, rep.General)
	}
	if !strings.Contains(rep.String(), "Domain specialization") {
		t.Error("render header missing")
	}
}

func TestDomainStudyValidation(t *testing.T) {
	art := artifacts(t)
	if _, err := art.DomainStudy(facet.Category(99), 10); err == nil {
		t.Error("invalid category should fail")
	}
	if _, err := art.DomainStudy(facet.Coding, 0); err == nil {
		t.Error("zero prompts should fail")
	}
}

// TestLeaderboardOrdersByAugmentation checks the joint Bradley-Terry
// ranking: the same main model climbs the leaderboard when PAS is
// plugged in, and a stronger main model outranks a weaker one.
func TestLeaderboardOrdersByAugmentation(t *testing.T) {
	art := artifacts(t)
	rep, err := art.Leaderboard([]Contender{
		{MainModel: simllm.GPT40613, APE: baselines.None{}},
		{MainModel: simllm.GPT40613, APE: art.PASAPE()},
		{MainModel: simllm.GPT35Turbo, APE: baselines.None{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 3 {
		t.Fatalf("entries = %d", len(rep.Entries))
	}
	rank := map[string]int{}
	for i, e := range rep.Entries {
		rank[e.Name] = i
	}
	pas := rank[simllm.GPT40613+" + PAS"]
	bare := rank[simllm.GPT40613+" + None"]
	weak := rank[simllm.GPT35Turbo+" + None"]
	if pas >= bare {
		t.Errorf("PAS-augmented system ranked %d, bare %d", pas, bare)
	}
	if bare >= weak {
		t.Errorf("GPT-4-0613 ranked %d, GPT-3.5 %d", bare, weak)
	}
	if rep.Games == 0 {
		t.Error("no games played")
	}
	if !strings.Contains(rep.String(), "leaderboard") {
		t.Error("render header missing")
	}
}

func TestLeaderboardValidation(t *testing.T) {
	art := artifacts(t)
	if _, err := art.Leaderboard(nil); err == nil {
		t.Error("too few contenders should fail")
	}
	if _, err := art.Leaderboard([]Contender{
		{MainModel: simllm.GPT40613, APE: baselines.None{}},
		{MainModel: simllm.GPT40613, APE: nil},
	}); err == nil {
		t.Error("nil APE should fail")
	}
	if _, err := art.Leaderboard([]Contender{
		{MainModel: "bogus", APE: baselines.None{}},
		{MainModel: simllm.GPT40613, APE: baselines.None{}},
	}); err == nil {
		t.Error("unknown model should fail")
	}
}

// TestEvaluateRowCI asserts the PAS-vs-baseline AlpacaEval gap clears the
// bootstrap interval noise: the intervals must not overlap.
func TestEvaluateRowCI(t *testing.T) {
	art := artifacts(t)
	base, err := art.Suite.EvaluateRowCI(simllm.GPT40613, baselines.None{}, 300)
	if err != nil {
		t.Fatal(err)
	}
	pas, err := art.Suite.EvaluateRowCI(simllm.GPT40613, art.PASAPE(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if base.Alpaca95.Lo > base.Alpaca95.Point || base.Alpaca95.Point > base.Alpaca95.Hi {
		t.Fatalf("malformed interval: %+v", base.Alpaca95)
	}
	if pas.Alpaca95.Lo <= base.Alpaca95.Hi {
		t.Errorf("PAS CI [%.2f, %.2f] overlaps baseline CI [%.2f, %.2f] — gain not significant",
			pas.Alpaca95.Lo, pas.Alpaca95.Hi, base.Alpaca95.Lo, base.Alpaca95.Hi)
	}
	if _, err := art.Suite.EvaluateRowCI(simllm.GPT40613, baselines.None{}, 0); err == nil {
		t.Error("zero resamples should fail")
	}
	if _, err := art.Suite.EvaluateRowCI(simllm.GPT40613, nil, 10); err == nil {
		t.Error("nil APE should fail")
	}
}

// TestRunAllDeterministicExport is the reproduction guarantee at report
// level: two complete experiment runs over the same artifacts export
// byte-identical JSON.
func TestRunAllDeterministicExport(t *testing.T) {
	art := artifacts(t)
	a, err := art.RunAll(20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := art.RunAll(20)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatal("identical runs exported different JSON")
	}
	// The bundle must contain every experiment.
	for _, key := range []string{`"table1"`, `"table2"`, `"table3"`, `"table4_fig1"`,
		`"table5"`, `"fig6"`, `"fig7"`, `"domain"`, `"leaderboard"`, `"cases"`} {
		if !strings.Contains(bufA.String(), key) {
			t.Errorf("export missing %s", key)
		}
	}
	// And the combined text rendering holds every section.
	text := a.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Figure 6", "Figure 7", "Domain specialization", "leaderboard", "Case 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

// TestJudgeAgreement validates the judge substrate: it should agree with
// the rater majority clearly above chance — the same sanity check
// judge-based benchmarks report against human preferences.
func TestJudgeAgreement(t *testing.T) {
	art := artifacts(t)
	rep, err := art.JudgeAgreement(60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 60 {
		t.Fatalf("N = %d", rep.N)
	}
	if rate := rep.Rate(); rate < 0.6 {
		t.Fatalf("judge-human agreement = %.2f, want >= 0.6 (chance is 0.5)", rate)
	}
	if !strings.Contains(rep.String(), "agreement") {
		t.Error("render missing")
	}
	if _, err := art.JudgeAgreement(0); err == nil {
		t.Error("zero prompts should fail")
	}
}

// TestCategoryBreakdown checks the per-category decomposition: PAS wins
// in the majority of categories, and the per-category means aggregate to
// roughly the row-level AlpacaEval score.
func TestCategoryBreakdown(t *testing.T) {
	art := artifacts(t)
	base, err := art.Suite.CategoryBreakdown(simllm.GPT40613, baselines.None{})
	if err != nil {
		t.Fatal(err)
	}
	pas, err := art.Suite.CategoryBreakdown(simllm.GPT40613, art.PASAPE())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) == 0 || len(base.Rows) != len(pas.Rows) {
		t.Fatalf("row counts: base %d, pas %d", len(base.Rows), len(pas.Rows))
	}
	wins := 0
	var totalN int
	var weighted float64
	for i := range pas.Rows {
		if pas.Rows[i].Category != base.Rows[i].Category {
			t.Fatal("category alignment broken")
		}
		if pas.Rows[i].WinProb > base.Rows[i].WinProb {
			wins++
		}
		totalN += pas.Rows[i].N
		weighted += pas.Rows[i].WinProb * float64(pas.Rows[i].N)
	}
	if wins*2 < len(pas.Rows) {
		t.Errorf("PAS beat baseline in only %d/%d categories", wins, len(pas.Rows))
	}
	// Aggregation consistency with the row-level metric.
	row, err := art.Suite.EvaluateRow(simllm.GPT40613, art.PASAPE())
	if err != nil {
		t.Fatal(err)
	}
	if agg := weighted / float64(totalN); agg < row.Alpaca-0.01 || agg > row.Alpaca+0.01 {
		t.Errorf("weighted category mean %.3f != row alpaca %.3f", agg, row.Alpaca)
	}
	if !strings.Contains(pas.String(), "by category") {
		t.Error("render missing")
	}
	if _, err := art.Suite.CategoryBreakdown(simllm.GPT40613, nil); err == nil {
		t.Error("nil APE should fail")
	}
}

// TestShapeHoldsAcrossSeeds guards against seed luck: the headline
// finding (PAS beats the no-APE baseline) must hold when every pipeline
// seed changes.
func TestShapeHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a second quick-scale artifact set")
	}
	opt := QuickOptions()
	opt.Build.Seed += 1000
	opt.Suite.Seed += 1000
	art, err := Prepare(opt)
	if err != nil {
		t.Fatal(err)
	}
	base, err := art.Suite.EvaluateRow(simllm.GPT40613, baselines.None{})
	if err != nil {
		t.Fatal(err)
	}
	pas, err := art.Suite.EvaluateRow(simllm.GPT40613, art.PASAPE())
	if err != nil {
		t.Fatal(err)
	}
	if pas.Average() <= base.Average() {
		t.Fatalf("alternate seed broke the headline: PAS %.2f vs baseline %.2f",
			pas.Average(), base.Average())
	}
}
