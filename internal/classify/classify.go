// Package classify implements the prompt-category classifier of §3.1. The
// paper fine-tunes a BaiChuan-13B on 60,000 internally labelled examples;
// here a multinomial naive-Bayes model over word and bigram features is
// trained on synthetic labelled prompts (see TrainingSet), which plays the
// same pipeline role: route each curated prompt to one of the 14
// categories so generation can pick category-matched golden examples.
package classify

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/corpus"
	"repro/internal/facet"
	"repro/internal/textkit"
)

// Example is one labelled training instance.
type Example struct {
	Text     string
	Category facet.Category
}

// Config controls training.
type Config struct {
	// Smoothing is the Laplace pseudo-count. Must be positive.
	Smoothing float64
}

// DefaultConfig returns standard settings.
func DefaultConfig() Config { return Config{Smoothing: 0.4} }

// Classifier is a trained multinomial naive-Bayes category model.
type Classifier struct {
	smoothing float64
	prior     [facet.CategoryCount]float64            // log prior
	condLog   [facet.CategoryCount]map[string]float64 // log P(feature|cat)
	unseenLog [facet.CategoryCount]float64            // log prob of unseen feature
	vocab     int
}

// ErrNoData is returned when training with no examples.
var ErrNoData = errors.New("classify: no training examples")

// Train fits the classifier on labelled examples.
func Train(examples []Example, cfg Config) (*Classifier, error) {
	if len(examples) == 0 {
		return nil, ErrNoData
	}
	if cfg.Smoothing <= 0 {
		return nil, fmt.Errorf("classify: smoothing must be positive, got %v", cfg.Smoothing)
	}
	counts := [facet.CategoryCount]map[string]float64{}
	var catTotal [facet.CategoryCount]float64
	var catDocs [facet.CategoryCount]float64
	vocab := make(map[string]bool)
	for i := range counts {
		counts[i] = make(map[string]float64)
	}
	for _, ex := range examples {
		if !ex.Category.Valid() {
			return nil, fmt.Errorf("classify: invalid category %d", int(ex.Category))
		}
		catDocs[ex.Category]++
		for _, f := range features(ex.Text) {
			counts[ex.Category][f]++
			catTotal[ex.Category]++
			vocab[f] = true
		}
	}
	c := &Classifier{smoothing: cfg.Smoothing, vocab: len(vocab)}
	v := float64(len(vocab)) + 1
	n := float64(len(examples))
	for cat := 0; cat < facet.CategoryCount; cat++ {
		c.prior[cat] = math.Log((catDocs[cat] + 1) / (n + float64(facet.CategoryCount)))
		denom := catTotal[cat] + cfg.Smoothing*v
		c.condLog[cat] = make(map[string]float64, len(counts[cat]))
		for f, cnt := range counts[cat] {
			c.condLog[cat][f] = math.Log((cnt + cfg.Smoothing) / denom)
		}
		c.unseenLog[cat] = math.Log(cfg.Smoothing / denom)
	}
	return c, nil
}

// Predict returns the most likely category for text together with the
// posterior probability of that category.
func (c *Classifier) Predict(text string) (facet.Category, float64) {
	feats := features(text)
	var logp [facet.CategoryCount]float64
	for cat := 0; cat < facet.CategoryCount; cat++ {
		lp := c.prior[cat]
		for _, f := range feats {
			if v, ok := c.condLog[cat][f]; ok {
				lp += v
			} else {
				lp += c.unseenLog[cat]
			}
		}
		logp[cat] = lp
	}
	best := 0
	for cat := 1; cat < facet.CategoryCount; cat++ {
		if logp[cat] > logp[best] {
			best = cat
		}
	}
	// Softmax for the posterior of the argmax.
	var z float64
	for cat := range logp {
		z += math.Exp(logp[cat] - logp[best])
	}
	return facet.Category(best), 1 / z
}

func features(text string) []string {
	words := textkit.Words(text)
	feats := make([]string, 0, len(words)*2)
	feats = append(feats, words...)
	for i := 0; i+1 < len(words); i++ {
		feats = append(feats, words[i]+"_"+words[i+1])
	}
	return feats
}

// TrainingSet synthesises n labelled examples by sampling clean prompts
// from the corpus generator — the stand-in for the paper's 60k internal
// labels. Junk and duplicates are excluded, as a labelling team would.
func TrainingSet(n int, seed int64) ([]Example, error) {
	if n <= 0 {
		return nil, fmt.Errorf("classify: n must be positive, got %d", n)
	}
	cfg := corpus.DefaultConfig()
	cfg.Seed = seed
	cfg.Size = n * 2 // headroom for dropped junk/dups
	cfg.DuplicateRate = 0
	cfg.JunkRate = 0
	pool, err := corpus.Generate(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Example, 0, n)
	for _, p := range pool {
		if len(out) == n {
			break
		}
		out = append(out, Example{Text: p.Text, Category: p.Truth.Category})
	}
	return out, nil
}
