package classify

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/facet"
)

func trainedClassifier(t testing.TB) *Classifier {
	t.Helper()
	examples, err := TrainingSet(3000, 99)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(examples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err != ErrNoData {
		t.Error("empty training should fail with ErrNoData")
	}
	if _, err := Train([]Example{{Text: "x", Category: facet.QA}}, Config{Smoothing: 0}); err == nil {
		t.Error("zero smoothing should fail")
	}
	if _, err := Train([]Example{{Text: "x", Category: facet.Category(99)}}, DefaultConfig()); err == nil {
		t.Error("invalid category should fail")
	}
}

func TestTrainingSetShape(t *testing.T) {
	ex, err := TrainingSet(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != 500 {
		t.Fatalf("len = %d", len(ex))
	}
	cats := map[facet.Category]int{}
	for _, e := range ex {
		if e.Text == "" {
			t.Fatal("empty example text")
		}
		cats[e.Category]++
	}
	if len(cats) < 10 {
		t.Fatalf("training set covers only %d categories", len(cats))
	}
	if _, err := TrainingSet(0, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestPredictObviousCases(t *testing.T) {
	c := trainedClassifier(t)
	cases := map[string]facet.Category{
		"Write a python function that implements a merge sort.":            facet.Coding,
		"Translate 'good morning, how are you' into spanish.":              facet.Translation,
		"Summarize this long article about coral reefs into key points.":   facet.Summarization,
		"Pretend you are a medieval blacksmith and greet me in character.": facet.Roleplay,
	}
	for text, want := range cases {
		got, conf := c.Predict(text)
		if got != want {
			t.Errorf("Predict(%q) = %v (conf %.2f), want %v", text, got, conf, want)
		}
		if conf <= 0 || conf > 1 {
			t.Errorf("confidence out of range: %v", conf)
		}
	}
}

// TestAccuracyBeatsHeuristic verifies the trained classifier outperforms
// the lexicon heuristic on held-out data — the reason the paper fine-tunes
// a classifier instead of keyword matching.
func TestAccuracyBeatsHeuristic(t *testing.T) {
	c := trainedClassifier(t)
	cfg := corpus.DefaultConfig()
	cfg.Seed = 12345 // held out from training seed
	cfg.Size = 2000
	cfg.JunkRate = 0
	cfg.DuplicateRate = 0
	pool, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var clfHit, heuHit, total int
	for _, p := range pool {
		total++
		if got, _ := c.Predict(p.Text); got == p.Truth.Category {
			clfHit++
		}
		if facet.AnalyzePrompt(p.Text).Category == p.Truth.Category {
			heuHit++
		}
	}
	clfAcc := float64(clfHit) / float64(total)
	heuAcc := float64(heuHit) / float64(total)
	if clfAcc < 0.85 {
		t.Fatalf("classifier accuracy = %.3f, want >= 0.85", clfAcc)
	}
	if clfAcc <= heuAcc {
		t.Fatalf("classifier (%.3f) should beat heuristic (%.3f)", clfAcc, heuAcc)
	}
}

func TestPredictDeterministic(t *testing.T) {
	c := trainedClassifier(t)
	a1, c1 := c.Predict("Explain how photosynthesis works.")
	a2, c2 := c.Predict("Explain how photosynthesis works.")
	if a1 != a2 || c1 != c2 {
		t.Fatal("prediction not deterministic")
	}
}

func TestPredictEmptyText(t *testing.T) {
	c := trainedClassifier(t)
	got, conf := c.Predict("")
	if !got.Valid() {
		t.Fatalf("invalid category %v", got)
	}
	if conf <= 0 || conf > 1 {
		t.Fatalf("conf = %v", conf)
	}
}

func BenchmarkPredict(b *testing.B) {
	c := trainedClassifier(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Predict("Write a python function that implements an LRU cache.")
	}
}
