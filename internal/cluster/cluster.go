// Package cluster provides the grouping algorithms used by the curation
// pipeline (§3.1): HNSW-driven near-duplicate grouping, spherical k-means,
// and k-center greedy diversity selection. All algorithms are deterministic
// given their seeds.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/embed"
	"repro/internal/hnsw"
)

// Group is a set of item indices considered near-duplicates of each other.
type Group struct {
	// Members holds indices into the input slice, sorted ascending.
	Members []int
	// Representative is the index chosen to stand for the whole group
	// (the member with the highest average similarity to the others).
	Representative int
}

// DedupConfig controls near-duplicate grouping.
type DedupConfig struct {
	// Threshold is the cosine similarity above which two items are
	// considered duplicates. The paper's dedup stage groups paraphrases;
	// 0.92 keeps template siblings distinct while still merging paraphrases.
	Threshold float64
	// K is the number of neighbours examined per item.
	K int
	// Index configures the underlying HNSW build.
	Index hnsw.Config
}

// DefaultDedupConfig returns the thresholds used by the PAS pipeline.
func DefaultDedupConfig() DedupConfig {
	return DedupConfig{Threshold: 0.92, K: 12, Index: hnsw.DefaultConfig()}
}

// NearDuplicates groups vectors whose cosine similarity exceeds the
// configured threshold, using an HNSW index to avoid the quadratic scan.
// Grouping is transitive (union-find over above-threshold edges), matching
// the paper's "cluster then sample per cluster" dedup.
func NearDuplicates(vecs []embed.Vector, cfg DedupConfig) ([]Group, error) {
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("cluster: threshold must be in (0,1), got %v", cfg.Threshold)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("cluster: K must be >= 1, got %d", cfg.K)
	}
	ix, err := hnsw.New(cfg.Index)
	if err != nil {
		return nil, err
	}
	for i, v := range vecs {
		if err := ix.Add(i, v); err != nil {
			return nil, fmt.Errorf("cluster: indexing item %d: %w", i, err)
		}
	}
	uf := newUnionFind(len(vecs))
	maxDist := 1 - cfg.Threshold
	for i, v := range vecs {
		for _, r := range ix.Search(v, cfg.K+1) {
			if r.ID != i && r.Distance <= maxDist {
				uf.union(i, r.ID)
			}
		}
	}
	return groupsFromUF(uf, vecs), nil
}

// NearDuplicatesExact is the brute-force counterpart of NearDuplicates,
// used as the oracle in tests and in the HNSW-vs-exact ablation bench.
func NearDuplicatesExact(vecs []embed.Vector, threshold float64) ([]Group, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("cluster: threshold must be in (0,1), got %v", threshold)
	}
	uf := newUnionFind(len(vecs))
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			if vecs[i].Cosine(vecs[j]) >= threshold {
				uf.union(i, j)
			}
		}
	}
	return groupsFromUF(uf, vecs), nil
}

func groupsFromUF(uf *unionFind, vecs []embed.Vector) []Group {
	byRoot := make(map[int][]int)
	for i := range vecs {
		r := uf.find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	groups := make([]Group, 0, len(roots))
	for _, r := range roots {
		members := byRoot[r]
		sort.Ints(members)
		groups = append(groups, Group{Members: members, Representative: centroidMember(members, vecs)})
	}
	return groups
}

// centroidMember picks the member most similar on average to the rest.
// Singleton groups return their only member.
func centroidMember(members []int, vecs []embed.Vector) int {
	if len(members) == 1 {
		return members[0]
	}
	best, bestScore := members[0], math.Inf(-1)
	for _, i := range members {
		var s float64
		for _, j := range members {
			if i != j {
				s += vecs[i].Cosine(vecs[j])
			}
		}
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// unionFind is a path-compressed, union-by-size disjoint set.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// KMeans runs spherical k-means (cosine assignment, mean centroids
// re-normalised each round) with k-means++ style seeding from the given
// seed. It returns the assignment of each vector to a centroid index.
func KMeans(vecs []embed.Vector, k int, iters int, seed int64) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("cluster: no vectors")
	}
	if k > len(vecs) {
		k = len(vecs)
	}
	dim := len(vecs[0])
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding with cosine distance.
	centroids := make([]embed.Vector, 0, k)
	centroids = append(centroids, cloneVec(vecs[rng.Intn(len(vecs))]))
	dist := make([]float64, len(vecs))
	for len(centroids) < k {
		var total float64
		for i, v := range vecs {
			d := math.Inf(1)
			for _, c := range centroids {
				if cd := 1 - v.Cosine(c); cd < d {
					d = cd
				}
			}
			dist[i] = d * d
			total += dist[i]
		}
		pick := 0
		if total > 0 {
			r := rng.Float64() * total
			for i, d := range dist {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(len(vecs))
		}
		centroids = append(centroids, cloneVec(vecs[pick]))
	}

	assign := make([]int, len(vecs))
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vecs {
			best, bestSim := 0, math.Inf(-1)
			for ci, c := range centroids {
				if s := v.Cosine(c); s > bestSim {
					best, bestSim = ci, s
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		sums := make([]embed.Vector, k)
		counts := make([]int, k)
		for ci := range sums {
			sums[ci] = make(embed.Vector, dim)
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for j := range v {
				sums[c][j] += v[j]
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				continue // keep previous centroid for empty clusters
			}
			var n float64
			for j := range sums[ci] {
				n += float64(sums[ci][j]) * float64(sums[ci][j])
			}
			n = math.Sqrt(n)
			if n == 0 {
				continue
			}
			for j := range sums[ci] {
				sums[ci][j] = float32(float64(sums[ci][j]) / n)
			}
			centroids[ci] = sums[ci]
		}
	}
	return assign, nil
}

// KCenterGreedy selects m diverse indices by repeatedly taking the point
// farthest (in cosine distance) from the already-selected set, the
// diversity-selection algorithm the data-selection literature in §2.3 uses.
// The first pick is the point closest to the dataset mean, making the
// output deterministic.
func KCenterGreedy(vecs []embed.Vector, m int) []int {
	if m <= 0 || len(vecs) == 0 {
		return nil
	}
	if m > len(vecs) {
		m = len(vecs)
	}
	dim := len(vecs[0])
	mean := make(embed.Vector, dim)
	for _, v := range vecs {
		for j := range v {
			mean[j] += v[j]
		}
	}
	first, bestSim := 0, math.Inf(-1)
	for i, v := range vecs {
		if s := v.Cosine(mean); s > bestSim {
			first, bestSim = i, s
		}
	}
	selected := []int{first}
	minDist := make([]float64, len(vecs))
	for i, v := range vecs {
		minDist[i] = 1 - v.Cosine(vecs[first])
	}
	for len(selected) < m {
		far, farDist := -1, -1.0
		for i, d := range minDist {
			if d > farDist {
				far, farDist = i, d
			}
		}
		selected = append(selected, far)
		for i, v := range vecs {
			if d := 1 - v.Cosine(vecs[far]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Ints(selected)
	return selected
}

func cloneVec(v embed.Vector) embed.Vector {
	out := make(embed.Vector, len(v))
	copy(out, v)
	return out
}
