package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embed"
)

func randomUnitVecs(seed int64, n, dim int) []embed.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]embed.Vector, n)
	for i := range out {
		v := make(embed.Vector, dim)
		var norm float64
		for j := range v {
			v[j] = float32(rng.NormFloat64())
			norm += float64(v[j]) * float64(v[j])
		}
		if norm == 0 {
			v[0] = 1
			norm = 1
		}
		for j := range v {
			v[j] = float32(float64(v[j]) / math.Sqrt(norm))
		}
		out[i] = v
	}
	return out
}

// TestGroupsPartitionProperty: for any input, NearDuplicates returns a
// partition — every index in exactly one group, representative a member.
func TestGroupsPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%80 + 1
		vecs := randomUnitVecs(seed, n, 12)
		groups, err := NearDuplicates(vecs, DefaultDedupConfig())
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, g := range groups {
			repOK := false
			for _, m := range g.Members {
				if m < 0 || m >= n || seen[m] {
					return false
				}
				seen[m] = true
				if m == g.Representative {
					repOK = true
				}
			}
			if !repOK {
				return false
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestKMeansAssignmentProperty: assignments index valid centroids and
// every vector is assigned.
func TestKMeansAssignmentProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%60 + 1
		k := int(kRaw)%8 + 1
		vecs := randomUnitVecs(seed, n, 8)
		assign, err := KMeans(vecs, k, 10, seed)
		if err != nil {
			return false
		}
		if len(assign) != n {
			return false
		}
		effK := k
		if effK > n {
			effK = n
		}
		for _, a := range assign {
			if a < 0 || a >= effK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestKCenterGreedyProperty: selection is sorted, unique, within range,
// and exactly min(m, n) long.
func TestKCenterGreedyProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%50 + 1
		m := int(mRaw)%60 + 1
		vecs := randomUnitVecs(seed, n, 8)
		sel := KCenterGreedy(vecs, m)
		want := m
		if want > n {
			want = n
		}
		if len(sel) != want {
			return false
		}
		for i, s := range sel {
			if s < 0 || s >= n {
				return false
			}
			if i > 0 && sel[i] <= sel[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
