package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/embed"
	"repro/internal/hnsw"
)

func unitVec(angle float64) embed.Vector {
	return embed.Vector{float32(math.Cos(angle)), float32(math.Sin(angle))}
}

func perturbed(rng *rand.Rand, base embed.Vector, eps float64) embed.Vector {
	v := make(embed.Vector, len(base))
	var n float64
	for i := range base {
		v[i] = base[i] + float32(rng.NormFloat64()*eps)
	}
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] = float32(float64(v[i]) / n)
	}
	return v
}

func TestNearDuplicatesGroupsParaphrases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Three well-separated directions in 16-d, each with 5 jittered copies.
	bases := make([]embed.Vector, 3)
	for b := range bases {
		v := make(embed.Vector, 16)
		v[b*5] = 1
		bases[b] = v
	}
	var vecs []embed.Vector
	for _, b := range bases {
		for i := 0; i < 5; i++ {
			vecs = append(vecs, perturbed(rng, b, 0.05))
		}
	}
	groups, err := NearDuplicates(vecs, DefaultDedupConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(groups), groups)
	}
	for _, g := range groups {
		if len(g.Members) != 5 {
			t.Errorf("group size %d, want 5", len(g.Members))
		}
		// Representative must be a member.
		found := false
		for _, m := range g.Members {
			if m == g.Representative {
				found = true
			}
		}
		if !found {
			t.Errorf("representative %d not in group %v", g.Representative, g.Members)
		}
	}
}

func TestNearDuplicatesMatchesExactOnSmallData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := make(embed.Vector, 8)
	base[0] = 1
	var vecs []embed.Vector
	for i := 0; i < 6; i++ {
		vecs = append(vecs, perturbed(rng, base, 0.03))
	}
	other := make(embed.Vector, 8)
	other[4] = 1
	vecs = append(vecs, other)

	approx, err := NearDuplicates(vecs, DefaultDedupConfig())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NearDuplicatesExact(vecs, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != len(exact) {
		t.Fatalf("approx %d groups vs exact %d", len(approx), len(exact))
	}
}

func TestNearDuplicatesValidation(t *testing.T) {
	if _, err := NearDuplicates(nil, DedupConfig{Threshold: 0, K: 5, Index: hnsw.DefaultConfig()}); err == nil {
		t.Error("threshold 0 should fail")
	}
	if _, err := NearDuplicates(nil, DedupConfig{Threshold: 1.2, K: 5, Index: hnsw.DefaultConfig()}); err == nil {
		t.Error("threshold > 1 should fail")
	}
	if _, err := NearDuplicates(nil, DedupConfig{Threshold: 0.8, K: 0, Index: hnsw.DefaultConfig()}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := NearDuplicatesExact(nil, -1); err == nil {
		t.Error("exact with bad threshold should fail")
	}
}

func TestNearDuplicatesEmptyInput(t *testing.T) {
	groups, err := NearDuplicates(nil, DefaultDedupConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := unitVec(0), unitVec(math.Pi/2)
	var vecs []embed.Vector
	for i := 0; i < 20; i++ {
		vecs = append(vecs, perturbed(rng, a, 0.05))
	}
	for i := 0; i < 20; i++ {
		vecs = append(vecs, perturbed(rng, b, 0.05))
	}
	assign, err := KMeans(vecs, 2, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	// All of the first 20 must share a label, all of the last 20 the other.
	for i := 1; i < 20; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("first cluster split: %v", assign)
		}
	}
	for i := 21; i < 40; i++ {
		if assign[i] != assign[20] {
			t.Fatalf("second cluster split: %v", assign)
		}
	}
	if assign[0] == assign[20] {
		t.Fatal("clusters merged")
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 2, 5, 1); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := KMeans([]embed.Vector{{1, 0}}, 0, 5, 1); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestKMeansKLargerThanData(t *testing.T) {
	vecs := []embed.Vector{unitVec(0), unitVec(1)}
	assign, err := KMeans(vecs, 10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 2 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var vecs []embed.Vector
	for i := 0; i < 50; i++ {
		vecs = append(vecs, perturbed(rng, unitVec(float64(i%5)), 0.1))
	}
	a, err := KMeans(vecs, 5, 15, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(vecs, 5, 15, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func TestKCenterGreedyPicksDiverse(t *testing.T) {
	// 10 near-identical points plus 2 outliers; selecting 3 must include
	// both outliers.
	rng := rand.New(rand.NewSource(5))
	var vecs []embed.Vector
	for i := 0; i < 10; i++ {
		vecs = append(vecs, perturbed(rng, unitVec(0), 0.02))
	}
	vecs = append(vecs, unitVec(math.Pi/2), unitVec(math.Pi))
	sel := KCenterGreedy(vecs, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %v", sel)
	}
	has := func(i int) bool {
		for _, s := range sel {
			if s == i {
				return true
			}
		}
		return false
	}
	if !has(10) || !has(11) {
		t.Fatalf("outliers not selected: %v", sel)
	}
}

func TestKCenterGreedyEdgeCases(t *testing.T) {
	if KCenterGreedy(nil, 3) != nil {
		t.Error("empty input should return nil")
	}
	if KCenterGreedy([]embed.Vector{unitVec(0)}, 0) != nil {
		t.Error("m=0 should return nil")
	}
	sel := KCenterGreedy([]embed.Vector{unitVec(0), unitVec(1)}, 10)
	if len(sel) != 2 {
		t.Fatalf("m>n should clamp: %v", sel)
	}
}

func TestGroupsPartitionInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var vecs []embed.Vector
	for i := 0; i < 60; i++ {
		vecs = append(vecs, perturbed(rng, unitVec(float64(i%6)), 0.04))
	}
	groups, err := NearDuplicates(vecs, DefaultDedupConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, g := range groups {
		for _, m := range g.Members {
			if seen[m] {
				t.Fatalf("index %d in two groups", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != len(vecs) {
		t.Fatalf("groups cover %d of %d items", len(seen), len(vecs))
	}
}

func BenchmarkNearDuplicates1k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var vecs []embed.Vector
	for i := 0; i < 1000; i++ {
		base := make(embed.Vector, 32)
		base[i%20] = 1
		vecs = append(vecs, perturbed(rng, base, 0.1))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NearDuplicates(vecs, DefaultDedupConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
