package pipeline

import (
	"sync/atomic"

	"repro/internal/augment"
	"repro/internal/obs"
)

// Build stages, in execution order.
const (
	StageIdle int32 = iota
	StageCorpus
	StageCuration
	StageAugment
	StageSFT
	StageDone
)

// stageNames maps stage codes to their /metricsz labels.
var stageNames = []string{"idle", "corpus", "curation", "augment", "sft", "done"}

// Progress is the live view of one build for observability: the
// current stage, curation scoring progress, and the generation stage's
// item/quarantine counters. Create one, pass it in BuildOptions, and
// register Collect on an obs.Registry to surface /metricsz gauges
// while the build runs. Methods tolerate a nil receiver so the
// un-instrumented path costs nothing.
type Progress struct {
	stage    atomic.Int32
	curDone  atomic.Int64
	curTotal atomic.Int64

	// Augment holds the generation-stage counters; augment workers
	// update it directly.
	Augment augment.Progress
}

// Stage returns the current stage name.
func (p *Progress) Stage() string {
	if p == nil {
		return stageNames[StageIdle]
	}
	s := p.stage.Load()
	if s < 0 || int(s) >= len(stageNames) {
		return "unknown"
	}
	return stageNames[s]
}

func (p *Progress) setStage(s int32) {
	if p == nil {
		return
	}
	p.stage.Store(s)
}

// curationTick records quality-scoring progress; it is the curation
// stage's OnProgress callback.
func (p *Progress) curationTick(done, total int) {
	if p == nil {
		return
	}
	p.curDone.Store(int64(done))
	p.curTotal.Store(int64(total))
}

// augmentProgress returns the generation-stage counter sink, or nil
// when the build is un-instrumented.
func (p *Progress) augmentProgress() *augment.Progress {
	if p == nil {
		return nil
	}
	return &p.Augment
}

// Collect emits the build's progress into a metrics scrape. The
// current stage is a one-hot gauge over all stages so dashboards can
// plot transitions without string parsing.
func (p *Progress) Collect(e *obs.Emitter) {
	current := p.stage.Load()
	for code, name := range stageNames {
		v := 0.0
		if int32(code) == current {
			v = 1
		}
		e.Gauge("pas_build_stage", "One-hot build stage indicator.", v, "stage", name)
	}
	e.Gauge("pas_build_items_planned", "Items admitted into the stage's work plan.", float64(p.curTotal.Load()), "stage", "curation")
	e.Gauge("pas_build_items_done", "Items finished in the stage.", float64(p.curDone.Load()), "stage", "curation")
	p.Augment.Collect(e)
}
