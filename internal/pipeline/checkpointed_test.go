package pipeline

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/augment"
	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/sft"
)

// smallCfg is the checkpoint tests' build: big enough to exercise every
// stage, small enough to run many times.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.CorpusSize = 1200
	cfg.ClassifierExamples = 1500
	cfg.Seed = 3
	cfg.Augment.PerCategoryCap = 20
	cfg.Augment.HeavyCategoryCap = 60
	cfg.Augment.Workers = 4
	return cfg
}

// datasetBytes renders a dataset as JSONL for byte-level comparison.
func datasetBytes(t *testing.T, d *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// modelBytes serialises a trained model for byte-level comparison.
func modelBytes(t *testing.T, m *sft.Model) []byte {
	t.Helper()
	b, err := m.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fixture builds smallCfg twice — once in memory (the ground truth) and
// once checkpointed into a template directory — exactly one time for
// the whole package. Tests copy artefacts out of the template instead
// of paying for corpus synthesis and curation per test.
var fixture = struct {
	sync.Once
	dir     string // completed checkpoint template; treat as read-only
	inMem   *Result
	ckpt    *Result
	data    []byte // in-memory dataset JSONL
	model   []byte // in-memory model bytes
	cleanup func()
	err     error
}{}

func buildFixture(t *testing.T) {
	t.Helper()
	fixture.Do(func() {
		dir, err := os.MkdirTemp("", "pas-ckpt-template-*")
		if err != nil {
			fixture.err = err
			return
		}
		fixture.dir = filepath.Join(dir, "ckpt")
		fixture.cleanup = func() { os.RemoveAll(dir) }
		if fixture.inMem, fixture.err = Build(smallCfg()); fixture.err != nil {
			return
		}
		var buf bytes.Buffer
		if fixture.err = fixture.inMem.Dataset.WriteJSONL(&buf); fixture.err != nil {
			return
		}
		fixture.data = buf.Bytes()
		if fixture.model, fixture.err = fixture.inMem.Model.Bytes(); fixture.err != nil {
			return
		}
		fixture.ckpt, fixture.err = BuildWithCheckpoint(smallCfg(), BuildOptions{CheckpointDir: fixture.dir})
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	if fixture.cleanup != nil {
		fixture.cleanup()
	}
	os.Exit(code)
}

// copyFile duplicates one checkpoint artefact between directories.
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// cloneTemplate copies the named artefacts of the fixture checkpoint
// into a fresh directory.
func cloneTemplate(t *testing.T, names ...string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		copyFile(t, filepath.Join(fixture.dir, name), filepath.Join(dir, name))
	}
	return dir
}

func TestBuildWithCheckpointMatchesInMemory(t *testing.T) {
	buildFixture(t)
	if !bytes.Equal(datasetBytes(t, fixture.ckpt.Dataset), fixture.data) {
		t.Error("checkpointed dataset differs from the in-memory build")
	}
	if !bytes.Equal(modelBytes(t, fixture.ckpt.Model), fixture.model) {
		t.Error("checkpointed model differs from the in-memory build")
	}
	if !reflect.DeepEqual(fixture.ckpt.AugmentStats, fixture.inMem.AugmentStats) {
		t.Errorf("stats differ: %+v vs %+v", fixture.ckpt.AugmentStats, fixture.inMem.AugmentStats)
	}
	// The journal is superseded by the stage snapshot on completion.
	if _, err := os.Stat(filepath.Join(fixture.dir, "augment.journal")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("journal should be removed after the stage snapshot, stat err = %v", err)
	}
}

func TestResumeAfterCompleteLoadsSnapshots(t *testing.T) {
	buildFixture(t)
	dir := cloneTemplate(t, "meta.json", "curation.snap", "augment.snap", "sft.snap")
	prog := &Progress{}
	res, err := BuildWithCheckpoint(smallCfg(), BuildOptions{CheckpointDir: dir, Resume: true, Progress: prog})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetBytes(t, res.Dataset), fixture.data) {
		t.Error("snapshot-loaded dataset differs")
	}
	if !bytes.Equal(modelBytes(t, res.Model), fixture.model) {
		t.Error("snapshot-loaded model differs")
	}
	if prog.Stage() != "done" {
		t.Errorf("stage = %s, want done", prog.Stage())
	}
}

func TestStaleFingerprintRefused(t *testing.T) {
	buildFixture(t)
	dir := cloneTemplate(t, "meta.json", "curation.snap", "augment.snap", "sft.snap")
	changed := smallCfg()
	changed.Seed = 4
	_, err := BuildWithCheckpoint(changed, BuildOptions{CheckpointDir: dir, Resume: true})
	var stale *checkpoint.StaleError
	if !errors.As(err, &stale) {
		t.Fatalf("changed seed should refuse resume with StaleError, got %v", err)
	}
	// The refused checkpoint is left intact for the original config.
	res, err := BuildWithCheckpoint(smallCfg(), BuildOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetBytes(t, res.Dataset), fixture.data) {
		t.Error("checkpoint damaged by the refused resume")
	}
}

func TestCorruptSnapshotsRebuildCleanly(t *testing.T) {
	buildFixture(t)
	dir := cloneTemplate(t, "meta.json", "curation.snap", "augment.snap", "sft.snap")
	for _, snap := range []string{"augment.snap", "sft.snap"} {
		path := filepath.Join(dir, snap)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := BuildWithCheckpoint(smallCfg(), BuildOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("corrupt snapshots should rebuild, not fail: %v", err)
	}
	if !bytes.Equal(datasetBytes(t, res.Dataset), fixture.data) {
		t.Error("rebuilt dataset differs")
	}
	if !bytes.Equal(modelBytes(t, res.Model), fixture.model) {
		t.Error("rebuilt model differs")
	}
}

// errKill is the chaos tests' injected crash.
var errKill = errors.New("chaos: injected crash")

// killJournal passes through exactly `left` appends, then fails every
// subsequent one — simulating a process killed mid-loop. Appends that
// went through are durable, exactly like a real kill.
type killJournal struct {
	inner augment.Journal
	mu    sync.Mutex
	left  int
}

func (k *killJournal) Append(rec augment.ItemRecord) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.left <= 0 {
		return errKill
	}
	k.left--
	return k.inner.Append(rec)
}

// TestBuildChaosKillAnywhere is the tentpole proof: kill the build at
// randomized journal offsets — including mid-line torn writes — and
// the resumed build's dataset and trained model must be byte-identical
// to an uninterrupted run. Corpus synthesis and curation are expensive
// and deterministic, so each iteration seeds its directory with the
// fixture's curation snapshot and crashes inside the generation loop.
func TestBuildChaosKillAnywhere(t *testing.T) {
	buildFixture(t)

	// Fixed seed: the determinism rules (and reproducibility of a CI
	// failure) forbid a clock-seeded generator.
	rng := rand.New(rand.NewSource(42))
	const iterations = 6
	for i := 0; i < iterations; i++ {
		kill := rng.Intn(40) // journal offset to die at; may exceed the plan
		tear := i%2 == 1     // additionally tear the last journal line
		dir := cloneTemplate(t, "meta.json", "curation.snap")

		opt := BuildOptions{
			CheckpointDir: dir,
			Resume:        true,
			journalWrap:   func(j augment.Journal) augment.Journal { return &killJournal{inner: j, left: kill} },
		}
		_, crashErr := BuildWithCheckpoint(smallCfg(), opt)
		if crashErr == nil {
			// The whole plan fit under the kill offset; the build
			// finished and there is nothing to resume. Still a valid
			// sample of the schedule space.
			continue
		}
		if !errors.Is(crashErr, errKill) {
			t.Fatalf("iteration %d: unexpected failure: %v", i, crashErr)
		}

		journal := filepath.Join(dir, "augment.journal")
		if tear {
			if st, err := os.Stat(journal); err == nil && st.Size() > 3 {
				// Chop mid-line: the torn tail must be detected,
				// dropped, and its item regenerated.
				if err := os.Truncate(journal, st.Size()-3); err != nil {
					t.Fatal(err)
				}
			}
		}

		res, err := BuildWithCheckpoint(smallCfg(), BuildOptions{CheckpointDir: dir, Resume: true})
		if err != nil {
			t.Fatalf("iteration %d (kill=%d tear=%v): resume failed: %v", i, kill, tear, err)
		}
		if !bytes.Equal(datasetBytes(t, res.Dataset), fixture.data) {
			t.Errorf("iteration %d (kill=%d tear=%v): resumed dataset differs from uninterrupted build", i, kill, tear)
		}
		if !bytes.Equal(modelBytes(t, res.Model), fixture.model) {
			t.Errorf("iteration %d (kill=%d tear=%v): resumed model differs from uninterrupted build", i, kill, tear)
		}
	}
}

func TestProgressStageTransitions(t *testing.T) {
	var p *Progress
	if p.Stage() != "idle" {
		t.Errorf("nil progress stage = %s", p.Stage())
	}
	p = &Progress{}
	p.setStage(StageSFT)
	if p.Stage() != "sft" {
		t.Errorf("stage = %s, want sft", p.Stage())
	}
	p.setStage(99)
	if p.Stage() != "unknown" {
		t.Errorf("out-of-range stage = %s, want unknown", p.Stage())
	}
}
