package pipeline

import (
	"sync"
	"testing"

	"repro/internal/facet"
	"repro/internal/simllm"
)

var (
	buildOnce sync.Once
	buildRes  *Result
	buildErr  error
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.CorpusSize = 3000
	cfg.ClassifierExamples = 2000
	cfg.Augment.PerCategoryCap = 60
	cfg.Augment.HeavyCategoryCap = 120
	return cfg
}

func quickBuild(t testing.TB) *Result {
	t.Helper()
	buildOnce.Do(func() { buildRes, buildErr = Build(quickConfig()) })
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildRes
}

func TestBuildValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.CorpusSize = 0
	if _, err := Build(cfg); err == nil {
		t.Error("zero corpus should fail")
	}
	cfg = quickConfig()
	cfg.ClassifierExamples = -1
	if _, err := Build(cfg); err == nil {
		t.Error("negative classifier examples should fail")
	}
	cfg = quickConfig()
	cfg.BaseModel = "unknown"
	if _, err := Build(cfg); err == nil {
		t.Error("unknown base should fail")
	}
}

func TestBuildArtifactsConsistent(t *testing.T) {
	res := quickBuild(t)
	if res.Model == nil || res.Dataset == nil {
		t.Fatal("missing artefacts")
	}
	if res.Dataset.Len() == 0 {
		t.Fatal("empty dataset")
	}
	if res.Dataset.Len() > len(res.Curated) {
		t.Fatalf("more pairs (%d) than curated prompts (%d)", res.Dataset.Len(), len(res.Curated))
	}
	if res.Model.BaseName() != simllm.Qwen27B {
		t.Fatalf("base = %s", res.Model.BaseName())
	}
	if res.CurationStats.AfterFilter != len(res.Curated) {
		t.Fatalf("curation stats (%d) disagree with curated slice (%d)",
			res.CurationStats.AfterFilter, len(res.Curated))
	}
	// Figure 6 shape: coding and qa must dominate the distribution.
	counts := res.Dataset.CategoryCounts()
	if counts[facet.Coding] < counts[facet.Roleplay] || counts[facet.QA] < counts[facet.Roleplay] {
		t.Errorf("heavy categories not dominant: coding=%d qa=%d roleplay=%d",
			counts[facet.Coding], counts[facet.QA], counts[facet.Roleplay])
	}
}

func TestRetrainProducesDifferentBase(t *testing.T) {
	res := quickBuild(t)
	alt, err := Retrain(simllm.LLaMA27B, res.Dataset, quickConfig().SFT)
	if err != nil {
		t.Fatal(err)
	}
	if alt.BaseName() != simllm.LLaMA27B {
		t.Fatalf("alt base = %s", alt.BaseName())
	}
	if _, err := Retrain("nope", res.Dataset, quickConfig().SFT); err == nil {
		t.Error("unknown base should fail")
	}
}

func TestAblateSelectionIsDirtier(t *testing.T) {
	res := quickBuild(t)
	ablated, err := AblateSelection(res.Curated, quickConfig().Augment)
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Stats.Rejected != 0 {
		t.Error("ablated run must not invoke the critic")
	}
	if ablated.Stats.ResidualDefects <= res.AugmentStats.ResidualDefects {
		t.Errorf("ablated defects (%d) should exceed curated defects (%d)",
			ablated.Stats.ResidualDefects, res.AugmentStats.ResidualDefects)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := quickBuild(t)
	b, err := Build(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset.Len() != b.Dataset.Len() {
		t.Fatal("dataset size differs across identical builds")
	}
	for i := range a.Dataset.Pairs {
		if a.Dataset.Pairs[i] != b.Dataset.Pairs[i] {
			t.Fatalf("pair %d differs across identical builds", i)
		}
	}
	p := "Explain the science of fermentation."
	if a.Model.Complement(p, "x") != b.Model.Complement(p, "x") {
		t.Fatal("models behave differently across identical builds")
	}
}
