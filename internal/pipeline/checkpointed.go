package pipeline

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/augment"
	"repro/internal/checkpoint"
	"repro/internal/classify"
	"repro/internal/corpus"
	"repro/internal/curation"
	"repro/internal/dataset"
	"repro/internal/sft"
	"repro/internal/simllm"
)

// Snapshot and journal names inside a build's checkpoint directory.
const (
	snapCuration = "curation"
	snapAugment  = "augment"
	snapSFT      = "sft"
	journalItems = "augment"
)

// BuildOptions controls checkpointing and instrumentation for one
// build. The zero value builds in memory exactly like Build always
// has.
type BuildOptions struct {
	// CheckpointDir, when non-empty, persists stage snapshots and the
	// per-item generation journal there. A crash or failure retains
	// the directory so the build can resume.
	CheckpointDir string
	// Resume continues from the state in CheckpointDir. The directory
	// must have been written by a build with the same fingerprint
	// (config and seed); anything else is refused with a
	// *checkpoint.StaleError. Without Resume, prior state in the
	// directory is discarded.
	Resume bool
	// Progress, when set, receives live stage and item counters;
	// register Progress.Collect on an obs.Registry to surface them on
	// /metricsz.
	Progress *Progress

	// journalWrap interposes on the augment journal — the chaos tests'
	// crash-injection seam.
	journalWrap func(augment.Journal) augment.Journal
}

// Fingerprint derives the checkpoint key for cfg: a hash of every
// output-affecting setting (sizes, seed, model names, caps). Runtime
// knobs that cannot change the output — worker counts, fault gates,
// progress callbacks — are excluded via their `json:"-"` tags.
func Fingerprint(cfg Config) (string, error) {
	fp, err := checkpoint.Fingerprint(cfg)
	if err != nil {
		return "", fmt.Errorf("pipeline: %w", err)
	}
	return fp, nil
}

// curationSnapshot is the persisted §3.1 stage result.
type curationSnapshot struct {
	Selected []curation.Curated `json:"selected"`
	Stats    curation.Stats     `json:"stats"`
}

// augmentSnapshot is the persisted §3.2 stage result.
type augmentSnapshot struct {
	Dataset    *dataset.Dataset      `json:"dataset"`
	Stats      augment.Stats         `json:"stats"`
	Quarantine []augment.Quarantined `json:"quarantine,omitempty"`
}

// BuildWithCheckpoint runs the complete PAS construction with
// crash-safe checkpointing. Completed stages load from their
// snapshots; an interrupted §3.2 generation loop resumes at the exact
// item recorded in its journal, and the resumed build's dataset and
// model are byte-identical to an uninterrupted run under the same
// config and seed. A corrupt snapshot is detected, discarded, and its
// stage rebuilt; a corrupt journal keeps every intact record and drops
// only a torn tail.
func BuildWithCheckpoint(cfg Config, opt BuildOptions) (*Result, error) {
	if cfg.CorpusSize <= 0 {
		return nil, fmt.Errorf("pipeline: CorpusSize must be positive, got %d", cfg.CorpusSize)
	}
	if cfg.ClassifierExamples <= 0 {
		return nil, fmt.Errorf("pipeline: ClassifierExamples must be positive, got %d", cfg.ClassifierExamples)
	}

	var store *checkpoint.Store
	if opt.CheckpointDir != "" {
		fp, err := Fingerprint(cfg)
		if err != nil {
			return nil, err
		}
		store, err = checkpoint.Open(opt.CheckpointDir, fp, opt.Resume)
		if err != nil {
			return nil, err
		}
	}

	// The base model is validated after the store opens: a failure
	// past this point leaves a resumable checkpoint behind.
	base, err := simllm.LookupProfile(cfg.BaseModel)
	if err != nil {
		return nil, fmt.Errorf("pipeline: base model: %w", err)
	}

	cur, err := curationStage(cfg, opt, store)
	if err != nil {
		return nil, err
	}
	gen, err := augmentStage(cfg, opt, store, cur)
	if err != nil {
		return nil, err
	}
	model, err := sftStage(cfg, opt, store, base, gen)
	if err != nil {
		return nil, err
	}
	opt.Progress.setStage(StageDone)

	return &Result{
		Model:         model,
		Dataset:       gen.Data,
		Curated:       cur.Selected,
		CurationStats: cur.Stats,
		AugmentStats:  gen.Stats,
		Quarantine:    gen.Quarantine,
	}, nil
}

// curationStage loads or rebuilds the §3.1 output (including the
// corpus synthesis and classifier training it depends on).
func curationStage(cfg Config, opt BuildOptions, store *checkpoint.Store) (*curation.Result, error) {
	if store != nil {
		var snap curationSnapshot
		ok, err := loadOrDiscard(store, snapCuration, &snap)
		if err != nil {
			return nil, err
		}
		if ok {
			opt.Progress.curationTick(len(snap.Selected), len(snap.Selected))
			return &curation.Result{Selected: snap.Selected, Stats: snap.Stats}, nil
		}
	}

	opt.Progress.setStage(StageCorpus)
	poolCfg := corpus.DefaultConfig()
	poolCfg.Size = cfg.CorpusSize
	poolCfg.Seed = cfg.Seed
	pool, err := corpus.Generate(poolCfg)
	if err != nil {
		return nil, fmt.Errorf("pipeline: corpus: %w", err)
	}
	examples, err := classify.TrainingSet(cfg.ClassifierExamples, cfg.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("pipeline: classifier data: %w", err)
	}
	clf, err := classify.Train(examples, classify.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("pipeline: classifier: %w", err)
	}

	opt.Progress.setStage(StageCuration)
	curCfg := cfg.Curation
	curCfg.OnProgress = opt.Progress.curationTick
	cur, err := curation.Run(pool, clf, curCfg)
	if err != nil {
		return nil, fmt.Errorf("pipeline: curation: %w", err)
	}
	if store != nil {
		if err := store.WriteSnapshot(snapCuration, curationSnapshot{Selected: cur.Selected, Stats: cur.Stats}); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	return cur, nil
}

// journalAdapter narrows a checkpoint journal to augment's interface.
type journalAdapter struct{ j *checkpoint.Journal }

func (a journalAdapter) Append(rec augment.ItemRecord) error { return a.j.Append(rec) }

// augmentStage loads or resumes the §3.2 generation loop. The journal
// is the commit point: every finished item is durable before it counts,
// so a crash resumes at the exact item, not the stage.
func augmentStage(cfg Config, opt BuildOptions, store *checkpoint.Store, cur *curation.Result) (*augment.Result, error) {
	opt.Progress.setStage(StageAugment)
	if store != nil {
		var snap augmentSnapshot
		ok, err := loadOrDiscard(store, snapAugment, &snap)
		if err != nil {
			return nil, err
		}
		if ok {
			return &augment.Result{Data: snap.Dataset, Stats: snap.Stats, Quarantine: snap.Quarantine}, nil
		}
	}

	st := augment.RunState{Progress: opt.Progress.augmentProgress()}
	var jr *checkpoint.Journal
	if store != nil {
		var rec *checkpoint.Recovery
		var err error
		jr, rec, err = store.OpenJournal(journalItems)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		// Every append is individually durable; a close failure after
		// the stage snapshot commits is harmless.
		defer jr.Close()
		st.Done = make([]augment.ItemRecord, 0, len(rec.Records))
		for i, payload := range rec.Records {
			var r augment.ItemRecord
			if err := json.Unmarshal(payload, &r); err != nil {
				return nil, fmt.Errorf("pipeline: journal record %d undecodable: %w", i, err)
			}
			st.Done = append(st.Done, r)
		}
		st.Journal = journalAdapter{j: jr}
	}
	if opt.journalWrap != nil && st.Journal != nil {
		st.Journal = opt.journalWrap(st.Journal)
	}

	gen, err := augment.RunResumable(cur.Selected, dataset.Golden(), cfg.Augment, st)
	if err != nil {
		return nil, fmt.Errorf("pipeline: augment: %w", err)
	}
	if store != nil {
		snap := augmentSnapshot{Dataset: gen.Data, Stats: gen.Stats, Quarantine: gen.Quarantine}
		if err := store.WriteSnapshot(snapAugment, snap); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		// The snapshot supersedes the journal; a crash between the two
		// resumes from the snapshot and never reads the journal again.
		if err := store.RemoveJournal(journalItems); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	return gen, nil
}

// sftStage loads or retrains the §3.4 model.
func sftStage(cfg Config, opt BuildOptions, store *checkpoint.Store, base simllm.Profile, gen *augment.Result) (*sft.Model, error) {
	opt.Progress.setStage(StageSFT)
	if store != nil {
		payload, ok, err := store.LoadSnapshotBytes(snapSFT)
		var corrupt *checkpoint.CorruptError
		switch {
		case errors.As(err, &corrupt):
			if err := store.RemoveSnapshot(snapSFT); err != nil {
				return nil, fmt.Errorf("pipeline: %w", err)
			}
		case err != nil:
			return nil, fmt.Errorf("pipeline: %w", err)
		case ok:
			model, err := sft.Load(bytes.NewReader(payload))
			if err == nil {
				return model, nil
			}
			// Unloadable but checksum-clean: treat like corruption and
			// retrain rather than fail a resumable build.
			if rmErr := store.RemoveSnapshot(snapSFT); rmErr != nil {
				return nil, fmt.Errorf("pipeline: %w", rmErr)
			}
		}
	}

	baseModel, err := simllm.New(base)
	if err != nil {
		return nil, err
	}
	model, err := sft.Train(baseModel, gen.Data, cfg.SFT)
	if err != nil {
		return nil, fmt.Errorf("pipeline: sft: %w", err)
	}
	if store != nil {
		b, err := model.Bytes()
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		if err := store.WriteSnapshotBytes(snapSFT, b); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	return model, nil
}

// LoadCheckpointDataset reads the generated pair dataset out of a build
// checkpoint directory (the §3.2 stage snapshot) without re-checking the
// build fingerprint — the caller is consuming an artefact, not resuming
// a build.
func LoadCheckpointDataset(dir string) (*dataset.Dataset, error) {
	store, err := checkpoint.Attach(dir)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	var snap augmentSnapshot
	ok, err := store.LoadSnapshot(snapAugment, &snap)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("pipeline: checkpoint %s has no generated dataset yet — run (or resume) pasgen first", dir)
	}
	return snap.Dataset, nil
}

// LoadCheckpointModel loads the fine-tuned model snapshot from a build
// checkpoint directory; ok reports whether one exists and is intact.
func LoadCheckpointModel(dir string) (*sft.Model, bool, error) {
	store, err := checkpoint.Attach(dir)
	if err != nil {
		return nil, false, fmt.Errorf("pipeline: %w", err)
	}
	payload, ok, err := store.LoadSnapshotBytes(snapSFT)
	if err != nil {
		return nil, false, fmt.Errorf("pipeline: %w", err)
	}
	if !ok {
		return nil, false, nil
	}
	model, err := sft.Load(bytes.NewReader(payload))
	if err != nil {
		return nil, false, fmt.Errorf("pipeline: model snapshot: %w", err)
	}
	return model, true, nil
}

// SaveCheckpointModel persists a fine-tuned model into a build
// checkpoint directory as the §3.4 stage snapshot.
func SaveCheckpointModel(dir string, m *sft.Model) error {
	store, err := checkpoint.Attach(dir)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	b, err := m.Bytes()
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if err := store.WriteSnapshotBytes(snapSFT, b); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	return nil
}

// loadOrDiscard loads a snapshot, treating corruption as absence: the
// damaged file is removed and the stage rebuilds. Missing snapshots
// return (false, nil).
func loadOrDiscard(store *checkpoint.Store, name string, v any) (bool, error) {
	ok, err := store.LoadSnapshot(name, v)
	var corrupt *checkpoint.CorruptError
	if errors.As(err, &corrupt) {
		if rmErr := store.RemoveSnapshot(name); rmErr != nil {
			return false, fmt.Errorf("pipeline: %w", rmErr)
		}
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("pipeline: %w", err)
	}
	return ok, nil
}
