// Package pipeline orchestrates the end-to-end PAS construction — corpus
// synthesis, §3.1 curation, §3.2 pair generation, and SFT — for both the
// public facade (package pas at the module root) and the experiment
// harness (internal/evalbench), which additionally needs ablated builds.
package pipeline

import (
	"fmt"

	"repro/internal/augment"
	"repro/internal/curation"
	"repro/internal/dataset"
	"repro/internal/sft"
	"repro/internal/simllm"
)

// Config assembles the end-to-end build settings.
type Config struct {
	// CorpusSize is the raw synthetic pool size (stand-in for
	// LMSYS-1M/WildChat sampling). Typical: 4000-30000.
	CorpusSize int
	// Seed drives corpus generation and classifier training data.
	Seed int64
	// BaseModel is the LLM fine-tuned into the PAS model M_p. The paper
	// uses Qwen2-7B-Chat (Table 1) and LLaMA-2-7B-instruct (Table 2).
	BaseModel string
	// ClassifierExamples is the labelled-training-set size for the §3.1
	// category classifier (the paper uses 60k internal labels).
	ClassifierExamples int
	// Curation configures the §3.1 selection pipeline.
	Curation curation.Config
	// Augment configures the §3.2 generation pipeline.
	Augment augment.Config
	// SFT configures fine-tuning.
	SFT sft.Config
}

// DefaultConfig returns the build used by the experiments: a pool large
// enough to curate ~9000 pairs on Qwen2-7B.
func DefaultConfig() Config {
	return Config{
		CorpusSize:         26000,
		Seed:               1,
		BaseModel:          simllm.Qwen27B,
		ClassifierExamples: 6000,
		Curation:           curation.DefaultConfig(),
		Augment:            augment.DefaultConfig(),
		SFT:                sft.DefaultConfig(),
	}
}

// Result carries the artefacts of a build.
type Result struct {
	// Model is the fine-tuned PAS model M_p.
	Model *sft.Model
	// Dataset is the generated (prompt, complementary prompt) dataset.
	Dataset *dataset.Dataset
	// Curated is the §3.1 output the pairs were generated from.
	Curated []curation.Curated
	// CurationStats reports the §3.1 pipeline.
	CurationStats curation.Stats
	// AugmentStats reports the §3.2 pipeline.
	AugmentStats augment.Stats
	// Quarantine lists generation items skipped after exhausting their
	// regeneration budgets (empty on healthy builds).
	Quarantine []augment.Quarantined
}

// Build runs the complete PAS construction in memory. For crash-safe,
// resumable builds use BuildWithCheckpoint.
func Build(cfg Config) (*Result, error) {
	return BuildWithCheckpoint(cfg, BuildOptions{})
}

// Retrain fine-tunes a fresh copy of the base model on a different
// dataset, reusing a prior build's curated prompts — the Table 5 ablation
// trains on the same curation output with selection disabled.
func Retrain(baseModel string, data *dataset.Dataset, cfg sft.Config) (*sft.Model, error) {
	p, err := simllm.LookupProfile(baseModel)
	if err != nil {
		return nil, fmt.Errorf("pipeline: base model: %w", err)
	}
	m, err := simllm.New(p)
	if err != nil {
		return nil, err
	}
	return sft.Train(m, data, cfg)
}

// AblateSelection regenerates the pair dataset from curated prompts with
// the selection/regeneration stage disabled, for the Table 5 comparison.
func AblateSelection(curated []curation.Curated, augCfg augment.Config) (*augment.Result, error) {
	augCfg.Selection = false
	return augment.Run(curated, dataset.Golden(), augCfg)
}
