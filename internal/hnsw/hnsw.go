// Package hnsw implements a Hierarchical Navigable Small World graph for
// approximate nearest-neighbour search over embedding vectors, following
// Malkov & Yashunin (2016). The curation pipeline (§3.1 of the paper) uses
// it to group near-duplicate prompts before sampling one representative per
// group.
//
// The index supports cosine and Euclidean distance, heuristic neighbour
// selection (algorithm 4 of the paper), and deterministic level assignment
// from a seeded source so that builds are reproducible.
package hnsw

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/embed"
)

// Metric selects the distance function of an index.
type Metric int

const (
	// Cosine distance: 1 - cosine similarity. The default for embeddings.
	Cosine Metric = iota
	// Euclidean (L2) distance.
	Euclidean
)

func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Euclidean:
		return "euclidean"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Config holds the HNSW build parameters.
type Config struct {
	// M is the maximum number of neighbours per node on layers > 0.
	// Layer 0 allows 2*M. Typical: 8-48.
	M int
	// EfConstruction is the candidate-list width during insertion.
	EfConstruction int
	// EfSearch is the default candidate-list width during Search; it can
	// be overridden per query with SearchEf.
	EfSearch int
	// Metric selects the distance function.
	Metric Metric
	// Seed drives level assignment.
	Seed int64
	// Heuristic enables the neighbour-selection heuristic (keeping
	// spatially diverse neighbours) instead of plain closest-first.
	Heuristic bool
}

// DefaultConfig returns build parameters that behave well for the
// 256-dimensional prompt embeddings used by the curation pipeline.
func DefaultConfig() Config {
	return Config{M: 16, EfConstruction: 200, EfSearch: 64, Metric: Cosine, Seed: 1, Heuristic: true}
}

// Result is one search hit.
type Result struct {
	// ID is the caller-supplied identifier of the stored vector.
	ID int
	// Distance is the metric distance to the query (smaller is closer).
	Distance float64
}

type node struct {
	id      int
	vec     embed.Vector
	level   int
	friends [][]int32 // friends[l] = neighbour slots at layer l
}

// Index is an HNSW graph. It is safe for concurrent Search; Add must not
// run concurrently with other Adds or Searches.
type Index struct {
	cfg    Config
	mu     sync.RWMutex
	nodes  []*node
	byID   map[int]int32 // external id -> slot
	entry  int32         // slot of entry point, -1 if empty
	maxLvl int
	rng    *rand.Rand
	mult   float64 // level multiplier 1/ln(M)
	dim    int
}

// New creates an empty index.
// It returns an error when the configuration is invalid.
func New(cfg Config) (*Index, error) {
	if cfg.M < 2 {
		return nil, fmt.Errorf("hnsw: M must be >= 2, got %d", cfg.M)
	}
	if cfg.EfConstruction < 1 || cfg.EfSearch < 1 {
		return nil, fmt.Errorf("hnsw: ef parameters must be >= 1 (construction %d, search %d)",
			cfg.EfConstruction, cfg.EfSearch)
	}
	return &Index{
		cfg:   cfg,
		byID:  make(map[int]int32),
		entry: -1,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		mult:  1 / math.Log(float64(cfg.M)),
	}, nil
}

// MustNew is New for configurations known to be valid.
func MustNew(cfg Config) *Index {
	idx, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return idx
}

// Len returns the number of stored vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.nodes)
}

func (ix *Index) dist(a, b embed.Vector) float64 {
	switch ix.cfg.Metric {
	case Euclidean:
		var s float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			s += d * d
		}
		return math.Sqrt(s)
	default:
		return 1 - a.Cosine(b)
	}
}

// Add inserts a vector under the given external id.
// It returns an error if the id already exists or the dimension is
// inconsistent with previously added vectors.
func (ix *Index) Add(id int, vec embed.Vector) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.byID[id]; dup {
		return fmt.Errorf("hnsw: duplicate id %d", id)
	}
	if len(vec) == 0 {
		return fmt.Errorf("hnsw: empty vector for id %d", id)
	}
	if ix.dim == 0 {
		ix.dim = len(vec)
	} else if len(vec) != ix.dim {
		return fmt.Errorf("hnsw: vector for id %d has dim %d, index dim %d", id, len(vec), ix.dim)
	}

	level := ix.randomLevel()
	n := &node{id: id, vec: vec, level: level, friends: make([][]int32, level+1)}
	slot := int32(len(ix.nodes))
	ix.nodes = append(ix.nodes, n)
	ix.byID[id] = slot

	if ix.entry < 0 {
		ix.entry = slot
		ix.maxLvl = level
		return nil
	}

	cur := ix.entry
	curDist := ix.dist(vec, ix.nodes[cur].vec)
	// Greedy descent through layers above the node's level.
	for l := ix.maxLvl; l > level; l-- {
		cur, curDist = ix.greedyStep(vec, cur, curDist, l)
	}
	// Insert into each layer from min(level, maxLvl) down to 0.
	top := level
	if ix.maxLvl < top {
		top = ix.maxLvl
	}
	ep := []candidate{{slot: cur, dist: curDist}}
	for l := top; l >= 0; l-- {
		w := ix.searchLayer(vec, ep, ix.cfg.EfConstruction, l)
		neighbors := ix.selectNeighbors(vec, w, ix.cfg.M)
		n.friends[l] = make([]int32, 0, len(neighbors))
		for _, c := range neighbors {
			n.friends[l] = append(n.friends[l], c.slot)
			ix.link(c.slot, slot, l)
		}
		ep = w
	}
	if level > ix.maxLvl {
		ix.maxLvl = level
		ix.entry = slot
	}
	return nil
}

// link adds "to" to from's neighbour list at layer l, pruning to capacity
// with the configured selection strategy.
func (ix *Index) link(from, to int32, l int) {
	fn := ix.nodes[from]
	if l >= len(fn.friends) {
		return
	}
	fn.friends[l] = append(fn.friends[l], to)
	maxConn := ix.cfg.M
	if l == 0 {
		maxConn = 2 * ix.cfg.M
	}
	if len(fn.friends[l]) <= maxConn {
		return
	}
	cands := make([]candidate, 0, len(fn.friends[l]))
	for _, s := range fn.friends[l] {
		cands = append(cands, candidate{slot: s, dist: ix.dist(fn.vec, ix.nodes[s].vec)})
	}
	kept := ix.selectNeighbors(fn.vec, cands, maxConn)
	fn.friends[l] = fn.friends[l][:0]
	for _, c := range kept {
		fn.friends[l] = append(fn.friends[l], c.slot)
	}
}

func (ix *Index) greedyStep(q embed.Vector, start int32, startDist float64, l int) (int32, float64) {
	cur, curDist := start, startDist
	for {
		improved := false
		for _, nb := range ix.nodes[cur].friends[l] {
			if d := ix.dist(q, ix.nodes[nb].vec); d < curDist {
				cur, curDist = nb, d
				improved = true
			}
		}
		if !improved {
			return cur, curDist
		}
	}
}

type candidate struct {
	slot int32
	dist float64
}

// minHeap orders candidates nearest-first.
type minHeap []candidate

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// maxHeap orders candidates farthest-first (used as the bounded result set).
type maxHeap []candidate

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// searchLayer is algorithm 2: best-first expansion bounded by ef.
func (ix *Index) searchLayer(q embed.Vector, entry []candidate, ef, l int) []candidate {
	visited := make(map[int32]bool, ef*4)
	var cand minHeap
	var result maxHeap
	for _, e := range entry {
		if visited[e.slot] {
			continue
		}
		visited[e.slot] = true
		heap.Push(&cand, e)
		heap.Push(&result, e)
	}
	for cand.Len() > 0 {
		c := heap.Pop(&cand).(candidate)
		if result.Len() >= ef && c.dist > result[0].dist {
			break
		}
		for _, nb := range ix.nodes[c.slot].friends[l] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := ix.dist(q, ix.nodes[nb].vec)
			if result.Len() < ef || d < result[0].dist {
				heap.Push(&cand, candidate{slot: nb, dist: d})
				heap.Push(&result, candidate{slot: nb, dist: d})
				if result.Len() > ef {
					heap.Pop(&result)
				}
			}
		}
	}
	out := make([]candidate, result.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&result).(candidate)
	}
	return out
}

// selectNeighbors keeps up to m candidates. With Heuristic enabled it
// follows algorithm 4: a candidate is kept only if it is closer to the
// query than to every already-kept neighbour, which preserves graph
// navigability in clustered data.
func (ix *Index) selectNeighbors(q embed.Vector, cands []candidate, m int) []candidate {
	sorted := make([]candidate, len(cands))
	copy(sorted, cands)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].dist < sorted[j].dist })
	if !ix.cfg.Heuristic {
		if len(sorted) > m {
			sorted = sorted[:m]
		}
		return sorted
	}
	kept := make([]candidate, 0, m)
	var spares []candidate
	for _, c := range sorted {
		if len(kept) >= m {
			break
		}
		good := true
		for _, k := range kept {
			if ix.dist(ix.nodes[c.slot].vec, ix.nodes[k.slot].vec) < c.dist {
				good = false
				break
			}
		}
		if good {
			kept = append(kept, c)
		} else {
			spares = append(spares, c)
		}
	}
	// Backfill with pruned candidates to keep connectivity.
	for _, c := range spares {
		if len(kept) >= m {
			break
		}
		kept = append(kept, c)
	}
	return kept
}

func (ix *Index) randomLevel() int {
	return int(-math.Log(1-ix.rng.Float64()) * ix.mult)
}

// Search returns the k nearest stored vectors to q using the default
// EfSearch width.
func (ix *Index) Search(q embed.Vector, k int) []Result {
	return ix.SearchEf(q, k, ix.cfg.EfSearch)
}

// SearchEf is Search with an explicit ef width (clamped up to k).
func (ix *Index) SearchEf(q embed.Vector, k, ef int) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.entry < 0 || k <= 0 {
		return nil
	}
	if ef < k {
		ef = k
	}
	cur := ix.entry
	curDist := ix.dist(q, ix.nodes[cur].vec)
	for l := ix.maxLvl; l > 0; l-- {
		cur, curDist = ix.greedyStep(q, cur, curDist, l)
	}
	w := ix.searchLayer(q, []candidate{{slot: cur, dist: curDist}}, ef, 0)
	if len(w) > k {
		w = w[:k]
	}
	out := make([]Result, len(w))
	for i, c := range w {
		out[i] = Result{ID: ix.nodes[c.slot].id, Distance: c.dist}
	}
	return out
}

// IDs returns the external ids in insertion order.
func (ix *Index) IDs() []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids := make([]int, len(ix.nodes))
	for i, n := range ix.nodes {
		ids[i] = n.id
	}
	return ids
}

// Vector returns the stored vector for id and whether it exists.
func (ix *Index) Vector(id int) (embed.Vector, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	slot, ok := ix.byID[id]
	if !ok {
		return nil, false
	}
	return ix.nodes[slot].vec, true
}
