package hnsw

import (
	"fmt"
	"sort"

	"repro/internal/embed"
)

// Exact is a brute-force nearest-neighbour index with the same interface
// shape as Index. It serves as the recall oracle in tests and as the
// baseline in the dedup ablation benchmark (HNSW vs exact k-NN).
type Exact struct {
	metric Metric
	ids    []int
	vecs   []embed.Vector
	seen   map[int]bool
	dim    int
}

// NewExact creates an empty exact index using the given metric.
func NewExact(metric Metric) *Exact {
	return &Exact{metric: metric, seen: make(map[int]bool)}
}

// Add stores a vector. It returns an error on duplicate ids or dimension
// mismatch, mirroring Index.Add.
func (e *Exact) Add(id int, vec embed.Vector) error {
	if e.seen[id] {
		return fmt.Errorf("hnsw: duplicate id %d", id)
	}
	if len(vec) == 0 {
		return fmt.Errorf("hnsw: empty vector for id %d", id)
	}
	if e.dim == 0 {
		e.dim = len(vec)
	} else if len(vec) != e.dim {
		return fmt.Errorf("hnsw: vector for id %d has dim %d, index dim %d", id, len(vec), e.dim)
	}
	e.seen[id] = true
	e.ids = append(e.ids, id)
	e.vecs = append(e.vecs, vec)
	return nil
}

// Len returns the number of stored vectors.
func (e *Exact) Len() int { return len(e.ids) }

// Search returns the exact k nearest neighbours of q.
func (e *Exact) Search(q embed.Vector, k int) []Result {
	if k <= 0 || len(e.ids) == 0 {
		return nil
	}
	res := make([]Result, len(e.ids))
	for i, v := range e.vecs {
		var d float64
		if e.metric == Euclidean {
			var s float64
			for j := range v {
				diff := float64(v[j]) - float64(q[j])
				s += diff * diff
			}
			d = s // monotone in true distance; fine for ranking
		} else {
			d = 1 - q.Cosine(v)
		}
		res[i] = Result{ID: e.ids[i], Distance: d}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Distance < res[j].Distance })
	if len(res) > k {
		res = res[:k]
	}
	return res
}
