package hnsw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embed"
)

// TestSearchResultsAreValidProperty checks structural invariants of
// Search over randomly built indexes: results reference stored ids, are
// unique, sorted by distance, and never exceed k.
func TestSearchResultsAreValidProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%120 + 2
		k := int(kRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		ix := MustNew(DefaultConfig())
		stored := map[int]bool{}
		for i := 0; i < n; i++ {
			if err := ix.Add(i, randVec(rng, 16)); err != nil {
				return false
			}
			stored[i] = true
		}
		res := ix.Search(randVec(rng, 16), k)
		if len(res) > k {
			return false
		}
		seen := map[int]bool{}
		for i, r := range res {
			if !stored[r.ID] || seen[r.ID] {
				return false
			}
			seen[r.ID] = true
			if i > 0 && res[i].Distance < res[i-1].Distance {
				return false
			}
			if r.Distance < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSelfNearestProperty: a stored vector's own nearest neighbour is
// itself (distance ~0) for cosine on unit vectors.
func TestSelfNearestProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 1
		rng := rand.New(rand.NewSource(seed))
		ix := MustNew(DefaultConfig())
		vecs := make([]embed.Vector, n)
		for i := 0; i < n; i++ {
			vecs[i] = randVec(rng, 12)
			if err := ix.Add(i, vecs[i]); err != nil {
				return false
			}
		}
		probe := rng.Intn(n)
		res := ix.Search(vecs[probe], 1)
		return len(res) == 1 && res[0].Distance < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
