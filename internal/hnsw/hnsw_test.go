package hnsw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/embed"
)

func randVec(rng *rand.Rand, dim int) embed.Vector {
	v := make(embed.Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	var n float64
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] = float32(float64(v[i]) / n)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{M: 1, EfConstruction: 10, EfSearch: 10}); err == nil {
		t.Error("M=1 should fail")
	}
	if _, err := New(Config{M: 8, EfConstruction: 0, EfSearch: 10}); err == nil {
		t.Error("EfConstruction=0 should fail")
	}
	if _, err := New(Config{M: 8, EfConstruction: 10, EfSearch: 0}); err == nil {
		t.Error("EfSearch=0 should fail")
	}
}

func TestAddErrors(t *testing.T) {
	ix := MustNew(DefaultConfig())
	v := embed.Vector{1, 0, 0}
	if err := ix.Add(1, v); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(1, v); err == nil {
		t.Error("duplicate id should fail")
	}
	if err := ix.Add(2, nil); err == nil {
		t.Error("empty vector should fail")
	}
	if err := ix.Add(3, embed.Vector{1, 0}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	ix := MustNew(DefaultConfig())
	if got := ix.Search(embed.Vector{1, 0}, 5); got != nil {
		t.Fatalf("search on empty index = %v, want nil", got)
	}
}

func TestSingleElement(t *testing.T) {
	ix := MustNew(DefaultConfig())
	if err := ix.Add(42, embed.Vector{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	res := ix.Search(embed.Vector{0, 1, 0}, 3)
	if len(res) != 1 || res[0].ID != 42 {
		t.Fatalf("res = %v", res)
	}
	if res[0].Distance > 1e-6 {
		t.Fatalf("self distance = %v", res[0].Distance)
	}
}

func TestExactMatchIsTopResult(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := MustNew(DefaultConfig())
	vecs := make([]embed.Vector, 200)
	for i := range vecs {
		vecs[i] = randVec(rng, 32)
		if err := ix.Add(i, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, probe := range []int{0, 57, 123, 199} {
		res := ix.Search(vecs[probe], 1)
		if len(res) != 1 || res[0].ID != probe {
			t.Fatalf("probe %d: got %v", probe, res)
		}
	}
}

// TestRecallAgainstExact is the core quality gate: HNSW recall@10 versus
// brute force must be high on clustered data, since dedup correctness
// depends on finding true neighbours.
func TestRecallAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dim, k = 1000, 32, 10
	ix := MustNew(DefaultConfig())
	ex := NewExact(Cosine)
	// Clustered data: 20 centroids with local noise, like deduplicated
	// prompt families.
	centroids := make([]embed.Vector, 20)
	for i := range centroids {
		centroids[i] = randVec(rng, dim)
	}
	vecs := make([]embed.Vector, n)
	for i := 0; i < n; i++ {
		c := centroids[i%len(centroids)]
		v := make(embed.Vector, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.15)
		}
		vecs[i] = v
		if err := ix.Add(i, v); err != nil {
			t.Fatal(err)
		}
		if err := ex.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	var hit, total int
	for q := 0; q < 50; q++ {
		query := randVec(rng, dim)
		truth := ex.Search(query, k)
		approx := ix.SearchEf(query, k, 128)
		truthSet := map[int]bool{}
		for _, r := range truth {
			truthSet[r.ID] = true
		}
		for _, r := range approx {
			if truthSet[r.ID] {
				hit++
			}
		}
		total += len(truth)
	}
	recall := float64(hit) / float64(total)
	if recall < 0.9 {
		t.Fatalf("recall@%d = %.3f, want >= 0.9", k, recall)
	}
}

func TestResultsSortedByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := MustNew(DefaultConfig())
	for i := 0; i < 300; i++ {
		if err := ix.Add(i, randVec(rng, 16)); err != nil {
			t.Fatal(err)
		}
	}
	res := ix.Search(randVec(rng, 16), 20)
	for i := 1; i < len(res); i++ {
		if res[i].Distance < res[i-1].Distance {
			t.Fatalf("results not sorted at %d: %v", i, res)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	build := func() []Result {
		rng := rand.New(rand.NewSource(5))
		ix := MustNew(DefaultConfig())
		var query embed.Vector
		for i := 0; i < 400; i++ {
			v := randVec(rng, 24)
			if i == 0 {
				query = v
			}
			if err := ix.Add(i, v); err != nil {
				t.Fatal(err)
			}
		}
		return ix.Search(query, 10)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("different result counts across identical builds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEuclideanMetric(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metric = Euclidean
	ix := MustNew(cfg)
	pts := []embed.Vector{{0, 0}, {1, 0}, {5, 5}}
	for i, p := range pts {
		if err := ix.Add(i, p); err != nil {
			t.Fatal(err)
		}
	}
	res := ix.Search(embed.Vector{0.9, 0}, 1)
	if res[0].ID != 1 {
		t.Fatalf("nearest = %v, want id 1", res)
	}
}

func TestMetricString(t *testing.T) {
	if Cosine.String() != "cosine" || Euclidean.String() != "euclidean" {
		t.Error("metric names wrong")
	}
	if Metric(9).String() != "Metric(9)" {
		t.Error("unknown metric format wrong")
	}
}

func TestVectorLookup(t *testing.T) {
	ix := MustNew(DefaultConfig())
	v := embed.Vector{0.6, 0.8}
	if err := ix.Add(7, v); err != nil {
		t.Fatal(err)
	}
	got, ok := ix.Vector(7)
	if !ok || got.Cosine(v) < 0.999 {
		t.Fatalf("Vector(7) = %v, %v", got, ok)
	}
	if _, ok := ix.Vector(99); ok {
		t.Error("missing id should not be found")
	}
}

func TestIDsInsertionOrder(t *testing.T) {
	ix := MustNew(DefaultConfig())
	for _, id := range []int{9, 4, 7} {
		if err := ix.Add(id, embed.Vector{1, float32(id)}); err != nil {
			t.Fatal(err)
		}
	}
	ids := ix.IDs()
	if len(ids) != 3 || ids[0] != 9 || ids[1] != 4 || ids[2] != 7 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestKLargerThanIndex(t *testing.T) {
	ix := MustNew(DefaultConfig())
	for i := 0; i < 5; i++ {
		if err := ix.Add(i, embed.Vector{float32(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	res := ix.Search(embed.Vector{2, 1}, 50)
	if len(res) != 5 {
		t.Fatalf("got %d results, want all 5", len(res))
	}
}

func TestExactDuplicateAndDimErrors(t *testing.T) {
	e := NewExact(Cosine)
	if err := e.Add(1, embed.Vector{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(1, embed.Vector{1, 0}); err == nil {
		t.Error("duplicate should fail")
	}
	if err := e.Add(2, embed.Vector{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if err := e.Add(3, nil); err == nil {
		t.Error("empty vec should fail")
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestNoHeuristicStillWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Heuristic = false
	rng := rand.New(rand.NewSource(13))
	ix := MustNew(cfg)
	vecs := make([]embed.Vector, 150)
	for i := range vecs {
		vecs[i] = randVec(rng, 16)
		if err := ix.Add(i, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	res := ix.Search(vecs[42], 1)
	if len(res) != 1 || res[0].ID != 42 {
		t.Fatalf("res = %v", res)
	}
}

func BenchmarkHNSWAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vecs := make([]embed.Vector, b.N)
	for i := range vecs {
		vecs[i] = randVec(rng, 64)
	}
	ix := MustNew(DefaultConfig())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ix.Add(i, vecs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ix := MustNew(DefaultConfig())
	for i := 0; i < 5000; i++ {
		if err := ix.Add(i, randVec(rng, 64)); err != nil {
			b.Fatal(err)
		}
	}
	q := randVec(rng, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10)
	}
}
