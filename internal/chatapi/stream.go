package chatapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/textkit"
)

// Streaming support: when a chat request sets "stream": true, the server
// replies with server-sent events, one word-chunk per event, terminated
// by the [DONE] sentinel — the de-facto wire protocol of public chat
// APIs. The simulation generates the full response first and streams its
// words; latency per chunk is zero, but the framing, incremental
// delivery, and client-side assembly are the real thing.

// streamChunk is one SSE delta event.
type streamChunk struct {
	ID      string `json:"id"`
	Model   string `json:"model"`
	Choices []struct {
		Index int `json:"index"`
		Delta struct {
			Role    string `json:"role,omitempty"`
			Content string `json:"content,omitempty"`
		} `json:"delta"`
		FinishReason *string `json:"finish_reason"`
	} `json:"choices"`
}

func newChunk(id, model, role, content string, finish *string) streamChunk {
	var c streamChunk
	c.ID = id
	c.Model = model
	c.Choices = make([]struct {
		Index int `json:"index"`
		Delta struct {
			Role    string `json:"role,omitempty"`
			Content string `json:"content,omitempty"`
		} `json:"delta"`
		FinishReason *string `json:"finish_reason"`
	}, 1)
	c.Choices[0].Delta.Role = role
	c.Choices[0].Delta.Content = content
	c.Choices[0].FinishReason = finish
	return c
}

// streamResponse writes the completion as SSE. Chunks split on word
// boundaries, a few words per event.
func streamResponse(w http.ResponseWriter, id, model, content string) {
	flusher, ok := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(v interface{}) {
		raw, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", raw)
		if ok {
			flusher.Flush()
		}
	}

	writeEvent(newChunk(id, model, "assistant", "", nil))
	words := strings.Fields(content)
	const perChunk = 4
	for i := 0; i < len(words); i += perChunk {
		end := i + perChunk
		if end > len(words) {
			end = len(words)
		}
		text := strings.Join(words[i:end], " ")
		if end < len(words) {
			text += " "
		}
		writeEvent(newChunk(id, model, "", text, nil))
	}
	stop := "stop"
	writeEvent(newChunk(id, model, "", "", &stop))
	fmt.Fprint(w, "data: [DONE]\n\n")
	if ok {
		flusher.Flush()
	}
}

// ChatCompletionStream performs a streaming request and invokes onDelta
// for every content chunk, returning the assembled completion.
func (c *Client) ChatCompletionStream(req ChatRequest, onDelta func(string)) (string, error) {
	req.Stream = true
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("chatapi: encoding request: %w", err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.cfg.BaseURL+"/v1/chat/completions", strings.NewReader(string(body)))
	if err != nil {
		return "", fmt.Errorf("chatapi: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.cfg.APIKey != "" {
		httpReq.Header.Set("Authorization", "Bearer "+c.cfg.APIKey)
	}
	resp, err := c.cfg.HTTPClient.Do(httpReq)
	if err != nil {
		return "", fmt.Errorf("chatapi: transport: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var e apiError
		if json.Unmarshal(raw, &e) == nil && e.Error.Message != "" {
			return "", fmt.Errorf("chatapi: %s (%d): %s", e.Error.Type, resp.StatusCode, e.Error.Message)
		}
		return "", fmt.Errorf("chatapi: status %d", resp.StatusCode)
	}

	var assembled strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := strings.TrimPrefix(line, "data: ")
		if data == "[DONE]" {
			return assembled.String(), nil
		}
		var chunk streamChunk
		if err := json.Unmarshal([]byte(data), &chunk); err != nil {
			return "", fmt.Errorf("chatapi: bad stream chunk: %w", err)
		}
		if len(chunk.Choices) > 0 && chunk.Choices[0].Delta.Content != "" {
			assembled.WriteString(chunk.Choices[0].Delta.Content)
			if onDelta != nil {
				onDelta(chunk.Choices[0].Delta.Content)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("chatapi: reading stream: %w", err)
	}
	return "", fmt.Errorf("chatapi: stream ended without [DONE]")
}

// streamedWords is a helper for tests: word count of the assembled text.
func streamedWords(s string) int { return textkit.WordCount(s) }
