package chatapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simllm"
)

// Failure-injection tests: the client must fail cleanly (bounded time,
// descriptive error, no panic) when the far side misbehaves.

func TestClientTimesOutOnHangingServer(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done(): // client gave up; let Close proceed
		}
	}))
	// LIFO: release the handler before srv.Close waits on it.
	defer srv.Close()
	defer close(release)

	c, err := NewClient(ClientConfig{
		BaseURL:    srv.URL,
		MaxRetries: 0,
		HTTPClient: &http.Client{Timeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.ChatCompletion(ChatRequest{Model: "m", Messages: []Message{{Role: "user", Content: "x"}}})
	if err == nil {
		t.Fatal("hanging server should time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout not honoured")
	}
}

func TestClientRejectsGarbageJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "{this is not json")
	}))
	defer srv.Close()
	c, err := NewClient(ClientConfig{BaseURL: srv.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ChatCompletion(ChatRequest{Model: "m",
		Messages: []Message{{Role: "user", Content: "x"}}}); err == nil {
		t.Fatal("garbage JSON should fail")
	}
}

func TestClientRejectsEmptyChoices(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"x","model":"m","choices":[]}`)
	}))
	defer srv.Close()
	c, err := NewClient(ClientConfig{BaseURL: srv.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ChatCompletion(ChatRequest{Model: "m",
		Messages: []Message{{Role: "user", Content: "x"}}}); err == nil ||
		!strings.Contains(err.Error(), "no choices") {
		t.Fatalf("want no-choices error, got %v", err)
	}
}

func TestStreamTruncatedWithoutDone(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "data: {\"id\":\"x\",\"model\":\"m\",\"choices\":[{\"index\":0,\"delta\":{\"content\":\"partial \"},\"finish_reason\":null}]}\n\n")
		// connection closes without [DONE]
	}))
	defer srv.Close()
	c, err := NewClient(ClientConfig{BaseURL: srv.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ChatCompletionStream(ChatRequest{Model: "m",
		Messages: []Message{{Role: "user", Content: "x"}}}, nil)
	if err == nil || !strings.Contains(err.Error(), "[DONE]") {
		t.Fatalf("truncated stream should fail with missing [DONE], got %v", err)
	}
}

func TestStreamCorruptChunk(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "data: {corrupt\n\n")
	}))
	defer srv.Close()
	c, err := NewClient(ClientConfig{BaseURL: srv.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ChatCompletionStream(ChatRequest{Model: "m",
		Messages: []Message{{Role: "user", Content: "x"}}}, nil)
	if err == nil || !strings.Contains(err.Error(), "bad stream chunk") {
		t.Fatalf("corrupt chunk should fail, got %v", err)
	}
}

func TestServerRejectsOversizedBody(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	huge := strings.Repeat("x", 2<<20) // 2 MiB, over the 1 MiB cap
	resp, err := http.Post(srv.URL+"/v1/chat/completions", "application/json",
		strings.NewReader(`{"model":"`+simllm.GPT40613+`","messages":[{"role":"user","content":"`+huge+`"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("oversized body should be rejected")
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":{"message":"down","type":"server_error"}}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := NewClient(ClientConfig{BaseURL: srv.URL, MaxRetries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ChatCompletion(ChatRequest{Model: "m",
		Messages: []Message{{Role: "user", Content: "x"}}}); err == nil {
		t.Fatal("persistent 5xx should fail after retries")
	}
	if calls != 3 { // initial + 2 retries
		t.Fatalf("server called %d times, want 3", calls)
	}
}
