// Package chatapi exposes the simulated LLM roster behind an
// OpenAI-style chat-completions HTTP API, with BPE token accounting and
// per-key rate limiting. It makes the paper's deployment claim — "PAS can
// be plugged into any other LLMs available via public APIs" — literal:
// the plug-and-play examples drive a downstream model over HTTP exactly
// as they would a commercial endpoint, and usage metering shows the token
// overhead a complementary prompt adds to each request.
package chatapi

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simllm"
	"repro/internal/tokenizer"
)

// Message is one chat turn, wire-compatible with the common schema.
type Message struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// ChatRequest is the body of POST /v1/chat/completions.
type ChatRequest struct {
	Model       string    `json:"model"`
	Messages    []Message `json:"messages"`
	Temperature float64   `json:"temperature,omitempty"`
	// Seed makes sampling reproducible; it maps to the simulator's salt.
	Seed string `json:"seed,omitempty"`
	// Stream requests server-sent events instead of a single JSON body.
	Stream bool `json:"stream,omitempty"`
}

// Usage is the token accounting block.
type Usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// Choice is one completion alternative (the server returns exactly one).
type Choice struct {
	Index        int     `json:"index"`
	Message      Message `json:"message"`
	FinishReason string  `json:"finish_reason"`
}

// ChatResponse is the reply of POST /v1/chat/completions.
type ChatResponse struct {
	ID      string   `json:"id"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
	Usage   Usage    `json:"usage"`
}

// apiError is the JSON error envelope.
type apiError struct {
	Error struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

func newAPIError(msg, typ string) apiError {
	var e apiError
	e.Error.Message = msg
	e.Error.Type = typ
	return e
}

// ServerConfig configures the endpoint.
type ServerConfig struct {
	// Models lists the servable model names; empty means the full
	// built-in roster.
	Models []string
	// RatePerMinute is the per-API-key request budget; 0 disables
	// limiting.
	RatePerMinute int
	// Tokenizer meters usage; nil disables usage accounting (all counts
	// zero).
	Tokenizer *tokenizer.Tokenizer
	// Now injects the clock for the rate limiter (defaults to
	// time.Now); tests pin it.
	Now func() time.Time
	// CacheSize enables an LRU response cache with that many entries;
	// 0 disables caching. Sound because seeded completions are
	// deterministic.
	CacheSize int
}

// Server hosts the chat-completions API.
type Server struct {
	models  map[string]*simllm.Model
	names   []string
	tok     *tokenizer.Tokenizer
	limiter *rateLimiter
	cache   *lruCache
}

// NewServer builds a server for the given configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	names := cfg.Models
	if len(names) == 0 {
		names = simllm.Roster()
	}
	s := &Server{models: make(map[string]*simllm.Model, len(names)), tok: cfg.Tokenizer}
	for _, n := range names {
		p, err := simllm.LookupProfile(n)
		if err != nil {
			return nil, fmt.Errorf("chatapi: %w", err)
		}
		m, err := simllm.New(p)
		if err != nil {
			return nil, err
		}
		s.models[n] = m
		s.names = append(s.names, n)
	}
	sort.Strings(s.names)
	if cfg.RatePerMinute < 0 {
		return nil, fmt.Errorf("chatapi: RatePerMinute must be >= 0, got %d", cfg.RatePerMinute)
	}
	if cfg.RatePerMinute > 0 {
		now := cfg.Now
		if now == nil {
			now = time.Now
		}
		s.limiter = newRateLimiter(cfg.RatePerMinute, time.Minute, now)
	}
	if cfg.CacheSize < 0 {
		return nil, fmt.Errorf("chatapi: CacheSize must be >= 0, got %d", cfg.CacheSize)
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRUCache(cfg.CacheSize)
	}
	return s, nil
}

// CacheStats reports response-cache hits and misses (zeros when caching
// is disabled).
func (s *Server) CacheStats() (hits, misses int64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.stats()
}

// RegisterMetrics exposes the server's response-cache counters and
// model count on reg under the pas_chatllm_ namespace, read at scrape
// time.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector(func(e *obs.Emitter) {
		hits, misses := s.CacheStats()
		e.Counter("pas_chatllm_cache_hits_total", "Response-cache hits.", float64(hits))
		e.Counter("pas_chatllm_cache_misses_total", "Response-cache misses.", float64(misses))
		if s.cache != nil {
			e.Gauge("pas_chatllm_cache_entries", "Response-cache entries resident.", float64(s.cache.len()))
		}
		e.Gauge("pas_chatllm_models", "Models served.", float64(len(s.models)))
	})
}

// Handler returns the HTTP handler:
//
//	POST /v1/chat/completions
//	GET  /v1/models
//	GET  /v1/status
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chat/completions", s.handleChat)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/status", s.handleStatus)
	return mux
}

// Status is the GET /v1/status body: operational state of the endpoint
// including the response-cache counters from CacheStats.
type Status struct {
	Models      int  `json:"models"`
	RateLimited bool `json:"rate_limited"`
	Cache       struct {
		Enabled bool  `json:"enabled"`
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	} `json:"cache"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := Status{Models: len(s.names), RateLimited: s.limiter != nil}
	st.Cache.Hits, st.Cache.Misses = s.CacheStats()
	if s.cache != nil {
		st.Cache.Enabled = true
		st.Cache.Entries = s.cache.len()
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	type model struct {
		ID string `json:"id"`
	}
	out := struct {
		Data []model `json:"data"`
	}{}
	for _, n := range s.names {
		out.Data = append(out.Data, model{ID: n})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, newAPIError("use POST", "invalid_request_error"))
		return
	}
	if s.limiter != nil && !s.limiter.allow(apiKey(r)) {
		writeJSON(w, http.StatusTooManyRequests, newAPIError("rate limit exceeded", "rate_limit_error"))
		return
	}
	var req ChatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, newAPIError("invalid JSON: "+err.Error(), "invalid_request_error"))
		return
	}
	m, ok := s.models[req.Model]
	if !ok {
		writeJSON(w, http.StatusNotFound, newAPIError(fmt.Sprintf("model %q not found", req.Model), "invalid_request_error"))
		return
	}
	if len(req.Messages) == 0 {
		writeJSON(w, http.StatusBadRequest, newAPIError("messages are required", "invalid_request_error"))
		return
	}
	msgs := make([]simllm.Message, len(req.Messages))
	var promptText strings.Builder
	for i, msg := range req.Messages {
		msgs[i] = simllm.Message{Role: msg.Role, Content: msg.Content}
		promptText.WriteString(msg.Content)
		promptText.WriteString("\n")
	}
	cacheKey := ""
	if s.cache != nil && !req.Stream {
		cacheKey = fmt.Sprintf("%s\x00%v\x00%s\x00%s", req.Model, req.Temperature, req.Seed, promptText.String())
		if cached, ok := s.cache.get(cacheKey); ok {
			obs.AddEvent(r.Context(), "chatllm.cache", "verdict", "hit")
			writeJSON(w, http.StatusOK, cached)
			return
		}
		obs.AddEvent(r.Context(), "chatllm.cache", "verdict", "miss")
	}
	if err := r.Context().Err(); err != nil {
		return // client already gone; don't burn the simulation
	}
	_, genSpan := obs.StartSpan(r.Context(), "chatllm.generate")
	genSpan.SetAttr("model", req.Model)
	content, err := m.Chat(msgs, simllm.Options{Temperature: req.Temperature, Salt: req.Seed}) //paslint:allow ctxpropagate the simulated model computes synchronously in-process; liveness is checked above
	genSpan.End()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, newAPIError(err.Error(), "invalid_request_error"))
		return
	}
	if req.Stream {
		streamResponse(w, completionID(req, content), req.Model, content)
		return
	}
	resp := ChatResponse{
		ID:    completionID(req, content),
		Model: req.Model,
		Choices: []Choice{{
			Message:      Message{Role: "assistant", Content: content},
			FinishReason: "stop",
		}},
	}
	if s.tok != nil {
		resp.Usage.PromptTokens = s.tok.CountTokens(promptText.String())
		resp.Usage.CompletionTokens = s.tok.CountTokens(content)
		resp.Usage.TotalTokens = resp.Usage.PromptTokens + resp.Usage.CompletionTokens
	}
	if cacheKey != "" {
		s.cache.put(cacheKey, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// completionID derives a stable id from the request and output, keeping
// the whole stack deterministic (no wall clock, no randomness).
func completionID(req ChatRequest, content string) string {
	var b strings.Builder
	b.WriteString(req.Model)
	b.WriteString(req.Seed)
	b.WriteString(content)
	var h uint64 = 1469598103934665603
	for i := 0; i < b.Len(); i++ {
		h ^= uint64(b.String()[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("chatcmpl-%016x", h)
}

func apiKey(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	if strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimPrefix(auth, "Bearer ")
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("chatapi: writing response: %v", err)
	}
}

// rateLimiter is a fixed-window per-key counter, good enough for a
// simulated public endpoint.
type rateLimiter struct {
	mu     sync.Mutex
	limit  int
	window time.Duration
	now    func() time.Time
	counts map[string]int
	start  time.Time
}

func newRateLimiter(limit int, window time.Duration, now func() time.Time) *rateLimiter {
	return &rateLimiter{limit: limit, window: window, now: now, counts: make(map[string]int), start: now()}
}

func (rl *rateLimiter) allow(key string) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	t := rl.now()
	if t.Sub(rl.start) >= rl.window {
		rl.counts = make(map[string]int)
		rl.start = t
	}
	if rl.counts[key] >= rl.limit {
		return false
	}
	rl.counts[key]++
	return true
}
