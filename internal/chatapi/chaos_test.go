package chatapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/simllm"
)

// Chaos-transport tests: the client's retry/breaker behaviour under a
// scripted misbehaving upstream, with no timing races — the chaos
// transport injects drops, 429 bursts, and 500 storms deterministically.

// chaosClient builds a client whose transport replays script in front
// of the real upstream, and whose retry sleeps are recorded instead of
// slept.
func chaosClient(t *testing.T, upstream string, cfg ClientConfig, script ...resilience.ChaosStep) (*Client, *resilience.ChaosTransport, *[]time.Duration) {
	t.Helper()
	ct := &resilience.ChaosTransport{Script: script}
	cfg.BaseURL = upstream
	cfg.HTTPClient = &http.Client{Transport: ct, Timeout: 5 * time.Second}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return c, ct, &slept
}

func chatReq() ChatRequest {
	return ChatRequest{Model: simllm.GPT40613, Seed: "chaos",
		Messages: []Message{{Role: "user", Content: "Explain how tides form."}}}
}

func TestClientHonorsRetryAfterOn429(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c, ct, slept := chaosClient(t, srv.URL, ClientConfig{MaxRetries: 3, Backoff: time.Millisecond},
		resilience.ChaosStep{Status: 429, RetryAfter: 2 * time.Second},
	)
	resp, err := c.ChatCompletion(chatReq())
	if err != nil {
		t.Fatalf("want recovery after the 429, got %v", err)
	}
	if len(resp.Choices) == 0 {
		t.Fatal("empty response")
	}
	// The retry waited exactly what the server asked for — not the
	// 1ms-base jittered backoff.
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Fatalf("sleeps = %v, want exactly the server's 2s Retry-After", *slept)
	}
	if ct.Calls() != 2 {
		t.Fatalf("transport calls = %d, want 2", ct.Calls())
	}
}

func TestClientHonorsRetryAfterOn503(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c, _, slept := chaosClient(t, srv.URL, ClientConfig{MaxRetries: 2, Backoff: time.Millisecond},
		resilience.ChaosStep{Status: 503, RetryAfter: time.Second},
	)
	if _, err := c.ChatCompletion(chatReq()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != time.Second {
		t.Fatalf("sleeps = %v, want the 503's 1s Retry-After", *slept)
	}
}

func TestClientDeadlineCutsRetryLoopShort(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	// Ten 500s scripted, ten retries allowed, but only 50ms of deadline
	// against a 40ms base backoff: the loop must give up early rather
	// than sleep into a deadline it cannot make.
	script := make([]resilience.ChaosStep, 10)
	for i := range script {
		script[i] = resilience.ChaosStep{Status: 500}
	}
	ct := &resilience.ChaosTransport{Script: script}
	c, err := NewClient(ClientConfig{
		BaseURL:    srv.URL,
		MaxRetries: 10,
		Backoff:    40 * time.Millisecond,
		HTTPClient: &http.Client{Transport: ct, Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.ChatCompletionContext(ctx, chatReq())
	if err == nil {
		t.Fatal("want failure under a persistent 500 storm")
	}
	if !strings.Contains(err.Error(), "500") {
		t.Fatalf("err = %v, want the descriptive 500 error, not a bare deadline", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retry loop ran %v past a 50ms deadline", elapsed)
	}
	if ct.Calls() >= 10 {
		t.Fatalf("transport calls = %d; the deadline should have cut the loop well short", ct.Calls())
	}
}

func TestClientRetryBudgetCutsLoopShort(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	// A 60ms budget against a 40ms base backoff: real sleeps, so the
	// first retry (≤40ms) may fit but the loop must stop well before
	// the ten allowed attempts.
	script := make([]resilience.ChaosStep, 10)
	for i := range script {
		script[i] = resilience.ChaosStep{Status: 500}
	}
	ct := &resilience.ChaosTransport{Script: script}
	c, err := NewClient(ClientConfig{
		BaseURL:     srv.URL,
		MaxRetries:  10,
		Backoff:     40 * time.Millisecond,
		RetryBudget: 60 * time.Millisecond,
		HTTPClient:  &http.Client{Transport: ct, Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.ChatCompletion(chatReq()); err == nil {
		t.Fatal("want failure under a persistent 500 storm")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("budgeted loop ran %v", elapsed)
	}
	if ct.Calls() >= 10 {
		t.Fatalf("transport calls = %d; the budget should have cut the loop short", ct.Calls())
	}
}

func TestClientNeverRetriesTerminal400(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c, ct, slept := chaosClient(t, srv.URL, ClientConfig{MaxRetries: 5, Backoff: time.Millisecond},
		resilience.ChaosStep{Status: 400, Body: `{"error":{"message":"bad request","type":"invalid_request_error"}}`},
	)
	_, err := c.ChatCompletion(chatReq())
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err = %v, want the 400 surfaced", err)
	}
	if ct.Calls() != 1 {
		t.Fatalf("transport calls = %d — a terminal 400 must never be retried", ct.Calls())
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v before giving up on a terminal error", *slept)
	}
}

func TestClientRecoversAfterDropAnd500Burst(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c, ct, _ := chaosClient(t, srv.URL, ClientConfig{MaxRetries: 4, Backoff: time.Millisecond},
		resilience.ChaosStep{Drop: true},
		resilience.ChaosStep{Status: 500},
		resilience.ChaosStep{Status: 502},
	)
	resp, err := c.ChatCompletion(chatReq())
	if err != nil {
		t.Fatalf("want recovery on attempt 4, got %v", err)
	}
	if len(resp.Choices) == 0 || resp.Choices[0].Message.Content == "" {
		t.Fatal("empty recovered response")
	}
	if ct.Calls() != 4 {
		t.Fatalf("transport calls = %d, want 4 (drop, 500, 502, success)", ct.Calls())
	}
}

func TestClientBreakerStopsHammeringDeadBackend(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	script := make([]resilience.ChaosStep, 20)
	for i := range script {
		script[i] = resilience.ChaosStep{Drop: true}
	}
	c, ct, _ := chaosClient(t, srv.URL,
		ClientConfig{MaxRetries: 0, Backoff: time.Millisecond, BreakerThreshold: 2, BreakerCooldown: time.Hour},
		script...)
	// Two real failures open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := c.ChatCompletion(chatReq()); err == nil {
			t.Fatal("dead backend should fail")
		}
	}
	if got := c.BreakerStats().State; got != "open" {
		t.Fatalf("breaker state = %q, want open", got)
	}
	// Subsequent calls fail fast without touching the transport.
	before := ct.Calls()
	for i := 0; i < 5; i++ {
		_, err := c.ChatCompletion(chatReq())
		if !errors.Is(err, resilience.ErrOpen) {
			t.Fatalf("call %d: err = %v, want ErrOpen fast-fail", i, err)
		}
	}
	if ct.Calls() != before {
		t.Fatalf("open breaker still reached the transport: %d -> %d calls", before, ct.Calls())
	}
	if rej := c.BreakerStats().Rejections; rej != 5 {
		t.Fatalf("rejections = %d, want 5", rej)
	}
}

func TestClientBreakerHalfOpenProbeRecovers(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c, ct, _ := chaosClient(t, srv.URL,
		ClientConfig{MaxRetries: 0, Backoff: time.Millisecond, BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond},
		resilience.ChaosStep{Drop: true},
	)
	if _, err := c.ChatCompletion(chatReq()); err == nil {
		t.Fatal("scripted drop should fail")
	}
	if got := c.BreakerStats().State; got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	time.Sleep(25 * time.Millisecond) // cooldown elapses
	// The script is exhausted, so the half-open probe passes through to
	// the healthy upstream and closes the circuit.
	if _, err := c.ChatCompletion(chatReq()); err != nil {
		t.Fatalf("probe should succeed against recovered upstream: %v", err)
	}
	st := c.BreakerStats()
	if st.State != "closed" || st.Probes != 1 {
		t.Fatalf("stats = %+v, want closed after one successful probe", st)
	}
	if ct.Calls() != 2 {
		t.Fatalf("transport calls = %d, want 2", ct.Calls())
	}
}

func TestClientConfigurableTimeout(t *testing.T) {
	// The hard-coded 30s default is now ClientConfig.Timeout: a hanging
	// upstream must fail within the configured bound.
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(srv.Close)
	c, err := NewClient(ClientConfig{BaseURL: srv.URL, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.ChatCompletion(chatReq()); err == nil {
		t.Fatal("hanging upstream should time out")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Timeout=50ms took %v", elapsed)
	}
}
