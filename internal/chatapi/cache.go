package chatapi

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe LRU of completed chat responses.
// The simulated models are deterministic for a fixed seed, so caching is
// semantically transparent; on a real endpoint the same cache keyed on
// (model, messages, seed) would serve seeded replays.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key  string
	resp ChatResponse
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns a cached response and whether it was present.
func (c *lruCache) get(key string) (ChatResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return ChatResponse{}, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).resp, true
}

// put stores a response, evicting the least recently used entry when
// full.
func (c *lruCache) put(key string, resp ChatResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns hit/miss counters.
func (c *lruCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
