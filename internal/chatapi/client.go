package chatapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/simllm"
)

// ClientConfig configures a chat-completions client.
type ClientConfig struct {
	// BaseURL is the endpoint root, e.g. "http://localhost:9090".
	BaseURL string
	// APIKey is sent as a bearer token; empty means anonymous.
	APIKey string
	// MaxRetries bounds retry attempts on 429/5xx responses and
	// transport errors.
	MaxRetries int
	// Backoff is the base delay between retries (exponential); tests
	// set it to ~0.
	Backoff time.Duration
	// HTTPClient overrides the transport; nil uses a 30s-timeout client.
	HTTPClient *http.Client
}

// Client calls a chat-completions endpoint with bounded retries — the
// production shim any real PAS deployment needs in front of a public
// LLM API.
type Client struct {
	cfg ClientConfig
}

// NewClient validates the configuration.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("chatapi: empty base URL")
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("chatapi: MaxRetries must be >= 0, got %d", cfg.MaxRetries)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 200 * time.Millisecond
	}
	return &Client{cfg: cfg}, nil
}

// ChatCompletion performs one completion request, retrying retryable
// failures.
func (c *Client) ChatCompletion(req ChatRequest) (ChatResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ChatResponse{}, fmt.Errorf("chatapi: encoding request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Backoff << uint(attempt-1))
		}
		resp, retryable, err := c.try(body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return ChatResponse{}, lastErr
}

func (c *Client) try(body []byte) (ChatResponse, bool, error) {
	httpReq, err := http.NewRequest(http.MethodPost, c.cfg.BaseURL+"/v1/chat/completions", bytes.NewReader(body))
	if err != nil {
		return ChatResponse{}, false, fmt.Errorf("chatapi: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.cfg.APIKey != "" {
		httpReq.Header.Set("Authorization", "Bearer "+c.cfg.APIKey)
	}
	resp, err := c.cfg.HTTPClient.Do(httpReq)
	if err != nil {
		return ChatResponse{}, true, fmt.Errorf("chatapi: transport: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return ChatResponse{}, true, fmt.Errorf("chatapi: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		retryable := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
		var e apiError
		if json.Unmarshal(raw, &e) == nil && e.Error.Message != "" {
			return ChatResponse{}, retryable, fmt.Errorf("chatapi: %s (%d): %s", e.Error.Type, resp.StatusCode, e.Error.Message)
		}
		return ChatResponse{}, retryable, fmt.Errorf("chatapi: status %d", resp.StatusCode)
	}
	var out ChatResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return ChatResponse{}, false, fmt.Errorf("chatapi: decoding response: %w", err)
	}
	if len(out.Choices) == 0 {
		return ChatResponse{}, false, fmt.Errorf("chatapi: response has no choices")
	}
	return out, false, nil
}

// Models lists the models the endpoint serves.
func (c *Client) Models() ([]string, error) {
	resp, err := c.cfg.HTTPClient.Get(c.cfg.BaseURL + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("chatapi: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("chatapi: status %d", resp.StatusCode)
	}
	var out struct {
		Data []struct {
			ID string `json:"id"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("chatapi: decoding models: %w", err)
	}
	names := make([]string, len(out.Data))
	for i, d := range out.Data {
		names[i] = d.ID
	}
	return names, nil
}

// Remote adapts one served model behind a Client to the simllm chat
// interface, so library code (pas.System.Enhance in particular) can drive
// a model over HTTP exactly like an in-process one.
type Remote struct {
	client *Client
	model  string
}

// NewRemote binds a client to one model name.
func NewRemote(client *Client, model string) (*Remote, error) {
	if client == nil {
		return nil, fmt.Errorf("chatapi: nil client")
	}
	if model == "" {
		return nil, fmt.Errorf("chatapi: empty model name")
	}
	return &Remote{client: client, model: model}, nil
}

// Name returns the remote model's name.
func (r *Remote) Name() string { return r.model }

// Chat implements the simllm chat signature over HTTP.
func (r *Remote) Chat(messages []simllm.Message, opt simllm.Options) (string, error) {
	req := ChatRequest{Model: r.model, Temperature: opt.Temperature, Seed: opt.Salt}
	for _, m := range messages {
		req.Messages = append(req.Messages, Message{Role: m.Role, Content: m.Content})
	}
	resp, err := r.client.ChatCompletion(req)
	if err != nil {
		return "", err
	}
	return resp.Choices[0].Message.Content, nil
}
