package chatapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simllm"
)

// ClientConfig configures a chat-completions client.
type ClientConfig struct {
	// BaseURL is the endpoint root, e.g. "http://localhost:9090".
	BaseURL string
	// APIKey is sent as a bearer token; empty means anonymous.
	APIKey string
	// MaxRetries bounds retry attempts on retryable failures (429/5xx
	// responses and transport errors). Terminal 4xx responses are never
	// retried.
	MaxRetries int
	// Backoff is the base delay of the capped full-jitter exponential
	// between retries; a server Retry-After header overrides it. Tests
	// set it to ~0.
	Backoff time.Duration
	// MaxBackoff caps a single retry sleep. Default 2s.
	MaxBackoff time.Duration
	// RetryBudget bounds the whole call — attempts plus sleeps; 0 means
	// only the context deadline bounds it.
	RetryBudget time.Duration
	// Timeout is the default HTTP client's total per-attempt timeout,
	// used only when HTTPClient is nil. Default 30s.
	Timeout time.Duration
	// AttemptTimeout bounds each attempt via context, independent of
	// the transport-level Timeout; 0 disables it. Unlike Timeout it
	// also applies to caller-provided HTTPClients.
	AttemptTimeout time.Duration
	// BreakerThreshold, when > 0, puts a circuit breaker in front of
	// this backend: after that many consecutive failed calls the client
	// fails fast with resilience.ErrOpen instead of re-dialing a dead
	// endpoint, probing once per BreakerCooldown window.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open window. Default 5s.
	BreakerCooldown time.Duration
	// HedgeAfter, when > 0, races a second identical request once the
	// first has been in flight that long (adapting upward to the
	// observed p95). Only enable it against idempotent upstreams:
	// hedging duplicates requests by design.
	HedgeAfter time.Duration
	// HTTPClient overrides the transport; nil uses a client with
	// Timeout as its total timeout.
	HTTPClient *http.Client
}

// Client calls a chat-completions endpoint with bounded, deadline-aware
// retries — the production shim any real PAS deployment needs in front
// of a public LLM API.
type Client struct {
	cfg     ClientConfig
	breaker *resilience.Breaker // nil when BreakerThreshold == 0
	hedger  *resilience.Hedger  // nil when HedgeAfter == 0
	// sleep is the retry sleeper; tests replace it to observe the
	// schedule without real waiting.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient validates the configuration.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("chatapi: empty base URL")
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("chatapi: MaxRetries must be >= 0, got %d", cfg.MaxRetries)
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("chatapi: Timeout must be >= 0, got %v", cfg.Timeout)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: cfg.Timeout}
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 200 * time.Millisecond
	}
	c := &Client{cfg: cfg, sleep: resilience.SleepContext}
	if cfg.BreakerThreshold > 0 {
		c.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
		})
	}
	if cfg.HedgeAfter > 0 {
		c.hedger = &resilience.Hedger{MinDelay: cfg.HedgeAfter}
	}
	return c, nil
}

// BreakerStats reports the backend breaker's snapshot; zero-valued when
// no breaker is configured.
func (c *Client) BreakerStats() resilience.BreakerStats {
	if c.breaker == nil {
		return resilience.BreakerStats{}
	}
	return c.breaker.Stats()
}

// RegisterMetrics exposes the client's backend-breaker counters on reg
// under the pas_chatapi_ namespace, read at scrape time. Without a
// breaker it registers nothing.
func (c *Client) RegisterMetrics(reg *obs.Registry) {
	if c.breaker == nil {
		return
	}
	reg.RegisterCollector(func(e *obs.Emitter) {
		s := c.breaker.Stats()
		state := 0.0
		switch s.State {
		case "half-open":
			state = 1
		case "open":
			state = 2
		}
		e.Gauge("pas_chatapi_breaker_state", "Backend breaker state (0 closed, 1 half-open, 2 open).", state)
		e.Counter("pas_chatapi_breaker_failures_total", "Failed backend calls recorded by the breaker.", float64(s.Failures))
		e.Counter("pas_chatapi_breaker_opens_total", "Times the backend breaker opened.", float64(s.Opens))
		e.Counter("pas_chatapi_breaker_rejections_total", "Calls rejected by the open breaker.", float64(s.Rejections))
	})
}

// policy assembles the retry schedule for one call.
func (c *Client) policy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts: c.cfg.MaxRetries + 1,
		BaseDelay:   c.cfg.Backoff,
		MaxDelay:    c.cfg.MaxBackoff,
		Budget:      c.cfg.RetryBudget,
		Sleep:       c.sleep,
	}
}

// ChatCompletion performs one completion request, retrying retryable
// failures. It is ChatCompletionContext without a deadline.
func (c *Client) ChatCompletion(req ChatRequest) (ChatResponse, error) {
	return c.ChatCompletionContext(context.Background(), req)
}

// ChatCompletionContext performs one completion request under ctx.
// Retryable failures (transport errors, 5xx) retry with capped
// full-jitter backoff; overload answers (429/503) wait out the server's
// Retry-After when it sends one; terminal 4xx answers return
// immediately. The context deadline bounds the whole retry loop — the
// client never sleeps into a deadline it cannot make.
func (c *Client) ChatCompletionContext(ctx context.Context, req ChatRequest) (ChatResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ChatResponse{}, fmt.Errorf("chatapi: encoding request: %w", err)
	}
	ctx, span := obs.StartSpan(ctx, "chatapi.chat_completion")
	defer span.End()
	span.SetAttr("model", req.Model)
	var done func(bool)
	if c.breaker != nil {
		var berr error
		done, berr = c.breaker.Allow()
		if berr != nil {
			err := fmt.Errorf("chatapi: backend %s: %w", c.cfg.BaseURL, berr)
			span.SetError(err)
			return ChatResponse{}, err
		}
	}
	resp, err := resilience.DoValue(ctx, c.policy(), func(ctx context.Context) (ChatResponse, error) {
		return resilience.Hedge(ctx, c.hedger, func(ctx context.Context) (ChatResponse, error) {
			return c.try(ctx, body)
		})
	})
	if done != nil {
		// Terminal answers (4xx) mean the backend is up and judging our
		// request; only transport faults, 5xx, and overload count
		// against its health.
		done(err == nil || resilience.Classify(err) == resilience.Terminal)
	}
	if err != nil {
		span.SetError(err)
	}
	return resp, err
}

// try performs a single attempt. Errors come back classified for the
// retry executor: terminal for 4xx (except 429), overload with the
// server's Retry-After hint for 429/503, plain retryable for transport
// faults and other 5xx.
func (c *Client) try(ctx context.Context, body []byte) (ChatResponse, error) {
	parent := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/v1/chat/completions", bytes.NewReader(body))
	if err != nil {
		return ChatResponse{}, resilience.AsTerminal(fmt.Errorf("chatapi: %w", err))
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.cfg.APIKey != "" {
		httpReq.Header.Set("Authorization", "Bearer "+c.cfg.APIKey)
	}
	// Propagate the trace so the backend's spans join this request's
	// trace instead of starting fresh roots.
	obs.Inject(ctx, httpReq.Header)
	resp, err := c.cfg.HTTPClient.Do(httpReq)
	if err != nil {
		if parentErr := parent.Err(); parentErr != nil {
			// The caller's context ended mid-flight; retrying cannot help.
			return ChatResponse{}, fmt.Errorf("chatapi: %w", parentErr)
		}
		// A per-attempt timeout or transport fault: explicitly
		// retryable, even though the chain may wrap DeadlineExceeded
		// (only the attempt's clock ran out, not the caller's).
		return ChatResponse{}, resilience.AsRetryable(fmt.Errorf("chatapi: transport: %w", err))
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		if parentErr := parent.Err(); parentErr != nil {
			return ChatResponse{}, fmt.Errorf("chatapi: %w", parentErr)
		}
		return ChatResponse{}, resilience.AsRetryable(fmt.Errorf("chatapi: reading response: %w", err))
	}
	if resp.StatusCode != http.StatusOK {
		return ChatResponse{}, statusError(resp, raw)
	}
	var out ChatResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return ChatResponse{}, resilience.AsTerminal(fmt.Errorf("chatapi: decoding response: %w", err))
	}
	if len(out.Choices) == 0 {
		return ChatResponse{}, resilience.AsTerminal(fmt.Errorf("chatapi: response has no choices"))
	}
	return out, nil
}

// statusError converts a non-200 answer into a classified error.
func statusError(resp *http.Response, raw []byte) error {
	status := resp.StatusCode
	base := fmt.Errorf("chatapi: status %d", status)
	var e apiError
	if json.Unmarshal(raw, &e) == nil && e.Error.Message != "" {
		base = fmt.Errorf("chatapi: %s (%d): %s", e.Error.Type, status, e.Error.Message)
	}
	switch {
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		err := resilience.AsOverload(base)
		if after, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			err = resilience.WithRetryAfter(err, after)
		}
		return err
	case status >= 500:
		return base // retryable
	default:
		return resilience.AsTerminal(base) // 4xx: our request is wrong; repeating won't fix it
	}
}

// parseRetryAfter reads a Retry-After header: delay-seconds or an HTTP
// date.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// Models lists the models the endpoint serves.
func (c *Client) Models() ([]string, error) {
	resp, err := c.cfg.HTTPClient.Get(c.cfg.BaseURL + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("chatapi: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("chatapi: status %d", resp.StatusCode)
	}
	var out struct {
		Data []struct {
			ID string `json:"id"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("chatapi: decoding models: %w", err)
	}
	names := make([]string, len(out.Data))
	for i, d := range out.Data {
		names[i] = d.ID
	}
	return names, nil
}

// Remote adapts one served model behind a Client to the simllm chat
// interface, so library code (pas.System.Enhance in particular) can drive
// a model over HTTP exactly like an in-process one.
type Remote struct {
	client *Client
	model  string
}

// NewRemote binds a client to one model name.
func NewRemote(client *Client, model string) (*Remote, error) {
	if client == nil {
		return nil, fmt.Errorf("chatapi: nil client")
	}
	if model == "" {
		return nil, fmt.Errorf("chatapi: empty model name")
	}
	return &Remote{client: client, model: model}, nil
}

// Name returns the remote model's name.
func (r *Remote) Name() string { return r.model }

// Chat implements the simllm chat signature over HTTP.
func (r *Remote) Chat(messages []simllm.Message, opt simllm.Options) (string, error) {
	return r.ChatContext(context.Background(), messages, opt)
}

// ChatContext is Chat under a context: the deadline bounds the whole
// retry loop and a cancellation aborts the in-flight attempt.
func (r *Remote) ChatContext(ctx context.Context, messages []simllm.Message, opt simllm.Options) (string, error) {
	req := ChatRequest{Model: r.model, Temperature: opt.Temperature, Seed: opt.Salt}
	for _, m := range messages {
		req.Messages = append(req.Messages, Message{Role: m.Role, Content: m.Content})
	}
	resp, err := r.client.ChatCompletionContext(ctx, req)
	if err != nil {
		return "", err
	}
	return resp.Choices[0].Message.Content, nil
}
