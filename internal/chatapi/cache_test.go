package chatapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"repro/internal/simllm"
)

func TestLRUBasics(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", ChatResponse{ID: "ra"})
	c.put("b", ChatResponse{ID: "rb"})
	if got, ok := c.get("a"); !ok || got.ID != "ra" {
		t.Fatal("a missing")
	}
	// a is now most recent; inserting c evicts b.
	c.put("c", ChatResponse{ID: "rc"})
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should survive")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	hits, misses := c.stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put("k", ChatResponse{ID: "v1"})
	c.put("k", ChatResponse{ID: "v2"})
	if got, _ := c.get("k"); got.ID != "v2" {
		t.Fatal("update lost")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
}

// TestLRUCapacityProperty: the cache never exceeds its capacity, for any
// insertion sequence.
func TestLRUCapacityProperty(t *testing.T) {
	f := func(keys []uint8, capRaw uint8) bool {
		capacity := int(capRaw)%10 + 1
		c := newLRUCache(capacity)
		for _, k := range keys {
			c.put(fmt.Sprint(k%32), ChatResponse{})
			if c.len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestServerCacheServesIdenticalResponses(t *testing.T) {
	s, err := NewServer(ServerConfig{CacheSize: 16, Tokenizer: testTokenizer(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestHTTP(t, s)
	c := testClient(t, srv)

	req := ChatRequest{Model: simllm.GPT40613, Seed: "cache",
		Messages: []Message{{Role: "user", Content: "Explain how tides form."}}}
	first, err := c.ChatCompletion(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.ChatCompletion(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != second.ID || first.Choices[0].Message.Content != second.Choices[0].Message.Content ||
		first.Usage != second.Usage {
		t.Fatal("cached response differs from original")
	}
	hits, misses := s.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// Different seed must miss.
	req.Seed = "other"
	if _, err := c.ChatCompletion(req); err != nil {
		t.Fatal(err)
	}
	if _, misses := s.CacheStats(); misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
}

func TestServerCacheValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{CacheSize: -1}); err == nil {
		t.Fatal("negative cache size should fail")
	}
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if h, m := s.CacheStats(); h != 0 || m != 0 {
		t.Fatal("disabled cache should report zeros")
	}
}

// TestStatusSurfacesCacheCounters: the /v1/status endpoint must expose
// the lruCache hit/miss counters so operators can see cache
// effectiveness without shell access.
func TestStatusSurfacesCacheCounters(t *testing.T) {
	s, err := NewServer(ServerConfig{CacheSize: 16, Tokenizer: testTokenizer(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestHTTP(t, s)
	c := testClient(t, srv)

	req := ChatRequest{Model: simllm.GPT40613, Seed: "status",
		Messages: []Message{{Role: "user", Content: "Explain how tides form."}}}
	for i := 0; i < 2; i++ {
		if _, err := c.ChatCompletion(req); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Cache.Enabled || st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("status cache block = %+v, want enabled with 1 hit / 1 miss / 1 entry", st.Cache)
	}
	if st.Models == 0 {
		t.Fatalf("status = %+v, want model count", st)
	}
}

// TestStatusWithCacheDisabled reports a disabled cache rather than
// fake zeros-with-enabled.
func TestStatusWithCacheDisabled(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/status", nil))
	var st Status
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Enabled || st.Cache.Entries != 0 {
		t.Fatalf("disabled cache reported as %+v", st.Cache)
	}
}
