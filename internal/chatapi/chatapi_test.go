package chatapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/simllm"
	"repro/internal/tokenizer"
)

var (
	tokOnce sync.Once
	tok     *tokenizer.Tokenizer
	tokErr  error
)

func testTokenizer(t testing.TB) *tokenizer.Tokenizer {
	t.Helper()
	tokOnce.Do(func() {
		cfg := corpus.DefaultConfig()
		cfg.Size = 800
		pool, err := corpus.Generate(cfg)
		if err != nil {
			tokErr = err
			return
		}
		texts := make([]string, len(pool))
		for i, p := range pool {
			texts[i] = p.Text
		}
		tok, tokErr = tokenizer.Train(texts, tokenizer.Config{VocabSize: 512, MinPairFreq: 2})
	})
	if tokErr != nil {
		t.Fatal(tokErr)
	}
	return tok
}

func testServer(t testing.TB, cfg ServerConfig) *httptest.Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func testClient(t testing.TB, url string) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{BaseURL: url, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Models: []string{"nope"}}); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := NewServer(ServerConfig{RatePerMinute: -1}); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Error("empty URL should fail")
	}
	if _, err := NewClient(ClientConfig{BaseURL: "http://x", MaxRetries: -1}); err == nil {
		t.Error("negative retries should fail")
	}
}

func TestChatCompletionEndToEnd(t *testing.T) {
	srv := testServer(t, ServerConfig{Tokenizer: testTokenizer(t)})
	c := testClient(t, srv.URL)

	resp, err := c.ChatCompletion(ChatRequest{
		Model:    simllm.GPT40613,
		Messages: []Message{{Role: "user", Content: "Explain how photosynthesis works."}},
		Seed:     "s1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != simllm.GPT40613 {
		t.Errorf("model = %q", resp.Model)
	}
	if len(resp.Choices) != 1 || resp.Choices[0].Message.Content == "" {
		t.Fatalf("bad choices: %+v", resp.Choices)
	}
	if resp.Choices[0].FinishReason != "stop" {
		t.Errorf("finish reason %q", resp.Choices[0].FinishReason)
	}
	if resp.Usage.PromptTokens == 0 || resp.Usage.CompletionTokens == 0 {
		t.Errorf("usage not metered: %+v", resp.Usage)
	}
	if resp.Usage.TotalTokens != resp.Usage.PromptTokens+resp.Usage.CompletionTokens {
		t.Errorf("usage total inconsistent: %+v", resp.Usage)
	}
	if !strings.HasPrefix(resp.ID, "chatcmpl-") {
		t.Errorf("id = %q", resp.ID)
	}

	// Determinism across HTTP for a fixed seed.
	again, err := c.ChatCompletion(ChatRequest{
		Model:    simllm.GPT40613,
		Messages: []Message{{Role: "user", Content: "Explain how photosynthesis works."}},
		Seed:     "s1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Choices[0].Message.Content != resp.Choices[0].Message.Content {
		t.Error("same seed should reproduce the completion")
	}
	if again.ID != resp.ID {
		t.Error("same request should get same id (no hidden clock)")
	}
}

func TestChatCompletionMatchesInProcessModel(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c := testClient(t, srv.URL)
	prompt := "Give me advice on keeping houseplants alive."
	resp, err := c.ChatCompletion(ChatRequest{
		Model:    simllm.Qwen272B,
		Messages: []Message{{Role: "user", Content: prompt}},
		Seed:     "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := simllm.MustModel(simllm.Qwen272B).Chat(
		[]simllm.Message{{Role: "user", Content: prompt}}, simllm.Options{Salt: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Choices[0].Message.Content != local {
		t.Fatal("HTTP and in-process responses must be identical")
	}
}

func TestServerErrors(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c := testClient(t, srv.URL)
	if _, err := c.ChatCompletion(ChatRequest{Model: "no-such-model",
		Messages: []Message{{Role: "user", Content: "hi"}}}); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := c.ChatCompletion(ChatRequest{Model: simllm.GPT40613}); err == nil {
		t.Error("missing messages should fail")
	}
	if _, err := c.ChatCompletion(ChatRequest{Model: simllm.GPT40613,
		Messages: []Message{{Role: "martian", Content: "hi"}}}); err == nil {
		t.Error("bad role should fail")
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/chat/completions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", resp.StatusCode)
	}
}

func TestModelsEndpoint(t *testing.T) {
	srv := testServer(t, ServerConfig{Models: []string{simllm.GPT4Turbo, simllm.Qwen27B}})
	c := testClient(t, srv.URL)
	models, err := c.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("models = %v", models)
	}
	if models[0] != simllm.GPT4Turbo || models[1] != simllm.Qwen27B {
		t.Fatalf("models = %v (want sorted roster)", models)
	}
}

func TestRateLimitPerKey(t *testing.T) {
	now := time.Unix(1000, 0)
	srv := testServer(t, ServerConfig{RatePerMinute: 2, Now: func() time.Time { return now }})
	keyed := func(key string) *Client {
		c, err := NewClient(ClientConfig{BaseURL: srv.URL, APIKey: key, Backoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	req := ChatRequest{Model: simllm.GPT40613, Messages: []Message{{Role: "user", Content: "hi there"}}}

	a := keyed("alice")
	for i := 0; i < 2; i++ {
		if _, err := a.ChatCompletion(req); err != nil {
			t.Fatalf("request %d should pass: %v", i, err)
		}
	}
	if _, err := a.ChatCompletion(req); err == nil {
		t.Fatal("third request should be limited")
	} else if !strings.Contains(err.Error(), "429") {
		t.Fatalf("want 429, got %v", err)
	}
	// A different key has its own budget.
	if _, err := keyed("bob").ChatCompletion(req); err != nil {
		t.Fatalf("other key should pass: %v", err)
	}
	// Window reset restores the budget.
	now = now.Add(2 * time.Minute)
	if _, err := a.ChatCompletion(req); err != nil {
		t.Fatalf("after window reset: %v", err)
	}
}

func TestClientRetriesOn5xxThenSucceeds(t *testing.T) {
	var mu sync.Mutex
	fails := 2
	real, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h := real.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		f := fails
		if fails > 0 {
			fails--
		}
		mu.Unlock()
		if f > 0 {
			http.Error(w, `{"error":{"message":"boom","type":"server_error"}}`, http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c, err := NewClient(ClientConfig{BaseURL: srv.URL, MaxRetries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.ChatCompletion(ChatRequest{Model: simllm.GPT40613,
		Messages: []Message{{Role: "user", Content: "hello"}}, Seed: "r"})
	if err != nil {
		t.Fatalf("retries should recover: %v", err)
	}
	if resp.Choices[0].Message.Content == "" {
		t.Fatal("empty content after retry")
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":{"message":"bad","type":"invalid_request_error"}}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	c, err := NewClient(ClientConfig{BaseURL: srv.URL, MaxRetries: 5, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ChatCompletion(ChatRequest{Model: "m", Messages: []Message{{Role: "user", Content: "x"}}}); err == nil {
		t.Fatal("4xx should fail")
	}
	if calls != 1 {
		t.Fatalf("4xx retried %d times", calls)
	}
}

func TestRemoteAdapter(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c := testClient(t, srv.URL)
	if _, err := NewRemote(nil, "x"); err == nil {
		t.Error("nil client should fail")
	}
	if _, err := NewRemote(c, ""); err == nil {
		t.Error("empty model should fail")
	}
	remote, err := NewRemote(c, simllm.GPT4Turbo)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Name() != simllm.GPT4Turbo {
		t.Error("name")
	}
	out, err := remote.Chat([]simllm.Message{{Role: "user", Content: "Explain the science of fermentation."}},
		simllm.Options{Salt: "remote"})
	if err != nil {
		t.Fatal(err)
	}
	local, _ := simllm.MustModel(simllm.GPT4Turbo).Chat(
		[]simllm.Message{{Role: "user", Content: "Explain the science of fermentation."}},
		simllm.Options{Salt: "remote"})
	if out != local {
		t.Fatal("remote adapter must match in-process model")
	}
}

func TestUsageMetersAugmentationOverhead(t *testing.T) {
	// The point of metering: an augmented request costs measurably more
	// prompt tokens than the bare one.
	srv := testServer(t, ServerConfig{Tokenizer: testTokenizer(t)})
	c := testClient(t, srv.URL)
	bare := ChatRequest{Model: simllm.GPT40613, Seed: "u",
		Messages: []Message{{Role: "user", Content: "Explain how tides form."}}}
	aug := ChatRequest{Model: simllm.GPT40613, Seed: "u",
		Messages: []Message{{Role: "user", Content: "Explain how tides form.\nPlease provide background; cover all aspects."}}}
	rb, err := c.ChatCompletion(bare)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := c.ChatCompletion(aug)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Usage.PromptTokens <= rb.Usage.PromptTokens {
		t.Fatalf("augmented prompt tokens %d should exceed bare %d",
			ra.Usage.PromptTokens, rb.Usage.PromptTokens)
	}
}

func BenchmarkChatCompletion(b *testing.B) {
	srv := testServer(b, ServerConfig{Tokenizer: testTokenizer(b)})
	c := testClient(b, srv.URL)
	req := ChatRequest{Model: simllm.GPT40613, Seed: "bench",
		Messages: []Message{{Role: "user", Content: "Explain how photosynthesis works."}}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.ChatCompletion(req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStreamingAssemblesFullCompletion(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c := testClient(t, srv.URL)
	req := ChatRequest{Model: simllm.GPT40613, Seed: "stream",
		Messages: []Message{{Role: "user", Content: "Explain how photosynthesis works."}}}

	var deltas []string
	streamed, err := c.ChatCompletionStream(req, func(d string) { deltas = append(deltas, d) })
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(deltas))
	}
	// The assembled stream must equal the non-streaming completion
	// modulo whitespace normalisation (chunks are word-joined).
	whole, err := c.ChatCompletion(req)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(s string) string { return strings.Join(strings.Fields(s), " ") }
	if norm(streamed) != norm(whole.Choices[0].Message.Content) {
		t.Fatalf("streamed content diverges:\n%q\nvs\n%q", norm(streamed), norm(whole.Choices[0].Message.Content))
	}
	if streamedWords(streamed) == 0 {
		t.Fatal("no words streamed")
	}
}

func TestStreamingErrorsStayJSON(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	c := testClient(t, srv.URL)
	if _, err := c.ChatCompletionStream(ChatRequest{Model: "nope",
		Messages: []Message{{Role: "user", Content: "hi"}}}, nil); err == nil {
		t.Fatal("unknown model should fail on the streaming path too")
	}
}

// newTestHTTP serves an existing Server (used when the test needs access
// to the Server value itself, e.g. for cache statistics).
func newTestHTTP(t testing.TB, s *Server) string {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}
