package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type item struct {
	I int    `json:"i"`
	S string `json:"s,omitempty"`
}

func openStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, "sha256:jj", false)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func appendItems(t *testing.T, s *Store, n int) {
	t.Helper()
	j, _, err := s.OpenJournal("items")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Append(item{I: i, S: "record"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func replay(t *testing.T, s *Store) ([]item, *Recovery) {
	t.Helper()
	j, rec, err := s.OpenJournal("items")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	out := make([]item, 0, len(rec.Records))
	for _, p := range rec.Records {
		var it item
		if err := json.Unmarshal(p, &it); err != nil {
			t.Fatalf("replayed record undecodable: %v", err)
		}
		out = append(out, it)
	}
	return out, rec
}

func TestJournalAppendReplay(t *testing.T) {
	s, _ := openStore(t)
	appendItems(t, s, 5)
	items, rec := replay(t, s)
	if rec.DroppedTail != 0 {
		t.Fatalf("clean journal reported %d dropped bytes", rec.DroppedTail)
	}
	if len(items) != 5 {
		t.Fatalf("replayed %d records, want 5", len(items))
	}
	for i, it := range items {
		if it.I != i {
			t.Fatalf("record %d has index %d", i, it.I)
		}
	}
}

// TestJournalTornTailDropped simulates a crash mid-append: the final
// line is truncated at an arbitrary byte. Replay must keep every
// complete record, drop the tail, and allow appending to continue.
func TestJournalTornTailDropped(t *testing.T) {
	s, dir := openStore(t)
	appendItems(t, s, 4)
	path := filepath.Join(dir, "items.journal")
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the last line.
	lines := bytes.SplitAfter(content, []byte("\n"))
	last := lines[len(lines)-2] // final newline makes the last split empty
	cut := len(content) - len(last)/2
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}

	items, rec := replay(t, s)
	if len(items) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(items))
	}
	if rec.DroppedTail == 0 {
		t.Fatal("torn tail not reported")
	}

	// The file must have been truncated back to a clean state so the
	// next append produces a valid journal.
	appendItems(t, s, 1)
	items, rec = replay(t, s)
	if rec.DroppedTail != 0 || len(items) != 4 {
		t.Fatalf("journal not clean after recovery: %d records, %d dropped", len(items), rec.DroppedTail)
	}
}

// TestJournalCorruptLastLineDropped flips a bit in the final record —
// a torn write that still ends in a newline. The checksum catches it
// and replay drops exactly that record.
func TestJournalCorruptLastLineDropped(t *testing.T) {
	s, dir := openStore(t)
	appendItems(t, s, 4)
	path := filepath.Join(dir, "items.journal")
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	content[len(content)-4] ^= 0x01
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	items, rec := replay(t, s)
	if len(items) != 3 {
		t.Fatalf("replayed %d records, want 3", len(items))
	}
	if rec.DroppedTail == 0 {
		t.Fatal("corrupt tail not reported")
	}
}

// TestJournalMidCorruptionRefused: damage anywhere before the final
// record means the log cannot be trusted, so replay must fail loudly
// rather than resume from a lie.
func TestJournalMidCorruptionRefused(t *testing.T) {
	s, dir := openStore(t)
	appendItems(t, s, 4)
	path := filepath.Join(dir, "items.journal")
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	content[5] ^= 0x01 // first record's checksum area
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = s.OpenJournal("items")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-journal corruption not refused: %v", err)
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	s, _ := openStore(t)
	j, _, err := s.OpenJournal("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(item{I: 1}); err == nil {
		t.Fatal("append after close should fail")
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	s, _ := openStore(t)
	j, _, err := s.OpenJournal("items")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				if err := j.Append(item{I: i*100 + k}); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	items, rec := replay(t, s)
	if len(items) != 40 || rec.DroppedTail != 0 {
		t.Fatalf("replayed %d records (%d dropped), want 40 clean", len(items), rec.DroppedTail)
	}
}

func TestRemoveJournal(t *testing.T) {
	s, dir := openStore(t)
	appendItems(t, s, 2)
	if err := s.RemoveJournal("items"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "items.journal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("journal file still present")
	}
	if err := s.RemoveJournal("items"); err != nil {
		t.Fatalf("removing a missing journal should be a no-op: %v", err)
	}
}

func TestEncodeDecodeLine(t *testing.T) {
	payload := []byte(`{"i":3,"s":"x"}`)
	line := EncodeLine(payload)
	if line[len(line)-1] != '\n' {
		t.Fatal("encoded line must end in newline")
	}
	got, err := DecodeLine(line[:len(line)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestDecodeLineRejectsDamage(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"short":          "abcd",
		"no separator":   "0123456789abcdef",
		"uppercase hex":  "DEADBEEF {}",
		"non-hex":        "zzzzzzzz {}",
		"bad checksum":   "00000000 {\"i\":1}",
		"truncated json": "83a1b2c3 {\"i\"",
	}
	for name, line := range cases {
		if _, err := DecodeLine([]byte(line)); err == nil {
			t.Errorf("%s: DecodeLine(%q) accepted damage", name, line)
		}
	}
}
