package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

const journalExt = ".journal"

// Journal is an append-only JSONL log of per-item results. Each line is
// `crc32(payload) in 8 hex digits, one space, compact JSON payload`.
// Appends are serialized and fsynced, so after Append returns the
// record survives a crash; a crash *during* an append leaves a torn
// tail that replay detects and drops. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int
	closed  bool
}

// Recovery reports what replaying an existing journal found.
type Recovery struct {
	// Records holds the decoded payload of every intact line, in
	// append order.
	Records [][]byte
	// DroppedTail is the number of bytes discarded from the end of the
	// file because the final line was torn or corrupt (a crash
	// mid-append). Zero means the journal was clean.
	DroppedTail int
}

// OpenJournal opens (creating if absent) the journal under name,
// replaying any existing records first. A torn or corrupt final line —
// the signature of a crash mid-append — is truncated away and counted
// in Recovery.DroppedTail; corruption before the final line means the
// log cannot be trusted and returns *CorruptError.
func (s *Store) OpenJournal(name string) (*Journal, *Recovery, error) {
	path := filepath.Join(s.dir, name+journalExt)
	rec := &Recovery{}
	content, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("checkpoint: reading journal %s: %w", name, err)
	}

	goodEnd := 0
	for off := 0; off < len(content); {
		nl := bytes.IndexByte(content[off:], '\n')
		if nl < 0 {
			// Unterminated final line: torn write.
			break
		}
		payload, err := DecodeLine(content[off : off+nl])
		if err != nil {
			// A bad line is only recoverable if nothing follows it.
			if off+nl+1 < len(content) {
				return nil, nil, &CorruptError{Path: path, Detail: fmt.Sprintf("record %d (offset %d): %v (followed by more records)", len(rec.Records), off, err)}
			}
			break
		}
		rec.Records = append(rec.Records, payload)
		off += nl + 1
		goodEnd = off
	}
	rec.DroppedTail = len(content) - goodEnd
	if rec.DroppedTail > 0 {
		if err := os.Truncate(path, int64(goodEnd)); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: truncating torn journal tail: %w", err)
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: opening journal %s: %w", name, err)
	}
	return &Journal{f: f, path: path, records: len(rec.Records)}, rec, nil
}

// RemoveJournal deletes the journal under name; missing is not an
// error. Call it after the stage's snapshot is committed.
func (s *Store) RemoveJournal(name string) error {
	err := os.Remove(filepath.Join(s.dir, name+journalExt))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("checkpoint: removing journal %s: %w", name, err)
	}
	return nil
}

// Append marshals v as compact JSON and commits it as one journal
// line. The record is durable (fsynced) when Append returns nil.
func (j *Journal) Append(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding journal record: %w", err)
	}
	line := EncodeLine(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: appending to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", j.path, err)
	}
	j.records++
	return nil
}

// Records returns how many records the journal holds (replayed plus
// appended).
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Close releases the journal file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", j.path, err)
	}
	return nil
}

// crcHexLen is the fixed width of the line checksum prefix.
const crcHexLen = 8

// EncodeLine frames one journal payload: 8 lowercase-hex CRC32 digits,
// a space, the payload, a newline. The payload must not contain a
// newline (compact JSON never does).
func EncodeLine(payload []byte) []byte {
	out := make([]byte, 0, crcHexLen+1+len(payload)+1)
	out = appendCRCHex(out, crc32.ChecksumIEEE(payload))
	out = append(out, ' ')
	out = append(out, payload...)
	out = append(out, '\n')
	return out
}

// DecodeLine parses one journal line (without its trailing newline)
// and returns the payload after verifying its checksum. Errors mean
// the line is torn or corrupt.
func DecodeLine(line []byte) ([]byte, error) {
	if len(line) < crcHexLen+1 {
		return nil, fmt.Errorf("line too short (%d bytes)", len(line))
	}
	if line[crcHexLen] != ' ' {
		return nil, errors.New("missing checksum separator")
	}
	want, err := parseCRCHex(line[:crcHexLen])
	if err != nil {
		return nil, err
	}
	payload := line[crcHexLen+1:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("checksum mismatch: line says %08x, payload is %08x", want, got)
	}
	return payload, nil
}

func appendCRCHex(dst []byte, crc uint32) []byte {
	const hexDigits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(crc>>uint(shift))&0xf])
	}
	return dst
}

func parseCRCHex(b []byte) (uint32, error) {
	var v uint32
	for _, c := range b {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			// Uppercase hex is rejected on purpose: the writer only
			// emits lowercase, so anything else is damage.
			return 0, fmt.Errorf("invalid checksum digit %q", c)
		}
		v = v<<4 | d
	}
	return v, nil
}
