package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

const (
	snapExt = ".snap"
	tempExt = ".tmp"
)

// snapHeader is the first line of a snapshot file; the payload follows
// verbatim. The CRC and size let a reader prove the payload is exactly
// what the writer committed.
type snapHeader struct {
	Format string `json:"format"`
	Name   string `json:"name"`
	CRC32  uint32 `json:"crc32"`
	Size   int    `json:"size"`
}

// WriteSnapshot atomically persists v (as JSON) under name. The write
// path is crash-safe: the content is written to a temp file, fsynced,
// renamed over the final name, and the directory is fsynced so the
// rename itself survives a crash. A reader therefore sees either the
// previous snapshot or the new one, never a mixture.
func (s *Store) WriteSnapshot(name string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding snapshot %s: %w", name, err)
	}
	return s.WriteSnapshotBytes(name, payload)
}

// WriteSnapshotBytes is WriteSnapshot for a pre-encoded payload (a
// saved model, for instance). The bytes are stored verbatim.
func (s *Store) WriteSnapshotBytes(name string, payload []byte) error {
	header := mustJSON(snapHeader{
		Format: FormatVersion,
		Name:   name,
		CRC32:  crc32.ChecksumIEEE(payload),
		Size:   len(payload),
	})
	content := make([]byte, 0, len(header)+1+len(payload))
	content = append(content, header...)
	content = append(content, '\n')
	content = append(content, payload...)
	return writeAtomic(s.snapPath(name), content)
}

// LoadSnapshot reads the snapshot written under name into v. It
// returns ok=false (and no error) when the snapshot does not exist,
// and *CorruptError when the file exists but fails verification — the
// caller should treat that stage as absent and rebuild it.
func (s *Store) LoadSnapshot(name string, v any) (ok bool, err error) {
	payload, ok, err := s.LoadSnapshotBytes(name)
	if err != nil || !ok {
		return false, err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return false, &CorruptError{Path: s.snapPath(name), Detail: fmt.Sprintf("decoding payload: %v", err)}
	}
	return true, nil
}

// LoadSnapshotBytes reads and verifies the raw payload written under
// name. Missing snapshots return ok=false with no error.
func (s *Store) LoadSnapshotBytes(name string) (payload []byte, ok bool, err error) {
	path := s.snapPath(name)
	content, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("checkpoint: reading snapshot %s: %w", name, err)
	}
	nl := bytes.IndexByte(content, '\n')
	if nl < 0 {
		return nil, false, &CorruptError{Path: path, Detail: "missing header line"}
	}
	var h snapHeader
	if err := json.Unmarshal(content[:nl], &h); err != nil {
		return nil, false, &CorruptError{Path: path, Detail: fmt.Sprintf("decoding header: %v", err)}
	}
	if h.Format != FormatVersion {
		return nil, false, &CorruptError{Path: path, Detail: fmt.Sprintf("format %q, want %q", h.Format, FormatVersion)}
	}
	if h.Name != name {
		return nil, false, &CorruptError{Path: path, Detail: fmt.Sprintf("snapshot name %q, want %q", h.Name, name)}
	}
	payload = content[nl+1:]
	if len(payload) != h.Size {
		return nil, false, &CorruptError{Path: path, Detail: fmt.Sprintf("payload is %d bytes, header says %d", len(payload), h.Size)}
	}
	if crc := crc32.ChecksumIEEE(payload); crc != h.CRC32 {
		return nil, false, &CorruptError{Path: path, Detail: fmt.Sprintf("payload crc32 %08x, header says %08x", crc, h.CRC32)}
	}
	return payload, true, nil
}

// RemoveSnapshot deletes the snapshot under name; missing is not an
// error.
func (s *Store) RemoveSnapshot(name string) error {
	err := os.Remove(s.snapPath(name))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("checkpoint: removing snapshot %s: %w", name, err)
	}
	return nil
}

func (s *Store) snapPath(name string) string {
	return filepath.Join(s.dir, name+snapExt)
}

// writeAtomic commits content to path via temp-write, fsync, rename,
// and directory fsync. On any failure the temp file is removed; the
// previous content of path, if any, is untouched.
func writeAtomic(path string, content []byte) (err error) {
	tmp := path + tempExt
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: creating %s: %w", tmp, err)
	}
	defer func() {
		if err != nil {
			if rmErr := os.Remove(tmp); rmErr != nil && !errors.Is(rmErr, fs.ErrNotExist) {
				err = errors.Join(err, rmErr)
			}
		}
	}()
	if _, err = f.Write(content); err != nil {
		err = errors.Join(fmt.Errorf("checkpoint: writing %s: %w", tmp, err), f.Close())
		return err
	}
	if err = f.Sync(); err != nil {
		err = errors.Join(fmt.Errorf("checkpoint: syncing %s: %w", tmp, err), f.Close())
		return err
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: committing %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-committed rename survives a
// crash. Filesystems that refuse to fsync directories are tolerated:
// the rename is still atomic, just not yet durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: opening %s: %w", dir, err)
	}
	syncErr := d.Sync()
	if err := d.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", dir, err)
	}
	if syncErr != nil && !errors.Is(syncErr, errors.ErrUnsupported) {
		return fmt.Errorf("checkpoint: syncing %s: %w", dir, syncErr)
	}
	return nil
}
