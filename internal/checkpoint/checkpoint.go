// Package checkpoint is a zero-dependency, crash-safe store for staged
// pipeline builds. It persists two kinds of state under one directory:
//
//   - Stage snapshots: whole-stage results (curated prompts, the
//     generated dataset, the trained model) written atomically —
//     write-temp → fsync → rename → fsync(dir) — so a reader never
//     observes a half-written stage. A CRC-checked header line detects
//     payload corruption.
//   - Journals: append-only JSONL logs for loops whose unit of work is
//     one item (the §3.2 Algorithm 1 generation loop). Each line
//     carries its own CRC32 so a crash mid-append is detected on
//     replay: a torn or corrupt *tail* line is dropped and the build
//     resumes at the exact item; corruption anywhere earlier is
//     refused outright.
//
// Every store is keyed by a fingerprint of the build configuration and
// seed. Resuming against a directory written under a different
// fingerprint fails with *StaleError instead of silently mixing two
// builds' state.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// FormatVersion identifies the on-disk layout. Bumping it invalidates
// every existing checkpoint (the fingerprint covers it).
const FormatVersion = "pas-checkpoint-v1"

// metaFile holds the store identity at the directory root.
const metaFile = "meta.json"

// meta is the persisted store identity.
type meta struct {
	Format      string `json:"format"`
	Fingerprint string `json:"fingerprint"`
}

// StaleError reports a resume attempt against a checkpoint written
// under a different configuration or seed.
type StaleError struct {
	Dir  string
	Have string // fingerprint found in the directory
	Want string // fingerprint of the requested build
}

func (e *StaleError) Error() string {
	return fmt.Sprintf("checkpoint: %s was written by a different build (checkpoint %s, requested %s); rerun without -resume to discard it, or restore the original config and seed",
		e.Dir, e.Have, e.Want)
}

// CorruptError reports unreadable checkpoint content (bad CRC, torn
// header, mid-journal damage). Snapshot corruption is recoverable by
// rebuilding the stage; mid-journal corruption is not.
type CorruptError struct {
	Path   string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: %s is corrupt: %s", e.Path, e.Detail)
}

// Store is one checkpoint directory. Methods are safe for sequential
// use from one build; individual journals serialize their own appends.
type Store struct {
	dir         string
	fingerprint string
}

// Open creates or reopens the store at dir for a build with the given
// fingerprint.
//
// With resume=false any prior checkpoint state in dir is discarded and
// a fresh store is initialised. With resume=true, existing state is
// kept — but only if its fingerprint matches; a mismatch returns
// *StaleError so two builds are never mixed. Resuming an empty or
// uninitialised directory is equivalent to a fresh start. Stray
// temporary files from an interrupted writer are removed either way.
func Open(dir, fingerprint string, resume bool) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if fingerprint == "" {
		return nil, errors.New("checkpoint: empty fingerprint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, fingerprint: fingerprint}

	existing, err := readMeta(dir)
	switch {
	case err != nil && !errors.Is(err, fs.ErrNotExist):
		return nil, err
	case err == nil && resume:
		if existing.Fingerprint != fingerprint {
			return nil, &StaleError{Dir: dir, Have: existing.Fingerprint, Want: fingerprint}
		}
	case err == nil && !resume:
		if err := s.reset(); err != nil {
			return nil, err
		}
	}
	if err := s.removeStrayTemps(); err != nil {
		return nil, err
	}
	if err := writeAtomic(filepath.Join(dir, metaFile), mustJSON(meta{Format: FormatVersion, Fingerprint: fingerprint})); err != nil {
		return nil, err
	}
	return s, nil
}

// Attach reopens an existing store without knowing its fingerprint —
// the consumer side (pastrain reading a pasgen checkpoint) trusts the
// directory as-is. It fails if the directory was never initialised.
func Attach(dir string) (*Store, error) {
	m, err := readMeta(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("checkpoint: %s holds no checkpoint (missing %s)", dir, metaFile)
		}
		return nil, err
	}
	s := &Store{dir: dir, fingerprint: m.Fingerprint}
	if err := s.removeStrayTemps(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// FingerprintID returns the fingerprint the store was opened with.
func (s *Store) FingerprintID() string { return s.fingerprint }

// reset removes every checkpoint artifact (meta, snapshots, journals)
// while leaving unrelated files in the directory alone.
func (s *Store) reset() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: reading %s: %w", s.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == metaFile || strings.HasSuffix(name, snapExt) ||
			strings.HasSuffix(name, journalExt) || strings.HasSuffix(name, tempExt) {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("checkpoint: resetting %s: %w", s.dir, err)
			}
		}
	}
	return nil
}

// removeStrayTemps deletes temp files left by a writer that crashed
// between create and rename — the half-renamed-snapshot case.
func (s *Store) removeStrayTemps() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: reading %s: %w", s.dir, err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tempExt) {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
				return fmt.Errorf("checkpoint: removing stray temp: %w", err)
			}
		}
	}
	return nil
}

func readMeta(dir string) (meta, error) {
	b, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return meta{}, err
	}
	var m meta
	if err := json.Unmarshal(b, &m); err != nil {
		return meta{}, &CorruptError{Path: filepath.Join(dir, metaFile), Detail: err.Error()}
	}
	if m.Format != FormatVersion {
		return meta{}, &CorruptError{Path: filepath.Join(dir, metaFile), Detail: fmt.Sprintf("format %q, want %q", m.Format, FormatVersion)}
	}
	return m, nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// meta and snapshot envelopes are plain structs; this cannot
		// fail for them.
		panic(fmt.Sprintf("checkpoint: marshal: %v", err))
	}
	return b
}
