package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode hammers the journal line parser with arbitrary
// bytes. Invariants: DecodeLine never panics; any line it accepts
// re-encodes (via EncodeLine) to a line that decodes to the identical
// payload, so recovery can never launder a damaged record into a
// different valid one.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("abcd"))
	f.Add(EncodeLine([]byte(`{"i":0}`)))
	f.Add(EncodeLine([]byte(`{"i":12,"aug":"Provide context. Include examples.","src":"regenerated:2"}`)))
	f.Add([]byte("00000000 {}"))
	f.Add([]byte("DEADBEEF {\"i\":1}"))
	f.Add([]byte("zzzzzzzz payload"))
	f.Add([]byte("0123456789abcdef no separator here"))
	f.Add([]byte("83a1b2c3 {\"i\""))
	f.Add([]byte{0x00, 0xff, 0x00, 0xff, 0x20, 0x7b, 0x7d})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Journal replay hands DecodeLine newline-free slices; strip
		// one trailing newline the way the replay loop does.
		line := bytes.TrimSuffix(data, []byte("\n"))
		payload, err := DecodeLine(line)
		if err != nil {
			return
		}
		reencoded := EncodeLine(payload)
		again, err := DecodeLine(reencoded[:len(reencoded)-1])
		if err != nil {
			t.Fatalf("re-encoded accepted line rejected: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("round trip changed payload: %q -> %q", payload, again)
		}
	})
}
