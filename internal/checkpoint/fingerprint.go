package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Fingerprint derives the store key for a build configuration: the
// SHA-256 of the format version and the configuration's canonical JSON.
// Any field that reaches the JSON encoding — corpus size, seed, caps,
// model names — changes the fingerprint, which is exactly the property
// that keeps a resumed build from silently mixing state produced under
// different settings. Runtime-only knobs (worker counts, fault gates,
// progress sinks) must be excluded by the caller, either zeroed or
// tagged `json:"-"`, since they cannot change the build's output.
func Fingerprint(cfg any) (string, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("checkpoint: fingerprinting config: %w", err)
	}
	h := sha256.New()
	// hash.Hash.Write never fails (documented contract).
	_, _ = h.Write([]byte(FormatVersion))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write(b)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)[:16]), nil
}
