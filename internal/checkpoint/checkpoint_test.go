package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	N     int      `json:"n"`
	Words []string `json:"words"`
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), "sha256:aa", false)
	if err != nil {
		t.Fatal(err)
	}
	in := payload{N: 7, Words: []string{"a", "b"}}
	if err := s.WriteSnapshot("stage", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.LoadSnapshot("stage", &out)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if out.N != in.N || len(out.Words) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestLoadSnapshotMissing(t *testing.T) {
	s, err := Open(t.TempDir(), "sha256:aa", false)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.LoadSnapshot("absent", &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing snapshot reported present")
	}
}

func TestSnapshotOverwriteIsAtomic(t *testing.T) {
	s, err := Open(t.TempDir(), "sha256:aa", false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.WriteSnapshot("stage", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	var out payload
	if ok, err := s.LoadSnapshot("stage", &out); err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if out.N != 2 {
		t.Fatalf("got %d, want last write 2", out.N)
	}
}

func TestCorruptSnapshotDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "sha256:aa", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot("stage", payload{N: 1, Words: []string{"hello", "world"}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "stage.snap")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x20 // flip a payload bit
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	_, err = s.LoadSnapshot("stage", &out)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupted snapshot not detected: %v", err)
	}
}

func TestHalfRenamedSnapshotIgnoredAndCleaned(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash between temp-write and rename: only the temp
	// file exists.
	if err := os.WriteFile(filepath.Join(dir, "stage.snap.tmp"), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, "sha256:aa", true)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.LoadSnapshot("stage", &out)
	if err != nil || ok {
		t.Fatalf("half-renamed snapshot should read as absent: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "stage.snap.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stray temp file not cleaned up")
	}
}

func TestSnapshotBytesRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), "sha256:aa", false)
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte(`{"model":"weights"}`)
	if err := s.WriteSnapshotBytes("model", raw); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadSnapshotBytes("model")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if string(got) != string(raw) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

func TestResumeFingerprintMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, "sha256:build-one", false); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, "sha256:build-two", true)
	var stale *StaleError
	if !errors.As(err, &stale) {
		t.Fatalf("want StaleError, got %v", err)
	}
	if !strings.Contains(err.Error(), "sha256:build-one") || !strings.Contains(err.Error(), "sha256:build-two") {
		t.Errorf("stale error should name both fingerprints: %v", err)
	}
}

func TestFreshOpenDiscardsOldBuild(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, "sha256:one", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.WriteSnapshot("stage", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	j, _, err := s1.OpenJournal("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh (non-resume) open under a new fingerprint starts clean.
	s2, err := Open(dir, "sha256:two", false)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if ok, err := s2.LoadSnapshot("stage", &out); err != nil || ok {
		t.Fatalf("old snapshot survived reset: ok=%v err=%v", ok, err)
	}
	_, rec, err := s2.OpenJournal("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("old journal survived reset: %d records", len(rec.Records))
	}
}

func TestResumeEmptyDirIsFreshStart(t *testing.T) {
	if _, err := Open(t.TempDir(), "sha256:aa", true); err != nil {
		t.Fatalf("resume of an empty dir should succeed: %v", err)
	}
}

func TestAttach(t *testing.T) {
	dir := t.TempDir()
	if _, err := Attach(dir); err == nil {
		t.Fatal("attach to uninitialised dir should fail")
	}
	if _, err := Open(dir, "sha256:aa", false); err != nil {
		t.Fatal(err)
	}
	s, err := Attach(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.FingerprintID() != "sha256:aa" {
		t.Fatalf("attach fingerprint = %q", s.FingerprintID())
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	type cfg struct {
		Seed int64
		Size int
	}
	a, err := Fingerprint(cfg{Seed: 1, Size: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(cfg{Seed: 2, Size: 100})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fingerprint(cfg{Seed: 1, Size: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different seeds should fingerprint differently")
	}
	if a != c {
		t.Error("identical configs should fingerprint identically")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Errorf("fingerprint %q missing scheme prefix", a)
	}
}
