package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// testScheduler builds a scheduler over a fixed limit with the given
// tenancy knobs.
func testScheduler(limit int, cfg Config) *scheduler {
	if cfg.DefaultTenantWeight == 0 {
		cfg.DefaultTenantWeight = 1
	}
	if cfg.MaxTenants == 0 {
		cfg.MaxTenants = 64
	}
	return newScheduler(&cfg, func() int { return limit })
}

// mustAcquire acquires a slot on the fast path or fails the test.
func mustAcquire(t *testing.T, s *scheduler, tenant string) func() {
	t.Helper()
	release, err := s.acquire(context.Background(), s.arrive(tenant), 0)
	if err != nil {
		t.Fatalf("acquire(%s): %v", tenant, err)
	}
	return release
}

func waitForWaiting(t *testing.T, s *scheduler, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, waiting := s.depth(); waiting == want {
			return
		}
		if time.Now().After(deadline) {
			_, waiting := s.depth()
			t.Fatalf("waiting = %d, want %d (timed out)", waiting, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerDRRWeightedOrder pins the deficit-round-robin grant
// sequence: with weight a:2 vs b:1 and one slot, backlogged tenants
// drain as a,a,b,a,a,b — a gets twice the service, b is never starved.
func TestSchedulerDRRWeightedOrder(t *testing.T) {
	s := testScheduler(1, Config{
		QueueDepth:    16,
		TenantWeights: map[string]int{"a": 2},
	})
	holder := mustAcquire(t, s, "a") // pin the single slot

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				release, err := s.acquire(context.Background(), s.arrive(tenant), 5*time.Second)
				if err != nil {
					t.Errorf("acquire(%s): %v", tenant, err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				release() // chain to the next grant
			}()
		}
		// Waiters must all be queued before the next tenant's batch so
		// the DRR ring sees both backlogs at dispatch time.
	}
	enqueue("a", 4)
	waitForWaiting(t, s, 4)
	enqueue("b", 2)
	waitForWaiting(t, s, 6)

	holder() // start the drain; each grant releases into the next
	wg.Wait()

	want := []string{"a", "a", "b", "a", "a", "b"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("granted %d waiters, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

// TestSchedulerQuotaCapsTenant: a tenant at its quota queues behind
// itself while other tenants keep being admitted, and the quota frees
// with the slot.
func TestSchedulerQuotaCapsTenant(t *testing.T) {
	s := testScheduler(4, Config{
		QueueDepth:   8,
		TenantQuotas: map[string]int{"q": 1},
	})
	q1 := mustAcquire(t, s, "q")

	// The second q request cannot run concurrently: it queues.
	qDone := make(chan error, 1)
	go func() {
		release, err := s.acquire(context.Background(), s.arrive("q"), 5*time.Second)
		if err == nil {
			release()
		}
		qDone <- err
	}()
	waitForWaiting(t, s, 1)

	// Another tenant is not blocked by q's quota even while q waits.
	zDone := make(chan error, 1)
	go func() {
		release, err := s.acquire(context.Background(), s.arrive("z"), 5*time.Second)
		if err == nil {
			release()
		}
		zDone <- err
	}()
	if err := <-zDone; err != nil {
		t.Fatalf("tenant z blocked behind q's quota: %v", err)
	}
	select {
	case err := <-qDone:
		t.Fatalf("q's second request finished while its quota was held (err=%v)", err)
	default:
	}

	q1() // quota frees with the slot; the waiter is granted
	if err := <-qDone; err != nil {
		t.Fatalf("queued q request after quota freed: %v", err)
	}
	stats := s.tenantStats()
	for _, ts := range stats {
		if ts.Tenant == "q" && ts.Admitted != 2 {
			t.Fatalf("q admitted = %d, want 2: %+v", ts.Admitted, stats)
		}
	}
}

// TestSchedulerTenantFairShareOfQueue: without an explicit
// TenantQueueDepth, a flooding tenant is capped at its weighted share
// of the waiting room and the other tenant's slot in the room survives.
func TestSchedulerTenantFairShareOfQueue(t *testing.T) {
	s := testScheduler(1, Config{QueueDepth: 4})
	holder := mustAcquire(t, s, "h")
	defer holder()

	// Flood from tenant a: with h and a active, a's share of the
	// 4-deep room is 4/2 = 2; the third enqueue sheds.
	done := make(chan struct{})
	defer close(done)
	for i := 0; i < 2; i++ {
		go func() {
			release, err := s.acquire(context.Background(), s.arrive("a"), time.Minute)
			if err == nil {
				release()
			}
			<-done
		}()
	}
	waitForWaiting(t, s, 2)
	if _, err := s.acquire(context.Background(), s.arrive("a"), time.Minute); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("a's 3rd waiter: err = %v, want ErrQueueFull (share exhausted)", err)
	}

	// Tenant b still gets a place in the room despite a's flood.
	bDone := make(chan error, 1)
	go func() {
		release, err := s.acquire(context.Background(), s.arrive("b"), time.Minute)
		if err == nil {
			release()
		}
		bDone <- err
	}()
	waitForWaiting(t, s, 3)
	select {
	case err := <-bDone:
		t.Fatalf("b's waiter resolved early: %v", err)
	default: // b is queued, not shed — isolation held
	}

	stats := s.tenantStats()
	var a TenantStats
	for _, ts := range stats {
		if ts.Tenant == "a" {
			a = ts
		}
	}
	if a.ShedQueueFull != 1 {
		t.Fatalf("a shed_queue_full = %d, want 1: %+v", a.ShedQueueFull, stats)
	}
}

// TestSchedulerExplicitTenantQueueDepth: the configured per-tenant cap
// overrides the weighted share.
func TestSchedulerExplicitTenantQueueDepth(t *testing.T) {
	s := testScheduler(1, Config{QueueDepth: 8, TenantQueueDepth: 1})
	holder := mustAcquire(t, s, "a")
	defer holder()

	done := make(chan struct{})
	defer close(done)
	go func() {
		release, err := s.acquire(context.Background(), s.arrive("a"), time.Minute)
		if err == nil {
			release()
		}
		<-done
	}()
	waitForWaiting(t, s, 1)
	if _, err := s.acquire(context.Background(), s.arrive("a"), time.Minute); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull at TenantQueueDepth 1", err)
	}
}

// TestSchedulerOverflowTenant: ids beyond MaxTenants share the
// overflow queue instead of growing the table.
func TestSchedulerOverflowTenant(t *testing.T) {
	s := testScheduler(4, Config{MaxTenants: 2})
	s.arrive("t1")
	s.arrive("t2")
	s.arrive("t3")
	s.arrive("t4")

	stats := s.tenantStats()
	if len(stats) != 3 {
		t.Fatalf("tenant table = %+v, want t1, t2 and overflow", stats)
	}
	byID := map[string]TenantStats{}
	for _, ts := range stats {
		byID[ts.Tenant] = ts
	}
	if byID[OverflowTenant].Requests != 2 {
		t.Fatalf("overflow requests = %d, want 2 (t3 + t4): %+v", byID[OverflowTenant].Requests, stats)
	}
}

// TestCoreTenantAccounting drives the core with tenant-tagged contexts
// and checks the per-tenant rows in Stats.
func TestCoreTenantAccounting(t *testing.T) {
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{CacheSize: -1})
	for i, tenant := range []string{"alpha", "alpha", "beta", ""} {
		ctx := WithTenant(context.Background(), tenant)
		if _, err := c.Do(ctx, "p", "s", "m"); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	byID := map[string]TenantStats{}
	for _, ts := range c.Stats().Tenants {
		byID[ts.Tenant] = ts
	}
	if byID["alpha"].Admitted != 2 || byID["beta"].Admitted != 1 || byID[DefaultTenant].Admitted != 1 {
		t.Fatalf("tenant stats = %+v", c.Stats().Tenants)
	}
}

// TestTenantCtxRoundTrip pins WithTenant/TenantFrom semantics,
// including the empty-id defaults.
func TestTenantCtxRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TenantFrom(ctx); got != DefaultTenant {
		t.Fatalf("TenantFrom(bare ctx) = %q, want %q", got, DefaultTenant)
	}
	if got := TenantFrom(WithTenant(ctx, "acme")); got != "acme" {
		t.Fatalf("TenantFrom = %q, want acme", got)
	}
	if got := TenantFrom(WithTenant(ctx, "")); got != DefaultTenant {
		t.Fatalf("TenantFrom(empty id) = %q, want %q", got, DefaultTenant)
	}
}
