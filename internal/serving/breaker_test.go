package serving

import (
	"context"
	"errors"
	"testing"
	"time"
)

// breakerCore builds a single-slot, zero-queue core with an armed
// breaker on a pinned clock, plus a blocker that occupies the one
// computation slot on demand.
func breakerCore(t *testing.T, threshold int) (*Core, *time.Time, chan struct{}, chan struct{}) {
	t.Helper()
	now := time.Unix(5000, 0)
	entered := make(chan struct{})
	release := make(chan struct{})
	fn := func(prompt, salt string) string {
		if prompt == "block" {
			entered <- struct{}{}
			<-release
		}
		return "pc:" + prompt
	}
	c, err := New(fn, Config{
		CacheSize:        -1,
		MaxInFlight:      1,
		QueueDepth:       0,
		BreakerThreshold: threshold,
		BreakerCooldown:  time.Second,
		Now:              func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, &now, entered, release
}

func TestCoreBreakerOpensAfterConsecutiveSheds(t *testing.T) {
	c, _, entered, release := breakerCore(t, 2)
	ctx := context.Background()

	// Occupy the single slot so everything else sheds.
	blocked := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "block", "s", "m")
		blocked <- err
	}()
	<-entered

	for i := 0; i < 2; i++ {
		if _, err := c.Do(ctx, "x", "s", "m"); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("shed %d: err = %v, want ErrQueueFull", i, err)
		}
	}
	// Two consecutive sheds tripped the breaker: the next request fails
	// fast without touching the admission path at all.
	if _, err := c.Do(ctx, "y", "s", "m"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if !Overloaded(ErrBreakerOpen) {
		t.Fatal("ErrBreakerOpen must count as overload for the HTTP mapping")
	}

	st := c.Stats()
	if st.ShedQueueFull != 2 || st.ShedBreaker != 1 || st.Shed != 3 {
		t.Fatalf("shed stats = %+v", st)
	}
	if st.Breaker == nil || st.Breaker.State != "open" || st.Breaker.Opens != 1 {
		t.Fatalf("breaker stats = %+v, want open after 1 trip", st.Breaker)
	}

	close(release)
	if err := <-blocked; err != nil {
		t.Fatalf("blocked leader failed: %v", err)
	}
}

func TestCoreBreakerHalfOpenProbeCloses(t *testing.T) {
	c, now, entered, release := breakerCore(t, 1)
	ctx := context.Background()

	blocked := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "block", "s", "m")
		blocked <- err
	}()
	<-entered
	if _, err := c.Do(ctx, "x", "s", "m"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want shed", err)
	}
	if got := c.Stats().Breaker.State; got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	// Free the slot, then let the cooldown elapse on the pinned clock:
	// the next request is the half-open probe; its success closes the
	// circuit again.
	close(release)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	*now = now.Add(time.Second)
	v, err := c.Do(ctx, "probe", "s", "m")
	if err != nil || v != "pc:probe" {
		t.Fatalf("probe got (%q, %v)", v, err)
	}
	st := c.Stats()
	if st.Breaker.State != "closed" || st.Breaker.Probes != 1 {
		t.Fatalf("breaker stats = %+v, want closed after one probe", st.Breaker)
	}
	// Healthy again: ordinary traffic flows.
	if _, err := c.Do(ctx, "after", "s", "m"); err != nil {
		t.Fatal(err)
	}
}

func TestCoreBreakerDisabledByDefault(t *testing.T) {
	c, err := New(func(p, s string) string { return p }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Breaker != nil {
		t.Fatalf("unarmed core reports breaker stats: %+v", st.Breaker)
	}
}

func TestCoreNoteDegraded(t *testing.T) {
	c, err := New(func(p, s string) string { return p }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.NoteDegraded()
	c.NoteDegraded()
	if got := c.Stats().Degraded; got != 2 {
		t.Fatalf("degraded = %d, want 2", got)
	}
}

func TestCoreClientCancelDoesNotTripBreaker(t *testing.T) {
	c, _, entered, release := breakerCore(t, 1)

	blocked := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "block", "s", "m")
		blocked <- err
	}()
	<-entered
	// A request whose client has already gone is not a health signal;
	// it must not open the breaker. (It is rejected before the flight
	// layer, so the breaker never even sees it.)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(cancelled, "x", "s", "m"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := c.Stats().Breaker.State; got != "closed" {
		t.Fatalf("state = %q after client cancel, want closed", got)
	}
	close(release)
	<-blocked
}
