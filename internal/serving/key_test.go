package serving

import (
	"context"
	"testing"
)

// TestKeyRoundTrip: SplitKey must invert Key for NUL-free components —
// the contract the ring routing tier relies on to agree byte-for-byte
// with the cache on the shard key.
func TestKeyRoundTrip(t *testing.T) {
	cases := []struct{ prompt, salt, model string }{
		{"write a sort in Go", "", "pas-sim"},
		{"", "", ""},
		{"prompt with\nnewlines\tand spaces", "42", "m"},
		{"unicode ✓ プロンプト", "salt", "base-7b"},
		{"a", "bc", ""}, // the collision shape a plain concat would confuse
		{"ab", "c", ""},
	}
	seen := make(map[string]bool)
	for _, c := range cases {
		k := Key(c.prompt, c.salt, c.model)
		if seen[k] {
			t.Fatalf("Key(%q,%q,%q) collides with an earlier case", c.prompt, c.salt, c.model)
		}
		seen[k] = true
		p, s, m, ok := SplitKey(k)
		if !ok {
			t.Fatalf("SplitKey(Key(%q,%q,%q)) not ok", c.prompt, c.salt, c.model)
		}
		if p != c.prompt || s != c.salt || m != c.model {
			t.Fatalf("round trip (%q,%q,%q) -> (%q,%q,%q)", c.prompt, c.salt, c.model, p, s, m)
		}
	}
}

// TestSplitKeyMalformed: strings that are not NUL-joined triples are
// rejected rather than misparsed.
func TestSplitKeyMalformed(t *testing.T) {
	for _, k := range []string{"", "no separators", "one\x00separator"} {
		if _, _, _, ok := SplitKey(k); ok {
			t.Fatalf("SplitKey(%q) = ok, want malformed", k)
		}
	}
}

// TestKeyMatchesCache: the exported Key must be the exact key the cache
// shards on — a Do that populated the cache under Key(k) is a hit for a
// direct probe of the same bytes.
func TestKeyMatchesCache(t *testing.T) {
	core, err := New(func(prompt, salt string) string { return "c:" + prompt }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Do(context.Background(), "p", "s", "m"); err != nil {
		t.Fatal(err)
	}
	if v, ok := core.cache.get(Key("p", "s", "m")); !ok || v != "c:p" {
		t.Fatalf("cache.get(Key(...)) = %q, %v; want \"c:p\", true", v, ok)
	}
}
