package serving

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainRefusesNewWorkServesHits: a draining core sheds cache
// misses with ErrDraining (counted, Overloaded) while repeat traffic
// keeps being answered from the cache.
func TestDrainRefusesNewWorkServesHits(t *testing.T) {
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{CacheSize: 64})
	ctx := context.Background()

	warm, err := c.Do(ctx, "p1", "", "m")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Drain() {
		t.Fatal("first Drain() = false")
	}
	if c.Drain() {
		t.Fatal("second Drain() = true, want idempotent false")
	}
	if !c.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	// A cached key still answers: repeat traffic routed here before the
	// router noticed the drain is not punished.
	if got, err := c.Do(ctx, "p1", "", "m"); err != nil || got != warm {
		t.Fatalf("cache hit during drain = %q, %v; want %q, nil", got, err, warm)
	}
	// A new key is refused, typed and counted.
	if _, err := c.Do(ctx, "p2", "", "m"); !errors.Is(err, ErrDraining) {
		t.Fatalf("new computation during drain: err = %v, want ErrDraining", err)
	}
	if !Overloaded(ErrDraining) {
		t.Fatal("Overloaded(ErrDraining) = false, want true (503 + Retry-After mapping)")
	}
	s := c.Stats()
	if !s.Draining || s.ShedDraining != 1 || s.Shed != 1 {
		t.Fatalf("stats = draining %v shed_draining %d shed %d, want true/1/1",
			s.Draining, s.ShedDraining, s.Shed)
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Fatalf("compute calls = %d, want 1 (drain must not compute)", got)
	}
	// Drain sheds are an operator action, not breaker food: with a
	// 1-threshold breaker armed, drain sheds must not open it.
	b := mustNew(t, countingFunc(&calls), Config{CacheSize: -1, BreakerThreshold: 1})
	b.Drain()
	for i := 0; i < 3; i++ {
		if _, err := b.Do(ctx, "p", "", "m"); !errors.Is(err, ErrDraining) {
			t.Fatalf("draining core returned %v, want ErrDraining (breaker must stay closed)", err)
		}
	}
	if bs := b.Stats(); bs.Breaker == nil || bs.Breaker.State != "closed" {
		t.Fatalf("breaker after drain sheds: %+v, want closed", b.Stats().Breaker)
	}
}

// TestDrainLetsInFlightFinishAndQuiesce: a computation admitted before
// the drain completes and Quiesce returns once it has; a deadline that
// passes first surfaces as the context's error.
func TestDrainLetsInFlightFinishAndQuiesce(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(prompt, salt string) string {
		close(started)
		<-release
		return "pc:" + prompt
	}
	c := mustNew(t, fn, Config{CacheSize: -1, MaxInFlight: 1})
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "slow", "", "m")
		done <- err
	}()
	<-started
	c.Drain()

	// With work in flight, a short Quiesce deadline expires.
	shortCtx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if err := c.Quiesce(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce with work in flight = %v, want deadline exceeded", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight computation failed during drain: %v", err)
	}
	quiesceCtx, cancel2 := context.WithTimeout(ctx, 2*time.Second)
	defer cancel2()
	if err := c.Quiesce(quiesceCtx); err != nil {
		t.Fatalf("Quiesce after the queue emptied: %v", err)
	}
}
