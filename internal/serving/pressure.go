package serving

import (
	"math"
	"sync"
	"time"
)

// Level is a rung of the brownout degradation ladder. Under rising
// pressure the core steps full → trim → raw, shedding compute cost
// before it has to shed requests; each rung is a strictly cheaper way
// to still answer 200.
type Level int32

const (
	// LevelFull serves the full-model complement.
	LevelFull Level = iota
	// LevelTrim serves the cheap complement (Config.CheapFn).
	LevelTrim
	// LevelRaw skips augmentation entirely: the caller answers with the
	// raw prompt, flagged degraded, without touching admission.
	LevelRaw
)

func (l Level) String() string {
	switch l {
	case LevelTrim:
		return "trim"
	case LevelRaw:
		return "raw"
	}
	return "full"
}

// Header is l's X-PAS-Degraded wire value: empty for full service,
// "trim" for the cheap complement, and "1" for raw passthrough — the
// historical value existing consumers already test for, so a fully
// browned-out response is indistinguishable from the legacy fail-open
// path to clients that predate the ladder.
func (l Level) Header() string {
	switch l {
	case LevelTrim:
		return "trim"
	case LevelRaw:
		return "1"
	}
	return ""
}

// Ladder hysteresis bands, on the unitless pressure score in [0, 1]:
// a rung is entered at the upper threshold and left at the lower one,
// so a score oscillating around a boundary does not flap the ladder.
const (
	enterTrim = 0.50
	exitTrim  = 0.35
	enterRaw  = 0.85
	exitRaw   = 0.60
)

// pressureAlpha is the EWMA smoothing factor for all gauge averages.
// Event-driven (one update per observation, no wall-clock decay) so
// trajectories are deterministic under a pinned test clock.
const pressureAlpha = 0.2

// pressureGauge condenses the admission path's state into one score:
//
//	score = 0.5·min(1, waitEWMA/QueueWait) + 0.5·utilizationEWMA
//
// Queue wait says how long admission is stalling requests relative to
// the shed budget; utilization (inflight/limit) says how much headroom
// the concurrency limit has left. Both at zero is a cold core; both at
// one is a core about to shed. The gauge also tracks a service-time
// EWMA, which prices Retry-After hints off the observed drain rate
// instead of a constant.
type pressureGauge struct {
	queueWaitMs float64 // normalizer for the wait term

	mu       sync.Mutex
	waitEWMA float64 // admission wait, ms
	utilEWMA float64 // inflight/limit, [0, 1]
	svcEWMA  float64 // computation service time, ms
	score    float64
	level    Level
	// atTrim / atRaw are the two hysteresis latches behind level: each
	// sets at its enter threshold and clears at its (lower) exit one.
	atTrim, atRaw bool
	// transitions counts rung changes in either direction; the chaos
	// e2e asserts the ladder actually moved.
	transitions int64
}

func newPressureGauge(queueWait time.Duration) *pressureGauge {
	return &pressureGauge{queueWaitMs: float64(queueWait) / float64(time.Millisecond)}
}

// observe folds one admission outcome into the gauge: how long the
// request waited for a slot and the load (inflight/limit) at that
// moment. Sheds observe their full budget as the wait — the queue was
// saturated for at least that long.
func (g *pressureGauge) observe(wait time.Duration, utilization float64) {
	waitMs := float64(wait) / float64(time.Millisecond)
	if utilization > 1 {
		utilization = 1 // inflight can transiently exceed a freshly cut limit
	}
	g.mu.Lock()
	g.waitEWMA += pressureAlpha * (waitMs - g.waitEWMA)
	g.utilEWMA += pressureAlpha * (utilization - g.utilEWMA)
	waitFrac := 0.0
	if g.queueWaitMs > 0 {
		waitFrac = g.waitEWMA / g.queueWaitMs
		if waitFrac > 1 {
			waitFrac = 1
		}
	}
	g.score = 0.5*waitFrac + 0.5*g.utilEWMA
	g.relevelLocked()
	g.mu.Unlock()
}

// observeService folds one computation's duration into the drain-rate
// estimate behind RetryAfter.
func (g *pressureGauge) observeService(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	g.mu.Lock()
	g.svcEWMA += pressureAlpha * (ms - g.svcEWMA)
	g.mu.Unlock()
}

// relevelLocked applies the hysteresis bands to the current score. The
// two boundaries are independent latches, so a spike can step the
// ladder straight from full to raw and recovery retraces through trim.
func (g *pressureGauge) relevelLocked() {
	switch {
	case g.score >= enterTrim:
		g.atTrim = true
	case g.score <= exitTrim:
		g.atTrim = false
	}
	switch {
	case g.score >= enterRaw:
		g.atRaw = true
	case g.score <= exitRaw:
		g.atRaw = false
	}
	next := LevelFull
	switch {
	case g.atRaw:
		next = LevelRaw
	case g.atTrim:
		next = LevelTrim
	}
	if next != g.level {
		g.level = next
		g.transitions++
	}
}

// current returns the ladder rung the next miss should serve at.
func (g *pressureGauge) current() Level {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.level
}

// retryAfter estimates, in whole seconds clamped to [1, 30], how long
// a shed caller should back off: the time for the present queue to
// drain at the observed service rate across limit-wide concurrency,
// plus one service time for the retry itself.
func (g *pressureGauge) retryAfter(waiting, limit int) int {
	g.mu.Lock()
	svc := g.svcEWMA
	g.mu.Unlock()
	if svc <= 0 {
		return 1
	}
	if limit < 1 {
		limit = 1
	}
	rounds := float64(waiting)/float64(limit) + 1
	secs := int(math.Ceil(svc * rounds / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// snapshot returns the gauge's state for Stats.
func (g *pressureGauge) snapshot() (score float64, level Level, transitions int64, waitMs, svcMs float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.score, g.level, g.transitions, g.waitEWMA, g.svcEWMA
}
