package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingFunc returns a Func that counts invocations and yields a
// deterministic per-key result.
func countingFunc(calls *int64) Func {
	return func(prompt, salt string) string {
		atomic.AddInt64(calls, 1)
		return "pc:" + prompt + "/" + salt
	}
}

func mustNew(t *testing.T, fn Func, cfg Config) *Core {
	t.Helper()
	c, err := New(fn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	ok := func(string, string) string { return "" }
	cases := []struct {
		name string
		fn   Func
		cfg  Config
	}{
		{"nil fn", nil, Config{}},
		{"negative shards", ok, Config{CacheShards: -1}},
		{"negative ttl", ok, Config{CacheTTL: -time.Second}},
		{"negative inflight", ok, Config{MaxInFlight: -2}},
		{"negative queue depth", ok, Config{QueueDepth: -1}},
		{"negative queue wait", ok, Config{QueueWait: -time.Second}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.fn, tc.cfg); err == nil {
				t.Errorf("New(%+v) should fail", tc.cfg)
			}
		})
	}
	if _, err := New(ok, Config{}); err != nil {
		t.Fatalf("zero config should apply defaults, got %v", err)
	}
}

func TestDoComputesThenServesFromCache(t *testing.T) {
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{})
	ctx := context.Background()

	v1, err := c.Do(ctx, "explain tides", "s", "m1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Do(ctx, "explain tides", "s", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || v1 != "pc:explain tides/s" {
		t.Fatalf("values diverge: %q vs %q", v1, v2)
	}
	if calls != 1 {
		t.Fatalf("complement called %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Cache.Hits != 1 || s.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", s.Cache)
	}
	if s.Requests != 2 || s.Completed != 2 {
		t.Fatalf("requests/completed = %d/%d, want 2/2", s.Requests, s.Completed)
	}
}

// TestKeyDimensionsAreSeparated guards the NUL-separated key: differing
// splits of the same concatenation, and differing models, must not
// share entries.
func TestKeyDimensionsAreSeparated(t *testing.T) {
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{})
	ctx := context.Background()
	for _, req := range [][3]string{
		{"ab", "c", "m"},
		{"a", "bc", "m"},
		{"ab", "c", "m2"},
	} {
		if _, err := c.Do(ctx, req[0], req[1], req[2]); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("complement called %d times, want 3 (key collision)", calls)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{CacheTTL: time.Minute, Now: clock})
	ctx := context.Background()

	if _, err := c.Do(ctx, "p", "", "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(ctx, "p", "", "m"); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("fresh entry recomputed: %d calls", calls)
	}
	now = now.Add(time.Minute + time.Second)
	if _, err := c.Do(ctx, "p", "", "m"); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("expired entry not recomputed: %d calls", calls)
	}
	s := c.Stats()
	if s.Cache.Expiries != 1 {
		t.Fatalf("expiries = %d, want 1", s.Cache.Expiries)
	}
}

func TestCacheEviction(t *testing.T) {
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{CacheSize: 2, CacheShards: 1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Do(ctx, fmt.Sprintf("p%d", i), "", "m"); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Cache.Evictions != 1 || s.Cache.Entries != 2 {
		t.Fatalf("evictions/entries = %d/%d, want 1/2", s.Cache.Evictions, s.Cache.Entries)
	}
	// p0 was evicted (LRU), so it recomputes; p2 is still cached.
	if _, err := c.Do(ctx, "p0", "", "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(ctx, "p2", "", "m"); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("complement called %d times, want 4", calls)
	}
}

// TestConcurrentIdenticalPromptsComputeOnce is the dedup acceptance
// check: N concurrent requests for the same key must trigger exactly
// one underlying complement call. The complement function blocks until
// all other requests have attached as single-flight followers, so the
// overlap is deterministic, not timing-dependent.
func TestConcurrentIdenticalPromptsComputeOnce(t *testing.T) {
	const followers = 31
	var calls int64
	k := Key("same prompt", "s", "m")
	var c *Core
	fn := func(prompt, salt string) string {
		atomic.AddInt64(&calls, 1)
		deadline := time.Now().Add(5 * time.Second)
		for c.flight.waiters(k) < followers {
			if time.Now().After(deadline) {
				break // let the assertion below report the failure
			}
			time.Sleep(time.Millisecond)
		}
		return "pc"
	}
	// Cache disabled so every request reaches the single-flight layer.
	c = mustNew(t, fn, Config{CacheSize: -1})

	var wg sync.WaitGroup
	results := make([]string, followers+1)
	errs := make([]error, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Do(context.Background(), "same prompt", "s", "m")
		}(i)
	}
	wg.Wait()

	if calls != 1 {
		t.Fatalf("complement called %d times for one key, want exactly 1", calls)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i] != "pc" {
			t.Fatalf("request %d got %q", i, results[i])
		}
	}
	if s := c.Stats(); s.DedupHits != followers {
		t.Fatalf("dedup hits = %d, want %d", s.DedupHits, followers)
	}
}

// occupied builds a core whose single computation slot is held by a
// blocked request, plus the release function for it.
func occupied(t *testing.T, cfg Config) (*Core, func()) {
	t.Helper()
	release := make(chan struct{})
	fn := func(prompt, salt string) string {
		if prompt == "occupier" {
			<-release
		}
		return "pc:" + prompt
	}
	cfg.MaxInFlight = 1
	cfg.CacheSize = -1 // keep every request on the admission path
	c := mustNew(t, fn, cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.Do(context.Background(), "occupier", "", "m"); err != nil {
			t.Errorf("occupier failed: %v", err)
		}
	}()
	waitFor(t, func() bool { return c.Stats().InFlight == 1 })
	var once sync.Once
	return c, func() {
		once.Do(func() { close(release); <-done })
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLoadShedding(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancelExpired()

	cases := []struct {
		name    string
		cfg     Config
		ctx     context.Context
		wantErr error
		check   func(Stats) error
	}{
		{
			name:    "queue disabled sheds instantly",
			cfg:     Config{QueueDepth: 0},
			ctx:     context.Background(),
			wantErr: ErrQueueFull,
			check: func(s Stats) error {
				if s.ShedQueueFull != 1 {
					return fmt.Errorf("shed_queue_full = %d, want 1", s.ShedQueueFull)
				}
				return nil
			},
		},
		{
			name:    "wait budget exhausted",
			cfg:     Config{QueueDepth: 4, QueueWait: 20 * time.Millisecond},
			ctx:     context.Background(),
			wantErr: ErrDeadline,
			check: func(s Stats) error {
				if s.ShedDeadline != 1 {
					return fmt.Errorf("shed_deadline = %d, want 1", s.ShedDeadline)
				}
				return nil
			},
		},
		{
			name:    "context deadline tightens the wait",
			cfg:     Config{QueueDepth: 4, QueueWait: time.Hour},
			ctx:     deadlineCtx(30 * time.Millisecond),
			wantErr: ErrDeadline,
		},
		{
			name:    "already-cancelled context",
			cfg:     Config{QueueDepth: 4, QueueWait: time.Hour},
			ctx:     cancelled,
			wantErr: context.Canceled,
		},
		{
			name:    "already-expired deadline",
			cfg:     Config{QueueDepth: 4, QueueWait: time.Hour},
			ctx:     expired,
			wantErr: context.DeadlineExceeded,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, releaseOccupier := occupied(t, tc.cfg)
			defer releaseOccupier()
			_, err := c.Do(tc.ctx, "victim", "", "m")
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantErr == ErrQueueFull || tc.wantErr == ErrDeadline {
				if !Overloaded(err) {
					t.Fatalf("Overloaded(%v) = false, want true", err)
				}
			} else if Overloaded(err) {
				t.Fatalf("Overloaded(%v) = true for a client-side error", err)
			}
			if tc.check != nil {
				if err := tc.check(c.Stats()); err != nil {
					t.Fatal(err)
				}
			}
			// The occupier must still complete cleanly after the shed.
			releaseOccupier()
			waitFor(t, func() bool { return c.Stats().InFlight == 0 })
		})
	}
}

func deadlineCtx(d time.Duration) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	_ = cancel // released when the test binary exits; the timeout is the point
	return ctx
}

// TestQueueFullWithWaiter fills the one-deep queue with a real waiter
// and checks the next request is shed while the waiter eventually
// succeeds.
func TestQueueFullWithWaiter(t *testing.T) {
	c, releaseOccupier := occupied(t, Config{QueueDepth: 1, QueueWait: 5 * time.Second})
	defer releaseOccupier()

	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "patient", "", "m")
		waiterDone <- err
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 1 })

	if _, err := c.Do(context.Background(), "impatient", "", "m"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	releaseOccupier()
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued request should succeed once the slot frees: %v", err)
	}
	s := c.Stats()
	if s.ShedQueueFull != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats after drain = %+v", s)
	}
}

// TestConcurrentMixedLoad hammers the core from many goroutines across
// a small key set; run with -race. Every request must succeed (the
// queue is deep and the wait generous) and every result must be
// consistent for its key.
func TestConcurrentMixedLoad(t *testing.T) {
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{
		MaxInFlight: 4,
		QueueDepth:  1024,
		QueueWait:   10 * time.Second,
		CacheSize:   64,
	})
	const goroutines, opsEach, keys = 16, 50, 5
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				p := fmt.Sprintf("prompt-%d", (g+i)%keys)
				v, err := c.Do(context.Background(), p, "s", "m")
				if err != nil {
					errc <- fmt.Errorf("%s: %w", p, err)
					return
				}
				if want := "pc:" + p + "/s"; v != want {
					errc <- fmt.Errorf("%s: got %q, want %q", p, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Completed != goroutines*opsEach {
		t.Fatalf("completed = %d, want %d", s.Completed, goroutines*opsEach)
	}
	// With caching on, the 5 unique keys need at most a handful of
	// computations (recomputation is possible only via races before the
	// first put lands, bounded by dedup).
	if calls > keys*2 {
		t.Fatalf("complement called %d times for %d keys", calls, keys)
	}
	if s.LatencyP50Ms < 0 || s.LatencyP99Ms < s.LatencyP50Ms {
		t.Fatalf("latency quantiles inconsistent: %+v", s)
	}
}

func TestStatsHandlerServesJSON(t *testing.T) {
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{})
	if _, err := c.Do(context.Background(), "p", "", "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(context.Background(), "p", "", "m"); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.CacheHitRatio != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", s.CacheHitRatio)
	}

	rec := httptest.NewRecorder()
	c.StatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var decoded Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("stats body not JSON: %v", err)
	}
	if decoded.Requests != 2 || decoded.Completed != 2 || decoded.CacheHitRatio != 0.5 {
		t.Fatalf("decoded stats = %+v", decoded)
	}
	if decoded.QueueCapacity != 0 || decoded.Cache.Entries != 1 {
		t.Fatalf("decoded stats = %+v", decoded)
	}
}
