package serving

import (
	"context"
	"errors"
	"testing"
	"time"
)

// shedFixture is an overloaded single-slot core with every distress
// signal available on demand: the slot held, the one-deep queue full,
// a 1-threshold breaker that can be tripped, and Drain a call away.
type shedFixture struct {
	core    *Core
	release func()
}

func newShedFixture(t *testing.T, breakerThreshold int) *shedFixture {
	t.Helper()
	c, release := occupied(t, Config{
		QueueDepth:       1,
		QueueWait:        5 * time.Second,
		BreakerThreshold: breakerThreshold,
	})
	return &shedFixture{core: c, release: release}
}

// fillQueue parks a waiter in the one-deep admission queue.
func (f *shedFixture) fillQueue(t *testing.T) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := f.core.Do(context.Background(), "parked", "", "m")
		done <- err
	}()
	waitFor(t, func() bool { return f.core.Stats().QueueDepth == 1 })
	return done
}

// tripBreaker opens the 1-threshold breaker with one queue-full shed.
func (f *shedFixture) tripBreaker(t *testing.T) {
	t.Helper()
	parked := f.fillQueue(t)
	if _, err := f.core.Do(context.Background(), "tripper", "", "m"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("tripper: err = %v, want ErrQueueFull", err)
	}
	if st := f.core.Stats(); st.Breaker == nil || st.Breaker.State != "open" {
		t.Fatalf("breaker not open after shed: %+v", f.core.Stats().Breaker)
	}
	// Drain the parked waiter's error later via the caller if needed;
	// it stays queued and completes once the slot frees.
	go func() { <-parked }()
}

// TestDrainDuringFullQueueShedsDraining is the satellite regression:
// a request refused while the core drains counts shed_draining even
// when the queue is simultaneously full — the drain is the reason, the
// full queue is incidental. The parked waiter, admitted pre-drain,
// still completes.
func TestDrainDuringFullQueueShedsDraining(t *testing.T) {
	f := newShedFixture(t, 0)
	parked := f.fillQueue(t)

	f.core.Drain()
	if _, err := f.core.Do(context.Background(), "victim", "", "m"); !errors.Is(err, ErrDraining) {
		t.Fatalf("drain + full queue: err = %v, want ErrDraining", err)
	}
	s := f.core.Stats()
	if s.ShedDraining != 1 || s.ShedQueueFull != 0 {
		t.Fatalf("shed_draining = %d, shed_queue_full = %d; want 1, 0", s.ShedDraining, s.ShedQueueFull)
	}

	f.release()
	if err := <-parked; err != nil {
		t.Fatalf("pre-drain waiter must still complete: %v", err)
	}
}

// TestShedPrecedenceMatrix pins the refusal order when several
// conditions hold at once:
//
//	client gone > draining > breaker open > queue full > wait budget
//
// Each row stacks every condition at and below its own, so the matrix
// proves each signal outranks everything beneath it.
func TestShedPrecedenceMatrix(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancelExpired()

	cases := []struct {
		name     string
		breaker  int  // threshold; 0 = unarmed
		trip     bool // open the breaker first
		fill     bool // park a waiter in the queue
		drain    bool
		ctx      context.Context
		wantErr  error
		wantShed func(Stats) (int64, string)
	}{
		{
			name: "cancelled client outranks drain+breaker+full queue",
			breaker: 1, trip: true, fill: true, drain: true,
			ctx:     cancelled,
			wantErr: context.Canceled,
		},
		{
			name: "expired client deadline outranks drain",
			breaker: 0, fill: true, drain: true,
			ctx:     expired,
			wantErr: context.DeadlineExceeded,
		},
		{
			name: "draining outranks open breaker and full queue",
			breaker: 1, trip: true, fill: true, drain: true,
			ctx:     context.Background(),
			wantErr: ErrDraining,
			wantShed: func(s Stats) (int64, string) {
				return s.ShedDraining, "shed_draining"
			},
		},
		{
			name: "open breaker outranks full queue",
			breaker: 1, trip: true, fill: true,
			ctx:     context.Background(),
			wantErr: ErrBreakerOpen,
			wantShed: func(s Stats) (int64, string) {
				return s.ShedBreaker, "shed_breaker"
			},
		},
		{
			name: "full queue outranks wait budget",
			breaker: 0, fill: true,
			ctx:     context.Background(),
			wantErr: ErrQueueFull,
			wantShed: func(s Stats) (int64, string) {
				return s.ShedQueueFull, "shed_queue_full"
			},
		},
		{
			name:    "wait budget is the last resort",
			breaker: 0,
			ctx:     deadlineCtx(30 * time.Millisecond),
			wantErr: ErrDeadline,
			wantShed: func(s Stats) (int64, string) {
				return s.ShedDeadline, "shed_deadline"
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newShedFixture(t, tc.breaker)
			defer f.release()
			if tc.trip {
				f.tripBreaker(t)
			}
			var parked chan error
			if tc.fill && !tc.trip { // tripBreaker already filled the queue
				parked = f.fillQueue(t)
			}
			before, _ := int64(0), ""
			if tc.wantShed != nil {
				before, _ = tc.wantShed(f.core.Stats())
			}
			if tc.drain {
				f.core.Drain()
			}

			if _, err := f.core.Do(tc.ctx, "victim", "", "m"); !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantShed != nil {
				after, name := tc.wantShed(f.core.Stats())
				if after != before+1 {
					t.Fatalf("%s = %d, want %d", name, after, before+1)
				}
			}
			f.release()
			if parked != nil {
				<-parked // queued pre-condition traffic always resolves
			}
			waitFor(t, func() bool { return f.core.Stats().InFlight == 0 })
		})
	}
}

// adaptiveCore builds a 2-ceiling adaptive core whose fn blocks on the
// given prompts, plus the cut sequence every adaptive test starts
// with: saturate both slots, miss a deadline in the queue, and verify
// the AIMD limit was cut 2 → 1.
func adaptiveCore(t *testing.T, target time.Duration) (c *Core, release chan struct{}, entered chan struct{}, blocked chan error) {
	t.Helper()
	release = make(chan struct{})
	entered = make(chan struct{}, 8)
	fn := func(prompt, salt string) string {
		if prompt == "block-a" || prompt == "block-b" || prompt == "hold" {
			entered <- struct{}{}
			<-release
		}
		return "pc:" + prompt
	}
	c = mustNew(t, fn, Config{
		CacheSize:     -1,
		MaxInFlight:   2,
		QueueDepth:    1,
		QueueWait:     5 * time.Second,
		AdaptiveLimit: true,
		LimitFloor:    1,
		LimitTarget:   target,
	})
	if got := c.Stats().Limit; got != 2 {
		t.Fatalf("initial limit = %d, want the MaxInFlight ceiling 2", got)
	}
	blocked = make(chan error, 2)
	for _, p := range []string{"block-a", "block-b"} {
		go func(p string) {
			_, err := c.Do(context.Background(), p, "", "m")
			blocked <- err
		}(p)
	}
	<-entered
	<-entered
	if _, err := c.Do(deadlineCtx(20*time.Millisecond), "victim", "", "m"); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	s := c.Stats()
	if s.Limit != 1 || s.AdaptiveLimit == nil || s.AdaptiveLimit.Cuts != 1 {
		t.Fatalf("after deadline miss: limit = %d, adaptive = %+v; want 1 with one cut", s.Limit, s.AdaptiveLimit)
	}
	return c, release, entered, blocked
}

// TestCoreAdaptiveLimitGatesAdmission: after a cut the reduced limit
// really bounds concurrency — a second request queues instead of
// running. The 1ns target keeps every success "slow" so the limit
// cannot regrow mid-test.
func TestCoreAdaptiveLimitGatesAdmission(t *testing.T) {
	c, release, entered, blocked := adaptiveCore(t, time.Nanosecond)

	// Unblock the saturating pair; at target 1ns their successes hold
	// the limit at 1.
	for i := 0; i < 2; i++ {
		release <- struct{}{}
	}
	for i := 0; i < 2; i++ {
		if err := <-blocked; err != nil {
			t.Fatalf("blocked request %d: %v", i, err)
		}
	}
	waitFor(t, func() bool { return c.Stats().InFlight == 0 })
	if got := c.Stats().Limit; got != 1 {
		t.Fatalf("limit = %d, want still 1 (no sub-target successes)", got)
	}

	held := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "hold", "", "m")
		held <- err
	}()
	<-entered
	queued := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "queued", "", "m")
		queued <- err
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 1 })
	if got := c.Stats().InFlight; got != 1 {
		t.Fatalf("in_flight = %d under cut limit 1, want 1", got)
	}
	release <- struct{}{}
	if err := <-held; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
}

// TestCoreAdaptiveLimitRecoversToCeiling: with a generous target,
// healthy completions regrow a cut limit back to — and never past —
// the MaxInFlight ceiling.
func TestCoreAdaptiveLimitRecoversToCeiling(t *testing.T) {
	c, release, _, blocked := adaptiveCore(t, time.Minute)
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-blocked; err != nil {
			t.Fatalf("blocked request %d: %v", i, err)
		}
	}
	waitFor(t, func() bool { return c.Stats().InFlight == 0 })

	for i := 0; i < 10; i++ {
		if _, err := c.Do(context.Background(), "healthy", "", "m"); err != nil {
			t.Fatal(err)
		}
		if got := c.Stats().Limit; got > 2 {
			t.Fatalf("limit %d exceeded the ceiling", got)
		}
	}
	if got := c.Stats().Limit; got != 2 {
		t.Fatalf("recovered limit = %d, want back at ceiling 2", got)
	}
}
