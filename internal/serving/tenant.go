package serving

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// DefaultTenant is the tenant id a request carries when the caller set
// none — single-tenant deployments never see another id.
const DefaultTenant = "default"

// OverflowTenant is the shared queue that absorbs tenants beyond
// MaxTenants, so an id-spraying client exhausts its own aggregate share
// instead of the scheduler's memory.
const OverflowTenant = "overflow"

type tenantCtxKey struct{}

// WithTenant tags ctx with the requesting tenant's id; the admission
// scheduler reads it back with TenantFrom. An empty id is a no-op.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFrom returns the tenant id carried by ctx, or DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if v, ok := ctx.Value(tenantCtxKey{}).(string); ok && v != "" {
		return v
	}
	return DefaultTenant
}

// scheduler is the tenant-aware admission stage: a weighted
// deficit-round-robin (DRR) queue in front of a live concurrency
// limit. Under contention each waiting tenant is visited in round-robin
// order and granted up to weight slots per visit, so a tenant flooding
// 10× its share only ever lengthens its own queue — the well-behaved
// tenant's wait is bounded by one DRR round, not by the flood.
//
// All admission requests have unit cost (one computation slot), so the
// deficit counters are small integers and a visit's quantum is exactly
// the tenant's weight.
type scheduler struct {
	limit func() int // live concurrency limit (static or adaptive)

	queueCap      int // total waiters across all tenants (QueueDepth)
	tenantCap     int // per-tenant waiter cap; 0 = weighted share of queueCap
	maxTenants    int
	defaultWeight int
	weights       map[string]int
	quotas        map[string]int

	mu       sync.Mutex
	inflight int
	waiting  int
	tenants  map[string]*tenantQ
	ring     []*tenantQ // visit order; queues persist once created
	cursor   int
}

// tenantQ is one tenant's admission queue plus its DRR and accounting
// state; all fields are guarded by scheduler.mu.
type tenantQ struct {
	id      string
	weight  int
	quota   int // max concurrent slots; 0 = unlimited
	deficit int // remaining grants in the current DRR visit

	inflight int
	waiters  []*waiter // FIFO

	requests      int64
	admitted      int64
	shedQueueFull int64
	shedDeadline  int64
	shedOther     int64 // draining + breaker sheds, counted by the core
}

// waiter is one queued admission request. grant is closed (under
// scheduler.mu, with granted set) when dispatch hands it a slot.
type waiter struct {
	tq      *tenantQ
	grant   chan struct{}
	granted bool
}

func newScheduler(cfg *Config, limit func() int) *scheduler {
	s := &scheduler{
		limit:         limit,
		queueCap:      cfg.QueueDepth,
		tenantCap:     cfg.TenantQueueDepth,
		maxTenants:    cfg.MaxTenants,
		defaultWeight: cfg.DefaultTenantWeight,
		weights:       make(map[string]int, len(cfg.TenantWeights)),
		quotas:        make(map[string]int, len(cfg.TenantQuotas)),
		tenants:       make(map[string]*tenantQ),
	}
	for k, v := range cfg.TenantWeights {
		s.weights[k] = v
	}
	for k, v := range cfg.TenantQuotas {
		s.quotas[k] = v
	}
	return s
}

// arrive resolves (creating on first sight) the tenant's queue and
// counts the admission attempt.
func (s *scheduler) arrive(tenant string) *tenantQ {
	s.mu.Lock()
	tq := s.tenantLocked(tenant)
	tq.requests++
	s.mu.Unlock()
	return tq
}

func (s *scheduler) tenantLocked(id string) *tenantQ {
	if tq := s.tenants[id]; tq != nil {
		return tq
	}
	if len(s.tenants) >= s.maxTenants {
		if tq := s.tenants[OverflowTenant]; tq != nil {
			return tq
		}
		id = OverflowTenant // table full: the overflow queue is always admitted
	}
	w := s.weights[id]
	if w <= 0 {
		w = s.defaultWeight
	}
	tq := &tenantQ{id: id, weight: w, quota: s.quotas[id]}
	s.tenants[id] = tq
	s.ring = append(s.ring, tq)
	return tq
}

// shedOther records a pre-admission shed (draining core or open
// breaker) against the tenant, keeping per-tenant shed totals honest.
func (s *scheduler) shedOther(tq *tenantQ) {
	s.mu.Lock()
	tq.shedOther++
	s.mu.Unlock()
}

// acquire admits one computation for tq: immediately when the core has
// headroom and nobody is queued, otherwise by waiting in the tenant's
// DRR queue for at most wait. On success the returned release function
// must be called exactly once.
func (s *scheduler) acquire(ctx context.Context, tq *tenantQ, wait time.Duration) (func(), error) {
	s.mu.Lock()
	if s.waiting == 0 && s.inflight < s.limit() && !quotaFull(tq) {
		s.inflight++
		tq.inflight++
		tq.admitted++
		s.mu.Unlock()
		return func() { s.release(tq) }, nil
	}
	// No immediate slot: claim a place in the waiting room or shed. The
	// room is bounded twice — globally by QueueDepth, and per tenant by
	// its (configured or weighted-fair) share, so one tenant's backlog
	// cannot brick everyone else's admission.
	if s.waiting >= s.queueCap || len(tq.waiters) >= s.tenantShareLocked(tq) {
		tq.shedQueueFull++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	if wait <= 0 {
		tq.shedDeadline++
		s.mu.Unlock()
		return nil, ErrDeadline
	}
	w := &waiter{tq: tq, grant: make(chan struct{})}
	tq.waiters = append(tq.waiters, w)
	s.waiting++
	// Dispatch before parking: when the only queued work ahead of us is
	// quota-capped, free capacity must reach this waiter now — no
	// release is coming to trigger it later.
	s.dispatchLocked()
	s.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.grant:
		s.noteAdmitted(tq)
		return func() { s.release(tq) }, nil
	case <-timer.C:
		s.abandon(w, true)
		return nil, ErrDeadline
	case <-ctx.Done():
		// A deadline that expires while queued is the same outcome as an
		// exhausted wait budget; a cancellation is the client leaving and
		// keeps its own error, uncounted.
		err := ctx.Err()
		if errors.Is(err, context.DeadlineExceeded) {
			s.abandon(w, true)
			return nil, ErrDeadline
		}
		s.abandon(w, false)
		return nil, err
	}
}

func (s *scheduler) noteAdmitted(tq *tenantQ) {
	s.mu.Lock()
	tq.admitted++
	s.mu.Unlock()
}

// abandon withdraws a waiter that gave up (deadline or cancel). When
// dispatch granted it a slot in the same instant, the slot is handed
// straight back and redistributed.
func (s *scheduler) abandon(w *waiter, deadline bool) {
	s.mu.Lock()
	if w.granted {
		s.inflight--
		w.tq.inflight--
		s.dispatchLocked()
	} else {
		q := w.tq.waiters
		for i, x := range q {
			if x == w {
				w.tq.waiters = append(q[:i], q[i+1:]...)
				break
			}
		}
		s.waiting--
	}
	if deadline {
		w.tq.shedDeadline++
	}
	s.mu.Unlock()
}

// release returns a slot and hands it to the next waiter per DRR.
func (s *scheduler) release(tq *tenantQ) {
	s.mu.Lock()
	s.inflight--
	tq.inflight--
	s.dispatchLocked()
	s.mu.Unlock()
}

// kick re-runs dispatch; the core calls it when the live limit may
// have risen so waiters don't sit on freed headroom.
func (s *scheduler) kick() {
	s.mu.Lock()
	s.dispatchLocked()
	s.mu.Unlock()
}

func (s *scheduler) dispatchLocked() {
	for s.waiting > 0 && s.inflight < s.limit() {
		if !s.grantOneLocked() {
			return // every waiting tenant is quota-capped
		}
	}
}

// grantOneLocked advances the DRR scan to the next servable waiter and
// grants it a slot; false when all waiting tenants are quota-capped.
// A queue gets a fresh quantum (its weight) when the cursor reaches it
// with an empty deficit, serves while the deficit lasts, then the
// cursor moves on; idle queues do not bank credit.
func (s *scheduler) grantOneLocked() bool {
	for scanned := 0; scanned < len(s.ring); scanned++ {
		tq := s.ring[s.cursor]
		if len(tq.waiters) == 0 {
			tq.deficit = 0
			s.advanceLocked()
			continue
		}
		if quotaFull(tq) {
			s.advanceLocked() // keep the deficit; the quota may free up
			continue
		}
		if tq.deficit == 0 {
			tq.deficit = tq.weight
		}
		tq.deficit--
		w := tq.waiters[0]
		tq.waiters = tq.waiters[1:]
		s.waiting--
		s.inflight++
		tq.inflight++
		w.granted = true
		close(w.grant)
		if tq.deficit == 0 {
			s.advanceLocked()
		}
		return true
	}
	return false
}

func (s *scheduler) advanceLocked() {
	s.cursor = (s.cursor + 1) % len(s.ring)
}

func quotaFull(tq *tenantQ) bool {
	return tq.quota > 0 && tq.inflight >= tq.quota
}

// tenantShareLocked is tq's waiting-room bound: the configured
// TenantQueueDepth when set, otherwise its weighted share of QueueDepth
// among tenants with work in the system (never below 1). A lone tenant
// keeps the whole room — single-tenant behavior is unchanged — while
// the moment a second tenant shows up the room splits by weight.
func (s *scheduler) tenantShareLocked(tq *tenantQ) int {
	if s.tenantCap > 0 {
		return s.tenantCap
	}
	total := 0
	for _, q := range s.ring {
		if q == tq || len(q.waiters) > 0 || q.inflight > 0 {
			total += q.weight
		}
	}
	share := s.queueCap * tq.weight / total
	if share < 1 {
		share = 1
	}
	return share
}

// load snapshots (inflight, live limit) for the pressure gauge.
func (s *scheduler) load() (inflight, limit int) {
	s.mu.Lock()
	inflight, limit = s.inflight, s.limit()
	s.mu.Unlock()
	return inflight, limit
}

// depth snapshots (inflight, waiting) for stats and quiescing.
func (s *scheduler) depth() (inflight, waiting int) {
	s.mu.Lock()
	inflight, waiting = s.inflight, s.waiting
	s.mu.Unlock()
	return inflight, waiting
}

// TenantStats is one tenant's admission accounting, shaped for the
// GET /v1/stats JSON body.
type TenantStats struct {
	Tenant string `json:"tenant"`
	Weight int    `json:"weight"`
	Quota  int    `json:"quota,omitempty"`

	InFlight int `json:"in_flight"`
	Waiting  int `json:"waiting"`

	// Requests counts computation admissions attempted (cache hits and
	// single-flight followers never reach admission).
	Requests int64 `json:"requests"`
	Admitted int64 `json:"admitted"`

	Shed          int64 `json:"shed"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	// ShedOther counts draining and breaker sheds attributed to the
	// tenant before admission.
	ShedOther int64 `json:"shed_other,omitempty"`
}

// tenantStats snapshots every tenant queue, sorted by id.
func (s *scheduler) tenantStats() []TenantStats {
	s.mu.Lock()
	out := make([]TenantStats, 0, len(s.ring))
	for _, tq := range s.ring {
		ts := TenantStats{
			Tenant:        tq.id,
			Weight:        tq.weight,
			Quota:         tq.quota,
			InFlight:      tq.inflight,
			Waiting:       len(tq.waiters),
			Requests:      tq.requests,
			Admitted:      tq.admitted,
			ShedQueueFull: tq.shedQueueFull,
			ShedDeadline:  tq.shedDeadline,
			ShedOther:     tq.shedOther,
		}
		ts.Shed = ts.ShedQueueFull + ts.ShedDeadline + ts.ShedOther
		out = append(out, ts)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
