package serving

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/textkit"
)

// cache is a sharded TTL-LRU of complement results. Sharding by key hash
// keeps lock contention bounded under concurrent load: each shard has its
// own mutex, recency list, and counters, so N cores hitting N different
// keys rarely serialize on the same lock. A TTL bounds staleness when the
// underlying model is hot-swapped or retrained; with the fixed
// deterministic mapping p -> p_c of a single model, entries never go
// semantically stale and TTL 0 (no expiry) is sound.
type cache struct {
	shards []*cacheShard
	ttl    time.Duration
	now    func() time.Time
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses, evictions, expiries int64
}

type cacheEntry struct {
	key     string
	val     string
	expires time.Time // zero when the cache has no TTL
}

// newCache builds a sharded cache holding ~size entries in total. The
// per-shard capacity is rounded up so the aggregate capacity is at least
// size.
func newCache(size, shards int, ttl time.Duration, now func() time.Time) *cache {
	if shards < 1 {
		shards = 1
	}
	if shards > size {
		shards = size
	}
	perShard := (size + shards - 1) / shards
	c := &cache{shards: make([]*cacheShard, shards), ttl: ttl, now: now}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   perShard,
			order: list.New(),
			byKey: make(map[string]*list.Element),
		}
	}
	return c
}

func (c *cache) shard(key string) *cacheShard {
	return c.shards[textkit.Hash64(key)%uint64(len(c.shards))]
}

// get returns the cached value and whether it was present and fresh.
// Expired entries are removed on access and counted separately from
// plain misses.
func (c *cache) get(key string) (string, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		s.misses++
		return "", false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().After(e.expires) {
		s.order.Remove(el)
		delete(s.byKey, key)
		s.expiries++
		s.misses++
		return "", false
	}
	s.order.MoveToFront(el)
	s.hits++
	return e.val, true
}

// put stores a value, evicting the least recently used entry of the
// shard when full.
func (c *cache) put(key, val string) {
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val = val
		e.expires = expires
		s.order.MoveToFront(el)
		return
	}
	s.byKey[key] = s.order.PushFront(&cacheEntry{key: key, val: val, expires: expires})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byKey, oldest.Value.(*cacheEntry).key)
		s.evictions++
	}
}

// CacheStats aggregates the per-shard counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Expiries  int64 `json:"expiries"`
	Entries   int   `json:"entries"`
}

func (c *cache) stats() CacheStats {
	var out CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		out.Expiries += s.expiries
		out.Entries += s.order.Len()
		s.mu.Unlock()
	}
	return out
}
