package serving

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup is a hand-rolled single-flight: concurrent calls for the
// same key share one execution of fn. With a deterministic complement
// function the N-1 followers would compute byte-identical results, so
// collapsing them trades pure redundancy for a channel wait. The module
// has no dependencies, so this re-implements the core of
// golang.org/x/sync/singleflight with one addition: followers honor
// their own context, so a client that disconnects while waiting is
// released immediately instead of being held until the leader finishes.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  string
	err  error
	// dups counts followers that attached to this call; read by tests
	// and by the core's dedup-hit counter.
	dups int64
}

// do executes fn once per key among concurrent callers. It reports
// whether this caller was a follower (shared someone else's execution).
// Followers return early with ctx.Err() when their context ends first;
// the leader always runs fn to completion so the result can still be
// cached for everyone else.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (string, error)) (val string, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		atomic.AddInt64(&c.dups, 1)
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return "", true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// waiters returns the number of followers currently attached to key's
// in-flight call, or 0 when none is in flight. Test hook.
func (g *flightGroup) waiters(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return atomic.LoadInt64(&c.dups)
	}
	return 0
}
