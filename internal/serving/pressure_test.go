package serving

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLevelHeaderWireValues(t *testing.T) {
	// "1" for raw is load-bearing: httpmw, loadgen, and the ring client
	// all predate the ladder and test X-PAS-Degraded for that value.
	cases := []struct {
		level  Level
		str    string
		header string
	}{
		{LevelFull, "full", ""},
		{LevelTrim, "trim", "trim"},
		{LevelRaw, "raw", "1"},
	}
	for _, tc := range cases {
		if got := tc.level.String(); got != tc.str {
			t.Errorf("(%d).String() = %q, want %q", tc.level, got, tc.str)
		}
		if got := tc.level.Header(); got != tc.header {
			t.Errorf("(%d).Header() = %q, want %q", tc.level, got, tc.header)
		}
	}
}

// saturate / relax drive the gauge with uniform observations until the
// EWMA converges enough to cross (or re-cross) the ladder thresholds.
func saturate(g *pressureGauge, n int, wait time.Duration, util float64) {
	for i := 0; i < n; i++ {
		g.observe(wait, util)
	}
}

// TestPressureLadderStepsAndRecovers walks the gauge up the full
// ladder and back down, checking the hysteresis bands hold at each
// boundary.
func TestPressureLadderStepsAndRecovers(t *testing.T) {
	g := newPressureGauge(100 * time.Millisecond)
	if g.current() != LevelFull {
		t.Fatal("fresh gauge not at LevelFull")
	}

	// Moderate pressure: wait ~60% of budget at ~60% utilization →
	// score converges to 0.6, above enterTrim (0.5), below enterRaw.
	saturate(g, 50, 60*time.Millisecond, 0.6)
	if got := g.current(); got != LevelTrim {
		t.Fatalf("level = %v at score %.2f, want trim", got, g.score)
	}

	// Hysteresis: sagging to 0.4 (between exitTrim 0.35 and enterTrim
	// 0.5) must hold the trim rung, not flap.
	saturate(g, 50, 40*time.Millisecond, 0.4)
	if got := g.current(); got != LevelTrim {
		t.Fatalf("level = %v at score %.2f inside the trim band, want trim held", got, g.score)
	}

	// Saturation: full budget waits at full utilization → raw.
	saturate(g, 50, 100*time.Millisecond, 1)
	if got := g.current(); got != LevelRaw {
		t.Fatalf("level = %v at score %.2f, want raw", got, g.score)
	}

	// Partial recovery to ~0.7 (above exitRaw 0.6) holds raw...
	saturate(g, 50, 70*time.Millisecond, 0.7)
	if got := g.current(); got != LevelRaw {
		t.Fatalf("level = %v at score %.2f inside the raw band, want raw held", got, g.score)
	}
	// ...then dropping below exitRaw re-enters trim, and a quiet queue
	// walks all the way back to full.
	saturate(g, 50, 40*time.Millisecond, 0.4)
	if got := g.current(); got != LevelTrim {
		t.Fatalf("level = %v at score %.2f, want trim after raw exit", got, g.score)
	}
	saturate(g, 100, 0, 0)
	if got := g.current(); got != LevelFull {
		t.Fatalf("level = %v at score %.2f, want full after recovery", got, g.score)
	}

	// Up, down at both boundaries: full→trim→raw→trim→full is 4 moves.
	if _, _, transitions, _, _ := g.snapshot(); transitions != 4 {
		t.Fatalf("transitions = %d, want 4", transitions)
	}
}

// TestPressureRetryAfterFromDrainEWMA pins the Retry-After pricing
// (the satellite replacing the fixed constant): backlog divided by the
// limit, times the observed service EWMA, plus one service round.
func TestPressureRetryAfterFromDrainEWMA(t *testing.T) {
	g := newPressureGauge(100 * time.Millisecond)

	// No observed computation yet: the hint is the legacy constant 1.
	if got := g.retryAfter(50, 4); got != 1 {
		t.Fatalf("cold retryAfter = %d, want 1", got)
	}

	// One 2s computation: svcEWMA = 0.2·2000ms = 400ms.
	g.observeService(2 * time.Second)
	cases := []struct {
		waiting, limit, want int
	}{
		{0, 1, 1},  // ceil(400ms·1) = 1s
		{9, 2, 3},  // 9/2+1 = 5.5 rounds · 400ms = 2.2s → 3s
		{9, 0, 4},  // a zero limit prices like 1: 10 rounds · 400ms → 4s
		{200, 1, 30}, // 201 rounds · 400ms = 80.4s → clamped to 30
	}
	for _, tc := range cases {
		if got := g.retryAfter(tc.waiting, tc.limit); got != tc.want {
			t.Errorf("retryAfter(%d, %d) = %d, want %d", tc.waiting, tc.limit, got, tc.want)
		}
	}
}

// brownoutCore builds a core with the ladder armed and a distinct
// cheap complement so the rung is visible in the payload.
func brownoutCore(t *testing.T, calls *int64, cheapCalls *int64) *Core {
	t.Helper()
	cheap := func(prompt, salt string) string {
		*cheapCalls++
		return "cheap:" + prompt
	}
	return mustNew(t, countingFunc(calls), Config{
		CacheSize: 64,
		Brownout:  true,
		CheapFn:   cheap,
	})
}

// TestCoreBrownoutTrimServesCheapComplement: at the trim rung the core
// serves CheapFn results under a trim-scoped cache key, so full-quality
// entries are neither served stale nor poisoned.
func TestCoreBrownoutTrimServesCheapComplement(t *testing.T) {
	var calls, cheapCalls int64
	c := brownoutCore(t, &calls, &cheapCalls)
	ctx := context.Background()

	// Warm the full-quality entry before any pressure.
	full, level, err := c.DoLevel(ctx, "warm", "s", "m")
	if err != nil || level != LevelFull {
		t.Fatalf("warm request = (%q, %v, %v)", full, level, err)
	}

	saturate(c.gauge, 50, 60*time.Millisecond, 0.6) // force trim
	v, level, err := c.DoLevel(ctx, "fresh", "s", "m")
	if err != nil || level != LevelTrim || v != "cheap:fresh" {
		t.Fatalf("trim miss = (%q, %v, %v), want cheap complement", v, level, err)
	}
	// The trim result was cached under its own key: a repeat serves it
	// again without recomputing, still flagged trim.
	v2, level2, err := c.DoLevel(ctx, "fresh", "s", "m")
	if err != nil || level2 != LevelTrim || v2 != v {
		t.Fatalf("trim repeat = (%q, %v, %v)", v2, level2, err)
	}
	if cheapCalls != 1 {
		t.Fatalf("cheap complement computed %d times, want 1 (trim cache)", cheapCalls)
	}
	// A full-quality cache hit outranks the ladder: the warm key still
	// serves its full complement.
	vh, levelh, err := c.DoLevel(ctx, "warm", "s", "m")
	if err != nil || levelh != LevelFull || vh != full {
		t.Fatalf("warm hit under pressure = (%q, %v, %v), want full", vh, levelh, err)
	}
	s := c.Stats()
	if s.ServedTrim != 2 || s.PressureLevel != "trim" {
		t.Fatalf("stats = served_trim %d, level %s; want 2, trim", s.ServedTrim, s.PressureLevel)
	}
}

// TestCoreBrownoutRawSkipsAdmission: at the raw rung misses bypass
// computation entirely and the caller is told to pass the prompt
// through; draining still outranks the ladder and sheds instead.
func TestCoreBrownoutRawSkipsAdmission(t *testing.T) {
	var calls, cheapCalls int64
	c := brownoutCore(t, &calls, &cheapCalls)
	ctx := context.Background()

	saturate(c.gauge, 50, 100*time.Millisecond, 1) // force raw
	v, level, err := c.DoLevel(ctx, "p", "s", "m")
	if err != nil || level != LevelRaw || v != "" {
		t.Fatalf("raw miss = (%q, %v, %v), want empty value at LevelRaw", v, level, err)
	}
	if calls != 0 || cheapCalls != 0 {
		t.Fatalf("raw rung computed (full %d, cheap %d), want no computation", calls, cheapCalls)
	}
	if s := c.Stats(); s.ServedRaw != 1 {
		t.Fatalf("served_raw = %d, want 1", s.ServedRaw)
	}

	// Drain beats brownout: a draining core sheds so routers fail over;
	// it must not keep absorbing traffic as fail-open 200s.
	c.Drain()
	if _, _, err := c.DoLevel(ctx, "p2", "s", "m"); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining browned-out core: err = %v, want ErrDraining", err)
	}
}

// TestCoreBrownoutRecoversUnderTraffic: raw-served requests observe
// the (now idle) core, so sustained traffic alone walks the ladder
// back to full service — no operator action needed.
func TestCoreBrownoutRecoversUnderTraffic(t *testing.T) {
	var calls, cheapCalls int64
	c := brownoutCore(t, &calls, &cheapCalls)
	ctx := context.Background()

	saturate(c.gauge, 50, 100*time.Millisecond, 1)
	for i := 0; i < 500 && c.gauge.current() != LevelFull; i++ {
		if _, _, err := c.DoLevel(ctx, "recovery", "s", "m"); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.gauge.current(); got != LevelFull {
		t.Fatalf("level = %v after sustained idle traffic, want full", got)
	}
	// Back at full: the next miss computes the real complement again.
	v, level, err := c.DoLevel(ctx, "recovered", "s", "m")
	if err != nil || level != LevelFull || v != "pc:recovered/s" {
		t.Fatalf("post-recovery request = (%q, %v, %v), want full complement", v, level, err)
	}
}

// TestCoreRetryAfterColdDefault: a fresh core's hint is the legacy 1s.
func TestCoreRetryAfterColdDefault(t *testing.T) {
	var calls int64
	c := mustNew(t, countingFunc(&calls), Config{})
	if got := c.RetryAfter(); got != 1 {
		t.Fatalf("cold RetryAfter = %d, want 1", got)
	}
}
