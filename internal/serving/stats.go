package serving

import (
	"encoding/json"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// latencyWindow is how many recent request latencies the quantile
// estimator keeps. A sliding window keeps the quantiles responsive to
// load changes while bounding memory; 4096 float64s is 32KiB.
const latencyWindow = 4096

// latencyRing is a fixed-size ring of recent latencies in
// milliseconds.
type latencyRing struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing {
	return &latencyRing{buf: make([]float64, n)}
}

func (r *latencyRing) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// snapshot copies the observed window (in insertion-independent order;
// quantiles sort anyway).
func (r *latencyRing) snapshot() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]float64, n)
	copy(out, r.buf[:n])
	return out
}

// Stats is a point-in-time snapshot of the serving core, shaped for
// the GET /v1/stats JSON body.
type Stats struct {
	// InFlight is the number of complement computations running now.
	InFlight int `json:"in_flight"`
	// QueueDepth is the number of requests currently waiting for a
	// slot; QueueCapacity is the configured bound.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`

	// Shed totals the load-shedding outcomes; the components tell
	// overload apart from tight deadlines, a tripped breaker, and a
	// draining core.
	Shed          int64 `json:"shed"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	ShedBreaker   int64 `json:"shed_breaker"`
	ShedDraining  int64 `json:"shed_draining"`

	// Draining reports that Drain was called: the core refuses new
	// computations and the process is on its way out.
	Draining bool `json:"draining,omitempty"`

	// Degraded counts requests the layer above served fail-open with
	// the un-augmented prompt after this core failed them.
	Degraded int64 `json:"degraded"`

	// Limit is the live concurrency limit (MaxInFlight when static);
	// AdaptiveLimit carries the AIMD limiter's snapshot when armed.
	Limit         int                    `json:"limit"`
	AdaptiveLimit *resilience.LimitStats `json:"adaptive_limit,omitempty"`

	// PressureScore is the unitless overload score in [0, 1];
	// PressureLevel is the brownout rung misses are served at ("full",
	// "trim", "raw") and PressureTransitions counts rung changes.
	// ServedTrim / ServedRaw count responses the ladder degraded.
	PressureScore       float64 `json:"pressure_score"`
	PressureLevel       string  `json:"pressure_level"`
	PressureTransitions int64   `json:"pressure_transitions"`
	ServedTrim          int64   `json:"served_trim"`
	ServedRaw           int64   `json:"served_raw"`

	// QueueWaitEWMAMs / ServiceEWMAMs are the smoothed admission-wait
	// and computation times feeding the score and the Retry-After hint
	// (RetryAfterHintS, seconds).
	QueueWaitEWMAMs float64 `json:"queue_wait_ewma_ms"`
	ServiceEWMAMs   float64 `json:"service_ewma_ms"`
	RetryAfterHintS int     `json:"retry_after_hint_s"`

	// Tenants is the per-tenant admission accounting, sorted by id.
	Tenants []TenantStats `json:"tenants,omitempty"`

	// Breaker is the augmentation breaker's snapshot; nil when no
	// breaker is armed.
	Breaker *resilience.BreakerStats `json:"breaker,omitempty"`

	// DedupHits counts requests served by attaching to another
	// request's in-flight computation.
	DedupHits int64 `json:"dedup_hits"`

	Cache CacheStats `json:"cache"`
	// CacheHitRatio is hits/(hits+misses), 0 when no lookups yet.
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	// Latency quantiles over the recent completed-request window, in
	// milliseconds.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// Stats returns a consistent-enough snapshot (counters are read
// atomically but not as one transaction; fine for monitoring).
func (c *Core) Stats() Stats {
	inflight, waiting := c.sched.depth()
	s := Stats{
		InFlight:      inflight,
		QueueDepth:    waiting,
		QueueCapacity: c.cfg.QueueDepth,
		Requests:      atomic.LoadInt64(&c.requests),
		Completed:     atomic.LoadInt64(&c.completed),
		ShedQueueFull: atomic.LoadInt64(&c.shedQueueFull),
		ShedDeadline:  atomic.LoadInt64(&c.shedDeadline),
		ShedBreaker:   atomic.LoadInt64(&c.shedBreaker),
		ShedDraining:  atomic.LoadInt64(&c.shedDraining),
		Draining:      c.draining.Load(),
		Degraded:      atomic.LoadInt64(&c.degraded),
		Limit:         c.limit(),
		ServedTrim:    atomic.LoadInt64(&c.servedTrim),
		ServedRaw:     atomic.LoadInt64(&c.servedRaw),
	}
	s.DedupHits = atomic.LoadInt64(&c.dedupHits)
	s.Shed = s.ShedQueueFull + s.ShedDeadline + s.ShedBreaker + s.ShedDraining
	if c.limiter != nil {
		ls := c.limiter.Stats()
		s.AdaptiveLimit = &ls
	}
	score, level, transitions, waitMs, svcMs := c.gauge.snapshot()
	s.PressureScore = score
	s.PressureLevel = level.String()
	s.PressureTransitions = transitions
	s.QueueWaitEWMAMs = waitMs
	s.ServiceEWMAMs = svcMs
	s.RetryAfterHintS = c.gauge.retryAfter(waiting, s.Limit)
	s.Tenants = c.sched.tenantStats()
	if c.breaker != nil {
		bs := c.breaker.Stats()
		s.Breaker = &bs
	}
	if c.cache != nil {
		s.Cache = c.cache.stats()
		if lookups := s.Cache.Hits + s.Cache.Misses; lookups > 0 {
			s.CacheHitRatio = float64(s.Cache.Hits) / float64(lookups)
		}
	}
	if lats := c.lat.snapshot(); len(lats) > 0 {
		s.LatencyP50Ms = quantileOrZero(lats, 0.50)
		s.LatencyP95Ms = quantileOrZero(lats, 0.95)
		s.LatencyP99Ms = quantileOrZero(lats, 0.99)
	}
	return s
}

func quantileOrZero(xs []float64, q float64) float64 {
	v, err := metrics.Quantile(xs, q)
	if err != nil {
		return 0
	}
	return v
}

// RegisterMetrics exposes the core's counters on reg under the
// pas_serving_ namespace, read from Stats at scrape time so the core's
// atomics stay the single source of truth.
func (c *Core) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector(func(e *obs.Emitter) {
		s := c.Stats()
		e.Gauge("pas_serving_in_flight", "Complement computations running now.", float64(s.InFlight))
		e.Gauge("pas_serving_queue_depth", "Requests waiting for a computation slot.", float64(s.QueueDepth))
		e.Counter("pas_serving_requests_total", "Requests entering the serving core.", float64(s.Requests))
		e.Counter("pas_serving_completed_total", "Requests served successfully.", float64(s.Completed))
		e.Counter("pas_serving_shed_total", "Requests shed, by reason.",
			float64(s.ShedQueueFull), "reason", "queue_full")
		e.Counter("pas_serving_shed_total", "Requests shed, by reason.",
			float64(s.ShedDeadline), "reason", "deadline")
		e.Counter("pas_serving_shed_total", "Requests shed, by reason.",
			float64(s.ShedBreaker), "reason", "breaker")
		e.Counter("pas_serving_shed_total", "Requests shed, by reason.",
			float64(s.ShedDraining), "reason", "draining")
		draining := 0.0
		if s.Draining {
			draining = 1
		}
		e.Gauge("pas_serving_draining", "Whether the core is draining for shutdown (1 = draining).", draining)
		e.Counter("pas_serving_degraded_total", "Requests served fail-open with the raw prompt.", float64(s.Degraded))
		e.Gauge("pas_serving_limit", "Live concurrency limit (AIMD-adaptive, or the static cap).", float64(s.Limit))
		if s.AdaptiveLimit != nil {
			e.Counter("pas_serving_limit_raises_total", "Additive increases applied to the adaptive limit.", float64(s.AdaptiveLimit.Raises))
			e.Counter("pas_serving_limit_cuts_total", "Multiplicative decreases applied to the adaptive limit.", float64(s.AdaptiveLimit.Cuts))
		}
		e.Gauge("pas_serving_pressure_score", "Overload pressure score in [0, 1] (queue wait + limit headroom).", s.PressureScore)
		levelNum := 0.0
		switch s.PressureLevel {
		case "trim":
			levelNum = 1
		case "raw":
			levelNum = 2
		}
		e.Gauge("pas_serving_pressure_level", "Brownout ladder rung (0 full, 1 trim, 2 raw).", levelNum)
		e.Counter("pas_serving_pressure_transitions_total", "Brownout ladder rung changes.", float64(s.PressureTransitions))
		e.Counter("pas_serving_brownout_total", "Responses served below full quality, by rung.",
			float64(s.ServedTrim), "level", "trim")
		e.Counter("pas_serving_brownout_total", "Responses served below full quality, by rung.",
			float64(s.ServedRaw), "level", "raw")
		e.Gauge("pas_serving_retry_after_hint_seconds", "Current Retry-After hint for shed responses.", float64(s.RetryAfterHintS))
		for _, ts := range s.Tenants {
			e.Counter("pas_serving_tenant_requests_total", "Computation admissions attempted, by tenant.",
				float64(ts.Requests), "tenant", ts.Tenant)
			e.Counter("pas_serving_tenant_admitted_total", "Computations admitted, by tenant.",
				float64(ts.Admitted), "tenant", ts.Tenant)
			e.Counter("pas_serving_tenant_shed_total", "Requests shed, by tenant.",
				float64(ts.Shed), "tenant", ts.Tenant)
			e.Gauge("pas_serving_tenant_in_flight", "Computations running now, by tenant.",
				float64(ts.InFlight), "tenant", ts.Tenant)
			e.Gauge("pas_serving_tenant_waiting", "Requests queued for admission, by tenant.",
				float64(ts.Waiting), "tenant", ts.Tenant)
		}
		e.Counter("pas_serving_dedup_hits_total", "Requests served by an in-flight duplicate.", float64(s.DedupHits))
		e.Counter("pas_serving_cache_hits_total", "Result-cache hits.", float64(s.Cache.Hits))
		e.Counter("pas_serving_cache_misses_total", "Result-cache misses.", float64(s.Cache.Misses))
		e.Counter("pas_serving_cache_evictions_total", "Result-cache LRU evictions.", float64(s.Cache.Evictions))
		e.Counter("pas_serving_cache_expiries_total", "Result-cache TTL expiries.", float64(s.Cache.Expiries))
		e.Gauge("pas_serving_cache_entries", "Result-cache entries resident.", float64(s.Cache.Entries))
		e.Gauge("pas_serving_latency_ms", "Recent-window latency quantiles in milliseconds.",
			s.LatencyP50Ms, "quantile", "0.5")
		e.Gauge("pas_serving_latency_ms", "Recent-window latency quantiles in milliseconds.",
			s.LatencyP95Ms, "quantile", "0.95")
		e.Gauge("pas_serving_latency_ms", "Recent-window latency quantiles in milliseconds.",
			s.LatencyP99Ms, "quantile", "0.99")
		if s.Breaker != nil {
			state := 0.0
			switch s.Breaker.State {
			case "half-open":
				state = 1
			case "open":
				state = 2
			}
			e.Gauge("pas_serving_breaker_state", "Augmentation breaker state (0 closed, 1 half-open, 2 open).", state)
			e.Counter("pas_serving_breaker_opens_total", "Times the augmentation breaker opened.", float64(s.Breaker.Opens))
			e.Counter("pas_serving_breaker_rejections_total", "Requests rejected by the open breaker.", float64(s.Breaker.Rejections))
		}
	})
}

// StatsHandler serves the snapshot as JSON; mount at GET /v1/stats.
func (c *Core) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := json.NewEncoder(w).Encode(c.Stats()); err != nil {
			log.Printf("serving: writing stats: %v", err)
		}
	})
}
