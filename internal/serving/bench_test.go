package serving

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/textkit"
)

// heavyComplement simulates the cost profile of the real model's
// Complement (facet analysis + policy draws over the prompt text) with
// a deterministic compute-bound loop, so cold/cached/deduplicated
// paths can be compared without importing the root package (which
// would be an import cycle).
func heavyComplement(iters int) Func {
	return func(prompt, salt string) string {
		h := textkit.Hash64(salt)
		for i := 0; i < iters; i++ {
			h = textkit.Hash64Seed(prompt, h^uint64(i))
		}
		return fmt.Sprintf("pc-%016x", h)
	}
}

const benchIters = 2000 // ~100µs per cold complement on current hardware

// BenchmarkColdPath measures the uncached baseline: every request is a
// unique prompt, so the cache and single-flight never help.
func BenchmarkColdPath(b *testing.B) {
	c, err := New(heavyComplement(benchIters), Config{CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Do(ctx, fmt.Sprintf("unique prompt %d", i), "s", "m"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedRepeated measures the repeated-prompt workload the
// fixed p -> p_c mapping makes cacheable: a small working set of
// prompts cycled forever. After the first lap every request is a cache
// hit.
func BenchmarkCachedRepeated(b *testing.B) {
	c, err := New(heavyComplement(benchIters), Config{CacheSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	prompts := make([]string, 16)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("popular prompt %d", i)
		if _, err := c.Do(ctx, prompts[i], "s", "m"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Do(ctx, prompts[i%len(prompts)], "s", "m"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDedupConcurrent measures concurrent identical load with the
// cache disabled, so single-flight alone carries the collapse: at any
// moment many goroutines want the same key and share one computation.
func BenchmarkDedupConcurrent(b *testing.B) {
	var calls int64
	fn := func(prompt, salt string) string {
		atomic.AddInt64(&calls, 1)
		return heavyComplement(benchIters)(prompt, salt)
	}
	c, err := New(fn, Config{CacheSize: -1, MaxInFlight: 4, QueueDepth: 1 << 16, QueueWait: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := c.Do(ctx, "the one hot prompt", "s", "m"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(atomic.LoadInt64(&calls))/float64(b.N), "computes/op")
}

// TestCachedThroughputSpeedup is the acceptance check behind the
// benchmarks: on a repeated-prompt workload the cached core must be at
// least 10x faster than the uncached path. The complement is made
// expensive enough (~100µs) that the margin is orders of magnitude, so
// the assertion holds on slow shared CI machines too.
func TestCachedThroughputSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const ops = 50
	ctx := context.Background()

	cold, err := New(heavyComplement(benchIters), Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := cold.Do(ctx, fmt.Sprintf("cold %d", i), "s", "m"); err != nil {
			t.Fatal(err)
		}
	}
	coldDur := time.Since(start)

	warm, err := New(heavyComplement(benchIters), Config{CacheSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Do(ctx, "hot", "s", "m"); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < ops; i++ {
		if _, err := warm.Do(ctx, "hot", "s", "m"); err != nil {
			t.Fatal(err)
		}
	}
	warmDur := time.Since(start)

	if coldDur < 10*warmDur {
		t.Fatalf("cached path only %.1fx faster (cold %v, cached %v), want >= 10x",
			float64(coldDur)/float64(warmDur), coldDur, warmDur)
	}
	t.Logf("repeated-prompt speedup: %.0fx (cold %v for %d ops, cached %v)",
		float64(coldDur)/float64(warmDur), coldDur, ops, warmDur)
}
