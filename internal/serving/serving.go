// Package serving is the admission-controlled, deduplicating, cached
// core of the PAS hot path. It wraps any complement function
// func(prompt, salt) string behind three layers, outermost first:
//
//  1. a sharded TTL-LRU result cache keyed on (prompt, salt, model) —
//     PAS computes a fixed mapping p -> p_c, so identical requests are
//     pure repeat work;
//  2. single-flight deduplication — N concurrent identical requests
//     trigger exactly one computation and share its result;
//  3. a bounded admission queue with deadline-aware load shedding —
//     at most MaxInFlight computations run at once, at most QueueDepth
//     requests wait for a slot, and a request that cannot get a slot
//     within its budget (QueueWait capped by the context deadline) is
//     shed with a typed error the HTTP layer maps to 503 + Retry-After.
//
// The package is pure library: it knows nothing about HTTP except the
// optional StatsHandler, and the complement function is injected, so
// the same core fronts the in-process system (cmd/passerve), the
// reverse proxy (cmd/pasproxy), and any future backend.
package serving

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Func computes the complementary prompt p_c = M_p(p). It must be safe
// for concurrent use; the PAS model's Complement is.
type Func func(prompt, salt string) string

// Typed shedding errors; the serving layers above map all of them to
// 503 + Retry-After (or to graceful degradation when enabled).
var (
	// ErrQueueFull reports that MaxInFlight slots were busy and the
	// admission queue was already holding QueueDepth waiters.
	ErrQueueFull = errors.New("serving: admission queue full")
	// ErrDeadline reports that no slot freed up within the request's
	// wait budget (QueueWait, or less when the context deadline is
	// nearer).
	ErrDeadline = errors.New("serving: queue wait budget exhausted")
	// ErrBreakerOpen reports that the augmentation breaker is open:
	// recent computations kept shedding, so the core fails fast instead
	// of queueing more doomed work.
	ErrBreakerOpen = fmt.Errorf("serving: augmentation breaker open: %w", resilience.ErrOpen)
	// ErrDraining reports that the core is draining for shutdown: new
	// computations are refused so the process can quiesce, while cache
	// hits and computations already admitted (or attached to in flight)
	// keep being served. The HTTP layer maps it to 503 + Retry-After —
	// a router fails the request over to another replica — and it is
	// never degraded to a fail-open 200: a draining replica must shed,
	// not keep absorbing traffic.
	ErrDraining = errors.New("serving: draining: new computations refused")
)

// Config sizes the serving core. The zero value of any field selects
// its default.
type Config struct {
	// CacheSize is the total result-cache capacity in entries across
	// all shards. Negative disables caching. Default 4096.
	CacheSize int
	// CacheShards is the shard count; more shards, less lock
	// contention. Default 16 (capped at CacheSize).
	CacheShards int
	// CacheTTL expires entries this long after insertion; 0 keeps them
	// until evicted. For a fixed deterministic model TTL 0 is sound;
	// set a TTL when the model behind the core can be retrained.
	CacheTTL time.Duration
	// MaxInFlight bounds concurrent complement computations. Default 64.
	MaxInFlight int
	// QueueDepth bounds requests waiting for a computation slot.
	// Unlike the other fields, 0 is meaningful rather than a default:
	// it disables waiting entirely, restoring instant hard-reject.
	QueueDepth int
	// QueueWait is the longest a request waits for a slot before being
	// shed; the context deadline tightens it per request. Default 100ms.
	QueueWait time.Duration
	// BreakerThreshold, when > 0, arms a circuit breaker over the
	// computation path: after that many consecutive shed computations
	// the core fails fast with ErrBreakerOpen for BreakerCooldown,
	// then admits a single probe per half-open window. 0 disables it.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open window. Default 2s when
	// the breaker is armed.
	BreakerCooldown time.Duration
	// Now injects the clock for TTL expiry and breaker cooldowns;
	// tests pin it. Default time.Now.
	Now func() time.Time
}

func (cfg *Config) applyDefaults() error {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = 16
	}
	if cfg.CacheShards < 0 {
		return fmt.Errorf("serving: CacheShards must be >= 0, got %d", cfg.CacheShards)
	}
	if cfg.CacheTTL < 0 {
		return fmt.Errorf("serving: CacheTTL must be >= 0, got %v", cfg.CacheTTL)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxInFlight < 0 {
		return fmt.Errorf("serving: MaxInFlight must be > 0, got %d", cfg.MaxInFlight)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("serving: QueueDepth must be >= 0, got %d", cfg.QueueDepth)
	}
	if cfg.QueueWait == 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	if cfg.QueueWait < 0 {
		return fmt.Errorf("serving: QueueWait must be >= 0, got %v", cfg.QueueWait)
	}
	if cfg.BreakerThreshold < 0 {
		return fmt.Errorf("serving: BreakerThreshold must be >= 0, got %d", cfg.BreakerThreshold)
	}
	if cfg.BreakerCooldown < 0 {
		return fmt.Errorf("serving: BreakerCooldown must be >= 0, got %v", cfg.BreakerCooldown)
	}
	if cfg.BreakerThreshold > 0 && cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return nil
}

// Core is the serving engine. Create with New; safe for concurrent use.
type Core struct {
	fn    Func
	cfg   Config
	cache *cache // nil when caching is disabled

	flight  flightGroup
	slots   chan struct{}       // counting semaphore, cap MaxInFlight
	queue   chan struct{}       // waiting tokens, cap QueueDepth
	breaker *resilience.Breaker // nil when BreakerThreshold == 0

	// draining, once set, refuses new computations (ErrDraining) while
	// in-flight and cache-hit traffic keeps being served; see Drain.
	draining atomic.Bool

	requests      int64
	completed     int64
	dedupHits     int64
	shedQueueFull int64
	shedDeadline  int64
	shedBreaker   int64
	shedDraining  int64
	degraded      int64

	lat *latencyRing
}

// New builds a serving core around fn.
func New(fn Func, cfg Config) (*Core, error) {
	if fn == nil {
		return nil, errors.New("serving: nil complement function")
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	c := &Core{
		fn:    fn,
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.QueueDepth),
		lat:   newLatencyRing(latencyWindow),
	}
	if cfg.CacheSize > 0 {
		c.cache = newCache(cfg.CacheSize, cfg.CacheShards, cfg.CacheTTL, cfg.Now)
	}
	if cfg.BreakerThreshold > 0 {
		c.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
			Now:       cfg.Now,
		})
	}
	return c, nil
}

// Key is the normalized cache/dedup key: the (prompt, salt, model)
// dimensions joined with NUL separators. Prompts are free text, so a
// plain concatenation would let ("a", "bc") collide with ("ab", "c").
//
// It is exported because the key doubles as the shard key of the
// cluster routing tier (internal/ring): the ring hashes exactly these
// bytes, so a request routed to a replica lands on the same key the
// replica's own cache uses — byte-for-byte agreement is what gives the
// cluster its per-key cache locality.
//
//paslint:hotpath computed per request and per ring route; one concat, no conversions (BENCH_serving.json)
func Key(prompt, salt, model string) string {
	return prompt + "\x00" + salt + "\x00" + model
}

// SplitKey inverts Key: it splits at the first two NUL separators, so
// the round trip is exact whenever prompt and salt are NUL-free (the
// invariant every caller upholds — both come from JSON text fields).
// ok is false when k is not a well-formed key (fewer than two NULs).
func SplitKey(k string) (prompt, salt, model string, ok bool) {
	i := strings.Index(k, "\x00")
	if i < 0 {
		return "", "", "", false
	}
	j := strings.Index(k[i+1:], "\x00")
	if j < 0 {
		return "", "", "", false
	}
	return k[:i], k[i+1 : i+1+j], k[i+1+j+1:], true
}

// Do serves one complement request through cache, dedup, and
// admission. The model string scopes the cache key so one core can
// front several model versions without cross-talk. On success it
// returns p_c; on overload it returns ErrQueueFull or ErrDeadline; a
// context that ends first returns its ctx.Err().
//
//paslint:hotpath cache-hit path budget is key+lookup+finish; the paper's p50 assumes hits do not allocate
func (c *Core) Do(ctx context.Context, prompt, salt, model string) (string, error) {
	atomic.AddInt64(&c.requests, 1)
	if err := ctx.Err(); err != nil {
		return "", err // client already gone; don't compute for the dead
	}
	start := c.cfg.Now()
	k := Key(prompt, salt, model)
	ctx, span := obs.StartSpan(ctx, "serving.do")
	defer span.End()

	_, lookup := obs.StartSpan(ctx, "serving.cache_lookup")
	if c.cache != nil {
		if v, ok := c.cache.get(k); ok {
			lookup.SetStatus("hit")
			lookup.End()
			span.SetStatus("cache_hit")
			c.finish(start)
			return v, nil
		}
		lookup.SetStatus("miss")
	} else {
		lookup.SetStatus("disabled")
	}
	lookup.End()

	v, shared, err := c.flight.do(ctx, k, func() (string, error) { //paslint:allow hotpathalloc miss-path leader closure; the hit path has already returned by this line
		// The single-flight leader runs here; followers share its
		// outcome, so the spans below describe the one real computation.
		//
		// The drain gate sits exactly here — after the cache lookup and
		// the follower attach — so a draining core still answers repeat
		// traffic (hits) and requests that joined an in-flight
		// computation, but never starts new work. Shedding before the
		// breaker keeps drain out of the breaker's failure accounting:
		// draining is an operator action, not a health signal.
		if c.draining.Load() {
			atomic.AddInt64(&c.shedDraining, 1)
			return "", ErrDraining
		}
		_, qspan := obs.StartSpan(ctx, "serving.queue_wait")
		qspan.SetAttr("singleflight.role", "leader")
		// The breaker guards the leader only: followers share the
		// leader's outcome, and cache hits never reach this point, so
		// one failed computation is one recorded failure.
		var done func(success bool)
		if c.breaker != nil {
			if qspan != nil {
				qspan.SetAttr("breaker.state", c.breaker.Stats().State)
			}
			var berr error
			done, berr = c.breaker.Allow()
			if berr != nil {
				atomic.AddInt64(&c.shedBreaker, 1)
				qspan.SetError(ErrBreakerOpen)
				qspan.End()
				return "", ErrBreakerOpen
			}
		}
		release, err := c.admit(ctx)
		if err != nil {
			if done != nil {
				// Shed computations are the breaker's failure signal; a
				// cancelled client says nothing about core health.
				done(!Overloaded(err))
			}
			qspan.SetError(err)
			qspan.End()
			return "", err
		}
		qspan.End()
		defer release()
		_, compute := obs.StartSpan(ctx, "serving.compute")
		out := c.fn(prompt, salt)
		compute.End()
		if c.cache != nil {
			c.cache.put(k, out)
		}
		if done != nil {
			done(true)
		}
		return out, nil
	})
	if shared {
		atomic.AddInt64(&c.dedupHits, 1)
		span.SetAttr("singleflight.role", "follower")
	}
	if err != nil {
		span.SetError(err)
		return "", err
	}
	c.finish(start)
	return v, nil
}

func (c *Core) finish(start time.Time) {
	atomic.AddInt64(&c.completed, 1)
	c.lat.observe(c.cfg.Now().Sub(start))
}

// admit acquires a computation slot: immediately when one is free,
// otherwise by waiting in the bounded queue for at most the request's
// budget. It returns the release function for the slot.
func (c *Core) admit(ctx context.Context) (release func(), err error) {
	select {
	case c.slots <- struct{}{}:
		return func() { <-c.slots }, nil
	default:
	}
	// All slots busy: claim a waiting token or shed.
	select {
	case c.queue <- struct{}{}:
	default:
		atomic.AddInt64(&c.shedQueueFull, 1)
		return nil, ErrQueueFull
	}
	defer func() { <-c.queue }()

	wait := c.cfg.QueueWait
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
		}
	}
	if wait <= 0 {
		atomic.AddInt64(&c.shedDeadline, 1)
		return nil, ErrDeadline
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case c.slots <- struct{}{}:
		return func() { <-c.slots }, nil
	case <-timer.C:
		atomic.AddInt64(&c.shedDeadline, 1)
		return nil, ErrDeadline
	case <-ctx.Done():
		// A deadline that expires while queued is the same outcome as
		// an exhausted wait budget (the two timers race when the
		// deadline is the tighter bound); a cancellation is the client
		// leaving and keeps its own error.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			atomic.AddInt64(&c.shedDeadline, 1)
			return nil, ErrDeadline
		}
		return nil, ctx.Err()
	}
}

// NoteDegraded records that a caller fell back to the un-augmented
// prompt after this core failed it — the fail-open counterpart to
// shedding, surfaced in Stats so degradation is never silent.
func (c *Core) NoteDegraded() {
	atomic.AddInt64(&c.degraded, 1)
}

// Drain flips the core into draining: from now on new computations are
// refused with ErrDraining while cache hits, admitted computations, and
// single-flight followers of in-flight work keep completing. It returns
// true on the first call and false when the core was already draining.
// Draining is one-way — a drained core belongs to a process on its way
// out; a restart gets a fresh core.
func (c *Core) Drain() bool {
	return c.draining.CompareAndSwap(false, true)
}

// Draining reports whether Drain has been called.
func (c *Core) Draining() bool { return c.draining.Load() }

// Quiesce blocks until the core is idle — no computation slot held and
// no request waiting in the admission queue — or ctx ends, returning
// ctx's error in that case. Call it after Drain: with new work refused,
// the queue can only empty, so this is the "exit when the queue is
// empty or the drain deadline passes" half of a graceful shutdown.
func (c *Core) Quiesce(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if len(c.slots) == 0 && len(c.queue) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Overloaded reports whether err is one of the core's shedding errors
// (including an open breaker and a draining core), for which the caller
// should answer 503 with a Retry-After hint — or degrade to the raw
// prompt when running fail-open (draining excepted: a draining core
// must shed so routers move on, not absorb traffic fail-open).
func Overloaded(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrBreakerOpen) || errors.Is(err, ErrDraining)
}
