// Package serving is the admission-controlled, deduplicating, cached
// core of the PAS hot path. It wraps any complement function
// func(prompt, salt) string behind three layers, outermost first:
//
//  1. a sharded TTL-LRU result cache keyed on (prompt, salt, model) —
//     PAS computes a fixed mapping p -> p_c, so identical requests are
//     pure repeat work;
//  2. single-flight deduplication — N concurrent identical requests
//     trigger exactly one computation and share its result;
//  3. tenant-aware bounded admission with deadline-aware load shedding
//     — at most the live concurrency limit's worth of computations run
//     at once (a static MaxInFlight, or an AIMD-adaptive limit with
//     MaxInFlight as its ceiling), waiters queue per tenant under
//     weighted deficit-round-robin, and a request that cannot get a
//     slot within its budget (QueueWait capped by the context
//     deadline) is shed with a typed error the HTTP layer maps to
//     503 + Retry-After.
//
// Under sustained pressure the core also climbs a brownout ladder
// (full → trim → raw) so it sheds computation cost before it sheds
// requests; see Level and Config.Brownout.
//
// The package is pure library: it knows nothing about HTTP except the
// optional StatsHandler, and the complement function is injected, so
// the same core fronts the in-process system (cmd/passerve), the
// reverse proxy (cmd/pasproxy), and any future backend.
package serving

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Func computes the complementary prompt p_c = M_p(p). It must be safe
// for concurrent use; the PAS model's Complement is.
type Func func(prompt, salt string) string

// Typed shedding errors; the serving layers above map all of them to
// 503 + Retry-After (or to graceful degradation when enabled).
var (
	// ErrQueueFull reports that the concurrency limit was saturated and
	// the admission queue was already holding its bound of waiters
	// (globally, or the requesting tenant's share of it).
	ErrQueueFull = errors.New("serving: admission queue full")
	// ErrDeadline reports that no slot freed up within the request's
	// wait budget (QueueWait, or less when the context deadline is
	// nearer).
	ErrDeadline = errors.New("serving: queue wait budget exhausted")
	// ErrBreakerOpen reports that the augmentation breaker is open:
	// recent computations kept shedding, so the core fails fast instead
	// of queueing more doomed work.
	ErrBreakerOpen = fmt.Errorf("serving: augmentation breaker open: %w", resilience.ErrOpen)
	// ErrDraining reports that the core is draining for shutdown: new
	// computations are refused so the process can quiesce, while cache
	// hits and computations already admitted (or attached to in flight)
	// keep being served. The HTTP layer maps it to 503 + Retry-After —
	// a router fails the request over to another replica — and it is
	// never degraded to a fail-open 200: a draining replica must shed,
	// not keep absorbing traffic.
	ErrDraining = errors.New("serving: draining: new computations refused")
)

// trimKeySuffix scopes trim-level results to their own cache entries;
// without it a browned-out computation would poison the full-quality
// key for every later request.
const trimKeySuffix = "\x00trim"

// Config sizes the serving core. The zero value of any field selects
// its default.
type Config struct {
	// CacheSize is the total result-cache capacity in entries across
	// all shards. Negative disables caching. Default 4096.
	CacheSize int
	// CacheShards is the shard count; more shards, less lock
	// contention. Default 16 (capped at CacheSize).
	CacheShards int
	// CacheTTL expires entries this long after insertion; 0 keeps them
	// until evicted. For a fixed deterministic model TTL 0 is sound;
	// set a TTL when the model behind the core can be retrained.
	CacheTTL time.Duration
	// MaxInFlight bounds concurrent complement computations: the static
	// cap, or the ceiling of the adaptive limit when AdaptiveLimit is
	// set. Default 64.
	MaxInFlight int
	// QueueDepth bounds requests waiting for a computation slot across
	// all tenants. Unlike the other fields, 0 is meaningful rather than
	// a default: it disables waiting entirely, restoring instant
	// hard-reject.
	QueueDepth int
	// QueueWait is the longest a request waits for a slot before being
	// shed; the context deadline tightens it per request. Default 100ms.
	QueueWait time.Duration
	// BreakerThreshold, when > 0, arms a circuit breaker over the
	// computation path: after that many consecutive shed computations
	// the core fails fast with ErrBreakerOpen for BreakerCooldown,
	// then admits a single probe per half-open window. 0 disables it.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open window. Default 2s when
	// the breaker is armed.
	BreakerCooldown time.Duration

	// AdaptiveLimit arms AIMD concurrency control: the live limit
	// starts at MaxInFlight (now a ceiling), is cut multiplicatively on
	// deadline misses and breaker trips, and regrows additively while
	// admission-to-completion latency stays under LimitTarget.
	AdaptiveLimit bool
	// LimitFloor is the adaptive limit's lower clamp. Default 1.
	LimitFloor int
	// LimitTarget is the latency budget feeding the adaptive limit's
	// additive increase. Default 25ms.
	LimitTarget time.Duration

	// Brownout arms the degradation ladder: under pressure the core
	// steps full → trim (CheapFn) → raw passthrough before shedding.
	Brownout bool
	// CheapFn is the reduced-cost complement served at the trim rung;
	// nil falls back to the full function, collapsing the ladder to
	// full → raw.
	CheapFn Func

	// TenantWeights assigns DRR weights to known tenant ids; any other
	// tenant gets DefaultTenantWeight (default 1). Under contention a
	// tenant's share of computation slots is proportional to its weight.
	TenantWeights map[string]int
	// DefaultTenantWeight is the weight for tenants not listed in
	// TenantWeights. Default 1.
	DefaultTenantWeight int
	// TenantQuotas caps a tenant's concurrent computations; 0 (or
	// absent) leaves the tenant bounded only by the global limit.
	TenantQuotas map[string]int
	// TenantQueueDepth caps one tenant's waiters. 0 gives each tenant a
	// weighted fair share of QueueDepth among tenants with work in the
	// system — a lone tenant keeps the whole room.
	TenantQueueDepth int
	// MaxTenants bounds distinct tenant queues; ids beyond it share the
	// OverflowTenant queue. Default 64.
	MaxTenants int

	// ComputeDelay injects a fixed sleep into every computation — an
	// overload-drill knob for rehearsing brownouts against a live
	// replica (see the README's "Surviving overload" runbook). 0 off.
	ComputeDelay time.Duration

	// Now injects the clock for TTL expiry, breaker cooldowns, and the
	// adaptive limit; tests pin it. Default time.Now.
	Now func() time.Time
}

func (cfg *Config) applyDefaults() error {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = 16
	}
	if cfg.CacheShards < 0 {
		return fmt.Errorf("serving: CacheShards must be >= 0, got %d", cfg.CacheShards)
	}
	if cfg.CacheTTL < 0 {
		return fmt.Errorf("serving: CacheTTL must be >= 0, got %v", cfg.CacheTTL)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxInFlight < 0 {
		return fmt.Errorf("serving: MaxInFlight must be > 0, got %d", cfg.MaxInFlight)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("serving: QueueDepth must be >= 0, got %d", cfg.QueueDepth)
	}
	if cfg.QueueWait == 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	if cfg.QueueWait < 0 {
		return fmt.Errorf("serving: QueueWait must be >= 0, got %v", cfg.QueueWait)
	}
	if cfg.BreakerThreshold < 0 {
		return fmt.Errorf("serving: BreakerThreshold must be >= 0, got %d", cfg.BreakerThreshold)
	}
	if cfg.BreakerCooldown < 0 {
		return fmt.Errorf("serving: BreakerCooldown must be >= 0, got %v", cfg.BreakerCooldown)
	}
	if cfg.BreakerThreshold > 0 && cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.LimitFloor < 0 {
		return fmt.Errorf("serving: LimitFloor must be >= 0, got %d", cfg.LimitFloor)
	}
	if cfg.LimitTarget < 0 {
		return fmt.Errorf("serving: LimitTarget must be >= 0, got %v", cfg.LimitTarget)
	}
	if cfg.LimitTarget == 0 {
		cfg.LimitTarget = 25 * time.Millisecond
	}
	if cfg.DefaultTenantWeight == 0 {
		cfg.DefaultTenantWeight = 1
	}
	if cfg.DefaultTenantWeight < 0 {
		return fmt.Errorf("serving: DefaultTenantWeight must be > 0, got %d", cfg.DefaultTenantWeight)
	}
	for id, w := range cfg.TenantWeights {
		if w <= 0 {
			return fmt.Errorf("serving: TenantWeights[%q] must be > 0, got %d", id, w)
		}
	}
	for id, q := range cfg.TenantQuotas {
		if q < 0 {
			return fmt.Errorf("serving: TenantQuotas[%q] must be >= 0, got %d", id, q)
		}
	}
	if cfg.TenantQueueDepth < 0 {
		return fmt.Errorf("serving: TenantQueueDepth must be >= 0, got %d", cfg.TenantQueueDepth)
	}
	if cfg.MaxTenants == 0 {
		cfg.MaxTenants = 64
	}
	if cfg.MaxTenants < 0 {
		return fmt.Errorf("serving: MaxTenants must be > 0, got %d", cfg.MaxTenants)
	}
	if cfg.ComputeDelay < 0 {
		return fmt.Errorf("serving: ComputeDelay must be >= 0, got %v", cfg.ComputeDelay)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return nil
}

// Core is the serving engine. Create with New; safe for concurrent use.
type Core struct {
	fn    Func
	cheap Func // trim-rung complement; == fn unless CheapFn was set
	cfg   Config
	cache *cache // nil when caching is disabled

	flight  flightGroup
	sched   *scheduler
	limit   func() int          // live concurrency limit
	limiter *resilience.Limit   // nil when AdaptiveLimit is off
	gauge   *pressureGauge      // always armed; ladder gated by cfg.Brownout
	breaker *resilience.Breaker // nil when BreakerThreshold == 0

	// draining, once set, refuses new computations (ErrDraining) while
	// in-flight and cache-hit traffic keeps being served; see Drain.
	draining atomic.Bool

	requests      int64
	completed     int64
	dedupHits     int64
	shedQueueFull int64
	shedDeadline  int64
	shedBreaker   int64
	shedDraining  int64
	degraded      int64
	servedTrim    int64
	servedRaw     int64

	lat *latencyRing
}

// New builds a serving core around fn.
func New(fn Func, cfg Config) (*Core, error) {
	if fn == nil {
		return nil, errors.New("serving: nil complement function")
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	c := &Core{
		fn:    fn,
		cheap: fn,
		cfg:   cfg,
		gauge: newPressureGauge(cfg.QueueWait),
		lat:   newLatencyRing(latencyWindow),
	}
	if cfg.CheapFn != nil {
		c.cheap = cfg.CheapFn
	}
	c.limit = func() int { return cfg.MaxInFlight }
	if cfg.AdaptiveLimit {
		lim, err := resilience.NewLimit(resilience.LimitConfig{
			Floor:   cfg.LimitFloor,
			Ceiling: cfg.MaxInFlight,
			Target:  cfg.LimitTarget,
			Now:     cfg.Now,
		})
		if err != nil {
			return nil, err
		}
		c.limiter = lim
		c.limit = lim.Current
	}
	c.sched = newScheduler(&cfg, c.limit)
	if cfg.CacheSize > 0 {
		c.cache = newCache(cfg.CacheSize, cfg.CacheShards, cfg.CacheTTL, cfg.Now)
	}
	if cfg.BreakerThreshold > 0 {
		c.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
			Now:       cfg.Now,
		})
	}
	return c, nil
}

// Key is the normalized cache/dedup key: the (prompt, salt, model)
// dimensions joined with NUL separators. Prompts are free text, so a
// plain concatenation would let ("a", "bc") collide with ("ab", "c").
//
// It is exported because the key doubles as the shard key of the
// cluster routing tier (internal/ring): the ring hashes exactly these
// bytes, so a request routed to a replica lands on the same key the
// replica's own cache uses — byte-for-byte agreement is what gives the
// cluster its per-key cache locality.
//
//paslint:hotpath computed per request and per ring route; one concat, no conversions (BENCH_serving.json)
func Key(prompt, salt, model string) string {
	return prompt + "\x00" + salt + "\x00" + model
}

// SplitKey inverts Key: it splits at the first two NUL separators, so
// the round trip is exact whenever prompt and salt are NUL-free (the
// invariant every caller upholds — both come from JSON text fields).
// ok is false when k is not a well-formed key (fewer than two NULs).
func SplitKey(k string) (prompt, salt, model string, ok bool) {
	i := strings.Index(k, "\x00")
	if i < 0 {
		return "", "", "", false
	}
	j := strings.Index(k[i+1:], "\x00")
	if j < 0 {
		return "", "", "", false
	}
	return k[:i], k[i+1 : i+1+j], k[i+1+j+1:], true
}

// Do serves one complement request through cache, dedup, and
// admission. The model string scopes the cache key so one core can
// front several model versions without cross-talk. On success it
// returns p_c; on overload it returns a typed shedding error; a
// context that ends first returns its ctx.Err(). Callers that honor
// the brownout ladder use DoLevel instead.
func (c *Core) Do(ctx context.Context, prompt, salt, model string) (string, error) {
	v, _, err := c.DoLevel(ctx, prompt, salt, model)
	return v, err
}

// DoLevel is Do plus the brownout ladder: it reports the rung the
// response was served at. At LevelFull and LevelTrim the returned
// string is the (full or cheap) complement; at LevelRaw it is empty
// and the caller must answer with the raw prompt, flagged degraded via
// Level.Header. A draining core never degrades — it sheds.
//
//paslint:hotpath cache-hit path budget is key+lookup+finish; the paper's p50 assumes hits do not allocate
func (c *Core) DoLevel(ctx context.Context, prompt, salt, model string) (string, Level, error) {
	atomic.AddInt64(&c.requests, 1)
	if err := ctx.Err(); err != nil {
		return "", LevelFull, err // client already gone; don't compute for the dead
	}
	start := c.cfg.Now()
	k := Key(prompt, salt, model)
	ctx, span := obs.StartSpan(ctx, "serving.do")
	defer span.End()

	_, lookup := obs.StartSpan(ctx, "serving.cache_lookup")
	if c.cache != nil {
		if v, ok := c.cache.get(k); ok {
			lookup.SetStatus("hit")
			lookup.End()
			span.SetStatus("cache_hit")
			c.finish(start)
			return v, LevelFull, nil
		}
		lookup.SetStatus("miss")
	} else {
		lookup.SetStatus("disabled")
	}
	lookup.End()

	level := LevelFull
	if c.cfg.Brownout && !c.draining.Load() {
		level = c.gauge.current()
	}
	key, fn := k, c.fn
	switch level {
	case LevelRaw:
		// The top rung sheds the computation, not the request: the
		// caller answers with the raw prompt and admission is never
		// touched, so the backlog drains. The zero-wait observation
		// below is what walks the gauge back down while traffic keeps
		// flowing.
		inflight, limit := c.sched.load()
		c.gauge.observe(0, utilization(inflight, limit))
		atomic.AddInt64(&c.servedRaw, 1)
		span.SetStatus("brownout_raw")
		return "", LevelRaw, nil
	case LevelTrim:
		key = k + trimKeySuffix
		fn = c.cheap
		if c.cache != nil {
			if v, ok := c.cache.get(key); ok {
				// Trim hits observe like raw serves do: without this,
				// pure repeat traffic would freeze the gauge at trim
				// even after the backlog is long gone.
				inflight, limit := c.sched.load()
				c.gauge.observe(0, utilization(inflight, limit))
				span.SetStatus("brownout_trim_hit")
				atomic.AddInt64(&c.servedTrim, 1)
				c.finish(start)
				return v, LevelTrim, nil
			}
		}
	}

	v, shared, err := c.compute(ctx, key, fn, prompt, salt)
	if shared {
		atomic.AddInt64(&c.dedupHits, 1)
		span.SetAttr("singleflight.role", "follower")
	}
	if err != nil {
		span.SetError(err)
		return "", level, err
	}
	if level == LevelTrim {
		atomic.AddInt64(&c.servedTrim, 1)
	}
	c.finish(start)
	return v, level, nil
}

// compute runs the admission-controlled single-flight computation for
// key with fn (the full or the trim-rung complement).
func (c *Core) compute(ctx context.Context, key string, fn Func, prompt, salt string) (string, bool, error) {
	return c.flight.do(ctx, key, func() (string, error) {
		// The single-flight leader runs here; followers share its
		// outcome, so the spans below describe the one real computation.
		//
		// The drain gate sits exactly here — after the cache lookup and
		// the follower attach — so a draining core still answers repeat
		// traffic (hits) and requests that joined an in-flight
		// computation, but never starts new work. Shedding before the
		// breaker keeps drain out of the breaker's failure accounting:
		// draining is an operator action, not a health signal. And
		// because the gate precedes the queue-capacity check, a drain
		// that lands on a full queue still counts shed_draining — the
		// drain is the reason the request is refused, the full queue is
		// incidental.
		tq := c.sched.arrive(TenantFrom(ctx))
		if c.draining.Load() {
			atomic.AddInt64(&c.shedDraining, 1)
			c.sched.shedOther(tq)
			return "", ErrDraining
		}
		_, qspan := obs.StartSpan(ctx, "serving.queue_wait")
		qspan.SetAttr("singleflight.role", "leader")
		// The breaker guards the leader only: followers share the
		// leader's outcome, and cache hits never reach this point, so
		// one failed computation is one recorded failure.
		var done func(success bool)
		if c.breaker != nil {
			qspan.SetAttr("breaker.state", c.breaker.Stats().State)
			var berr error
			done, berr = c.breaker.Allow()
			if berr != nil {
				atomic.AddInt64(&c.shedBreaker, 1)
				c.sched.shedOther(tq)
				if c.limiter != nil {
					c.limiter.OnOverload() // a trip is a congestion signal
				}
				qspan.SetError(ErrBreakerOpen)
				qspan.End()
				return "", ErrBreakerOpen
			}
		}
		admitStart := c.cfg.Now()
		release, err := c.sched.acquire(ctx, tq, c.waitBudget(ctx))
		if err != nil {
			c.noteShed(err)
			if done != nil {
				// Shed computations are the breaker's failure signal; a
				// cancelled client says nothing about core health.
				done(!Overloaded(err))
			}
			qspan.SetError(err)
			qspan.End()
			return "", err
		}
		waited := c.cfg.Now().Sub(admitStart)
		inflight, limit := c.sched.load()
		c.gauge.observe(waited, utilization(inflight, limit))
		qspan.End()
		defer release()
		_, compute := obs.StartSpan(ctx, "serving.compute")
		if c.cfg.ComputeDelay > 0 {
			time.Sleep(c.cfg.ComputeDelay)
		}
		out := fn(prompt, salt)
		total := c.cfg.Now().Sub(admitStart)
		compute.End()
		c.gauge.observeService(total - waited)
		if c.limiter != nil {
			c.limiter.OnSuccess(total)
		}
		if c.cache != nil {
			c.cache.put(key, out)
		}
		if done != nil {
			done(true)
		}
		return out, nil
	})
}

// waitBudget is how long this request may wait for a slot: QueueWait,
// tightened by the context deadline.
func (c *Core) waitBudget(ctx context.Context) time.Duration {
	wait := c.cfg.QueueWait
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
		}
	}
	return wait
}

// noteShed folds an admission shed into the global counters, the
// adaptive limit, and the pressure gauge. Client cancellations are
// not sheds and count nothing.
func (c *Core) noteShed(err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		atomic.AddInt64(&c.shedQueueFull, 1)
	case errors.Is(err, ErrDeadline):
		atomic.AddInt64(&c.shedDeadline, 1)
		if c.limiter != nil {
			c.limiter.OnOverload() // the queue outran the drain rate
		}
	default:
		return
	}
	// A shed observes its full wait budget at saturation: the queue was
	// full, or stalled, for at least that long.
	c.gauge.observe(c.cfg.QueueWait, 1)
}

func utilization(inflight, limit int) float64 {
	if limit < 1 {
		limit = 1
	}
	return float64(inflight) / float64(limit)
}

func (c *Core) finish(start time.Time) {
	atomic.AddInt64(&c.completed, 1)
	c.lat.observe(c.cfg.Now().Sub(start))
}

// RetryAfter is the backoff hint, in whole seconds, a shed response
// should carry: the estimated time for the present backlog to drain at
// the observed service rate, clamped to [1, 30]. Before any
// computation has been observed it is 1 — the old fixed constant.
func (c *Core) RetryAfter() int {
	_, waiting := c.sched.depth()
	return c.gauge.retryAfter(waiting, c.limit())
}

// PressureLevel is the brownout ladder's current rung. It is one
// mutex acquisition — cheap enough for the status probe a fleet of
// ring members polls continuously.
func (c *Core) PressureLevel() Level {
	return c.gauge.current()
}

// NoteDegraded records that a caller fell back to the un-augmented
// prompt after this core failed it — the fail-open counterpart to
// shedding, surfaced in Stats so degradation is never silent.
func (c *Core) NoteDegraded() {
	atomic.AddInt64(&c.degraded, 1)
}

// Drain flips the core into draining: from now on new computations are
// refused with ErrDraining while cache hits, admitted computations, and
// single-flight followers of in-flight work keep completing. It returns
// true on the first call and false when the core was already draining.
// Draining is one-way — a drained core belongs to a process on its way
// out; a restart gets a fresh core.
func (c *Core) Drain() bool {
	return c.draining.CompareAndSwap(false, true)
}

// Draining reports whether Drain has been called.
func (c *Core) Draining() bool { return c.draining.Load() }

// Quiesce blocks until the core is idle — no computation slot held and
// no request waiting for admission — or ctx ends, returning ctx's
// error in that case. Call it after Drain: with new work refused, the
// queue can only empty, so this is the "exit when the queue is empty
// or the drain deadline passes" half of a graceful shutdown.
func (c *Core) Quiesce(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if inflight, waiting := c.sched.depth(); inflight == 0 && waiting == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Overloaded reports whether err is one of the core's shedding errors
// (including an open breaker and a draining core), for which the caller
// should answer 503 with a Retry-After hint — or degrade to the raw
// prompt when running fail-open (draining excepted: a draining core
// must shed so routers move on, not absorb traffic fail-open).
func Overloaded(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrBreakerOpen) || errors.Is(err, ErrDraining)
}
