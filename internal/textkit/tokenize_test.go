package textkit

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []Token
	}{
		{"simple", "Hello world", []Token{"hello", "world"}},
		{"punct", "Hi, there!", []Token{"hi", ",", "there", "!"}},
		{"numbers", "10 birds on 1 tree", []Token{"10", "birds", "on", "1", "tree"}},
		{"mixed alnum", "gpt4 turbo", []Token{"gpt", "4", "turbo"}},
		{"empty", "", nil},
		{"spaces only", "   \t\n ", nil},
		{"unicode", "Café münchen", []Token{"café", "münchen"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Tokenize(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("token %d = %q, want %q", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestWordsDropsPunctuationAndNumbers(t *testing.T) {
	got := Words("Write 3 tests, quickly!")
	want := []string{"write", "tests", "quickly"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("First. Second! Third? Fourth")
	if len(got) != 4 {
		t.Fatalf("got %d sentences %v, want 4", len(got), got)
	}
	if got[0] != "First." || got[3] != "Fourth" {
		t.Errorf("unexpected sentence split: %v", got)
	}
}

func TestSentencesEmptyAndBarePunct(t *testing.T) {
	if got := Sentences(""); len(got) != 0 {
		t.Errorf("empty text gave %v", got)
	}
	if got := Sentences("... !!"); len(got) != 0 {
		t.Errorf("bare punctuation gave %v", got)
	}
}

func TestWordNGrams(t *testing.T) {
	got := WordNGrams("a b c d", 2)
	want := []string{"a b", "b c", "c d"}
	if len(got) != len(want) {
		t.Fatalf("bigrams = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("gram %d = %q want %q", i, got[i], want[i])
		}
	}
	if WordNGrams("a", 2) != nil {
		t.Error("short text should yield nil")
	}
	if WordNGrams("a b", 0) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestCharNGramsBoundaryMarkers(t *testing.T) {
	grams := CharNGrams("ab", 3)
	if len(grams) != 2 || grams[0] != "_ab" || grams[1] != "ab_" {
		t.Fatalf("CharNGrams = %v", grams)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  Hello   WORLD \n"); got != "hello world" {
		t.Fatalf("Normalize = %q", got)
	}
}

func TestContainsAnyWord(t *testing.T) {
	if !ContainsAnyWord("Explain step by step", []string{"step"}) {
		t.Error("expected hit on whole word")
	}
	if ContainsAnyWord("stepwise approach", []string{"step"}) {
		t.Error("should not match inside a longer word")
	}
}

func TestCountLexiconHits(t *testing.T) {
	text := "please think step by step and show your reasoning"
	lex := []string{"step by step", "reasoning", "missing phrase"}
	if got := CountLexiconHits(text, lex); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if got := CountLexiconHits(text, []string{" ", ""}); got != 0 {
		t.Fatalf("blank lexicon entries should not count, got %d", got)
	}
}

func TestHashDeterminismAndSpread(t *testing.T) {
	if Hash64("abc") != Hash64("abc") {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64Seed("abc", 1) == Hash64Seed("abc", 2) {
		t.Fatal("seeds should separate hash spaces")
	}
	// Spread: buckets of sequential keys should not all collide.
	seen := map[int]bool{}
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		seen[Bucket(k, 7, 64)] = true
	}
	if len(seen) < 5 {
		t.Fatalf("poor bucket spread: %d distinct of 8", len(seen))
	}
}

func TestUnitRange(t *testing.T) {
	f := func(s string, seed uint64) bool {
		u := Unit(s, seed)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignIsUnbiasedEnough(t *testing.T) {
	pos := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if Sign(strings.Repeat("x", i%31)+string(rune('a'+i%26))+Normalize(string(rune(i))), 3) > 0 {
			pos++
		}
	}
	if pos < n/3 || pos > 2*n/3 {
		t.Fatalf("sign heavily biased: %d/%d positive", pos, n)
	}
}

func TestTokenizeLowercasesCasedSymbols(t *testing.T) {
	// Circled letters are symbols, not letters, so they take the
	// punctuation path — which must still case-fold them ('Ⓢ' has a
	// lowercase mapping even though unicode.IsLetter is false).
	toks := Tokenize("aⒷc")
	want := []Token{"a", "ⓑ", "c"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %q, want %q", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %q, want %q", toks, want)
		}
	}
}

func TestTokenizeNeverPanicsAndLowercases(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if string(tok) != strings.ToLower(string(tok)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("The quick brown fox jumps over the lazy dog. ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}
