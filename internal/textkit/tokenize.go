// Package textkit provides the low-level text primitives shared by every
// language-facing module in the PAS reproduction: tokenisation, n-gram
// extraction, casefolding, and small string utilities.
//
// The package is deliberately dependency-free and deterministic: the same
// input always produces the same tokens, which is what makes the simulated
// LLM substrate reproducible end to end.
package textkit

import (
	"strings"
	"unicode"
)

// Token is a single lexical unit produced by Tokenize. Tokens are
// lower-cased words, numbers, or single punctuation runes.
type Token string

// Tokenize splits text into lower-cased word, number, and punctuation
// tokens. It is Unicode-aware: any letter sequence forms a word token and
// any digit sequence forms a number token. Punctuation characters are
// emitted as single-rune tokens so that sentence structure survives
// tokenisation (the judge and the critic both rely on that).
func Tokenize(text string) []Token {
	tokens := make([]Token, 0, len(text)/5+1)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, Token(b.String()))
			b.Reset()
		}
	}
	var mode int // 0 none, 1 letters, 2 digits
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			if mode != 1 {
				flush()
				mode = 1
			}
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			if mode != 2 {
				flush()
				mode = 2
			}
			b.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
			mode = 0
		default:
			flush()
			mode = 0
			// ToLower also covers cased non-letters (circled letters and
			// similar symbols), keeping every token case-folded.
			tokens = append(tokens, Token(string(unicode.ToLower(r))))
		}
	}
	flush()
	return tokens
}

// Words returns only the word tokens of text, dropping numbers and
// punctuation. Most feature extraction works on words.
func Words(text string) []string {
	toks := Tokenize(text)
	words := make([]string, 0, len(toks))
	for _, t := range toks {
		if len(t) > 0 && isWord(string(t)) {
			words = append(words, string(t))
		}
	}
	return words
}

func isWord(s string) bool {
	for _, r := range s {
		if !unicode.IsLetter(r) {
			return false
		}
	}
	return len(s) > 0
}

// Sentences splits text into sentences on terminal punctuation. It keeps
// the terminator attached to the sentence and trims surrounding space.
// Empty sentences are dropped.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	for _, r := range text {
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' || r == '\n' {
			s := strings.TrimSpace(b.String())
			if s != "" && s != "." && s != "!" && s != "?" {
				out = append(out, s)
			}
			b.Reset()
		}
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// WordNGrams returns the contiguous word n-grams of text joined by a
// single space. n must be >= 1; shorter texts yield no n-grams.
func WordNGrams(text string, n int) []string {
	words := Words(text)
	if n < 1 || len(words) < n {
		return nil
	}
	grams := make([]string, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		grams = append(grams, strings.Join(words[i:i+n], " "))
	}
	return grams
}

// CharNGrams returns the character n-grams of the casefolded text,
// including word-boundary markers, in the style of fastText subword
// features. Spaces are normalised to a single '_' marker.
func CharNGrams(text string, n int) []string {
	folded := []rune("_" + strings.Join(Words(text), "_") + "_")
	if n < 1 || len(folded) < n {
		return nil
	}
	grams := make([]string, 0, len(folded)-n+1)
	for i := 0; i+n <= len(folded); i++ {
		grams = append(grams, string(folded[i:i+n]))
	}
	return grams
}

// WordCount reports the number of word tokens in text.
func WordCount(text string) int { return len(Words(text)) }

// Normalize lower-cases text and collapses runs of whitespace to single
// spaces, producing the canonical form used for deduplication keys.
func Normalize(text string) string {
	return strings.Join(strings.Fields(strings.ToLower(text)), " ")
}

// ContainsAnyWord reports whether any of the given lexicon words appears
// as a whole word token in text. Matching is case-insensitive.
func ContainsAnyWord(text string, lexicon []string) bool {
	set := make(map[string]bool, len(lexicon))
	for _, w := range lexicon {
		set[strings.ToLower(w)] = true
	}
	for _, w := range Words(text) {
		if set[w] {
			return true
		}
	}
	return false
}

// CountLexiconHits counts how many distinct lexicon entries occur in text.
// Multi-word lexicon entries are matched as phrases against the word
// sequence; single words are matched as whole tokens.
func CountLexiconHits(text string, lexicon []string) int {
	words := Words(text)
	joined := " " + strings.Join(words, " ") + " "
	hits := 0
	for _, entry := range lexicon {
		e := strings.ToLower(strings.TrimSpace(entry))
		if e == "" {
			continue
		}
		if strings.Contains(joined, " "+e+" ") {
			hits++
		}
	}
	return hits
}
