package textkit

import (
	"testing"
	"unicode/utf8"
)

// FuzzTokenize exercises the tokenizer on arbitrary byte strings: it must
// never panic, always lower-case word tokens, and never invent characters.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "10 birds on a tree!", "Café, münchen?",
		"a\x00b", "\xff\xfe", "multi\nline\ttext", "....", "ALLCAPS 123",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if len(tok) == 0 {
				t.Fatal("empty token")
			}
		}
		// Words is a subset of Tokenize and also must not panic.
		for _, w := range Words(s) {
			if w == "" {
				t.Fatal("empty word")
			}
		}
		_ = Sentences(s)
		_ = Normalize(s)
		_ = CharNGrams(s, 3)
		_ = WordNGrams(s, 2)
	})
}

// FuzzHashStability: hashing any string with any seed is total and
// deterministic.
func FuzzHashStability(f *testing.F) {
	f.Add("", uint64(0))
	f.Add("abc", uint64(7))
	f.Fuzz(func(t *testing.T, s string, seed uint64) {
		if Hash64Seed(s, seed) != Hash64Seed(s, seed) {
			t.Fatal("hash not deterministic")
		}
		u := Unit(s, seed)
		if u < 0 || u >= 1 {
			t.Fatalf("unit out of range: %v", u)
		}
		if !utf8.ValidString(s) {
			return // bucket on invalid UTF-8 still must not panic (checked below)
		}
		if b := Bucket(s, seed, 64); b < 0 || b >= 64 {
			t.Fatalf("bucket out of range: %d", b)
		}
	})
}
