package textkit

// FNV-1a hashing utilities used by the feature-hashing embedder and the
// deterministic pseudo-random choices inside the simulated LLM. We inline
// the constants rather than using hash/fnv to avoid per-call allocations
// in the embedding hot path.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns the 64-bit FNV-1a hash of s.
func Hash64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Hash64Seed hashes s mixed with a seed, so independent feature spaces
// (for example the sign hash and the bucket hash of a hashing-trick
// embedder) do not collide systematically.
func Hash64Seed(s string, seed uint64) uint64 {
	h := fnvOffset64 ^ (seed * fnvPrime64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix64(h)
}

// mix64 is a finaliser (splitmix64 style) that breaks up the linear
// structure FNV leaves in the low bits.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Bucket maps s into [0, n) using the seeded hash. n must be > 0.
func Bucket(s string, seed uint64, n int) int {
	return int(Hash64Seed(s, seed) % uint64(n))
}

// Sign returns +1 or -1 derived from a seeded hash of s, used as the
// hashing-trick sign to make collisions unbiased in expectation.
func Sign(s string, seed uint64) float64 {
	if Hash64Seed(s, seed)&1 == 0 {
		return 1
	}
	return -1
}

// Unit maps s to a deterministic float in [0, 1). It is the source of all
// "stylistic" pseudo-randomness in the simulated LLM: same string, same
// draw, regardless of call order.
func Unit(s string, seed uint64) float64 {
	return float64(Hash64Seed(s, seed)>>11) / (1 << 53)
}
