package augment

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/curation"
	"repro/internal/dataset"
	"repro/internal/facet"
	"repro/internal/simllm"
)

// curatedFixture fabricates curated prompts directly (bypassing the full
// §3.1 pipeline) so augment tests stay fast and focused.
func curatedFixture(t *testing.T, n int) []curation.Curated {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Size = n * 2
	cfg.Seed = 31
	cfg.JunkRate = 0
	cfg.DuplicateRate = 0
	pool, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]curation.Curated, 0, n)
	for _, p := range pool {
		if len(out) == n {
			break
		}
		out = append(out, curation.Curated{Prompt: p, Category: p.Truth.Category, Score: 7})
	}
	return out
}

func TestRunValidation(t *testing.T) {
	golden := dataset.Golden()
	if _, err := Run(nil, golden, DefaultConfig()); err == nil {
		t.Error("no curated prompts should fail")
	}
	if _, err := Run(curatedFixture(t, 5), nil, DefaultConfig()); err == nil {
		t.Error("no golden should fail")
	}
	bad := DefaultConfig()
	bad.GeneratorModel = "nope"
	if _, err := Run(curatedFixture(t, 5), golden, bad); err == nil {
		t.Error("unknown generator should fail")
	}
	bad = DefaultConfig()
	bad.CriticModel = "nope"
	if _, err := Run(curatedFixture(t, 5), golden, bad); err == nil {
		t.Error("unknown critic should fail")
	}
	bad = DefaultConfig()
	bad.MaxRegen = -1
	if _, err := Run(curatedFixture(t, 5), golden, bad); err == nil {
		t.Error("negative MaxRegen should fail")
	}
}

func TestRunProducesValidPairs(t *testing.T) {
	cur := curatedFixture(t, 300)
	res, err := Run(cur, dataset.Golden(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.Len() != 300 {
		t.Fatalf("pairs = %d, want 300", res.Data.Len())
	}
	for i, p := range res.Data.Pairs {
		if p.Prompt != cur[i].Prompt.Text {
			t.Fatalf("pair %d prompt mismatch", i)
		}
		if p.Category != cur[i].Category.String() {
			t.Fatalf("pair %d category mismatch", i)
		}
		if !strings.HasPrefix(p.Source, "generated") && !strings.HasPrefix(p.Source, "regenerated") {
			t.Fatalf("pair %d has source %q", i, p.Source)
		}
	}
}

func TestSelectionReducesResidualDefects(t *testing.T) {
	cur := curatedFixture(t, 400)
	golden := dataset.Golden()

	withSel, err := Run(cur, golden, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	noSelCfg := DefaultConfig()
	noSelCfg.Selection = false
	noSel, err := Run(cur, golden, noSelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if withSel.Stats.ResidualDefects >= noSel.Stats.ResidualDefects {
		t.Fatalf("selection did not reduce defects: with=%d without=%d",
			withSel.Stats.ResidualDefects, noSel.Stats.ResidualDefects)
	}
	// The no-selection run must contain a meaningful defect mass for the
	// ablation to measure (the paper reports a 3.8-point average drop).
	frac := float64(noSel.Stats.ResidualDefects) / float64(noSel.Data.Len())
	if frac < 0.05 {
		t.Fatalf("raw generation defect fraction only %.3f", frac)
	}
	if noSel.Stats.Rejected != 0 || noSel.Stats.Regenerated != 0 {
		t.Fatal("no-selection run should never invoke the critic")
	}
}

func TestRegenerationLoopRuns(t *testing.T) {
	cur := curatedFixture(t, 400)
	res, err := Run(cur, dataset.Golden(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rejected == 0 {
		t.Fatal("critic never rejected anything — selection is vacuous")
	}
	if res.Stats.Regenerated == 0 {
		t.Fatal("no regenerations happened")
	}
	if res.Stats.Regenerated > res.Stats.Rejected {
		t.Fatalf("regenerated %d > rejected %d", res.Stats.Regenerated, res.Stats.Rejected)
	}
}

func TestPerCategoryCap(t *testing.T) {
	cur := curatedFixture(t, 500)
	cfg := DefaultConfig()
	cfg.PerCategoryCap = 10
	cfg.HeavyCategoryCap = 10
	res, err := Run(cur, dataset.Golden(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, n := range res.Data.CategoryCounts() {
		if n > 10 {
			t.Fatalf("category %v has %d pairs, cap 10", c, n)
		}
	}
}

func TestDeterministic(t *testing.T) {
	cur := curatedFixture(t, 100)
	golden := dataset.Golden()
	a, err := Run(cur, golden, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cur, golden, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.Len() != b.Data.Len() {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Data.Pairs {
		if a.Data.Pairs[i] != b.Data.Pairs[i] {
			t.Fatalf("pair %d differs across runs", i)
		}
	}
}

func TestIsDefective(t *testing.T) {
	prompt := "Briefly summarize this long article about coral reefs."
	if !IsDefective(prompt, facet.RenderAnswerLeak("x")) {
		t.Error("leak not flagged")
	}
	if !IsDefective(prompt, facet.RenderConflicting(facet.Conciseness, "x")) {
		t.Error("conflict not flagged")
	}
	if !IsDefective(prompt, "no directives here at all") {
		t.Error("empty directives not flagged")
	}
	clean := facet.RenderDirectives([]facet.Facet{facet.Conciseness, facet.Accuracy}, "x")
	if IsDefective(prompt, clean) {
		t.Errorf("clean aug flagged: %q", clean)
	}
}

func TestGaveUpBounded(t *testing.T) {
	cur := curatedFixture(t, 300)
	cfg := DefaultConfig()
	cfg.MaxRegen = 1 // tight budget forces some give-ups
	res, err := Run(cur, dataset.Golden(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GaveUp > res.Stats.Prompts {
		t.Fatalf("gave up %d > prompts %d", res.Stats.GaveUp, res.Stats.Prompts)
	}
}

func BenchmarkAugment100(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.Size = 200
	cfg.JunkRate = 0
	cfg.DuplicateRate = 0
	pool, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cur := make([]curation.Curated, 0, 100)
	for _, p := range pool[:100] {
		cur = append(cur, curation.Curated{Prompt: p, Category: p.Truth.Category, Score: 7})
	}
	golden := dataset.Golden()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cur, golden, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	_ = simllm.GPT4Turbo
}
