package augment

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Progress is the live view of a running (or finished) generation
// stage, updated lock-free by the worker pool and scraped by an obs
// collector. All methods are safe on a nil receiver so un-instrumented
// runs pay nothing.
type Progress struct {
	planned     atomic.Int64
	done        atomic.Int64
	replayed    atomic.Int64
	quarantined atomic.Int64
	faults      atomic.Int64
	regens      atomic.Int64

	mu         sync.Mutex
	regenByCat map[string]int64
}

func (p *Progress) setPlanned(n int) {
	if p == nil {
		return
	}
	p.planned.Store(int64(n))
}

// restored accounts a journal-replayed record: it is done without
// having been recomputed.
func (p *Progress) restored(rec *ItemRecord) {
	if p == nil {
		return
	}
	p.replayed.Add(1)
	p.account(rec)
}

// completed accounts a freshly computed record.
func (p *Progress) completed(rec *ItemRecord) {
	if p == nil {
		return
	}
	p.account(rec)
}

func (p *Progress) account(rec *ItemRecord) {
	p.done.Add(1)
	if rec.Quarantined {
		p.quarantined.Add(1)
	}
}

func (p *Progress) fault() {
	if p == nil {
		return
	}
	p.faults.Add(1)
}

func (p *Progress) regenerated(category string) {
	if p == nil {
		return
	}
	p.regens.Add(1)
	p.mu.Lock()
	if p.regenByCat == nil {
		p.regenByCat = make(map[string]int64)
	}
	p.regenByCat[category]++
	p.mu.Unlock()
}

// Planned returns how many items the plan admitted.
func (p *Progress) Planned() int64 { return p.planned.Load() }

// Done returns how many items are finished (restored plus computed).
func (p *Progress) Done() int64 { return p.done.Load() }

// Restored returns how many items were replayed from a journal.
func (p *Progress) Restored() int64 { return p.replayed.Load() }

// QuarantinedCount returns how many items landed in quarantine so far.
func (p *Progress) QuarantinedCount() int64 { return p.quarantined.Load() }

// Collect emits the stage's counters into a metrics scrape; register
// it on a registry via obs.Registry.RegisterCollector. Per-category
// regeneration counts are emitted in sorted order for a stable
// exposition.
func (p *Progress) Collect(e *obs.Emitter) {
	e.Gauge("pas_build_items_planned", "Items admitted into the generation plan.", float64(p.planned.Load()), "stage", "augment")
	e.Gauge("pas_build_items_done", "Items finished (restored plus computed).", float64(p.done.Load()), "stage", "augment")
	e.Counter("pas_build_items_restored_total", "Items restored from a checkpoint journal instead of recomputed.", float64(p.replayed.Load()))
	e.Counter("pas_build_quarantined_total", "Items quarantined after exhausting their regeneration budget.", float64(p.quarantined.Load()))
	e.Counter("pas_build_faults_total", "Failed model calls observed during generation.", float64(p.faults.Load()))
	e.Counter("pas_build_regens_total", "Regeneration attempts across all categories.", float64(p.regens.Load()))

	p.mu.Lock()
	cats := make([]string, 0, len(p.regenByCat))
	for c := range p.regenByCat {
		cats = append(cats, c)
	}
	counts := make(map[string]int64, len(p.regenByCat))
	for c, n := range p.regenByCat {
		counts[c] = n
	}
	p.mu.Unlock()
	sort.Strings(cats)
	for _, c := range cats {
		e.Counter("pas_augment_regen_total", "Regeneration attempts per category.", float64(counts[c]), "category", c)
	}
}
