package augment

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// datasetBytes renders a dataset as JSONL for byte-level comparison.
func datasetBytes(t *testing.T, d *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// memJournal collects records in memory and can fail after a set
// number of appends, simulating a crash at an exact journal offset.
// Like the real checkpoint journal, it serialises its own appends.
type memJournal struct {
	mu        sync.Mutex
	recs      []ItemRecord
	failAfter int // -1: never fail
}

var errCrash = errors.New("injected crash")

func (m *memJournal) Append(rec ItemRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failAfter >= 0 && len(m.recs) >= m.failAfter {
		return errCrash
	}
	m.recs = append(m.recs, rec)
	return nil
}

func (m *memJournal) records() []ItemRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ItemRecord(nil), m.recs...)
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.PerCategoryCap = 8
	cfg.HeavyCategoryCap = 16
	return cfg
}

func TestWorkerCountDoesNotChangeOutput(t *testing.T) {
	curated := curatedFixture(t, 40)
	golden := dataset.Golden()
	base, err := Run(curated, golden, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, base.Data)
	for _, workers := range []int{2, 5, 32} {
		cfg := smallCfg()
		cfg.Workers = workers
		res, err := Run(curated, golden, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(datasetBytes(t, res.Data), want) {
			t.Fatalf("workers=%d changed the dataset bytes", workers)
		}
		// Maps aside, stats must match too.
		if res.Stats.Prompts != base.Stats.Prompts || res.Stats.Rejected != base.Stats.Rejected ||
			res.Stats.Regenerated != base.Stats.Regenerated || res.Stats.GaveUp != base.Stats.GaveUp {
			t.Fatalf("workers=%d changed stats: %+v vs %+v", workers, res.Stats, base.Stats)
		}
		if !reflect.DeepEqual(res.Stats.RegenByCategory, base.Stats.RegenByCategory) {
			t.Fatalf("workers=%d changed per-category regen counts", workers)
		}
	}
}

// TestResumeFromJournalIsByteIdentical interrupts the run at every
// journal offset and resumes from the journaled prefix: the assembled
// dataset must be byte-identical to the uninterrupted run's.
func TestResumeFromJournalIsByteIdentical(t *testing.T) {
	curated := curatedFixture(t, 24)
	golden := dataset.Golden()
	cfg := smallCfg()

	full, err := Run(curated, golden, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, full.Data)
	total := full.Stats.Prompts

	for offset := 0; offset < total; offset += 3 {
		crash := &memJournal{failAfter: offset}
		_, err := RunResumable(curated, golden, cfg, RunState{Journal: crash})
		if !errors.Is(err, errCrash) {
			t.Fatalf("offset %d: interrupted run returned %v, want crash", offset, err)
		}
		if len(crash.records()) != offset {
			t.Fatalf("offset %d: journal holds %d records", offset, len(crash.records()))
		}

		resumed, err := RunResumable(curated, golden, cfg, RunState{Done: crash.records(), Journal: &memJournal{failAfter: -1}})
		if err != nil {
			t.Fatalf("offset %d: resume failed: %v", offset, err)
		}
		if !bytes.Equal(datasetBytes(t, resumed.Data), want) {
			t.Fatalf("offset %d: resumed dataset differs from uninterrupted run", offset)
		}
		if !statsEqual(resumed.Stats, full.Stats) {
			t.Fatalf("offset %d: resumed stats differ: %+v vs %+v", offset, resumed.Stats, full.Stats)
		}
	}
}

func statsEqual(a, b Stats) bool { return reflect.DeepEqual(a, b) }

func TestForeignJournalRecordRefused(t *testing.T) {
	curated := curatedFixture(t, 6)
	_, err := RunResumable(curated, dataset.Golden(), smallCfg(), RunState{
		Done: []ItemRecord{{Index: 99, Complement: "x"}},
	})
	if err == nil || !strings.Contains(err.Error(), "outside the build plan") {
		t.Fatalf("foreign journal record not refused: %v", err)
	}
}

// TestQuarantineOnFaultBudgetExhaustion wires a permanently failing
// FaultyChatter: every item exhausts its budget and quarantines, and
// the build still succeeds with an empty dataset... except it must
// not: quarantine never fails the build, and healthy items are kept.
func TestQuarantineOnFaultBudgetExhaustion(t *testing.T) {
	curated := curatedFixture(t, 8)
	cfg := smallCfg()
	cfg.MaxRegen = 2
	cfg.FaultGate = resilience.NewFaultyChatter(NullChatter{},
		// First item: three generate faults (attempts 0,1,2) exhaust
		// the budget; everything after passes through cleanly.
		resilience.Fault{Err: errors.New("backend down")},
		resilience.Fault{Err: errors.New("backend down")},
		resilience.Fault{Err: errors.New("backend down")},
	)
	cfg.Workers = 1 // deterministic fault script consumption

	res, err := Run(curated, dataset.Golden(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (stats: %+v)", res.Stats.Quarantined, res.Stats)
	}
	if res.Stats.Faults != 3 {
		t.Fatalf("Faults = %d, want 3", res.Stats.Faults)
	}
	if len(res.Quarantine) != 1 {
		t.Fatalf("Quarantine list has %d entries", len(res.Quarantine))
	}
	q := res.Quarantine[0]
	if !strings.HasPrefix(q.Reason, "generate:") || q.Prompt == "" {
		t.Fatalf("quarantine entry malformed: %+v", q)
	}
	// The healthy remainder is all kept.
	if res.Data.Len() != res.Stats.Prompts-1 {
		t.Fatalf("dataset has %d pairs, want %d", res.Data.Len(), res.Stats.Prompts-1)
	}
}

// TestTransientFaultsRecoverWithinBudget: a fault script that fails
// once then recovers must not quarantine anything — the item retries
// on the next attempt salt.
func TestTransientFaultsRecoverWithinBudget(t *testing.T) {
	curated := curatedFixture(t, 6)
	cfg := smallCfg()
	cfg.FaultGate = resilience.NewFaultyChatter(NullChatter{},
		resilience.Fault{Err: errors.New("blip")},
	)
	cfg.Workers = 1
	res, err := Run(curated, dataset.Golden(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Quarantined != 0 {
		t.Fatalf("transient fault caused quarantine: %+v", res.Stats)
	}
	if res.Stats.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", res.Stats.Faults)
	}
	if res.Data.Len() != res.Stats.Prompts {
		t.Fatalf("dataset lost items: %d of %d", res.Data.Len(), res.Stats.Prompts)
	}
}

// TestCriticFaultExhaustionQuarantines: faults on the critique call
// also land the item in quarantine — an unvalidated pair is not kept.
func TestCriticFaultExhaustionQuarantines(t *testing.T) {
	curated := curatedFixture(t, 4)
	cfg := smallCfg()
	cfg.MaxRegen = 1
	script := make([]resilience.Fault, 0, 4)
	// Item 1: generate gate passes (nil fault), critique gate fails,
	// then attempt 1: generate passes, critique fails again — budget
	// exhausted on critic faults.
	script = append(script,
		resilience.Fault{},
		resilience.Fault{Err: errors.New("critic down")},
		resilience.Fault{},
		resilience.Fault{Err: errors.New("critic down")},
	)
	cfg.FaultGate = resilience.NewFaultyChatter(NullChatter{}, script...)
	cfg.Workers = 1
	res, err := Run(curated, dataset.Golden(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (%+v)", res.Stats.Quarantined, res.Stats)
	}
	if !strings.HasPrefix(res.Quarantine[0].Reason, "critic:") {
		t.Fatalf("reason = %q, want critic prefix", res.Quarantine[0].Reason)
	}
}

func TestJournalAppendErrorAbortsBuild(t *testing.T) {
	curated := curatedFixture(t, 10)
	cfg := smallCfg()
	cfg.Workers = 4
	_, err := RunResumable(curated, dataset.Golden(), cfg, RunState{Journal: &memJournal{failAfter: 2}})
	if !errors.Is(err, errCrash) {
		t.Fatalf("journal failure did not abort the build: %v", err)
	}
}

func TestProgressCounters(t *testing.T) {
	curated := curatedFixture(t, 12)
	cfg := smallCfg()
	cfg.Workers = 3
	prog := &Progress{}
	full := &memJournal{failAfter: -1}
	res, err := RunResumable(curated, dataset.Golden(), cfg, RunState{Journal: full, Progress: prog})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Planned() != int64(res.Stats.Prompts) || prog.Done() != int64(res.Stats.Prompts) {
		t.Fatalf("progress planned/done = %d/%d, want %d", prog.Planned(), prog.Done(), res.Stats.Prompts)
	}
	if prog.Restored() != 0 {
		t.Fatalf("fresh run reported %d restored items", prog.Restored())
	}

	// A resumed run reports the replayed prefix as restored.
	prog2 := &Progress{}
	half := full.records()[:len(full.records())/2]
	if _, err := RunResumable(curated, dataset.Golden(), cfg, RunState{Done: half, Progress: prog2}); err != nil {
		t.Fatal(err)
	}
	if prog2.Restored() != int64(len(half)) {
		t.Fatalf("restored = %d, want %d", prog2.Restored(), len(half))
	}

	// The collector exposes the counters under the documented names.
	reg := obs.NewRegistry()
	reg.RegisterCollector(prog2.Collect)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"pas_build_items_planned",
		"pas_build_items_done",
		"pas_build_items_restored_total " + fmt.Sprint(len(half)),
		"pas_build_quarantined_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}
