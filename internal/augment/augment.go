// Package augment implements Algorithm 1 of the paper: the automatic
// complementary-prompt dataset generation pipeline of §3.2. For every
// curated prompt it few-shot-generates a complementary prompt from the
// category's golden examples (Figure 4), then — unless disabled for the
// Table 5 ablation — submits each pair to the critic (Figure 5) and
// regenerates rejected pairs with fresh sampling salt until the critic
// accepts or the attempt budget runs out.
package augment

import (
	"fmt"

	"repro/internal/curation"
	"repro/internal/dataset"
	"repro/internal/facet"
	"repro/internal/simllm"
)

// Config controls the pipeline.
type Config struct {
	// GeneratorModel names the few-shot generation LLM.
	GeneratorModel string
	// CriticModel names the selection/regeneration LLM ("We employ GPT
	// to identify and regenerate incorrectly generated data").
	CriticModel string
	// MaxRegen bounds the regeneration loop per pair. The paper loops
	// until correct; a bound keeps the worst case finite. 0 means use
	// the default of 6.
	MaxRegen int
	// PerCategoryCap limits pairs per category ("each category
	// containing about 500 data points"). 0 means unlimited.
	PerCategoryCap int
	// HeavyCategoryCap is the higher cap for Coding and QA, which
	// dominate the Figure 6 distribution ("a substantial amount of
	// Coding and Q&A data"). 0 means use PerCategoryCap.
	HeavyCategoryCap int
	// Selection enables the selection-and-regeneration stage. Disabling
	// it reproduces the "wo selection" ablation of Table 5.
	Selection bool
	// Categories restricts generation to the given categories. Empty
	// means all. This is the §3.3 control knob: "our method [can]
	// generate specialized data to enhance prompt capabilities in
	// specific domains".
	Categories []facet.Category
}

// DefaultConfig returns the paper's pipeline settings.
func DefaultConfig() Config {
	return Config{
		GeneratorModel:   simllm.GPT4Turbo,
		CriticModel:      simllm.GPT4Turbo,
		MaxRegen:         6,
		PerCategoryCap:   500,
		HeavyCategoryCap: 1500,
		Selection:        true,
	}
}

// Stats summarises a pipeline run.
type Stats struct {
	// Prompts is the number of curated prompts consumed.
	Prompts int
	// Generated counts first-attempt generations.
	Generated int
	// Rejected counts critic rejections (including re-rejections).
	Rejected int
	// Regenerated counts regeneration attempts performed.
	Regenerated int
	// GaveUp counts pairs kept after exhausting MaxRegen without critic
	// approval.
	GaveUp int
	// ResidualDefects counts kept pairs that are defective by ground
	// truth (the critic is imperfect); this is what the ablation turns
	// into benchmark points.
	ResidualDefects int
}

// Result is the pipeline output.
type Result struct {
	Data  *dataset.Dataset
	Stats Stats
}

// Run executes Algorithm 1 over curated prompts using the golden few-shot
// seed pairs.
func Run(curated []curation.Curated, golden map[facet.Category][]dataset.Pair, cfg Config) (*Result, error) {
	if len(curated) == 0 {
		return nil, fmt.Errorf("augment: no curated prompts")
	}
	if len(golden) == 0 {
		return nil, fmt.Errorf("augment: no golden data")
	}
	if cfg.MaxRegen == 0 {
		cfg.MaxRegen = 6
	}
	if cfg.MaxRegen < 0 {
		return nil, fmt.Errorf("augment: MaxRegen must be >= 0, got %d", cfg.MaxRegen)
	}
	gen, err := modelFor(cfg.GeneratorModel, "generator")
	if err != nil {
		return nil, err
	}
	critic, err := modelFor(cfg.CriticModel, "critic")
	if err != nil {
		return nil, err
	}

	res := &Result{Data: &dataset.Dataset{}}
	perCat := make(map[facet.Category]int)
	capFor := func(cat facet.Category) int {
		if cfg.HeavyCategoryCap > 0 && (cat == facet.Coding || cat == facet.QA) {
			return cfg.HeavyCategoryCap
		}
		return cfg.PerCategoryCap
	}
	allowed := make(map[facet.Category]bool, len(cfg.Categories))
	for _, c := range cfg.Categories {
		allowed[c] = true
	}
	for _, c := range curated {
		if len(allowed) > 0 && !allowed[c.Category] {
			continue
		}
		if limit := capFor(c.Category); limit > 0 && perCat[c.Category] >= limit {
			continue
		}
		res.Stats.Prompts++
		examples := fewShotExamples(golden, c.Category)

		aug := gen.GenerateComplement(c.Prompt.Text, examples, "gen/0")
		res.Stats.Generated++
		source := "generated"

		if cfg.Selection {
			attempt := 0
			for !critic.CritiquePair(c.Prompt.Text, aug).Correct {
				res.Stats.Rejected++
				if attempt >= cfg.MaxRegen {
					res.Stats.GaveUp++
					break
				}
				attempt++
				aug = gen.GenerateComplement(c.Prompt.Text, examples, fmt.Sprintf("gen/%d", attempt))
				res.Stats.Regenerated++
			}
			if attempt > 0 {
				source = fmt.Sprintf("regenerated:%d", attempt)
			}
		}

		if IsDefective(c.Prompt.Text, aug) {
			res.Stats.ResidualDefects++
		}
		if err := res.Data.Add(dataset.Pair{
			Prompt:     c.Prompt.Text,
			Complement: aug,
			Category:   c.Category.String(),
			Source:     source,
		}); err != nil {
			return nil, fmt.Errorf("augment: %w", err)
		}
		perCat[c.Category]++
	}
	return res, nil
}

// IsDefective is the ground-truth defect check used for pipeline
// accounting and the ablation analysis: answer leak, constraint conflict,
// over-reach on a simple prompt, or no usable directive.
func IsDefective(prompt, complement string) bool {
	a := facet.AnalyzePrompt(prompt)
	dirs := facet.DetectDirectives(complement)
	return facet.DetectAnswerLeak(complement) ||
		len(facet.ConflictingDirectives(a, dirs)) > 0 ||
		(dirs.Len() >= 4 && a.Complexity < 1) ||
		dirs.Len() == 0
}

func fewShotExamples(golden map[facet.Category][]dataset.Pair, c facet.Category) []simllm.Example {
	pairs := golden[c]
	out := make([]simllm.Example, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, simllm.Example{Prompt: p.Prompt, Complement: p.Complement})
	}
	return out
}

func modelFor(name, role string) (*simllm.Model, error) {
	profile, err := simllm.LookupProfile(name)
	if err != nil {
		return nil, fmt.Errorf("augment: %s: %w", role, err)
	}
	return simllm.New(profile)
}
