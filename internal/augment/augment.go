// Package augment implements Algorithm 1 of the paper: the automatic
// complementary-prompt dataset generation pipeline of §3.2. For every
// curated prompt it few-shot-generates a complementary prompt from the
// category's golden examples (Figure 4), then — unless disabled for the
// Table 5 ablation — submits each pair to the critic (Figure 5) and
// regenerates rejected pairs with fresh sampling salt until the critic
// accepts or the attempt budget runs out.
//
// The loop is built for crash-safe, resumable builds: the work plan is
// fixed up front (so it is independent of outcomes and of worker
// scheduling), items are processed by a bounded-concurrency worker
// pool, and every finished item is committed to a journal before it
// counts as done. A resumed run replays journaled records, recomputes
// only the missing items, and assembles a byte-identical dataset — the
// per-item computation depends only on (prompt, salt, model), never on
// wall clock, worker interleaving, or other items. Items whose model
// calls keep failing are quarantined after the attempt budget instead
// of failing the build.
package augment

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/curation"
	"repro/internal/dataset"
	"repro/internal/facet"
	"repro/internal/simllm"
)

// Config controls the pipeline.
type Config struct {
	// GeneratorModel names the few-shot generation LLM.
	GeneratorModel string
	// CriticModel names the selection/regeneration LLM ("We employ GPT
	// to identify and regenerate incorrectly generated data").
	CriticModel string
	// MaxRegen bounds the regeneration loop per pair. The paper loops
	// until correct; a bound keeps the worst case finite. 0 means use
	// the default of 6. The same bound is the per-item fault budget:
	// an item whose model calls fail past it is quarantined.
	MaxRegen int
	// PerCategoryCap limits pairs per category ("each category
	// containing about 500 data points"). 0 means unlimited.
	PerCategoryCap int
	// HeavyCategoryCap is the higher cap for Coding and QA, which
	// dominate the Figure 6 distribution ("a substantial amount of
	// Coding and Q&A data"). 0 means use PerCategoryCap.
	HeavyCategoryCap int
	// Selection enables the selection-and-regeneration stage. Disabling
	// it reproduces the "wo selection" ablation of Table 5.
	Selection bool
	// Categories restricts generation to the given categories. Empty
	// means all. This is the §3.3 control knob: "our method [can]
	// generate specialized data to enhance prompt capabilities in
	// specific domains".
	Categories []facet.Category

	// Workers bounds generation concurrency; <=1 runs serially. The
	// output is identical for any worker count: the plan is fixed
	// before the pool starts and each item is computed independently.
	// Excluded from checkpoint fingerprints for the same reason.
	Workers int `json:"-"`
	// FaultGate, when set, is consulted before every generator and
	// critic call; an error counts as a failed attempt against the
	// item's budget. Wiring a resilience.FaultyChatter here injects
	// deterministic fault scripts into the build (chaos tests, soak
	// runs). Nil means no injected faults.
	FaultGate FaultGate `json:"-"`
}

// FaultGate is the context-taking chat surface a fault injector
// exposes; resilience.FaultyChatter implements it.
type FaultGate interface {
	ChatContext(ctx context.Context, messages []simllm.Message, opt simllm.Options) (string, error)
}

// DefaultConfig returns the paper's pipeline settings.
func DefaultConfig() Config {
	return Config{
		GeneratorModel:   simllm.GPT4Turbo,
		CriticModel:      simllm.GPT4Turbo,
		MaxRegen:         6,
		PerCategoryCap:   500,
		HeavyCategoryCap: 1500,
		Selection:        true,
	}
}

// Stats summarises a pipeline run.
type Stats struct {
	// Prompts is the number of curated prompts consumed.
	Prompts int
	// Generated counts first-attempt generations.
	Generated int
	// Rejected counts critic rejections (including re-rejections).
	Rejected int
	// Regenerated counts regeneration attempts performed.
	Regenerated int
	// GaveUp counts pairs kept after exhausting MaxRegen without critic
	// approval.
	GaveUp int
	// ResidualDefects counts kept pairs that are defective by ground
	// truth (the critic is imperfect); this is what the ablation turns
	// into benchmark points.
	ResidualDefects int
	// Quarantined counts items that exhausted their attempt budget on
	// failing model calls and were journaled and skipped instead of
	// failing the build.
	Quarantined int
	// Faults counts failed model calls injected or observed during the
	// run (each consumed one attempt somewhere).
	Faults int
	// RegenByCategory breaks Regenerated down per category name — the
	// paper's Figure 6 categories differ sharply in how often the
	// critic sends a pair back.
	RegenByCategory map[string]int
}

// ItemRecord is the journaled outcome of one plan item. It carries
// everything needed to reassemble the item's dataset contribution and
// stats without recomputing it: the journal is the commit point of the
// generation loop, so a crash resumes at the exact item.
type ItemRecord struct {
	// Index is the item's position in the curated input.
	Index int `json:"i"`
	// Category is the curated category name (for display; the curated
	// input remains the source of truth).
	Category string `json:"cat,omitempty"`
	// Complement is the accepted (or kept-after-give-up) generation.
	Complement string `json:"aug,omitempty"`
	// Source is the dataset provenance tag ("generated" or
	// "regenerated:<n>").
	Source string `json:"src,omitempty"`
	// Generated is 1 when the first-salt generation succeeded.
	Generated int `json:"gen,omitempty"`
	// Rejected counts critic rejections for this item.
	Rejected int `json:"rej,omitempty"`
	// Regenerated counts regeneration attempts for this item.
	Regenerated int `json:"reg,omitempty"`
	// GaveUp marks a pair kept after exhausting the budget without
	// critic approval.
	GaveUp bool `json:"gaveup,omitempty"`
	// Quarantined marks an item skipped after exhausting its budget on
	// failing model calls.
	Quarantined bool `json:"q,omitempty"`
	// Reason explains a quarantine ("generate: ..." or "critic: ...").
	Reason string `json:"why,omitempty"`
	// Faults counts failed model calls for this item.
	Faults int `json:"faults,omitempty"`
}

// Journal persists completed items. checkpoint.Journal satisfies it
// via a tiny adapter; tests substitute their own to inject crashes.
type Journal interface {
	Append(rec ItemRecord) error
}

// RunState carries resume and instrumentation hooks into RunResumable.
// The zero value runs from scratch with no persistence.
type RunState struct {
	// Done holds records replayed from a prior run's journal; their
	// items are restored, not recomputed.
	Done []ItemRecord
	// Journal, when set, receives every freshly computed record before
	// the item counts as done. An append error aborts the build (the
	// checkpoint would otherwise fall behind the output).
	Journal Journal
	// Progress, when set, receives live counters for /metricsz.
	Progress *Progress
}

// Quarantined describes one skipped item for reporting.
type Quarantined struct {
	Index    int
	Prompt   string
	Category facet.Category
	Reason   string
}

// Result is the pipeline output.
type Result struct {
	Data  *dataset.Dataset
	Stats Stats
	// Quarantine lists the items skipped after exhausting their
	// budgets, in plan order.
	Quarantine []Quarantined
}

// NullChatter is a no-op resilience.Chatter: it answers every call with
// an empty reply. It exists to serve as the pass-through inner of a
// resilience.FaultyChatter used as a FaultGate, where only the scripted
// faults matter.
type NullChatter struct{}

// Name identifies the chatter.
func (NullChatter) Name() string { return "null" }

// Chat returns an empty reply.
func (NullChatter) Chat([]simllm.Message, simllm.Options) (string, error) { return "", nil }

// Run executes Algorithm 1 over curated prompts using the golden few-shot
// seed pairs.
func Run(curated []curation.Curated, golden map[facet.Category][]dataset.Pair, cfg Config) (*Result, error) {
	return RunResumable(curated, golden, cfg, RunState{})
}

// planItem is one admitted unit of work.
type planItem struct {
	idx int
	cat facet.Category
}

// RunResumable executes Algorithm 1 with journaling and resume. The
// work plan (which curated prompts are admitted under the category
// caps) is computed up front, so it depends only on the input order —
// never on generation outcomes — and is identical across runs of the
// same config. Items already present in st.Done are restored; the rest
// are computed by cfg.Workers concurrent workers and journaled as they
// finish. The assembled dataset and stats are byte-identical whether
// the run was interrupted-and-resumed or ran straight through.
func RunResumable(curated []curation.Curated, golden map[facet.Category][]dataset.Pair, cfg Config, st RunState) (*Result, error) {
	if len(curated) == 0 {
		return nil, fmt.Errorf("augment: no curated prompts")
	}
	if len(golden) == 0 {
		return nil, fmt.Errorf("augment: no golden data")
	}
	if cfg.MaxRegen == 0 {
		cfg.MaxRegen = 6
	}
	if cfg.MaxRegen < 0 {
		return nil, fmt.Errorf("augment: MaxRegen must be >= 0, got %d", cfg.MaxRegen)
	}
	gen, err := modelFor(cfg.GeneratorModel, "generator")
	if err != nil {
		return nil, err
	}
	critic, err := modelFor(cfg.CriticModel, "critic")
	if err != nil {
		return nil, err
	}

	plan := buildPlan(curated, cfg)
	prog := st.Progress
	prog.setPlanned(len(plan))

	// Restore replayed records. Indexes must belong to the plan — the
	// checkpoint fingerprint guarantees the plan is unchanged, so a
	// mismatch means the journal is not ours.
	records := make([]*ItemRecord, len(curated))
	planned := make(map[int]bool, len(plan))
	for _, it := range plan {
		planned[it.idx] = true
	}
	for i := range st.Done {
		rec := st.Done[i]
		if rec.Index < 0 || rec.Index >= len(curated) || !planned[rec.Index] {
			return nil, fmt.Errorf("augment: journal record for item %d is outside the build plan (stale or foreign checkpoint)", rec.Index)
		}
		records[rec.Index] = &rec
	}
	var pending []planItem
	for _, it := range plan {
		if records[it.idx] == nil {
			pending = append(pending, it)
		} else {
			prog.restored(records[it.idx])
		}
	}

	if err := processPending(curated, golden, cfg, st, gen, critic, pending, records); err != nil {
		return nil, err
	}
	return assemble(curated, plan, records)
}

// buildPlan admits curated prompts under the category filter and caps.
// Admission counts against the cap whether or not the item later
// quarantines, keeping the plan a pure function of the input order.
func buildPlan(curated []curation.Curated, cfg Config) []planItem {
	capFor := func(cat facet.Category) int {
		if cfg.HeavyCategoryCap > 0 && (cat == facet.Coding || cat == facet.QA) {
			return cfg.HeavyCategoryCap
		}
		return cfg.PerCategoryCap
	}
	allowed := make(map[facet.Category]bool, len(cfg.Categories))
	for _, c := range cfg.Categories {
		allowed[c] = true
	}
	perCat := make(map[facet.Category]int)
	var plan []planItem
	for i, c := range curated {
		if len(allowed) > 0 && !allowed[c.Category] {
			continue
		}
		if limit := capFor(c.Category); limit > 0 && perCat[c.Category] >= limit {
			continue
		}
		perCat[c.Category]++
		plan = append(plan, planItem{idx: i, cat: c.Category})
	}
	return plan
}

// processPending runs the worker pool over the not-yet-done items. The
// journal append is the commit point: a record is stored in records
// only after it is durably journaled, so a crash can lose at most
// in-flight work, never journaled work.
func processPending(curated []curation.Curated, golden map[facet.Category][]dataset.Pair, cfg Config, st RunState, gen, critic *simllm.Model, pending []planItem, records []*ItemRecord) error {
	if len(pending) == 0 {
		return nil
	}
	workers := cfg.Workers
	if workers <= 1 {
		workers = 1
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var (
		mu       sync.Mutex
		firstErr error
	)
	items := make(chan planItem)
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range items {
				rec := processItem(curated[it.idx], it, golden, cfg, gen, critic, st.Progress)
				if st.Journal != nil {
					if err := st.Journal.Append(rec); err != nil {
						fail(fmt.Errorf("augment: journaling item %d: %w", it.idx, err))
						return
					}
				}
				mu.Lock()
				records[it.idx] = &rec
				mu.Unlock()
				st.Progress.completed(&rec)
			}
		}()
	}
feed:
	for _, it := range pending {
		select {
		case items <- it:
		case <-abort:
			break feed
		}
	}
	close(items)
	wg.Wait()
	return firstErr
}

// processItem runs the per-item generate/critique/regenerate loop.
// Attempt n uses salt "gen/n"; every failure — an injected fault or a
// critic rejection — consumes one attempt. The loop ends in one of
// three states: accepted (or selection disabled), kept after give-up
// (critic still rejecting at the budget), or quarantined (the budget
// died on failing model calls, leaving nothing validated to keep).
func processItem(c curation.Curated, it planItem, golden map[facet.Category][]dataset.Pair, cfg Config, gen, critic *simllm.Model, prog *Progress) ItemRecord {
	rec := ItemRecord{Index: it.idx, Category: it.cat.String()}
	examples := fewShotExamples(golden, it.cat)
	gate := func(op string) error {
		if cfg.FaultGate == nil {
			return nil
		}
		_, err := cfg.FaultGate.ChatContext(context.Background(), []simllm.Message{
			{Role: "system", Content: "augment/" + op},
			{Role: "user", Content: c.Prompt.Text},
		}, simllm.Options{})
		return err
	}

	attempt := 0
	for {
		if err := gate("generate"); err != nil {
			rec.Faults++
			prog.fault()
			if attempt >= cfg.MaxRegen {
				return quarantineRec(rec, fmt.Sprintf("generate: %v", err))
			}
			attempt++
			continue
		}
		rec.Complement = gen.GenerateComplement(c.Prompt.Text, examples, fmt.Sprintf("gen/%d", attempt))
		if attempt == 0 {
			rec.Generated++
		} else {
			rec.Regenerated++
			prog.regenerated(rec.Category)
		}
		if !cfg.Selection {
			break
		}
		if err := gate("critique"); err != nil {
			rec.Faults++
			prog.fault()
			if attempt >= cfg.MaxRegen {
				return quarantineRec(rec, fmt.Sprintf("critic: %v", err))
			}
			attempt++
			continue
		}
		if critic.CritiquePair(c.Prompt.Text, rec.Complement).Correct {
			break
		}
		rec.Rejected++
		if attempt >= cfg.MaxRegen {
			rec.GaveUp = true
			break
		}
		attempt++
	}
	rec.Source = "generated"
	if attempt > 0 {
		rec.Source = fmt.Sprintf("regenerated:%d", attempt)
	}
	return rec
}

// quarantineRec finalises a record as quarantined: whatever was
// generated is dropped, nothing of it reaches the dataset.
func quarantineRec(rec ItemRecord, reason string) ItemRecord {
	rec.Quarantined = true
	rec.Reason = reason
	rec.Complement = ""
	rec.Source = ""
	return rec
}

// assemble folds records into the dataset and stats in plan order, so
// the output bytes depend only on the plan and the per-item records —
// not on which of them were replayed and which freshly computed.
func assemble(curated []curation.Curated, plan []planItem, records []*ItemRecord) (*Result, error) {
	res := &Result{Data: &dataset.Dataset{}, Stats: Stats{RegenByCategory: make(map[string]int)}}
	for _, it := range plan {
		rec := records[it.idx]
		if rec == nil {
			return nil, fmt.Errorf("augment: item %d has no record after processing", it.idx)
		}
		res.Stats.Prompts++
		res.Stats.Generated += rec.Generated
		res.Stats.Rejected += rec.Rejected
		res.Stats.Regenerated += rec.Regenerated
		res.Stats.Faults += rec.Faults
		if rec.Regenerated > 0 {
			res.Stats.RegenByCategory[it.cat.String()] += rec.Regenerated
		}
		if rec.GaveUp {
			res.Stats.GaveUp++
		}
		if rec.Quarantined {
			res.Stats.Quarantined++
			res.Quarantine = append(res.Quarantine, Quarantined{
				Index:    it.idx,
				Prompt:   curated[it.idx].Prompt.Text,
				Category: it.cat,
				Reason:   rec.Reason,
			})
			continue
		}
		if IsDefective(curated[it.idx].Prompt.Text, rec.Complement) {
			res.Stats.ResidualDefects++
		}
		if err := res.Data.Add(dataset.Pair{
			Prompt:     curated[it.idx].Prompt.Text,
			Complement: rec.Complement,
			Category:   it.cat.String(),
			Source:     rec.Source,
		}); err != nil {
			return nil, fmt.Errorf("augment: %w", err)
		}
	}
	return res, nil
}

// IsDefective is the ground-truth defect check used for pipeline
// accounting and the ablation analysis: answer leak, constraint conflict,
// over-reach on a simple prompt, or no usable directive.
func IsDefective(prompt, complement string) bool {
	a := facet.AnalyzePrompt(prompt)
	dirs := facet.DetectDirectives(complement)
	return facet.DetectAnswerLeak(complement) ||
		len(facet.ConflictingDirectives(a, dirs)) > 0 ||
		(dirs.Len() >= 4 && a.Complexity < 1) ||
		dirs.Len() == 0
}

func fewShotExamples(golden map[facet.Category][]dataset.Pair, c facet.Category) []simllm.Example {
	pairs := golden[c]
	out := make([]simllm.Example, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, simllm.Example{Prompt: p.Prompt, Complement: p.Complement})
	}
	return out
}

func modelFor(name, role string) (*simllm.Model, error) {
	profile, err := simllm.LookupProfile(name)
	if err != nil {
		return nil, fmt.Errorf("augment: %s: %w", role, err)
	}
	return simllm.New(profile)
}
