// Package analysis is a small go/analysis-style framework built on the
// standard library alone (go/ast, go/parser, go/types — no
// golang.org/x/tools, no go/packages). It loads the module's packages
// from source, type-checks them against a source-parsed standard
// library, runs registered analyzers, and filters findings through
// //paslint:allow suppression directives.
//
// The framework exists because the PAS reproduction's validity rests on
// invariants the compiler cannot see: bit-determinism of the simulated
// LLM stack under a seed, context propagation through the serving hot
// path, lock discipline around slow calls, error-wrapping across the
// resilience classification boundary, and HTTP body hygiene. paslint
// (cmd/paslint) turns those from review-time folklore into
// machine-checked rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named invariant check.
type Analyzer struct {
	// Name identifies the rule in diagnostics and in
	// //paslint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the rule enforces.
	Doc string
	// Run applies the rule to one package, reporting findings through
	// pass.Reportf. A returned error aborts the whole lint run (it means
	// the analyzer itself failed, not that the code has findings).
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test source files, with
	// comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression/object maps for Files.
	Info *types.Info
	// Path is the package's import path (e.g. "repro/internal/simllm").
	Path string
	// Module is the module path the package was loaded under.
	Module string
	// Directives are every well-formed paslint directive in Files, in
	// source order. Allow directives are applied by the runner after the
	// analyzers report; rules that define their own markers (hotpathalloc
	// and the hotpath verb) read them here.
	Directives []Directive

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to a rule.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}
