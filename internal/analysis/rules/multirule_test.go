package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestMultiRule runs two analyzers over one fixture: a line where both
// fire, and a //paslint:allow naming one rule that must leave the
// other's finding standing.
func TestMultiRule(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("multirule"), AtomicMix, HotPathAlloc)
}
