package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lite"
)

// AtomicMix flags variables that are accessed through sync/atomic in
// one place and plainly in another. Mixing the two is not a smaller
// race — it is no synchronization at all: the plain access is free to
// tear, reorder, and miss published values, and it does so exactly
// under the load that made someone reach for atomics in the first
// place. The fix is always the same: every access goes through the
// atomic API (including the zero-to-initial store in constructors), or
// the field moves behind the mutex with its friends.
//
// The check is package-scoped and object-precise: it keys on the
// *types.Var, so `s.hits` in one method and `c.hits` in another are
// the same field. Struct literal keys and declarations are not
// accesses.
var AtomicMix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag variables accessed both via sync/atomic and plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *analysis.Pass) error {
	atomicSites := map[*types.Var]string{} // var -> first atomic call site (for the message)
	excused := map[*ast.Ident]bool{}       // idents consumed by the atomic calls themselves

	// Pass 1: record every &x handed to a sync/atomic function.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				id := rootIdent(un.X)
				if id == nil {
					continue
				}
				v, ok := refObject(pass.Info, id).(*types.Var)
				if !ok {
					continue
				}
				if _, seen := atomicSites[v]; !seen {
					pos := pass.Fset.Position(call.Pos())
					atomicSites[v] = shortPos(pos.Filename, pos.Line)
				}
				// Every ident inside this &x expression belongs to the
				// atomic access, not a plain one.
				ast.Inspect(un, func(m ast.Node) bool {
					if mid, ok := m.(*ast.Ident); ok {
						excused[mid] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return nil
	}

	// Pass 2: any other use of those variables is a plain access.
	for _, f := range pass.Files {
		lite.Inspect(f, func(stack []ast.Node) bool {
			id, ok := stack[len(stack)-1].(*ast.Ident)
			if !ok || excused[id] {
				return true
			}
			v, ok := refObject(pass.Info, id).(*types.Var)
			if !ok {
				return true
			}
			site, tracked := atomicSites[v]
			if !tracked || isDeclOrKey(stack, id, pass.Info) {
				return true
			}
			pass.Reportf(id.Pos(), "%s is accessed atomically at %s but plainly here; every access must go through sync/atomic (or move the field behind the mutex)", v.Name(), site)
			return true
		})
	}
	return nil
}

// refObject resolves an identifier to the object it references,
// checking Uses then Defs.
func refObject(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// rootIdent returns the field/variable identifier at the tip of
// x, s.x, s.embedded.x — the last selector component, or the ident
// itself.
func rootIdent(e ast.Expr) *ast.Ident {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v
	case *ast.SelectorExpr:
		return v.Sel
	case *ast.IndexExpr:
		return rootIdent(v.X)
	}
	return nil
}

// isDeclOrKey reports whether id is a declaration site (struct field,
// var statement) or a composite-literal key — positions that name the
// variable without reading or writing it.
func isDeclOrKey(stack []ast.Node, id *ast.Ident, info *types.Info) bool {
	if info.Defs[id] != nil {
		return true
	}
	if len(stack) < 2 {
		return false
	}
	if kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr); ok && kv.Key == ast.Expr(id) {
		if len(stack) >= 3 {
			if _, inLit := stack[len(stack)-3].(*ast.CompositeLit); inLit {
				return true
			}
		}
	}
	return false
}

// shortPos renders file:line with the file reduced to its base name —
// the diagnostic already carries the full path of the *plain* site.
func shortPos(filename string, line int) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		filename = filename[i+1:]
	}
	return filename + ":" + strconv.Itoa(line)
}
