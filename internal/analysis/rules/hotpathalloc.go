package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/lite"
)

// HotPathAlloc polices functions marked with //paslint:hotpath — the
// ones whose per-call allocation budget is an architectural decision,
// not an implementation detail. The serving core's cache-hit path is
// the canonical example: the paper's p50 numbers assume a hit costs a
// map lookup, and every stray allocation there shows up as GC pressure
// multiplied by the hit rate. Inside a marked function the rule flags:
//
//   - composite literals (and their &-addresses) that escape the
//     function, per the lite escape walk;
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Appendf calls;
//   - string<->[]byte/[]rune conversions, each a copy;
//   - time.Now, which belongs behind the injected clock anyway.
//
// Nested function literals are exempt: a closure constructed on the
// hot path is already an allocation the rule flags at its literal; its
// body runs elsewhere. The marker rides on the func line or directly
// above it (end of the doc comment), and a marker that matches no
// function is itself a finding — a stale marker polices nothing.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation-prone constructs in functions marked //paslint:hotpath",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) error {
	marked := map[*ast.FuncDecl]bool{}
	used := map[int]bool{} // index into pass.Directives

	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			funcLine := pass.Fset.Position(fd.Pos()).Line
			for i, d := range pass.Directives {
				if d.Verb != analysis.VerbHotPath || d.File != fname {
					continue
				}
				if d.Line == funcLine || d.Line == funcLine-1 {
					marked[fd] = true
					used[i] = true
				}
			}
		}
	}

	for i, d := range pass.Directives {
		if d.Verb == analysis.VerbHotPath && !used[i] {
			pass.Reportf(directivePos(pass.Fset, d), "paslint:hotpath marks no function; put it on the func line or the line above")
		}
	}

	for fd := range marked {
		checkHotBody(pass, fd)
	}
	return nil
}

// directivePos recovers a token.Pos for a directive from its
// file/line, so stale markers can be reported in place.
func directivePos(fset *token.FileSet, d analysis.Directive) token.Pos {
	var pos token.Pos = token.NoPos
	fset.Iterate(func(tf *token.File) bool {
		if tf.Name() == d.File && d.Line >= 1 && d.Line <= tf.LineCount() {
			pos = tf.LineStart(d.Line)
			return false
		}
		return true
	})
	return pos
}

// sprintFuncs are the fmt allocators flagged on hot paths.
var sprintFuncs = []string{"Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf"}

func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	lite.Inspect(fd.Body, func(stack []ast.Node) bool {
		switch v := stack[len(stack)-1].(type) {
		case *ast.FuncLit:
			// The closure itself is a composite allocation; its body runs
			// off the marked path.
			if lite.Escapes(stack, pass.Info) {
				pass.Reportf(v.Pos(), "escaping function literal allocates on a hotpath function; hoist the closure or pass a method value")
			}
			return false
		case *ast.CompositeLit:
			// Judged at the literal; &T{} is handled by the escape walk
			// looking through the address-of.
			if lite.Escapes(stack, pass.Info) {
				pass.Reportf(v.Pos(), "escaping composite literal allocates on a hotpath function; reuse a buffer or hoist it")
			}
		case *ast.CallExpr:
			checkHotCall(pass, v)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Conversions: string([]byte), []byte(string), []rune(string).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.Info.Types[call.Args[0]].Type
		if isStringByteConv(to, from) {
			pass.Reportf(call.Pos(), "string<->bytes conversion copies on a hotpath function; keep one representation end to end")
		}
		return
	}
	fn := calleeFunc(pass.Info, call)
	switch {
	case isPkgFunc(fn, "fmt", sprintFuncs...):
		pass.Reportf(call.Pos(), "fmt.%s allocates on a hotpath function; use strconv or a pre-sized append", fn.Name())
	case isPkgFunc(fn, "time", "Now"):
		pass.Reportf(call.Pos(), "time.Now on a hotpath function; thread the injected clock (Config.Now) instead")
	}
}

// isStringByteConv reports whether a conversion crosses the
// string/[]byte (or string/[]rune) boundary in either direction.
func isStringByteConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
