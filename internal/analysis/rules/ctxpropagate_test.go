package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestCtxPropagate(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("ctxpropagate"), CtxPropagate)
}
