package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// HTTPBody enforces HTTP resource hygiene on both sides of the wire:
//
//  1. Client side: a *http.Response obtained from a call must have its
//     Body closed somewhere in the same function (usually
//     defer resp.Body.Close()), or escape it — be returned, passed to
//     another call, stored in a field, or sent on a channel — so the
//     responsibility visibly moves. An unclosed body leaks the
//     connection and caps the client at its idle-pool size.
//  2. Server side: in handler-shaped functions (an http.ResponseWriter
//     parameter), WriteHeader after the first body write is flagged —
//     the write already committed status 200, so the late WriteHeader
//     is a silent no-op plus a log line. A second WriteHeader is
//     flagged the same way. http.Error and the module's JSON error
//     helpers count as header+body writes.
var HTTPBody = &analysis.Analyzer{
	Name: "httpbody",
	Doc:  "flag unclosed http.Response bodies and WriteHeader-after-write ordering bugs in handlers",
	Run:  runHTTPBody,
}

func runHTTPBody(pass *analysis.Pass) error {
	enclosingFuncs(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		checkResponseBodies(pass, body)
		var ftype *ast.FuncType
		if decl != nil {
			ftype = decl.Type
		} else {
			ftype = lit.Type
		}
		if w := responseWriterParam(pass.Info, ftype); w != nil {
			scanWriteOrder(pass, body.List, w, &writeState{})
		}
	})
	return nil
}

// --- rule 1: response bodies -----------------------------------------

// checkResponseBodies finds vars bound to *http.Response call results
// and verifies each is closed or escapes.
func checkResponseBodies(pass *analysis.Pass, body *ast.BlockStmt) {
	type binding struct {
		obj types.Object
		pos ast.Node
	}
	var bindings []binding
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions are visited on their own
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		results := resultTypes(pass.Info, call)
		if results == nil {
			return true
		}
		for i := 0; i < results.Len() && i < len(as.Lhs); i++ {
			if !isResponsePtr(results.At(i).Type()) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				bindings = append(bindings, binding{obj: obj, pos: as})
			}
		}
		return true
	})
	for _, b := range bindings {
		if !closedOrEscapes(pass, body, b.obj) {
			pass.Reportf(b.pos.Pos(), "response body of %s is never closed on some path; defer %s.Body.Close() after the error check", b.obj.Name(), b.obj.Name())
		}
	}
}

func isResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamedType(p, "net/http", "Response")
}

// closedOrEscapes reports whether obj's Body is closed in body, or obj
// escapes the function (returned, passed along, stored, sent).
func closedOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			// resp.Body.Close() (possibly via defer)
			if sel, isSel := v.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Close" {
				if inner, isSel2 := ast.Unparen(sel.X).(*ast.SelectorExpr); isSel2 && inner.Sel.Name == "Body" {
					if id, isID := ast.Unparen(inner.X).(*ast.Ident); isID && pass.Info.Uses[id] == obj {
						ok = true
						return false
					}
				}
			}
			// resp passed to another function: responsibility moved.
			for _, arg := range v.Args {
				if id, isID := ast.Unparen(arg).(*ast.Ident); isID && pass.Info.Uses[id] == obj {
					ok = true
					return false
				}
			}
		case *ast.ReturnStmt:
			// Only the response itself escapes ownership; returning a
			// field read off it (resp.StatusCode) does not.
			for _, res := range v.Results {
				if id, isID := ast.Unparen(res).(*ast.Ident); isID && pass.Info.Uses[id] == obj {
					ok = true
					return false
				}
			}
		case *ast.SendStmt:
			if id, isID := ast.Unparen(v.Value).(*ast.Ident); isID && pass.Info.Uses[id] == obj {
				ok = true
				return false
			}
		case *ast.AssignStmt:
			// Stored into a field, map, or captured variable:
			// resp ownership moved somewhere longer-lived.
			for i, rhs := range v.Rhs {
				if id, isID := ast.Unparen(rhs).(*ast.Ident); isID && pass.Info.Uses[id] == obj {
					if i < len(v.Lhs) {
						if _, plain := v.Lhs[i].(*ast.Ident); !plain {
							ok = true
							return false
						}
					}
				}
			}
		}
		return true
	})
	return ok
}

// --- rule 2: WriteHeader ordering ------------------------------------

// responseWriterParam returns the http.ResponseWriter parameter's
// object, or nil.
func responseWriterParam(info *types.Info, ftype *ast.FuncType) types.Object {
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isNamedType(tv.Type, "net/http", "ResponseWriter") {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

type writeState struct {
	wroteBody   bool
	wroteHeader bool
}

// scanWriteOrder walks statements in order tracking header/body write
// state on w. Branches are scanned with copies: a write inside one
// branch does not poison the fall-through path (conservative:
// under-reports, never false-positives on exclusive branches).
func scanWriteOrder(pass *analysis.Pass, stmts []ast.Stmt, w types.Object, st *writeState) {
	for _, s := range stmts {
		switch v := s.(type) {
		case *ast.BlockStmt:
			sub := *st
			scanWriteOrder(pass, v.List, w, &sub)
		case *ast.IfStmt:
			sub := *st
			scanWriteOrder(pass, v.Body.List, w, &sub)
			if v.Else != nil {
				sub2 := *st
				scanWriteOrder(pass, []ast.Stmt{v.Else}, w, &sub2)
			}
		case *ast.ForStmt:
			sub := *st
			scanWriteOrder(pass, v.Body.List, w, &sub)
		case *ast.RangeStmt:
			sub := *st
			scanWriteOrder(pass, v.Body.List, w, &sub)
		case *ast.SwitchStmt:
			for _, c := range v.Body.List {
				sub := *st
				scanWriteOrder(pass, c.(*ast.CaseClause).Body, w, &sub)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range v.Body.List {
				sub := *st
				scanWriteOrder(pass, c.(*ast.CaseClause).Body, w, &sub)
			}
		default:
			classifyWriteStmt(pass, s, w, st)
		}
	}
}

// classifyWriteStmt updates st for one linear statement, reporting
// ordering violations.
func classifyWriteStmt(pass *analysis.Pass, s ast.Stmt, w types.Object, st *writeState) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isWriteHeaderCall(pass.Info, call, w):
			if st.wroteBody {
				pass.Reportf(call.Pos(), "WriteHeader after the response body was written; the status is already committed to 200")
			} else if st.wroteHeader {
				pass.Reportf(call.Pos(), "duplicate WriteHeader; the first call already committed the status")
			}
			st.wroteHeader = true
		case isBodyWriteCall(pass.Info, call, w):
			st.wroteBody = true
			st.wroteHeader = true // a body write commits the header too
		}
		return true
	})
}

// isWriteHeaderCall matches w.WriteHeader(...).
func isWriteHeaderCall(info *types.Info, call *ast.CallExpr, w types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == w
}

// isBodyWriteCall matches the ways handlers write bodies: w.Write(...),
// fmt.Fprint*(w, ...), io.WriteString(w, ...), http.Error(w, ...),
// json.NewEncoder(w).Encode(...), and any module helper taking w as its
// first argument with "write"/"Write" in its name.
func isBodyWriteCall(info *types.Info, call *ast.CallExpr, w types.Object) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Write" {
		if id, ok2 := ast.Unparen(sel.X).(*ast.Ident); ok2 && info.Uses[id] == w {
			return true
		}
	}
	fn := calleeFunc(info, call)
	wIsArg := func(i int) bool {
		if i >= len(call.Args) {
			return false
		}
		id, ok := ast.Unparen(call.Args[i]).(*ast.Ident)
		return ok && info.Uses[id] == w
	}
	if fn != nil {
		if isPkgFunc(fn, "fmt", "Fprintf", "Fprintln", "Fprint") && wIsArg(0) {
			return true
		}
		if isPkgFunc(fn, "io", "WriteString", "Copy") && wIsArg(0) {
			return true
		}
		if isPkgFunc(fn, "net/http", "Error", "ServeContent", "ServeFile", "Redirect", "NotFound") && wIsArg(0) {
			return true
		}
		// Module-local write helpers: writeJSON(w, ...), writeError(w, ...)
		if fn.Pkg() != nil && fn.Pkg().Path() != "fmt" && fn.Pkg().Path() != "io" && fn.Pkg().Path() != "net/http" {
			name := fn.Name()
			if (len(name) >= 5 && (name[:5] == "write" || name[:5] == "Write")) && wIsArg(0) {
				return true
			}
		}
	}
	// json.NewEncoder(w).Encode(...): w reaches the encoder.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Encode" {
		if inner, ok2 := ast.Unparen(sel.X).(*ast.CallExpr); ok2 {
			for _, arg := range inner.Args {
				if id, ok3 := ast.Unparen(arg).(*ast.Ident); ok3 && info.Uses[id] == w {
					return true
				}
			}
		}
	}
	return false
}
