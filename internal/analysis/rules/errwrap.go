package rules

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// ErrWrap enforces error hygiene at the resilience classification
// boundary:
//
//  1. Discarded error returns: a call whose result tuple includes an
//     error, used as a bare statement, silently drops the error.
//     (defer/go statements, fmt/log printing, and buffer writers whose
//     errors are defined to be nil are exempt; `_ =` stays legal as an
//     explicit, greppable discard.) Applies module-wide: paslint does
//     not load test files, so the non-test scoping is structural.
//  2. Unwrapped classification errors: in packages that import
//     internal/resilience (plus resilience itself), fmt.Errorf calls
//     that format an error value must use %w. Classify walks the
//     errors.Unwrap chain — an error flattened with %v or %s loses its
//     Terminal/Overload/Retryable identity and its Retry-After hint,
//     so the retry executor misclassifies it.
var ErrWrap = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "flag discarded error returns and %v/%s-flattened errors crossing the resilience classification boundary",
	Run:  runErrWrap,
}

// ErrWrapPaths forces rule 2 on for matching packages even when they do
// not import internal/resilience. Fixture tests extend it; the
// import-based detection is what covers the real tree.
var ErrWrapPaths []string

func runErrWrap(pass *analysis.Pass) error {
	wrapScope := pathInScope(pass.Path, ErrWrapPaths) || importsResilience(pass.Pkg) || strings.HasSuffix(pass.Path, "internal/resilience")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(v.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				checkDiscardedError(pass, call)
			case *ast.CallExpr:
				if wrapScope {
					checkErrorfWrap(pass, v)
				}
			}
			return true
		})
	}
	return nil
}

func importsResilience(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	for _, imp := range pkg.Imports() {
		if strings.HasSuffix(imp.Path(), "internal/resilience") {
			return true
		}
	}
	return false
}

// checkDiscardedError flags expression-statement calls that drop an
// error result.
func checkDiscardedError(pass *analysis.Pass, call *ast.CallExpr) {
	results := resultTypes(pass.Info, call)
	if results == nil {
		return
	}
	errIdx := -1
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errIdx = i
			break
		}
	}
	if errIdx < 0 {
		return
	}
	if fn := calleeFunc(pass.Info, call); fn != nil && exemptDiscard(pass, call, fn) {
		return
	}
	pass.Reportf(call.Pos(), "call discards its error result; handle it, or assign to _ to make the discard explicit")
}

// exemptDiscard lists callees whose error results are conventionally
// ignored: terminal printing, loggers, the in-memory writers whose
// Write errors are documented to always be nil, and fmt.Fprint* to any
// destination that is not a real file. (A strings.Builder, a tabwriter,
// an SSE http.ResponseWriter — none of those can usefully propagate a
// write error; a file on disk can, so *os.File destinations other than
// the process streams stay flagged.)
func exemptDiscard(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) bool {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if pkg == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
		return true
	}
	if pkg == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return !isRealFileDest(pass, call.Args[0])
	}
	if named := recvNamed(fn); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "strings.Builder", "bytes.Buffer", "log.Logger":
				return true
			}
		}
	}
	return false
}

// isRealFileDest reports whether the writer expression is a *os.File
// other than the os.Stdout/os.Stderr process streams.
func isRealFileDest(pass *analysis.Pass, dest ast.Expr) bool {
	dest = ast.Unparen(dest)
	if sel, ok := dest.(*ast.SelectorExpr); ok {
		if id, ok2 := sel.X.(*ast.Ident); ok2 {
			if pn, ok3 := pass.Info.Uses[id].(*types.PkgName); ok3 && pn.Imported().Path() == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return false
			}
		}
	}
	tv, ok := pass.Info.Types[dest]
	if !ok {
		return false
	}
	return isNamedType(tv.Type, "os", "File")
}

// checkErrorfWrap flags fmt.Errorf calls that format an error value
// with a non-wrapping verb.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	args := call.Args[1:]
	for i, arg := range args {
		if i >= len(verbs) {
			break
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "error formatted with %%%c loses its classification across the resilience boundary; wrap with %%w", verbs[i])
		}
	}
}

// formatVerbs extracts the verb letter for each argument-consuming
// directive in a printf format string. Width/precision stars also
// consume arguments and are returned as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == ' ' || c == '#' {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}
