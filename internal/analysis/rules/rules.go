// Package rules holds the paslint analyzers: machine-checked versions
// of the invariants the PAS reproduction depends on. Each analyzer is a
// plain analysis.Analyzer; All returns the registered set in the order
// cmd/paslint runs them.
//
// Scoping: some rules only bite in particular parts of the tree (the
// deterministic simulation packages, the serving hot path). Those sets
// are package-level variables so fixture tests can widen them; the
// defaults encode the repository's architecture.
package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// All returns every registered analyzer, in run order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		CtxPropagate,
		LockHeld,
		ErrWrap,
		HTTPBody,
		GoroutineLeak,
		TimerStop,
		AtomicMix,
		ChanHygiene,
		HotPathAlloc,
	}
}

// ByName resolves a comma-separated rule list ("determinism,errwrap").
func ByName(list string) ([]*analysis.Analyzer, bool) {
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// DeterministicPaths are the package-path fragments whose code must be
// bit-deterministic under a seed: the paper's win-rate tables (PAPER.md
// §4) are only reproducible if these never read the clock or the global
// rand source.
var DeterministicPaths = []string{
	"internal/simllm",
	"internal/corpus",
	"internal/cluster",
	"internal/hnsw",
	"internal/metrics",
}

// pathInScope reports whether the import path matches any fragment:
// exact, suffix, or segment-wise containment.
func pathInScope(path string, scope []string) bool {
	for _, frag := range scope {
		if path == frag || strings.HasSuffix(path, "/"+frag) || strings.Contains(path, "/"+frag+"/") || strings.HasPrefix(path, frag+"/") {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is a package-level function (no
// receiver) of pkgPath named one of names.
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// recvNamed returns the receiver's named type (through pointers), or
// nil for package functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamedType reports whether t (through pointers) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// errType is the predeclared error interface.
var errType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errType) || types.Identical(t, errType)
}

// resultTypes returns the result tuple of a call's callee signature.
func resultTypes(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// enclosingFuncs walks every function body in the package's files,
// calling fn with the declaration (nil for function literals reached at
// package level) and the body.
func enclosingFuncs(files []*ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					fn(v, nil, v.Body)
				}
			case *ast.FuncLit:
				fn(nil, v, v.Body)
			}
			return true
		})
	}
}
