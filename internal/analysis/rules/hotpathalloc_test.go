package rules

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("hotpathalloc"), HotPathAlloc)
}

// TestHotPathStaleMarker drives the runner directly: the stale-marker
// diagnostic lands on the directive's own line, where an analysistest
// want comment cannot sit.
func TestHotPathStaleMarker(t *testing.T) {
	dir, err := filepath.Abs(analysistest.Fixture("hotpathstale"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkgs, err := analysis.Load(analysis.Config{
		Fset:     fset,
		Dir:      dir,
		Module:   "hotpathstale",
		Importer: analysis.NewSourceImporter(fset),
	}, "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{HotPathAlloc})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "hotpathalloc" || !strings.Contains(d.Message, "marks no function") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if filepath.Base(d.Pos.Filename) != "stale.go" || d.Pos.Line != 7 {
		t.Errorf("stale marker reported at %s:%d, want stale.go:7", filepath.Base(d.Pos.Filename), d.Pos.Line)
	}
}
