package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/lite"
)

// TimerStop enforces timer and ticker lifecycle hygiene:
//
//   - time.Tick is banned outright — the ticker it allocates can never
//     be stopped, so every call is a permanent goroutine-and-channel
//     leak dressed up as convenience.
//   - time.After inside a loop allocates a fresh timer per iteration
//     that is only collected when it fires; at loadgen QPS that is a
//     heap of pending timers. Hoist a time.NewTimer and Reset it.
//   - A locally created *time.Timer/*time.Ticker must have Stop
//     reachable on every return path; `defer t.Stop()` right after
//     creation is the shape that cannot rot. Values that escape the
//     function (returned, stored in a field, passed along) are the
//     caller's to stop and are exempt.
var TimerStop = &analysis.Analyzer{
	Name: "timerstop",
	Doc:  "flag time.Tick, time.After in loops, and NewTimer/NewTicker values not stopped on every return path",
	Run:  runTimerStop,
}

func runTimerStop(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkTickAndAfter(pass, f)
	}
	enclosingFuncs(pass.Files, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		checkUnstoppedLocals(pass, body)
	})
	return nil
}

// checkTickAndAfter walks one file flagging time.Tick anywhere and
// time.After lexically inside a loop. The loop test does not cross
// function-literal boundaries: a callback defined in a loop runs once
// per call, not once per iteration.
func checkTickAndAfter(pass *analysis.Pass, f *ast.File) {
	lite.Inspect(f, func(stack []ast.Node) bool {
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		switch {
		case isPkgFunc(fn, "time", "Tick"):
			pass.Reportf(call.Pos(), "time.Tick leaks its ticker forever; use time.NewTicker with defer Stop")
		case isPkgFunc(fn, "time", "After") && inLoop(stack):
			pass.Reportf(call.Pos(), "time.After in a loop allocates an un-stoppable timer per iteration; hoist a time.NewTimer and Reset it each pass")
		}
		return true
	})
}

// inLoop reports whether the innermost enclosing loop/function-literal
// ancestor is a loop.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// checkUnstoppedLocals finds `t := time.NewTimer(...)` / NewTicker
// creations whose value stays local to body and reports every return
// path reachable before t.Stop().
func checkUnstoppedLocals(pass *analysis.Pass, body *ast.BlockStmt) {
	for _, stmt := range body.List {
		obj, ctor := timerCreation(pass.Info, stmt)
		if obj == nil || escapesFunc(pass.Info, body, obj, stmt) {
			continue
		}
		resolve := func(n ast.Node) bool { return isStopCall(pass.Info, n, obj) }
		for _, pos := range lite.ReturnsBefore(body, stmt, resolve) {
			pass.Reportf(pos, "%s from time.%s is not stopped on this return path; defer %s.Stop() at creation", obj.Name(), ctor, obj.Name())
		}
	}
}

// timerCreation matches `x := time.NewTimer(...)` or NewTicker at the
// top level of a block, returning the created variable.
func timerCreation(info *types.Info, stmt ast.Stmt) (*types.Var, string) {
	a, ok := stmt.(*ast.AssignStmt)
	if !ok || len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return nil, ""
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	fn := calleeFunc(info, call)
	if !isPkgFunc(fn, "time", "NewTimer", "NewTicker", "AfterFunc") {
		return nil, ""
	}
	if fn.Name() == "AfterFunc" {
		// AfterFunc timers self-dispose when they fire; stopping them is
		// an optimization, not a lifecycle requirement.
		return nil, ""
	}
	id, ok := a.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, ""
	}
	v, _ := info.Defs[id].(*types.Var)
	return v, fn.Name()
}

// isStopCall matches `x.Stop()` on the tracked variable.
func isStopCall(info *types.Info, n ast.Node, obj *types.Var) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stop" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == types.Object(obj)
}

// escapesFunc reports whether obj is handed beyond the function after
// its creation statement: returned, sent, passed as a call argument
// (method calls on obj itself do not count), assigned to anything, or
// folded into a composite literal. Any of these makes another owner
// responsible for Stop.
func escapesFunc(info *types.Info, body *ast.BlockStmt, obj *types.Var, creation ast.Stmt) bool {
	escaped := false
	lite.Inspect(body, func(stack []ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := stack[len(stack)-1].(*ast.Ident)
		if !ok || info.Uses[id] != types.Object(obj) {
			return true
		}
		for i := len(stack) - 2; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.SelectorExpr:
				// t.C, t.Stop, t.Reset: consuming the timer locally.
				return true
			case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
				escaped = true
				return false
			case *ast.CallExpr:
				for _, arg := range p.Args {
					if containsNode(arg, id) {
						escaped = true
						return false
					}
				}
				return true
			case *ast.AssignStmt:
				// On the right of an assignment the timer is handed to a
				// second name; on the left it is being re-bound. Either way
				// the simple single-owner story ends here.
				for _, rhs := range p.Rhs {
					if containsNode(rhs, id) {
						escaped = true
						return false
					}
				}
				return true
			case *ast.UnaryExpr, *ast.ParenExpr, *ast.StarExpr:
				continue
			default:
				return true
			}
		}
		return true
	})
	return escaped
}
