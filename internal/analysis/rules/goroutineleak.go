package rules

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/lite"
)

// GoroutineLeak flags the two spawn shapes behind every goroutine leak
// this repository has shipped: a `go func` whose body loops forever
// with no way to observe cancellation (no channel receive, no select,
// no context-carrying call it could return from), and a derived
// context whose CancelFunc is discarded with `_` — the child context
// then outlives every deadline and pins its timer and parent entry
// until process exit. The ring membership prober and the loadgen
// dispatcher are exactly these shapes done right: every background
// loop selects on a stop channel or ctx.Done(), and every
// WithCancel's cancel lands in a struct field or defer.
//
// The loop check is syntactic and per-literal: `go m.loop()` is not
// chased into the callee, so a leak split across two functions is an
// accepted false negative. The repository convention — spawn function
// literals whose select is visible at the spawn site — keeps the check
// honest where it matters.
var GoroutineLeak = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "flag go statements whose body loops forever without observing cancellation, and discarded context CancelFuncs",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
					checkSpawnedBody(pass, v, lit.Body)
				}
			case *ast.AssignStmt:
				checkDiscardedCancel(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkSpawnedBody reports each infinite loop in a goroutine body that
// has no reachable cancellation signal.
func checkSpawnedBody(pass *analysis.Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	for _, loop := range lite.InfiniteLoops(body) {
		if !lite.HasCancellationSignal(loop.Body, pass.Info) {
			pass.Reportf(g.Pos(), "goroutine loops forever with no way to observe cancellation; select on a ctx.Done() or stop channel inside the loop")
		}
	}
}

// cancelCtors are the context constructors whose second result is a
// CancelFunc (or CancelCauseFunc) that must not be dropped.
var cancelCtors = []string{"WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause"}

// checkDiscardedCancel flags `ctx, _ := context.WithCancel(parent)`:
// the one assignment shape where the leak is certain, not suspected.
func checkDiscardedCancel(pass *analysis.Pass, a *ast.AssignStmt) {
	if len(a.Rhs) != 1 || len(a.Lhs) != 2 {
		return
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.Info, call)
	if !isPkgFunc(fn, "context", cancelCtors...) {
		return
	}
	if id, ok := a.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(), "context.%s cancel function discarded; the derived context and its timer leak until the parent dies — store the cancel and defer or invoke it", fn.Name())
	}
}
