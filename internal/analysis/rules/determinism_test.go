package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	old := DeterministicPaths
	DeterministicPaths = append([]string{"determinism"}, old...)
	defer func() { DeterministicPaths = old }()
	analysistest.Run(t, analysistest.Fixture("determinism"), Determinism)
}
