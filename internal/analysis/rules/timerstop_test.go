package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestTimerStop(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("timerstop"), TimerStop)
}
