package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestChanHygiene(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("chanhygiene"), ChanHygiene)
}
