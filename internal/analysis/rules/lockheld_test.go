package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("lockheld"), LockHeld)
}
