package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("atomicmix"), AtomicMix)
}
