package rules

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestErrWrap(t *testing.T) {
	old := ErrWrapPaths
	ErrWrapPaths = append([]string{"errwrap"}, old...)
	defer func() { ErrWrapPaths = old }()
	analysistest.Run(t, analysistest.Fixture("errwrap"), ErrWrap)
}
