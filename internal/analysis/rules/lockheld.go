package rules

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// LockHeld flags slow or blocking operations performed while a mutex is
// held: Chatter calls (Chat/ChatContext/ChatCompletion/...), HTTP
// round-trips (http.Client methods, package-level http.Get/Post,
// RoundTrip), and channel sends. A lock held across a model call turns
// a 100ms upstream hiccup into a pileup of every goroutine touching the
// guarded state — the serving core's single-flight exists precisely to
// release its lock before the leader computes.
//
// The analysis is a linear scan per function: Lock()/RLock() marks the
// receiver held, Unlock()/RUnlock() releases it, defer Unlock holds it
// to function end. Branch bodies are scanned with a copy of the held
// set; `go func` bodies are skipped (the goroutine does not inherit the
// critical section).
var LockHeld = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "flag Chatter calls, HTTP round-trips, and channel sends performed while a mutex is held",
	Run:  runLockHeld,
}

// chatterMethods are treated as slow upstream calls.
var chatterMethods = map[string]bool{
	"Chat":                  true,
	"ChatContext":           true,
	"ChatCompletion":        true,
	"ChatCompletionContext": true,
}

func runLockHeld(pass *analysis.Pass) error {
	enclosingFuncs(pass.Files, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		scanBlock(pass, body.List, map[string]token.Pos{})
	})
	return nil
}

// scanBlock processes stmts in order with the current held set (keyed
// by the lock expression's source text). Nested control flow recurses
// with a copy, so a branch that unlocks and returns does not disturb
// the fall-through path.
func scanBlock(pass *analysis.Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, st := range stmts {
		switch v := st.(type) {
		case *ast.ExprStmt:
			if recv, locks, ok := lockCall(pass.Info, v.X); ok {
				if locks {
					held[recv] = v.Pos()
				} else {
					delete(held, recv)
				}
				continue
			}
			checkStmt(pass, st, held)
		case *ast.DeferStmt:
			// defer mu.Unlock(): the lock stays held for the rest of the
			// scan (that is the point); no banned-op check on the defer
			// itself — it runs after the critical section.
			if _, _, ok := lockCall(pass.Info, v.Call); ok {
				continue
			}
			checkStmt(pass, st, held)
		case *ast.BlockStmt:
			scanBlock(pass, v.List, copyHeld(held))
		case *ast.IfStmt:
			checkHeaderExpr(pass, v.Cond, held)
			scanBlock(pass, v.Body.List, copyHeld(held))
			if v.Else != nil {
				scanBlock(pass, []ast.Stmt{v.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			scanBlock(pass, v.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanBlock(pass, v.Body.List, copyHeld(held))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var bodies [][]ast.Stmt
			switch s := v.(type) {
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					bodies = append(bodies, c.(*ast.CaseClause).Body)
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					bodies = append(bodies, c.(*ast.CaseClause).Body)
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					cc := c.(*ast.CommClause)
					if send, ok := cc.Comm.(*ast.SendStmt); ok && len(held) > 0 {
						reportHeld(pass, send.Pos(), "channel send", held)
					}
					bodies = append(bodies, cc.Body)
				}
			}
			for _, b := range bodies {
				scanBlock(pass, b, copyHeld(held))
			}
		default:
			checkStmt(pass, st, held)
		}
	}
}

// lockCall classifies expr as a Lock/RLock (locks=true) or
// Unlock/RUnlock (locks=false) call on a sync (RW)Mutex-ish receiver,
// returning the receiver's source text as the held-set key.
func lockCall(info *types.Info, expr ast.Expr) (recv string, locks bool, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", false, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	return exprText(sel.X), name == "Lock" || name == "RLock", true
}

// checkStmt inspects one statement subtree for banned operations under
// a held lock. Function literals are not descended into: a goroutine or
// stored callback does not run inside the critical section. (A literal
// *called in place* under the lock is rare enough that the scan accepts
// the false negative.)
func checkStmt(pass *analysis.Pass, st ast.Stmt, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(st, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false // the goroutine runs outside the critical section
		case *ast.SendStmt:
			reportHeld(pass, v.Pos(), "channel send", held)
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, v)
			if fn == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if chatterMethods[fn.Name()] {
					reportHeld(pass, v.Pos(), "Chatter call "+fn.Name(), held)
					return true
				}
				if fn.Name() == "RoundTrip" || (isNamedType(sig.Recv().Type(), "net/http", "Client") &&
					(fn.Name() == "Do" || fn.Name() == "Get" || fn.Name() == "Post" || fn.Name() == "PostForm" || fn.Name() == "Head")) {
					reportHeld(pass, v.Pos(), "HTTP round-trip "+fn.Name(), held)
					return true
				}
			}
			if isPkgFunc(fn, "net/http", "Get", "Post", "PostForm", "Head") {
				reportHeld(pass, v.Pos(), "HTTP round-trip http."+fn.Name(), held)
			}
		}
		return true
	})
}

// checkHeaderExpr applies the banned-op scan to a bare expression
// (e.g. an if condition) under the current held set.
func checkHeaderExpr(pass *analysis.Pass, e ast.Expr, held map[string]token.Pos) {
	if e == nil || len(held) == 0 {
		return
	}
	checkStmt(pass, &ast.ExprStmt{X: e}, held)
}

func reportHeld(pass *analysis.Pass, pos token.Pos, what string, held map[string]token.Pos) {
	// One report per site, naming the lexically smallest lock so the
	// message is stable across runs regardless of map order.
	recv := ""
	for r := range held {
		if recv == "" || r < recv {
			recv = r
		}
	}
	pass.Reportf(pos, "%s while holding %s; release the lock before blocking (snapshot state, then call)", what, recv)
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// exprText renders a (small) expression back to source for held-set
// keys and messages.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "mutex"
	}
	return buf.String()
}
